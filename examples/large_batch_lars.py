#!/usr/bin/env python
"""Large-batch training with LARS — the paper's future-work direction.

The paper closes by noting that TaihuLight "is able to benefit from new
training algorithm[s] with larger batch-size" (its reference [12] is LARS,
You et al.). This example shows why plain SGD needs the layer-wise trust
ratio at large batches: with the same effective learning-rate budget,
momentum SGD destabilizes while LARS trains smoothly — and the scaling
model shows what the bigger sub-mini-batch buys at 1024 nodes.

Run:  python examples/large_batch_lars.py
"""

import numpy as np

from repro.frame.model_zoo import lenet
from repro.frame.solver import SGDSolver
from repro.frame.solvers_ext import LARSSolver
from repro.io.dataset import SyntheticImageNet
from repro.parallel.ssgd import SSGDIterationModel
from repro.utils.rng import seeded_rng

BATCH = 256  # "large" for this toy problem
STEPS = 40


def make_net():
    source = SyntheticImageNet(
        num_classes=5, sample_shape=(1, 16, 16), noise=0.25, seed=3
    )
    return lenet.build(
        batch_size=BATCH, num_classes=5, sample_shape=(1, 16, 16),
        source=source, rng=seeded_rng(13),
    )


def run(solver_cls, label, **kwargs):
    net = make_net()
    solver = solver_cls(net, **kwargs)
    with np.errstate(invalid="ignore", over="ignore"):
        stats = solver.step(STEPS)
    tail = float(np.mean(stats.losses[-5:]))
    diverged = not np.isfinite(stats.losses[-1])
    print(
        f"{label:>28}: loss {stats.losses[0]:.3f} -> "
        f"{'DIVERGED' if diverged else f'{tail:.3f}'}"
    )
    return tail if not diverged else float("inf")


def main() -> None:
    print(f"training LeNet at batch {BATCH} for {STEPS} steps:\n")
    # A deliberately aggressive rate, as large-batch recipes require.
    sgd = run(SGDSolver, "momentum SGD (lr=0.08)", base_lr=0.08, momentum=0.9)
    lars = run(
        LARSSolver,
        "LARS (lr=0.08, trust=0.02)",
        base_lr=0.08, momentum=0.9, weight_decay=1e-4, trust=0.02,
    )
    if lars < sgd:
        print("\nLARS's per-layer trust ratio tames the update magnitudes "
              "that destabilize plain momentum SGD at this batch size.")

    # What the larger batch buys at scale (Fig. 10's mechanism): more
    # compute per node amortizes the fixed allreduce cost.
    print("\nweak-scaling view (AlexNet-sized 232.6 MB gradient):")
    for sub_batch, compute in ((64, 0.68), (256, 2.72)):
        model = SSGDIterationModel(compute_s=compute, model_bytes=232.6e6)
        print(
            f"  sub-mini-batch {sub_batch:>3}: speedup at 1024 nodes = "
            f"{model.speedup(1024):6.1f}x, comm share = "
            f"{100 * model.comm_fraction(1024):.1f}%"
        )


if __name__ == "__main__":
    main()
