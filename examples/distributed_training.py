#!/usr/bin/env python
"""Distributed synchronous SGD over simulated TaihuLight nodes.

Runs the paper's Algorithm 1 end to end on 8 simulated workers spread over
2 supernodes: every worker trains a replica on its own data shard, packed
gradients are averaged with a *real* executed allreduce (data actually
moves through the recursive halving/doubling schedule), and the replicas
are verified to stay bit-identical. Both the MPICH-style block-numbered
allreduce and swCaffe's topology-aware round-robin renumbering are run so
you can see the simulated communication time drop.

Run:  python examples/distributed_training.py
"""


from repro.frame.layers import DataLayer, InnerProductLayer, ReLULayer, SoftmaxWithLossLayer
from repro.frame.net import Net
from repro.io.dataset import SyntheticImageNet
from repro.parallel import DistributedTrainer
from repro.utils.rng import seeded_rng
from repro.utils.units import format_time

N_WORKERS = 8
NODES_PER_SUPERNODE = 4
BATCH_PER_WORKER = 8
CLASSES = 4
STEPS = 25


def build_worker_net(rank: int) -> Net:
    """One identically-initialized replica reading its own shard."""
    source = SyntheticImageNet(
        num_classes=CLASSES, sample_shape=(128,), noise=0.3, seed=1000 + rank
    )
    net = Net(f"worker{rank}")
    net.add(DataLayer("data", source, BATCH_PER_WORKER), bottoms=[], tops=["data", "label"])
    # Weight seeds must match across workers or replicas diverge at step 0.
    net.add(InnerProductLayer("ip1", 512, rng=seeded_rng(21)), ["data"], ["h1"])
    net.add(ReLULayer("relu1"), ["h1"], ["a1"])
    net.add(InnerProductLayer("ip2", CLASSES, rng=seeded_rng(22)), ["a1"], ["logits"])
    net.add(SoftmaxWithLossLayer("loss"), ["logits", "label"], ["loss"])
    return net


def main() -> None:
    for algorithm in ("rhd", "topo-aware"):
        trainer = DistributedTrainer(
            net_factory=build_worker_net,
            n_workers=N_WORKERS,
            algorithm=algorithm,
            nodes_per_supernode=NODES_PER_SUPERNODE,
            base_lr=0.05,
            momentum=0.9,
        )
        stats = trainer.step(STEPS)
        in_sync = trainer.replicas_in_sync(atol=1e-6)
        print(
            f"{algorithm:>11}: loss {stats.losses[0]:.3f} -> {stats.losses[-1]:.3f} "
            f"over {STEPS} steps on {N_WORKERS} workers | "
            f"simulated comm {format_time(stats.comm_time_s)} | "
            f"replicas in sync: {in_sync}"
        )
    print(
        "\nThe topology-aware variant moves the heavy halving/doubling steps "
        "inside supernodes, cutting the simulated communication time; the "
        "numerics are identical (both reduce to the exact same averages)."
    )

if __name__ == "__main__":
    main()
