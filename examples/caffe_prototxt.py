#!/usr/bin/env python
"""Load and train a genuine Caffe ``.prototxt`` model definition.

The paper emphasizes that swCaffe "maintain[s] the same interfaces as
Caffe": existing model files deploy unchanged, only the backend differs.
This example builds a LeNet variant from embedded Caffe prototxt text
(net + solver definitions), trains it on synthetic data, and prints the
simulated SW26010 profile of the resulting net.

Run:  python examples/caffe_prototxt.py
"""

from repro.frame.prototxt import net_from_prototxt, solver_from_prototxt
from repro.io.dataset import SyntheticImageNet
from repro.utils.profiler import NetProfiler
from repro.utils.rng import seeded_rng

NET_PROTOTXT = """
name: "LeNet-sw"
layer {
  name: "mnist"  type: "Data"
  top: "data"  top: "label"
  data_param { batch_size: 32 }
}
layer {
  name: "conv1"  type: "Convolution"
  bottom: "data"  top: "conv1"
  convolution_param {
    num_output: 20  kernel_size: 5
    weight_filler { type: "msra" }
  }
}
layer {
  name: "pool1"  type: "Pooling"
  bottom: "conv1"  top: "pool1"
  pooling_param { pool: MAX kernel_size: 2 stride: 2 }
}
layer {
  name: "conv2"  type: "Convolution"
  bottom: "pool1"  top: "conv2"
  convolution_param { num_output: 50  kernel_size: 5 }
}
layer {
  name: "pool2"  type: "Pooling"
  bottom: "conv2"  top: "pool2"
  pooling_param { pool: MAX kernel_size: 2 stride: 2 }
}
layer {
  name: "ip1"  type: "InnerProduct"
  bottom: "pool2"  top: "ip1"
  inner_product_param { num_output: 500 }
}
layer {
  name: "relu1"  type: "ReLU"
  bottom: "ip1"  top: "ip1_relu"
}
layer {
  name: "ip2"  type: "InnerProduct"
  bottom: "ip1_relu"  top: "ip2"
  inner_product_param { num_output: 10 }
}
layer {
  name: "loss"  type: "SoftmaxWithLoss"
  bottom: "ip2"  bottom: "label"
  top: "loss"
}
layer {
  name: "accuracy"  type: "Accuracy"
  bottom: "ip2"  bottom: "label"
  top: "accuracy"
}
"""

SOLVER_PROTOTXT = """
type: "Nesterov"
base_lr: 0.01
momentum: 0.9
weight_decay: 0.0005
lr_policy: "step"
gamma: 0.5
stepsize: 40
"""


def main() -> None:
    source = SyntheticImageNet(
        num_classes=10, sample_shape=(1, 28, 28), noise=0.3, seed=17
    )
    net = net_from_prototxt(NET_PROTOTXT, source=source, rng=seeded_rng(8))
    solver = solver_from_prototxt(SOLVER_PROTOTXT, net)
    print(f"built {net} from Caffe prototxt; solver: {type(solver).__name__} "
          f"(lr={solver.base_lr}, policy={solver.lr_policy})")

    stats = solver.step(60)
    print(
        f"loss {stats.losses[0]:.3f} -> {stats.losses[-1]:.3f}; "
        f"accuracy {float(net.blobs['accuracy'].data[0]):.2f}"
    )
    print()
    print(NetProfiler(net).render())


if __name__ == "__main__":
    main()
