#!/usr/bin/env python
"""Explicit vs implicit convolution plans across VGG-16 (Table II's story).

For every VGG-16 convolution, prices both GEMM-transformation strategies on
one simulated core group and shows which one the autotuner keeps — the
"run the first two iterations, pick the winner" behaviour of swCaffe —
along with the achieved Gflops, reproducing the paper's crossover: implicit
wins at big images / small-to-mid channels and at the tiny conv5 images,
explicit wins in the middle where im2col yields large well-shaped GEMMs.

Run:  python examples/vgg_plan_selection.py
"""

from repro.harness.table2_vgg_conv import BATCH, generate
from repro.kernels.autotune import ConvConfig, PlanAutotuner
from repro.utils.tables import Table


def main() -> None:
    rows = generate()
    table = Table(
        headers=["layer", "Ni->No @ image", "implicit fwd", "explicit fwd",
                 "winner", "Gflops"],
        title=f"VGG-16 convolution plan selection (one CG, batch {BATCH}):",
    )
    for r in rows:
        fmt = lambda t: "-" if t is None else f"{t:.2f}s"
        table.add_row(
            f"conv{r.name}",
            f"{r.ni}->{r.no} @ {r.image}x{r.image}",
            fmt(r.forward.implicit_s),
            fmt(r.forward.explicit_s),
            r.forward.winner,
            f"{r.forward.gflops:.0f}",
        )
    print(table.render())

    # The autotuner caches one probe per (config, direction), like
    # swCaffe's first-two-iterations strategy.
    tuner = PlanAutotuner()
    cfg = ConvConfig(batch=BATCH, ni=256, no=256, height=56, width=56, k=3, pad=1)
    for _ in range(5):
        choice = tuner.choose(cfg, "forward")
    print(
        f"\nautotuner probed conv3-style config once ({tuner.probe_count} probe"
        f"{'s' if tuner.probe_count != 1 else ''}) and cached the winner: "
        f"{choice.plan_name} ({choice.cost.total_s:.2f}s; candidates: "
        + ", ".join(f"{n}={t:.2f}s" for n, t in choice.alternatives)
        + ")"
    )


if __name__ == "__main__":
    main()
