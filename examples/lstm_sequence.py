#!/usr/bin/env python
"""Train the LSTM layer on a synthetic sequence-classification task.

The paper calls out LSTM layers as GEMM-dominated workloads that ride the
register-communication GEMM plan (Sec. IV-A). This example trains a small
LSTM end to end — sequences whose class is determined by a temporal
pattern — and shows the simulated SW26010 cost of each direction.

Run:  python examples/lstm_sequence.py
"""

import numpy as np

from repro.frame.layers import DataLayer, InnerProductLayer, LSTMLayer, SoftmaxWithLossLayer
from repro.frame.net import Net
from repro.frame.solver import SGDSolver
from repro.utils.rng import seeded_rng
from repro.utils.units import format_time

CLASSES = 3
SEQ_LEN = 12
DIM = 6
BATCH = 16


class SequenceSource:
    """Sequences whose *ordering* encodes the class.

    Class c puts a pulse in channel c at a class-specific time step, so a
    model must integrate over time to separate classes — a bag-of-frames
    classifier cannot.
    """

    sample_shape = (SEQ_LEN, DIM)

    def __init__(self, seed: int = 0) -> None:
        self.rng = seeded_rng(seed)

    def next_batch(self, batch_size):
        labels = self.rng.integers(0, CLASSES, size=batch_size)
        x = 0.3 * self.rng.standard_normal((batch_size, SEQ_LEN, DIM), dtype=np.float32)
        for i, c in enumerate(labels):
            t = 2 + 3 * c  # class-specific pulse position
            x[i, t, c] += 2.0
        return x, labels.astype(np.int64)


class LastStepLayer(InnerProductLayer):
    """Classifier over the LSTM's final hidden state.

    (Implemented by flattening the whole output here for simplicity — the
    inner product can learn to weight the last step.)
    """


def main() -> None:
    net = Net("lstm-seq")
    net.add(DataLayer("data", SequenceSource(3), BATCH), bottoms=[], tops=["data", "label"])
    net.add(LSTMLayer("lstm", num_output=24, rng=seeded_rng(5)), ["data"], ["hidden"])
    net.add(InnerProductLayer("fc", CLASSES, rng=seeded_rng(6)), ["hidden"], ["logits"])
    net.add(SoftmaxWithLossLayer("loss"), ["logits", "label"], ["loss"])

    solver = SGDSolver(net, base_lr=0.05, momentum=0.9)
    stats = solver.step(80)
    print(
        f"LSTM sequence task: loss {stats.losses[0]:.3f} -> "
        f"{np.mean(stats.losses[-5:]):.3f} over {stats.iterations} iterations"
    )

    lstm = net.layer_by_name("lstm")
    fwd = lstm.sw_forward_cost()
    bwd = lstm.sw_backward_cost()
    print(
        f"simulated SW26010 LSTM cost per iteration: forward "
        f"{format_time(fwd.total_s)} ({fwd.flops / 1e6:.1f} MFLOP), backward "
        f"{format_time(bwd.total_s)} — {SEQ_LEN} timesteps x 2 GEMMs each on "
        "the register-communication plan"
    )


if __name__ == "__main__":
    main()
