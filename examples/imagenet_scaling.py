#!/usr/bin/env python
"""Scale ImageNet training to 1024 simulated TaihuLight nodes.

Reproduces the paper's scalability study (Figs. 10-11) for one
configuration of your choice: builds the network, prices a node-local
iteration with the SW26010 kernel plans, and sweeps node counts with the
topology-aware allreduce — reporting speedup, communication share, and the
effect of the parallel I/O striping (Sec. V-B).

Run:  python examples/imagenet_scaling.py [alexnet|resnet50] [sub_batch]
"""

import sys

from repro.frame.model_zoo import alexnet, resnet
from repro.io import DiskArrayModel, PrefetchPipeline, StripingPolicy
from repro.parallel.ssgd import SSGDIterationModel
from repro.perf.layer_cost import net_iteration_time
from repro.utils.tables import Table
from repro.utils.units import MB, format_time

BUILDERS = {"alexnet": (alexnet.build, 256), "resnet50": (resnet.build_resnet50, 32)}


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "resnet50"
    if name not in BUILDERS:
        raise SystemExit(f"unknown network {name!r}; choose from {sorted(BUILDERS)}")
    builder, default_batch = BUILDERS[name]
    batch = int(sys.argv[2]) if len(sys.argv) > 2 else default_batch

    print(f"building {name} at sub-mini-batch {batch} ...")
    net = builder(batch_size=batch)
    compute_s = net_iteration_time(net, "sw26010")
    model_bytes = net.param_bytes()
    print(
        f"node-local iteration: {format_time(compute_s)} | "
        f"gradient payload: {model_bytes / 1e6:.1f} MB"
    )

    prefetch = PrefetchPipeline(DiskArrayModel(), StripingPolicy.swcaffe())
    model = SSGDIterationModel(
        compute_s=compute_s,
        model_bytes=model_bytes,
        prefetch=prefetch,
        batch_io_bytes=batch * 0.75 * MB,  # ~750 KB per ImageNet record
    )

    table = Table(
        headers=["nodes", "iteration", "allreduce", "comm %", "speedup", "global batch"],
        title=f"\nWeak scaling of {name} (sub-mini-batch {batch}):",
    )
    for n in (1, 2, 8, 32, 128, 512, 1024):
        b = model.breakdown(n)
        table.add_row(
            n,
            format_time(b.total_s),
            format_time(b.allreduce_s),
            f"{100 * b.comm_fraction:.1f}",
            f"{model.speedup(n):.1f}x",
            n * batch,
        )
    print(table.render())

    # The I/O side: what the 32x256MB striping buys at 1024 readers.
    disk = DiskArrayModel()
    batch_bytes = batch * 0.75 * MB
    t_single = disk.read_time(1024, batch_bytes, StripingPolicy.single_split())
    t_striped = disk.read_time(1024, batch_bytes, StripingPolicy.swcaffe())
    print(
        f"\nmini-batch read at 1024 readers: single-split "
        f"{format_time(t_single)} vs striped {format_time(t_striped)} "
        f"({t_single / t_striped:.0f}x) — fully hidden by the prefetch "
        f"thread when it fits under the compute time."
    )


if __name__ == "__main__":
    main()
