#!/usr/bin/env python
"""Quickstart: train a small CNN with the swCaffe reproduction stack.

Builds a LeNet-style network on a synthetic, label-correlated dataset,
trains it with the SGD solver, and reports both the *functional* result
(loss curve, accuracy — real numbers from real arithmetic) and the
*simulated* result (how long the same iterations would take on one SW26010
node, with the per-layer breakdown from the kernel plans).

Run:  python examples/quickstart.py
"""

from repro.frame.model_zoo import lenet
from repro.frame.solver import SGDSolver
from repro.io.dataset import SyntheticImageNet
from repro.utils.rng import seeded_rng
from repro.utils.tables import Table
from repro.utils.units import format_time


def main() -> None:
    # 1. A synthetic 5-class dataset: each class has a fixed prototype
    #    pattern plus noise, so the network has something real to learn.
    source = SyntheticImageNet(
        num_classes=5, sample_shape=(1, 16, 16), noise=0.25, seed=42
    )

    # 2. LeNet over that input, batch 16.
    net = lenet.build(
        batch_size=16,
        num_classes=5,
        sample_shape=(1, 16, 16),
        source=source,
        rng=seeded_rng(7),
    )
    print(f"built {net}: {sum(p.count for p in net.params):,} parameters")

    # 3. Train for 60 iterations.
    solver = SGDSolver(net, base_lr=0.005, momentum=0.9, weight_decay=1e-4)
    stats = solver.step(60)
    print(f"\nloss: {stats.losses[0]:.3f} -> {stats.losses[-1]:.3f} "
          f"over {stats.iterations} iterations")
    print(f"final training-batch accuracy: {float(net.blobs['accuracy'].data[0]):.2f}")
    print(f"simulated SW26010 time for the run: {format_time(stats.simulated_time_s)}")

    # 4. Per-layer simulated cost on one core group (the Fig. 8/9 view).
    table = Table(
        headers=["layer", "type", "forward", "backward"],
        title="\nSimulated per-layer time on one SW26010 core group:",
    )
    for layer, cost in net.sw_layer_costs():
        table.add_row(
            layer.name, layer.type,
            format_time(cost.forward.total_s), format_time(cost.backward.total_s),
        )
    print(table.render())


if __name__ == "__main__":
    main()
