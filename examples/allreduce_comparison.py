#!/usr/bin/env python
"""Compare allreduce algorithms on the simulated TaihuLight fabric.

Executes ring, binomial-tree, recursive halving/doubling (MPICH baseline)
and the paper's topology-aware variant over *real* gradient buffers on a
64-node / 4-supernode allocation, verifying every algorithm produces the
bit-exact sum while accounting simulated time with the alpha-beta-gamma
cost model. This is Fig. 7's story at a more realistic scale.

Run:  python examples/allreduce_comparison.py
"""

import numpy as np

from repro.simmpi import (
    SimComm,
    binomial_allreduce,
    block_placement,
    ring_allreduce,
    rhd_allreduce,
    round_robin_placement,
)
from repro.topology import LinearCostModel, TaihuLightFabric
from repro.utils.tables import Table
from repro.utils.units import format_time

P, Q = 64, 16  # 64 nodes over 4 supernodes
PAYLOAD_MB = 8  # packed gradient size
MODEL = LinearCostModel(alpha=1e-6, beta1=1 / 10e9, beta2=4 / 10e9, gamma=3e-10)


def main() -> None:
    n_elems = PAYLOAD_MB * 1024 * 1024 // 8
    fabric = TaihuLightFabric(n_nodes=P, nodes_per_supernode=Q)
    rng = np.random.default_rng(0)
    base = [rng.normal(size=n_elems) for _ in range(P)]
    expected = np.sum(base, axis=0)

    runs = [
        ("ring (block)", ring_allreduce, block_placement(P, Q)),
        ("binomial tree (block)", binomial_allreduce, block_placement(P, Q)),
        ("recursive halving/doubling (block)", rhd_allreduce, block_placement(P, Q)),
        ("RHD + round-robin renumbering", rhd_allreduce, round_robin_placement(P, Q)),
    ]
    table = Table(
        headers=["algorithm", "time", "alpha steps", "cross bytes/rank", "exact"],
        title=f"Allreduce of {PAYLOAD_MB} MB over {P} nodes in {P // Q} supernodes:",
    )
    for name, algo, placement in runs:
        bufs = [b.copy() for b in base]
        comm = SimComm(fabric, placement, cost=MODEL)
        result = algo(comm, bufs)
        exact = all(np.allclose(b, expected, rtol=1e-10) for b in bufs)
        table.add_row(
            name,
            format_time(result.time_s),
            result.alpha_count,
            int(result.bytes_cross),
            exact,
        )
    print(table.render())
    print(
        "\nThe ring minimizes bandwidth but pays 2(p-1) latencies; the tree "
        "sends whole vectors; RHD balances both, and the round-robin "
        "renumbering moves its heavy steps inside supernodes — the paper's "
        "design point."
    )


if __name__ == "__main__":
    main()
