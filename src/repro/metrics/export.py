"""Merge metrics counter tracks into the Chrome trace-event export.

Perfetto renders ``"ph": "C"`` (counter) events as per-process line charts
stacked above the span swimlanes. This module derives counter series from a
:class:`~repro.trace.tracer.Tracer`'s spans — cumulative DMA bytes and
cumulative FLOPs per process, sampled at each contributing span's end — and
appends them to :func:`repro.trace.export.to_chrome`'s output, so one JSON
file carries both the timeline and the utilization trajectory.
"""

from __future__ import annotations

import json
from typing import Any

from repro.trace.export import to_chrome
from repro.trace.tracer import Span, Tracer

#: span category -> (counter name, args key holding the increment)
_COUNTER_SOURCES = {
    "dma_transfer": ("dma bytes (cum)", "bytes"),
    "cpe_compute": ("cpe flops (cum)", "flops"),
    "collective_step": ("wire bytes (cum)", "bytes"),
}


def chrome_counter_events(tracer: Tracer | list[Span]) -> list[dict[str, Any]]:
    """Counter ("C") events derived from a tracer's spans.

    One series per (process, counter): cumulative sums of the span ``args``
    payloads in :data:`_COUNTER_SOURCES`, sampled at span end times. Events
    carry process *names*; :func:`to_chrome_with_metrics` rewrites them to
    the pids of the base export.
    """
    spans = tracer.spans if isinstance(tracer, Tracer) else list(tracer)
    contributing: list[tuple[float, str, str, float]] = []
    for span in spans:
        source = _COUNTER_SOURCES.get(span.cat)
        if source is None or not span.args:
            continue
        name, key = source
        value = span.args.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            continue
        process = span.track.partition("/")[0]
        contributing.append((span.end_s, process, name, float(value)))

    events: list[dict[str, Any]] = []
    totals: dict[tuple[str, str], float] = {}
    for end_s, process, name, value in sorted(contributing, key=lambda t: t[0]):
        key = (process, name)
        totals[key] = totals.get(key, 0.0) + value
        events.append(
            {
                "name": name,
                "ph": "C",
                "ts": end_s * 1e6,
                "pid": process,  # rewritten to a numeric pid on merge
                "tid": 0,
                "args": {"value": totals[key]},
            }
        )
    return events


def to_chrome_with_metrics(tracer: Tracer | list[Span]) -> dict[str, Any]:
    """The Chrome trace-event object with metrics counter tracks merged in."""
    obj = to_chrome(tracer)
    pids: dict[str, int] = {
        ev["args"]["name"]: ev["pid"]
        for ev in obj["traceEvents"]
        if ev.get("ph") == "M" and ev.get("name") == "process_name"
    }
    for ev in chrome_counter_events(tracer):
        pid = pids.get(ev["pid"])
        if pid is None:
            continue  # counter for a process that emitted no spans
        ev["pid"] = pid
        obj["traceEvents"].append(ev)
    return obj


def write_chrome_json_with_metrics(tracer: Tracer | list[Span], path: str) -> str:
    """Serialize :func:`to_chrome_with_metrics` to ``path``; returns it."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_with_metrics(tracer), fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path
