"""The shared benchmark runner behind ``benchmarks/conftest.py``.

Every ``benchmarks/bench_*.py`` test receives a :class:`BenchTimer` as its
``benchmark`` fixture (the conftest overrides pytest-benchmark's fixture of
the same name, so no external plugin is needed at run time). The timer:

* times the benchmarked callable once (wall clock, recorded as the
  non-deterministic ``wall_time`` metric);
* exposes :meth:`BenchTimer.record` for *deterministic* metrics — simulated
  seconds, modeled bandwidths, speedups — which are bit-stable across
  machines and therefore what ``tools/bench_compare.py`` gates CI on;
* keeps the ``benchmark(fn, *args)`` / ``benchmark.pedantic(...)`` calling
  conventions, so existing suites run unmodified.

A session-scoped :class:`BenchCollector` gathers every case and writes one
``BENCH_<suite>.json`` per module (schema: :mod:`repro.metrics.benchfmt`).
"""

from __future__ import annotations

import pathlib
import sys
import time
from typing import Any, Callable

from repro.metrics.benchfmt import (
    BenchCase,
    BenchMetric,
    bench_payload,
    config_hash,
    git_sha,
    write_bench_json,
)


class BenchTimer:
    """The ``benchmark`` fixture object handed to one test."""

    def __init__(self, case: BenchCase) -> None:
        self._case = case
        #: Free-form annotations (kept for pytest-benchmark API compatibility;
        #: serialized nowhere).
        self.extra_info: dict[str, Any] = {}

    def __call__(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Time one call of ``fn`` and return its result."""
        t0 = time.perf_counter()
        out = fn(*args, **kwargs)
        self._record_wall(time.perf_counter() - t0)
        return out

    def pedantic(
        self,
        fn: Callable[..., Any],
        args: tuple = (),
        kwargs: dict[str, Any] | None = None,
        rounds: int = 1,
        iterations: int = 1,
        **_ignored: Any,
    ) -> Any:
        """pytest-benchmark-compatible single-shot timing."""
        kwargs = kwargs or {}
        out = None
        t0 = time.perf_counter()
        for _ in range(max(1, rounds) * max(1, iterations)):
            out = fn(*args, **kwargs)
        self._record_wall(time.perf_counter() - t0)
        return out

    def _record_wall(self, seconds: float) -> None:
        if any(m.name == "wall_time" for m in self._case.metrics):
            return  # keep the first timing if a test calls benchmark twice
        self._case.add(
            BenchMetric(
                name="wall_time",
                value=seconds,
                units="s",
                direction="lower",
                deterministic=False,
            )
        )

    def record(
        self,
        name: str,
        value: float,
        units: str = "",
        *,
        direction: str = "lower",
        deterministic: bool = True,
    ) -> None:
        """Record one named result metric for this test."""
        self._case.add(
            BenchMetric(
                name=name,
                value=float(value),
                units=units,
                direction=direction,
                deterministic=deterministic,
            )
        )


class BenchCollector:
    """Session-wide accumulation of benchmark cases, grouped by suite."""

    def __init__(self, out_dir: str | pathlib.Path) -> None:
        self.out_dir = pathlib.Path(out_dir)
        self._suites: dict[str, list[BenchCase]] = {}

    def timer(self, suite: str, test: str) -> BenchTimer:
        """Create (and register) the timer for one test."""
        case = BenchCase(test=test)
        self._suites.setdefault(suite, []).append(case)
        return BenchTimer(case)

    @property
    def n_cases(self) -> int:
        return sum(len(cases) for cases in self._suites.values())

    def write(self, repo_root: str | pathlib.Path | None = None) -> list[pathlib.Path]:
        """Write one ``BENCH_<suite>.json`` per suite; returns the paths.

        Suites whose cases recorded nothing (e.g. every test skipped) are
        omitted. The config hash covers the interpreter version and the
        suite's test list, so a changed benchmark set is distinguishable
        from a changed result.
        """
        sha = git_sha(repo_root)
        paths: list[pathlib.Path] = []
        for suite, cases in sorted(self._suites.items()):
            cases = [c for c in cases if c.metrics]
            if not cases:
                continue
            payload = bench_payload(
                suite,
                cases,
                sha=sha,
                cfg_hash=config_hash(
                    [f"python{sys.version_info.major}.{sys.version_info.minor}", suite]
                    + sorted(c.test for c in cases)
                ),
            )
            paths.append(write_bench_json(self.out_dir / f"BENCH_{suite}.json", payload))
        return paths
