"""``repro.metrics`` — hardware utilization counters and roofline attribution.

Three coupled pieces (see ``docs/observability.md``):

* the **counter registry** (:mod:`repro.metrics.registry`): labelled
  counters/gauges/histograms/high-water marks fed by instrumentation hooks
  in ``repro.hw``, ``repro.simmpi``, the kernel plans and the framework —
  ambient, and a strict no-op when disabled;
* the **roofline analyzer** (:mod:`repro.metrics.roofline` /
  :mod:`repro.metrics.session`): classifies every priced kernel and layer
  as compute-, DMA- or RLC-bound with its achieved fraction of the
  respective hardware ceiling, and aggregates a training step into a
  per-resource utilization report (``python -m repro metrics <net>``);
* the **benchmark pipeline** (:mod:`repro.metrics.benchfmt` /
  :mod:`repro.metrics.benchrun`): the shared runner that writes every
  ``benchmarks/bench_*`` result as a versioned ``BENCH_<suite>.json``,
  diffable by ``tools/bench_compare.py``.
"""

# Only the dependency-free registry is imported eagerly: the instrumented
# modules (repro.hw.*, repro.simmpi.*, ...) import this package at their own
# import time, so pulling in roofline/session here would be a cycle.
from repro.metrics.registry import (
    Counter,
    Gauge,
    HighWaterMark,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_METRICS,
    active,
    collecting,
    install,
    suspended,
)

_LAZY = {
    "LayerRoofline": "repro.metrics.roofline",
    "RooflineVerdict": "repro.metrics.roofline",
    "bound_summary": "repro.metrics.roofline",
    "classify_cost": "repro.metrics.roofline",
    "net_roofline": "repro.metrics.roofline",
    "render_roofline": "repro.metrics.roofline",
    "METRICS_SCHEMA": "repro.metrics.session",
    "MetricsReport": "repro.metrics.session",
    "ResourceUtilization": "repro.metrics.session",
    "collect_training_step": "repro.metrics.session",
    "chrome_counter_events": "repro.metrics.export",
    "to_chrome_with_metrics": "repro.metrics.export",
    "write_chrome_json_with_metrics": "repro.metrics.export",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "Counter",
    "Gauge",
    "HighWaterMark",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_METRICS",
    "active",
    "collecting",
    "install",
    "suspended",
    "LayerRoofline",
    "RooflineVerdict",
    "bound_summary",
    "classify_cost",
    "net_roofline",
    "render_roofline",
    "METRICS_SCHEMA",
    "MetricsReport",
    "ResourceUtilization",
    "collect_training_step",
    "chrome_counter_events",
    "to_chrome_with_metrics",
    "write_chrome_json_with_metrics",
]
