"""Metrics sessions: per-resource utilization of a simulated training step.

The counterpart of :mod:`repro.trace.session`: instead of a span timeline,
:func:`collect_training_step` produces a :class:`MetricsReport` — per-resource
busy time and achieved-vs-peak utilization, the per-layer roofline table,
the gradient allreduce's wire traffic, and a snapshot of every counter the
instrumentation hooks fed during the run.

The workload is the same one the trace CLI simulates: every rank runs
``iterations`` identical data-parallel training iterations (layer costs on
one core group), then synchronizes gradients with the recursive
halving/doubling allreduce over a TaihuLight fabric. When a
:class:`~repro.trace.tracer.Tracer` is supplied the session also emits the
span timeline, from the *same* cost objects that feed the counters — which
is what makes the trace/metrics DMA-byte consistency pin possible.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.hw.spec import SW26010Params, SW_PARAMS
from repro.metrics.registry import MetricsRegistry, collecting
from repro.metrics.roofline import (
    LayerRoofline,
    bound_summary,
    classify_cost,
    render_roofline,
)
from repro.simmpi.comm import SimComm
from repro.simmpi.reorder import block_placement, round_robin_placement
from repro.topology.fabric import TaihuLightFabric
from repro.trace.session import replay_rhd
from repro.trace.tracer import Tracer, emit_cost_spans, tracing
from repro.utils.tables import Table
from repro.utils.units import format_bytes, format_time

#: Version tag of the JSON document ``python -m repro metrics --json`` emits.
METRICS_SCHEMA = "repro-metrics/1"


@dataclass(frozen=True)
class ResourceUtilization:
    """One resource's totals over the session.

    ``busy_s`` is the resource's busy time within one rank's timeline;
    ``busy_frac`` divides by the session's simulated wall time;
    ``achieved`` / ``peak`` / ``ceiling_frac`` express the achieved rate
    while busy against the hardware ceiling (units depend on the resource).
    """

    name: str
    busy_s: float
    busy_frac: float
    achieved: float = 0.0
    peak: float = 0.0
    units: str = ""

    @property
    def ceiling_frac(self) -> float:
        return self.achieved / self.peak if self.peak > 0 else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "busy_s": self.busy_s,
            "busy_frac": self.busy_frac,
            "achieved": self.achieved,
            "peak": self.peak,
            "ceiling_frac": self.ceiling_frac,
            "units": self.units,
        }


@dataclass
class MetricsReport:
    """Everything one metrics session measured."""

    model: str
    ranks: int
    iterations: int
    scheme: str
    wall_s: float
    compute_s: float
    allreduce_s: float
    allreduce_steps: int
    payload_bytes: float
    wire_bytes_intra: float
    wire_bytes_cross: float
    resources: dict[str, ResourceUtilization] = field(default_factory=dict)
    layers: list[LayerRoofline] = field(default_factory=list)
    counters: dict[str, Any] = field(default_factory=dict)

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "schema": METRICS_SCHEMA,
            "model": self.model,
            "ranks": self.ranks,
            "iterations": self.iterations,
            "scheme": self.scheme,
            "wall_s": self.wall_s,
            "compute_s": self.compute_s,
            "allreduce_s": self.allreduce_s,
            "allreduce_steps": self.allreduce_steps,
            "payload_bytes": self.payload_bytes,
            "wire_bytes": {
                "intra_supernode": self.wire_bytes_intra,
                "cross_supernode": self.wire_bytes_cross,
            },
            "resources": {k: v.as_dict() for k, v in self.resources.items()},
            "layers": [row.as_dict() for row in self.layers],
            "bound_summary_s": bound_summary(self.layers),
            "counters": self.counters,
        }

    def write_json(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        return path

    def render(self) -> str:
        """Terminal rendering: utilization table + per-layer roofline."""
        table = Table(
            headers=("resource", "busy", "busy%", "achieved", "peak", "% ceiling"),
            title=(
                f"resource utilization: {self.model!r} x{self.iterations} iter "
                f"on {self.ranks} rank(s), wall {format_time(self.wall_s)} "
                f"(compute {format_time(self.compute_s)}, "
                f"allreduce {format_time(self.allreduce_s)})"
            ),
        )
        for name, res in self.resources.items():
            table.add_row(
                name,
                format_time(res.busy_s),
                f"{100 * res.busy_frac:.0f}",
                f"{res.achieved:.3g}" if res.achieved else "-",
                f"{res.peak:.3g}" if res.peak else "-",
                f"{100 * res.ceiling_frac:.1f}" if res.peak else "-",
            )
        wire = (
            f"allreduce wire traffic per rank: "
            f"{format_bytes(self.wire_bytes_intra)} intra-supernode, "
            f"{format_bytes(self.wire_bytes_cross)} cross-supernode "
            f"({self.allreduce_steps} steps, "
            f"{format_bytes(self.payload_bytes)} gradients, {self.scheme})"
        )
        return "\n\n".join([table.render(), wire, render_roofline(self.layers)])


def collect_training_step(
    net,
    *,
    ranks: int = 4,
    iterations: int = 1,
    scheme: str = "improved",
    nodes_per_supernode: int | None = None,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    params: SW26010Params | None = None,
) -> MetricsReport:
    """Measure one simulated data-parallel training step of ``net``.

    Mirrors :func:`repro.trace.session.trace_training_step`'s workload and
    placement rules. Layer costs feed the registry (and, when ``tracer``
    is given, the span timeline) once per rank per iteration; the gradient
    allreduce runs through :func:`replay_rhd`, whose ``account_step`` hooks
    feed the ``comm.*`` counters.
    """
    if ranks < 1:
        raise ValueError("ranks must be >= 1")
    if scheme not in ("improved", "original"):
        raise ValueError(f"scheme must be 'improved' or 'original', got {scheme!r}")
    p = params or SW_PARAMS
    mx = registry if registry is not None else MetricsRegistry()
    tr = tracer if tracer is not None else Tracer()
    emit_trace = tracer is not None

    q = nodes_per_supernode
    if q is None:
        q = ranks // 2 if ranks % 2 == 0 and ranks > 2 else ranks
    if ranks % q != 0:
        raise ValueError(f"ranks={ranks} must be a multiple of nodes_per_supernode={q}")

    # Price every layer exactly once (plan search is deterministic but not
    # cheap); the same cost objects feed rows, counters and spans.
    priced: list[tuple[LayerRoofline, Any]] = []
    for layer, cost in net.sw_layer_costs():
        for direction, c in (("fwd", cost.forward), ("bwd", cost.backward)):
            if c.total_s <= 0:
                continue
            priced.append((_roofline_row(layer, direction, c, p), c))
    rows = [row for row, _ in priced]
    per_iter_s = sum(r.total_s for r in rows)
    payload = float(net.param_bytes())

    with collecting(mx):
        # --- compute phase: identical on every rank ----------------------- #
        for rank in range(ranks):
            with mx.labelled(rank=str(rank)):
                for _ in range(iterations):
                    for row, c in priced:
                        mx.count("layer.passes", 1, dir=row.direction,
                                 layer_type=row.layer_type)
                        if c.compute_s > 0:
                            mx.count("cpe.busy_s", c.compute_s)
                        if c.flops > 0:
                            mx.count("cpe.flops", c.flops)
                        if c.dma_s > 0 or c.dma_bytes > 0:
                            mx.count("dma.bytes", c.dma_bytes, dir="model")
                            mx.count("dma.busy_s", c.dma_s)
                        if c.rlc_s > 0:
                            mx.count("rlc.busy_s", c.rlc_s)
            if emit_trace:
                with tr.context(f"rank{rank}"):
                    for _ in range(iterations):
                        for row, c in priced:
                            emit_cost_spans(
                                tr, f"{row.layer} {row.direction}", c,
                                cat=f"layer_{row.direction}",
                                args={"layer_type": row.layer_type},
                            )

        # --- allreduce phase ---------------------------------------------- #
        fabric = TaihuLightFabric(n_nodes=ranks, nodes_per_supernode=q)
        placement = (
            round_robin_placement(ranks, q)
            if scheme == "improved"
            else block_placement(ranks, q)
        )
        allreduce_s = 0.0
        steps = 0
        intra = cross = 0.0
        if ranks > 1:
            for i in range(iterations):
                comm = SimComm(fabric, placement)
                with mx.labelled(collective="rhd"):
                    if emit_trace:
                        with tracing(tr), tr.shifted(
                            per_iter_s * (i + 1) + allreduce_s
                        ):
                            res = replay_rhd(comm, payload)
                    else:
                        res = replay_rhd(comm, payload)
                allreduce_s += res.time_s
                steps += res.steps
                intra += res.bytes_intra
                cross += res.bytes_cross

    compute_s = per_iter_s * iterations
    wall_s = compute_s + allreduce_s

    # --- per-rank resource totals (ranks are symmetric) ------------------- #
    busy = {
        "cpe": sum(c.compute_s for _, c in priced) * iterations,
        "dma": sum(c.dma_s for _, c in priced) * iterations,
        "rlc": sum(c.rlc_s for _, c in priced) * iterations,
    }
    flops = sum(r.flops for r in rows) * iterations
    dma_bytes = sum(r.dma_bytes for r in rows) * iterations
    resources = {
        "cpe": ResourceUtilization(
            name="cpe",
            busy_s=busy["cpe"],
            busy_frac=busy["cpe"] / wall_s if wall_s else 0.0,
            achieved=flops / busy["cpe"] / 1e9 if busy["cpe"] else 0.0,
            peak=p.cg_cpe_peak_flops / 1e9,
            units="GFlop/s",
        ),
        "dma": ResourceUtilization(
            name="dma",
            busy_s=busy["dma"],
            busy_frac=busy["dma"] / wall_s if wall_s else 0.0,
            achieved=dma_bytes / busy["dma"] / 1e9 if busy["dma"] else 0.0,
            peak=p.dma_peak_bw / 1e9,
            units="GB/s",
        ),
        "rlc": ResourceUtilization(
            name="rlc",
            busy_s=busy["rlc"],
            busy_frac=busy["rlc"] / wall_s if wall_s else 0.0,
        ),
        "network": ResourceUtilization(
            name="network",
            busy_s=allreduce_s,
            busy_frac=allreduce_s / wall_s if wall_s else 0.0,
            achieved=(
                (intra + cross) / allreduce_s / 1e9 if allreduce_s else 0.0
            ),
            units="GB/s",
        ),
    }

    return MetricsReport(
        model=net.name,
        ranks=ranks,
        iterations=iterations,
        scheme=scheme,
        wall_s=wall_s,
        compute_s=compute_s,
        allreduce_s=allreduce_s,
        allreduce_steps=steps,
        payload_bytes=payload,
        wire_bytes_intra=intra,
        wire_bytes_cross=cross,
        resources=resources,
        layers=rows,
        counters=mx.snapshot(),
    )


def _roofline_row(layer, direction: str, cost, params: SW26010Params) -> LayerRoofline:
    return LayerRoofline(
        layer=layer.name,
        layer_type=layer.type,
        direction=direction,
        total_s=cost.total_s,
        flops=cost.flops,
        dma_bytes=cost.dma_bytes,
        verdict=classify_cost(cost, params),
    )
