"""The versioned ``BENCH_<suite>.json`` benchmark-result schema.

Every benchmark suite (one ``benchmarks/bench_*.py`` module) serializes its
results into one JSON document:

.. code-block:: json

    {
      "schema": "repro-bench/1",
      "suite": "bench_fig2_dma",
      "git_sha": "527c063...",
      "config_hash": "9f2ab41c",
      "created_unix": 1754400000,
      "results": [
        {
          "test": "test_fig2_dma_curves",
          "metrics": [
            {"name": "wall_time", "value": 0.42, "units": "s",
             "direction": "lower", "deterministic": false},
            {"name": "bw_64cpe_4KiB", "value": 22.93, "units": "GB/s",
             "direction": "higher", "deterministic": true}
          ]
        }
      ]
    }

``direction`` states which way is better; ``deterministic`` separates
simulated/derived quantities (bit-stable across machines, safe for CI
regression gating) from wall-clock timings (informational only —
``tools/bench_compare.py`` skips them unless ``--include-time``).

This module is intentionally dependency-light (stdlib only) so
``tools/bench_compare.py`` can import it from any checkout.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import subprocess
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

#: Version tag; bump on breaking schema changes.
BENCH_SCHEMA = "repro-bench/1"

#: Filename pattern of one suite's result document.
BENCH_FILE_PREFIX = "BENCH_"

_DIRECTIONS = ("lower", "higher")


@dataclass(frozen=True)
class BenchMetric:
    """One scalar result of one benchmark test."""

    name: str
    value: float
    units: str = ""
    direction: str = "lower"
    deterministic: bool = True

    def __post_init__(self) -> None:
        if self.direction not in _DIRECTIONS:
            raise ValueError(
                f"direction must be one of {_DIRECTIONS}, got {self.direction!r}"
            )

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "value": float(self.value),
            "units": self.units,
            "direction": self.direction,
            "deterministic": self.deterministic,
        }


@dataclass
class BenchCase:
    """All metrics recorded by one benchmark test."""

    test: str
    metrics: list[BenchMetric] = field(default_factory=list)

    def add(self, metric: BenchMetric) -> None:
        if any(m.name == metric.name for m in self.metrics):
            raise ValueError(f"duplicate metric {metric.name!r} in {self.test}")
        self.metrics.append(metric)


def config_hash(parts: Iterable[str]) -> str:
    """Short stable hash of the configuration that produced a result set."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()[:12]


def git_sha(root: str | pathlib.Path | None = None) -> str:
    """Current commit sha, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(root) if root else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def bench_payload(
    suite: str,
    cases: Iterable[BenchCase],
    *,
    sha: str = "unknown",
    cfg_hash: str = "",
    created_unix: int | None = None,
) -> dict[str, Any]:
    """Build the schema document for one suite."""
    return {
        "schema": BENCH_SCHEMA,
        "suite": suite,
        "git_sha": sha,
        "config_hash": cfg_hash,
        "created_unix": int(time.time()) if created_unix is None else created_unix,
        "results": [
            {"test": case.test, "metrics": [m.as_dict() for m in case.metrics]}
            for case in cases
        ],
    }


def write_bench_json(path: str | pathlib.Path, payload: dict[str, Any]) -> pathlib.Path:
    """Validate and serialize one suite document; returns the path."""
    problems = validate_bench(payload)
    if problems:
        raise ValueError(f"refusing to write invalid bench JSON: {problems}")
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def load_bench_json(path: str | pathlib.Path) -> dict[str, Any]:
    """Read and validate one suite document."""
    with pathlib.Path(path).open(encoding="utf-8") as fh:
        obj = json.load(fh)
    problems = validate_bench(obj)
    if problems:
        raise ValueError(f"{path}: invalid bench JSON: {problems}")
    return obj


def validate_bench(obj: Any) -> list[str]:
    """Structural checks; returns problem descriptions (empty = valid)."""
    problems: list[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    if obj.get("schema") != BENCH_SCHEMA:
        problems.append(f"schema must be {BENCH_SCHEMA!r}, got {obj.get('schema')!r}")
    for field_name in ("suite", "git_sha", "config_hash"):
        if not isinstance(obj.get(field_name), str):
            problems.append(f"{field_name!r} must be a string")
    if not isinstance(obj.get("created_unix"), int):
        problems.append("'created_unix' must be an integer")
    results = obj.get("results")
    if not isinstance(results, list):
        return problems + ["'results' must be a list"]
    for i, res in enumerate(results):
        if not isinstance(res, dict) or not isinstance(res.get("test"), str):
            problems.append(f"results[{i}]: needs a string 'test'")
            continue
        metrics = res.get("metrics")
        if not isinstance(metrics, list):
            problems.append(f"results[{i}]: 'metrics' must be a list")
            continue
        seen: set[str] = set()
        for j, m in enumerate(metrics):
            where = f"results[{i}].metrics[{j}]"
            if not isinstance(m, dict):
                problems.append(f"{where}: not an object")
                continue
            name = m.get("name")
            if not isinstance(name, str) or not name:
                problems.append(f"{where}: needs a non-empty 'name'")
            elif name in seen:
                problems.append(f"{where}: duplicate metric {name!r}")
            else:
                seen.add(name)
            if not isinstance(m.get("value"), (int, float)):
                problems.append(f"{where}: 'value' must be a number")
            if m.get("direction") not in _DIRECTIONS:
                problems.append(f"{where}: 'direction' must be one of {_DIRECTIONS}")
            if not isinstance(m.get("deterministic"), bool):
                problems.append(f"{where}: 'deterministic' must be a bool")
    return problems


def iter_metrics(obj: dict[str, Any]) -> Iterator[tuple[str, dict[str, Any]]]:
    """Yield ``(test_name, metric_dict)`` pairs of a validated document."""
    for res in obj["results"]:
        for metric in res["metrics"]:
            yield res["test"], metric


def load_result_set(path: str | pathlib.Path) -> dict[str, dict[str, Any]]:
    """Load a ``BENCH_*.json`` file or a directory of them, keyed by suite."""
    p = pathlib.Path(path)
    files = (
        sorted(p.glob(f"{BENCH_FILE_PREFIX}*.json")) if p.is_dir() else [p]
    )
    if not files:
        raise FileNotFoundError(f"no {BENCH_FILE_PREFIX}*.json files under {p}")
    out: dict[str, dict[str, Any]] = {}
    for f in files:
        obj = load_bench_json(f)
        out[obj["suite"]] = obj
    return out
