"""The metrics registry: hardware utilization counters on the simulated machine.

Where :mod:`repro.trace` answers *what happened when* (typed spans on the
simulated clock), this registry answers *how much, in total* — bytes DMAed,
FLOPs retired, pipeline-busy seconds, LDM high-water marks — as named,
labelled instruments fed by the same instrumentation sites.

Four instrument kinds:

* :class:`Counter` — monotonically non-decreasing sum (bytes, steps, FLOPs);
* :class:`Gauge` — last-written value (a level, not a rate);
* :class:`HighWaterMark` — maximum value ever observed (LDM occupancy);
* :class:`Histogram` — full sample record with percentile queries
  (per-transfer achieved-bandwidth fractions, pipeline efficiencies).

Instruments are keyed by ``(name, labels)``; labels are free-form string
pairs (``dir="get"``, ``collective="rhd"``) and ambient label context can
be pushed with :meth:`MetricsRegistry.labelled`, so a collective's inner
``account_step`` calls are attributed to it without plumbing.

Collection is ambient and **off by default**, exactly like tracing:
:func:`active` returns a shared :class:`NullRegistry` whose mutators raise
(instrumentation must guard with ``if mx.enabled:``), so the disabled-mode
cost is one attribute check and no simulated-time arithmetic ever depends
on it (pinned by ``tests/test_metrics_integration.py``). Enable with
:func:`collecting`::

    from repro import metrics

    with metrics.collecting() as mx:
        run_workload()
    print(mx.value("dma.bytes"))
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Any, Iterator, Mapping

#: The counter taxonomy. Instrumentation sites use these names; the session
#: report and docs group by the dotted prefix. See ``docs/observability.md``.
METRIC_NAMES = (
    "dma.bytes",            # counter, labels dir=get|put|model: DDR3<->LDM traffic
    "dma.transfers",        # counter: number of DMA invocations
    "dma.busy_s",           # counter: seconds the DMA engine was occupied
    "dma.achieved_frac",    # histogram: per-transfer achieved/peak bandwidth
    "ldm.high_water_bytes",  # high-water mark: worst simultaneous LDM occupancy
    "cpe.busy_s",           # counter: CPE pipeline busy seconds
    "cpe.flops",            # counter: FLOPs retired
    "cpe.efficiency",       # histogram: per-phase pipeline/SIMD efficiency
    "rlc.bytes",            # counter, labels kind=p2p|bcast: register-bus traffic
    "rlc.busy_s",           # counter: register-bus busy seconds
    "mesh.bus_busy_s",      # counter, labels bus=rowR|colC: per-bus occupancy
    "mesh.bus_wait_s",      # counter, labels bus=...: serialization stalls
    "mesh.bus_utilization",  # high-water mark: max bus busy/finish fraction
    "comm.steps",           # counter, label collective=...: lockstep rounds
    "comm.bytes",           # counter, labels link=intra|cross: wire traffic
    "comm.reduce_bytes",    # counter: bytes locally reduced
    "comm.bucket_launches",  # counter: nonblocking bucket allreduces launched
    "comm.overlap_hidden_s",   # counter: comm seconds hidden behind backward
    "comm.overlap_exposed_s",  # counter: comm seconds left on the critical path
    "plan.invocations",     # counter, labels plan=..., bound=...: priced kernels
    "plan.flops",           # counter, label plan=...
    "plan.dma_bytes",       # counter, label plan=...
    "layer.passes",         # counter, labels dir=fwd|bwd, layer_type=...
    "solver.iterations",    # counter: completed solver iterations
    "faults.injected",      # counter, label kind=dma_corrupt|rlc_fail|...: faults fired
    "faults.retries",       # counter: transient-fault retries performed
    "faults.retry_s",       # counter: simulated seconds spent retrying
    "faults.timeouts",      # counter: collective timeouts on crashed ranks
    "faults.timeout_s",     # counter: simulated seconds spent waiting out timeouts
    "faults.rank_rebuilds",  # counter: elastic communicator rebuilds
    "faults.slow_s",        # counter: extra seconds from stragglers/degradation
    "serve.requests",       # counter, label outcome=completed|shed: offered requests
    "serve.batches",        # counter: batches dispatched by the dynamic batcher
    "serve.batch_size",     # histogram: per-dispatch batch sizes
    "serve.queue_depth",    # high-water mark: worst admission-queue depth
    "serve.queue_wait_s",   # histogram: per-request wait for the engine to free
    "serve.batch_wait_s",   # histogram: per-request wait for its batch to form
    "serve.compute_s",      # counter: engine-busy seconds across batches
    "serve.latency_s",      # histogram: per-request end-to-end latency
    "serve.slo_miss",       # counter: completed requests that missed the SLO
    "trace.critpath.nodes",        # counter: spans scheduled in the dependency graph
    "trace.critpath.edges",        # counter: causal edges (explicit + inferred)
    "trace.critpath.end_to_end_s",  # gauge: longest-path makespan of the trace
    "trace.critpath.on_path_s",    # counter, label resource=...: critical-path time
)


def _freeze_labels(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically non-decreasing sum."""

    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        amount = float(amount)
        if amount < 0 or math.isnan(amount):
            raise ValueError(f"counter increments must be >= 0, got {amount!r}")
        self.value += amount

    def as_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """Last-written level."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def as_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class HighWaterMark:
    """Maximum value ever observed."""

    kind = "high_water"

    def __init__(self) -> None:
        self.value: float = 0.0
        self.count: int = 0

    def update(self, value: float) -> None:
        self.count += 1
        value = float(value)
        if value > self.value:
            self.value = value

    def as_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value, "count": self.count}


class Histogram:
    """Full-sample histogram with exact percentile queries.

    Samples are kept verbatim (simulated workloads emit thousands, not
    billions, of observations); :meth:`percentile` matches
    ``numpy.percentile(..., method="linear")`` exactly, which the unit
    tests pin against NumPy.
    """

    kind = "histogram"

    def __init__(self) -> None:
        self.samples: list[float] = []

    def observe(self, value: float) -> None:
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def sum(self) -> float:
        return float(sum(self.samples))

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.samples else 0.0

    @property
    def min(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def max(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def percentile(self, q: float) -> float:
        """Linear-interpolation percentile (``q`` in [0, 100])."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q!r}")
        if not self.samples:
            raise ValueError("percentile of an empty histogram")
        data = sorted(self.samples)
        if len(data) == 1:
            return data[0]
        pos = q / 100 * (len(data) - 1)
        lo = math.floor(pos)
        hi = math.ceil(pos)
        if lo == hi:
            return data[lo]
        frac = pos - lo
        return data[lo] * (1 - frac) + data[hi] * frac

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "kind": self.kind,
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
        }
        if self.samples:
            out.update(
                min=self.min,
                max=self.max,
                p50=self.percentile(50),
                p95=self.percentile(95),
            )
        return out


Instrument = Counter | Gauge | HighWaterMark | Histogram


class MetricsRegistry:
    """Collects labelled instruments; see the module docstring.

    The mutators (:meth:`count`, :meth:`gauge`, :meth:`high_water`,
    :meth:`observe`) create the instrument on first use and enforce kind
    consistency afterwards. Ambient labels pushed with :meth:`labelled`
    merge into every observation made inside the block (explicit labels
    win on collision).
    """

    #: Instrumentation sites check this before doing any work.
    enabled: bool = True

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], Instrument] = {}
        self._label_stack: list[dict[str, str]] = []

    # ------------------------------------------------------------------ #
    # label context
    # ------------------------------------------------------------------ #
    @contextmanager
    def labelled(self, **labels: str) -> Iterator[None]:
        """Merge ``labels`` into every observation inside the block."""
        self._label_stack.append({str(k): str(v) for k, v in labels.items()})
        try:
            yield
        finally:
            self._label_stack.pop()

    def _merged_labels(self, labels: Mapping[str, str]) -> dict[str, str]:
        merged: dict[str, str] = {}
        for frame in self._label_stack:
            merged.update(frame)
        merged.update({str(k): str(v) for k, v in labels.items()})
        return merged

    def _instrument(self, name: str, labels: Mapping[str, str], factory: type) -> Any:
        key = (name, _freeze_labels(self._merged_labels(labels)))
        inst = self._metrics.get(key)
        if inst is None:
            inst = factory()
            self._metrics[key] = inst
        elif not isinstance(inst, factory):
            raise TypeError(
                f"metric {name!r} already registered as {inst.kind}, "
                f"cannot use it as {factory().kind}"
            )
        return inst

    # ------------------------------------------------------------------ #
    # mutators
    # ------------------------------------------------------------------ #
    def count(self, name: str, amount: float = 1.0, **labels: str) -> None:
        """Increment the counter ``(name, labels)`` by ``amount`` (>= 0)."""
        self._instrument(name, labels, Counter).inc(amount)

    def gauge(self, name: str, value: float, **labels: str) -> None:
        """Set the gauge ``(name, labels)`` to ``value``."""
        self._instrument(name, labels, Gauge).set(value)

    def high_water(self, name: str, value: float, **labels: str) -> None:
        """Raise the high-water mark ``(name, labels)`` to at least ``value``."""
        self._instrument(name, labels, HighWaterMark).update(value)

    def observe(self, name: str, value: float, **labels: str) -> None:
        """Add one sample to the histogram ``(name, labels)``."""
        self._instrument(name, labels, Histogram).observe(value)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def get(self, name: str, **labels: str) -> Instrument | None:
        """The instrument at exactly ``(name, labels)``, or ``None``."""
        return self._metrics.get((name, _freeze_labels(labels)))

    def value(self, name: str, **labels: str) -> float:
        """Scalar total of ``name`` across label sets matching ``labels``.

        Counters/gauges/high-water marks contribute their value, histograms
        their sample sum. A label set matches when every given label pair
        is present (so ``value("dma.bytes")`` sums all directions while
        ``value("dma.bytes", dir="get")`` selects one).
        """
        want = _freeze_labels(labels)
        total = 0.0
        for (mname, mlabels), inst in self._metrics.items():
            if mname != name:
                continue
            if not set(want) <= set(mlabels):
                continue
            total += inst.sum if isinstance(inst, Histogram) else inst.value
        return total

    def names(self) -> list[str]:
        """Sorted distinct metric names."""
        return sorted({name for name, _ in self._metrics})

    def snapshot(self) -> dict[str, list[dict[str, Any]]]:
        """JSON-able dump: ``{name: [{labels, kind, value, ...}, ...]}``."""
        out: dict[str, list[dict[str, Any]]] = {}
        for (name, labels), inst in sorted(self._metrics.items()):
            entry = {"labels": dict(labels)}
            entry.update(inst.as_dict())
            out.setdefault(name, []).append(entry)
        return out

    def __len__(self) -> int:
        return len(self._metrics)


class NullRegistry(MetricsRegistry):
    """The disabled registry: mutators raise, queries see nothing.

    Instrumentation guards on :attr:`enabled`, so with the null registry
    installed the per-call cost is one function call and one attribute
    check; a mutator reaching it is an unguarded instrumentation bug.
    """

    enabled = False

    def _instrument(self, name: str, labels: Mapping[str, str], factory: type) -> Any:
        raise RuntimeError(
            "NullRegistry mutated; guard instrumentation with `if metrics.enabled`"
        )

    @contextmanager
    def labelled(self, **labels: str) -> Iterator[None]:
        yield


#: Shared disabled registry; identity-compared by tests.
NULL_METRICS = NullRegistry()

_active: MetricsRegistry = NULL_METRICS


def active() -> MetricsRegistry:
    """The ambient registry (the shared :data:`NULL_METRICS` when disabled)."""
    return _active


def install(registry: MetricsRegistry) -> MetricsRegistry:
    """Make ``registry`` ambient; returns the previously installed one."""
    global _active
    previous = _active
    _active = registry
    return previous


@contextmanager
def collecting(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Enable metrics collection for the block; yields the registry."""
    mx = registry if registry is not None else MetricsRegistry()
    previous = install(mx)
    try:
        yield mx
    finally:
        install(previous)


@contextmanager
def suspended() -> Iterator[None]:
    """Temporarily disable collection (e.g. around plan-search churn)."""
    previous = install(NULL_METRICS)
    try:
        yield
    finally:
        install(previous)
