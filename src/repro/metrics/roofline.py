"""Roofline attribution: classify every priced kernel against its ceiling.

The paper's design principles are ceiling statements — 742.4 GFlops of CPE
compute per core group, 28 GB/s of measured DMA bandwidth, 2549 GB/s of
aggregate register-bus bandwidth — and a :class:`~repro.kernels.plan.PlanCost`
already carries the busy time it charged each of those resources. This module
turns that into the classification the swTVM line of work argues for: every
plan (and every layer of a net) is **compute-**, **DMA-** or **RLC-bound**,
with its arithmetic intensity and the fraction of the binding resource's
ceiling it actually achieved.

The machine-balance ridge sits at ``742.4 GFlops / 28 GB/s = 26.5`` FLOPs
per DMA byte (:attr:`~repro.hw.spec.SW26010Params.flop_per_byte`): plans
below it cannot be compute-bound no matter how well they schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.hw.spec import SW26010Params, SW_PARAMS
from repro.utils.tables import Table

#: Resources a plan can be bound by. ``overhead`` means fixed costs (spawn,
#: latency) dominate every stream — the small-kernel regime of Table III.
BOUNDS = ("compute", "dma", "rlc", "overhead")


@dataclass(frozen=True)
class RooflineVerdict:
    """Classification of one priced invocation.

    Attributes
    ----------
    bound:
        The binding resource (one of :data:`BOUNDS`).
    intensity:
        Arithmetic intensity in FLOPs per DMA byte (``inf`` when the plan
        moves no DMA bytes).
    ceiling_frac:
        Achieved fraction of the binding resource's ceiling over the whole
        invocation (0 for overhead-bound plans).
    compute_frac, dma_frac, rlc_frac:
        Achieved/peak rate of each resource *while it was busy* — how well
        each stream ran, independent of whether it was the bottleneck.
    """

    bound: str
    intensity: float
    ceiling_frac: float
    compute_frac: float
    dma_frac: float
    rlc_frac: float

    @property
    def memory_bound(self) -> bool:
        return self.bound in ("dma", "rlc")


def classify_cost(cost: Any, params: SW26010Params | None = None) -> RooflineVerdict:
    """Classify any ``PlanCost``-shaped object against the SW26010 ceilings.

    ``cost`` needs ``compute_s`` / ``dma_s`` / ``rlc_s`` / ``overhead_s`` /
    ``total_s`` / ``flops`` / ``dma_bytes``. The binding resource is the
    slowest stream under the dual-pipeline overlap rule; when fixed
    overheads exceed every stream the plan is ``overhead``-bound.
    """
    p = params or SW_PARAMS
    streams = {"compute": cost.compute_s, "dma": cost.dma_s, "rlc": cost.rlc_s}
    bound = max(streams, key=lambda k: streams[k])
    if streams[bound] <= 0 or cost.overhead_s > streams[bound]:
        bound = "overhead"

    intensity = cost.flops / cost.dma_bytes if cost.dma_bytes > 0 else float("inf")

    # Busy-time rates: how close each stream ran to its own peak while active.
    compute_frac = (
        cost.flops / cost.compute_s / p.cg_cpe_peak_flops if cost.compute_s > 0 else 0.0
    )
    dma_frac = (
        cost.dma_bytes / cost.dma_s / p.dma_peak_bw if cost.dma_s > 0 else 0.0
    )
    # RLC traffic volume is not tracked on PlanCost; busy-fraction of the
    # invocation is the best available proxy for bus pressure.
    rlc_frac = cost.rlc_s / cost.total_s if cost.total_s > 0 else 0.0

    # Whole-invocation achieved rate vs. the binding ceiling (overheads and
    # the non-binding streams all count against it).
    total = cost.total_s
    if total <= 0 or bound == "overhead":
        ceiling_frac = 0.0
    elif bound == "compute":
        ceiling_frac = cost.flops / total / p.cg_cpe_peak_flops
    elif bound == "dma":
        ceiling_frac = cost.dma_bytes / total / p.dma_peak_bw
    else:  # rlc
        ceiling_frac = cost.rlc_s / total

    return RooflineVerdict(
        bound=bound,
        intensity=intensity,
        ceiling_frac=ceiling_frac,
        compute_frac=compute_frac,
        dma_frac=dma_frac,
        rlc_frac=rlc_frac,
    )


@dataclass(frozen=True)
class LayerRoofline:
    """One layer direction's cost plus its roofline verdict."""

    layer: str
    layer_type: str
    direction: str  # "fwd" | "bwd"
    total_s: float
    flops: float
    dma_bytes: float
    verdict: RooflineVerdict

    def as_dict(self) -> dict[str, Any]:
        v = self.verdict
        return {
            "layer": self.layer,
            "layer_type": self.layer_type,
            "direction": self.direction,
            "total_s": self.total_s,
            "flops": self.flops,
            "dma_bytes": self.dma_bytes,
            "bound": v.bound,
            "intensity": None if v.intensity == float("inf") else v.intensity,
            "ceiling_frac": v.ceiling_frac,
            "compute_frac": v.compute_frac,
            "dma_frac": v.dma_frac,
            "rlc_frac": v.rlc_frac,
        }


def net_roofline(net: Any, params: SW26010Params | None = None) -> list[LayerRoofline]:
    """Per-layer, per-direction roofline rows for a built net."""
    rows: list[LayerRoofline] = []
    for layer, cost in net.sw_layer_costs():
        for direction, c in (("fwd", cost.forward), ("bwd", cost.backward)):
            if c.total_s <= 0:
                continue  # data layers and other free directions
            rows.append(
                LayerRoofline(
                    layer=layer.name,
                    layer_type=layer.type,
                    direction=direction,
                    total_s=c.total_s,
                    flops=c.flops,
                    dma_bytes=c.dma_bytes,
                    verdict=classify_cost(c, params),
                )
            )
    return rows


def bound_summary(rows: Iterable[LayerRoofline]) -> dict[str, float]:
    """Simulated seconds attributed to each binding resource."""
    out = {b: 0.0 for b in BOUNDS}
    for row in rows:
        out[row.verdict.bound] += row.total_s
    return out


def render_roofline(rows: list[LayerRoofline], title: str = "") -> str:
    """Text table of per-layer roofline classifications."""
    table = Table(
        headers=(
            "layer", "dir", "type", "time", "AI (F/B)",
            "bound", "% ceiling", "cpe%", "dma%",
        ),
        title=title or "roofline attribution (per layer, one core group)",
    )
    from repro.utils.units import format_time

    for row in rows:
        v = row.verdict
        ai = "-" if v.intensity == float("inf") else f"{v.intensity:.1f}"
        table.add_row(
            row.layer, row.direction, row.layer_type, format_time(row.total_s),
            ai, v.bound, f"{100 * v.ceiling_frac:.1f}",
            f"{100 * v.compute_frac:.0f}", f"{100 * v.dma_frac:.0f}",
        )
    summary = bound_summary(rows)
    total = sum(summary.values()) or 1.0
    footer = "  |  ".join(
        f"{b}: {100 * s / total:.0f}%" for b, s in summary.items() if s > 0
    )
    return table.render() + f"\ntime by binding resource: {footer}"
