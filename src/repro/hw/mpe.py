"""Management Processing Element (MPE) model.

The MPE is the conventional cached core of a core group. It peaks at only
11.6 GFlops and copies memory through its cache hierarchy at 9.9 GB/s
(Principle 2's motivation) — so swCaffe keeps it for control flow, thread
orchestration, and the rare serial work, never for kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.clock import SimClock
from repro.hw.spec import SW26010Params, SW_PARAMS


@dataclass
class MPE:
    """The management core of one core group."""

    params: SW26010Params = field(default_factory=lambda: SW_PARAMS)
    clock: SimClock = field(default_factory=SimClock)

    @property
    def peak_flops(self) -> float:
        """Peak double-precision FLOP/s of the MPE (11.6 GFlops)."""
        return self.params.cg_mpe_peak_flops

    @property
    def copy_bandwidth(self) -> float:
        """Memory-to-memory copy bandwidth through the MPE path (9.9 GB/s)."""
        return self.params.mpe_copy_bw

    def compute_time(self, flops: float, efficiency: float = 1.0) -> float:
        """Seconds for a scalar/SIMD compute phase on the MPE."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        if not 0 < efficiency <= 1.0:
            raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
        return flops / (self.peak_flops * efficiency)

    def copy_time(self, nbytes: float) -> float:
        """Seconds to copy ``nbytes`` memory-to-memory via the MPE."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / self.copy_bandwidth

    def charge_compute(self, flops: float, efficiency: float = 1.0) -> None:
        """Advance the clock by an MPE compute phase."""
        self.clock.advance(self.compute_time(flops, efficiency), category="mpe_compute")

    def charge_copy(self, nbytes: float) -> None:
        """Advance the clock by an MPE memory copy."""
        self.clock.advance(self.copy_time(nbytes), category="mpe_copy")
