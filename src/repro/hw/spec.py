"""Processor specifications (paper Table I) and SW26010 model parameters.

Two kinds of data live here:

* :class:`ProcessorSpec` — the coarse spec sheet the paper tabulates in
  Table I for SW26010, NVIDIA K40m and Intel KNL (we add the 12-core
  E5-2680 v3 host CPU used as the third baseline in Table III).
* :class:`SW26010Params` — the microarchitectural constants the simulator
  needs beyond the spec sheet: CPE mesh geometry, LDM capacity, DMA
  saturation points, register-communication bandwidths, and so on. Each
  constant cites where in the paper it comes from.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import GB, KiB


@dataclass(frozen=True)
class ProcessorSpec:
    """Coarse per-processor spec sheet (paper Table I).

    Attributes
    ----------
    name:
        Marketing name.
    release_year:
        Year of release.
    mem_bandwidth:
        Peak memory bandwidth in bytes/s.
    peak_single:
        Peak single-precision throughput in FLOP/s.
    peak_double:
        Peak double-precision throughput in FLOP/s.
    """

    name: str
    release_year: int
    mem_bandwidth: float
    peak_single: float
    peak_double: float

    @property
    def flop_per_byte_single(self) -> float:
        """Machine balance (single precision FLOPs per byte of DRAM traffic)."""
        return self.peak_single / self.mem_bandwidth


#: Table I row: SW26010. The paper quotes 128 GB/s in Table I (136 GB/s
#: theoretical across the 4 memory controllers elsewhere in the text).
SW26010_SPEC = ProcessorSpec(
    name="SW26010",
    release_year=2014,
    mem_bandwidth=128 * GB,
    peak_single=3.02e12,
    peak_double=3.02e12,
)

#: Table I row: NVIDIA K40m.
K40M_SPEC = ProcessorSpec(
    name="NVIDIA K40m",
    release_year=2013,
    mem_bandwidth=288 * GB,
    peak_single=4.29e12,
    peak_double=1.43e12,
)

#: Table I row: Intel Knights Landing.
KNL_SPEC = ProcessorSpec(
    name="Intel KNL",
    release_year=2016,
    mem_bandwidth=475 * GB,
    peak_single=6.92e12,
    peak_double=3.46e12,
)

#: The 12-core Intel E5-2680 v3 host CPU used for the "Caffe on CPU"
#: baseline (footnote 2 in the paper: 68 GB/s, 1.28 TFlops peak).
E5_2680V3_SPEC = ProcessorSpec(
    name="Intel E5-2680 v3 (12 cores)",
    release_year=2014,
    mem_bandwidth=68 * GB,
    peak_single=1.28e12,
    peak_double=0.64e12,
)


@dataclass(frozen=True)
class SW26010Params:
    """Microarchitectural constants for the SW26010 simulator.

    Every field is sourced from the paper (section given in the comment) or
    from the SW26010 benchmarking literature it cites.
    """

    # --- geometry (Sec. II-A) ---
    n_core_groups: int = 4
    cpe_rows: int = 8
    cpe_cols: int = 8
    ldm_bytes: int = 64 * KiB  # per-CPE local directive memory
    mem_per_cg_bytes: int = 8 * 1024**3  # 8 GB DDR3 per CG

    # --- clocks and pipelines (Sec. II-A) ---
    clock_hz: float = 1.45e9
    simd_width_double: int = 4  # 256-bit vectors = 4 doubles

    # --- compute peaks (Principle 1) ---
    cg_cpe_peak_flops: float = 742.4e9  # CPE cluster per CG
    cg_mpe_peak_flops: float = 11.6e9  # MPE per CG

    # --- DMA model (Principle 2/3, Fig. 2) ---
    dma_peak_bw: float = 28 * GB  # measured saturation, Fig. 2
    dma_theoretical_bw: float = 32 * GB  # per-CG MC theoretical
    mpe_copy_bw: float = 9.9 * GB  # memory-to-MPE-to-memory copy path
    dma_latency_cycles: float = 278.0  # "hundreds of cycles" LDM transfer latency
    dma_size_half_bytes: float = 900.0  # per-CPE size at 50% efficiency
    dma_cpe_half: float = 3.5  # CPE count at 50% concurrency efficiency
    dma_stride_overhead_bytes: float = 96.0  # per strided block fixed cost

    # --- register-level communication (Principle 4, [7]) ---
    rlc_p2p_bw: float = 2549 * GB  # aggregate, fully pipelined
    rlc_bcast_bw: float = 4461 * GB  # aggregate, fully pipelined
    rlc_word_bytes: int = 32  # 256-bit transfers
    rlc_startup_cycles: float = 11.0  # per-message pipeline fill

    @property
    def n_cpes_per_cg(self) -> int:
        """Number of CPEs in one core group (8x8 mesh)."""
        return self.cpe_rows * self.cpe_cols

    @property
    def cpe_peak_flops(self) -> float:
        """Peak double-precision FLOP/s of a single CPE."""
        return self.cg_cpe_peak_flops / self.n_cpes_per_cg

    @property
    def dma_latency_s(self) -> float:
        """DMA transaction latency in seconds."""
        return self.dma_latency_cycles / self.clock_hz

    @property
    def flop_per_byte(self) -> float:
        """Per-CG machine balance using the measured DMA bandwidth.

        The paper computes 742.4 GFlops / 28 GB/s = 26.5 (Principle 3).
        """
        return self.cg_cpe_peak_flops / self.dma_peak_bw


#: Default SW26010 parameter set used throughout the package.
SW_PARAMS = SW26010Params()
