"""Simulated time accounting.

All performance numbers produced by this package come from
:class:`SimClock`: pure arithmetic accumulation of model-predicted
durations, never wall-clock measurement. A clock also keeps per-category
totals ("dma", "compute", "rlc", "comm", ...) so harnesses can report
time breakdowns like the paper's Fig. 11.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from typing import Iterator


class SimClock:
    """Accumulates simulated seconds, optionally per category.

    The clock is deliberately minimal: ``advance`` moves time forward and
    attributes the increment to the category named by the innermost active
    :meth:`section` (or an explicit ``category=`` argument).
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._by_category: dict[str, float] = defaultdict(float)
        self._section_stack: list[str] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, dt: float, category: str | None = None) -> None:
        """Move simulated time forward by ``dt`` seconds (must be >= 0)."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative time {dt!r}")
        self._now += dt
        cat = category if category is not None else (
            self._section_stack[-1] if self._section_stack else "other"
        )
        self._by_category[cat] += dt

    @contextmanager
    def section(self, category: str) -> Iterator[None]:
        """Attribute all ``advance`` calls inside the block to ``category``."""
        self._section_stack.append(category)
        try:
            yield
        finally:
            self._section_stack.pop()

    def category_total(self, category: str) -> float:
        """Total simulated seconds attributed to ``category``."""
        return self._by_category.get(category, 0.0)

    def breakdown(self) -> dict[str, float]:
        """Copy of the per-category totals."""
        return dict(self._by_category)

    def reset(self) -> None:
        """Zero the clock and all category totals."""
        self._now = 0.0
        self._by_category.clear()

    def merge_max(self, *clocks: "SimClock") -> float:
        """Advance this clock by the max of other clocks' times.

        Models a fork/join over parallel units (e.g. 4 CGs running
        concurrently): the parent waits for the slowest child. Returns the
        amount of time added. Category totals from the slowest child are
        folded in proportionally.
        """
        if not clocks:
            return 0.0
        slowest = max(clocks, key=lambda c: c.now)
        dt = slowest.now
        for cat, t in slowest.breakdown().items():
            self._by_category[cat] += t
        self._now += dt
        return dt
