"""Computing Processing Element (CPE) model.

A CPE is a 64-bit in-order RISC core at 1.45 GHz with 256-bit SIMD, a
floating-point pipeline and a memory-access pipeline that dual-issue
independent instructions (the paper's Principle 1), plus 64 KiB of LDM.

We model compute time as a peak-throughput/efficiency calculation: the
kernel plan declares how well it fills the SIMD lanes and pipelines, and
the CPE converts FLOPs into seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.clock import SimClock
from repro.hw.ldm import LDMAllocator
from repro.hw.spec import SW26010Params, SW_PARAMS
from repro.metrics.registry import active as _metrics
from repro.trace.tracer import active as _tracer


@dataclass
class CPE:
    """One computing processing element in the 8x8 mesh.

    Attributes
    ----------
    row, col:
        Position in the mesh; register communication partners are the CPEs
        sharing ``row`` or ``col``.
    """

    row: int
    col: int
    params: SW26010Params = field(default_factory=lambda: SW_PARAMS)
    clock: SimClock = field(default_factory=SimClock)

    def __post_init__(self) -> None:
        if not (0 <= self.row < self.params.cpe_rows and 0 <= self.col < self.params.cpe_cols):
            raise ValueError(f"CPE position {(self.row, self.col)} outside mesh")
        self.ldm = LDMAllocator(self.params.ldm_bytes)

    @property
    def peak_flops(self) -> float:
        """Peak double-precision FLOP/s (742.4 GFlops / 64 CPEs = 11.6)."""
        return self.params.cpe_peak_flops

    def compute_time(self, flops: float, efficiency: float = 1.0) -> float:
        """Seconds to retire ``flops`` at the given pipeline/SIMD efficiency."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        if not 0 < efficiency <= 1.0:
            raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
        return flops / (self.peak_flops * efficiency)

    def charge_compute(self, flops: float, efficiency: float = 1.0) -> None:
        """Advance the clock by a compute phase."""
        dt = self.compute_time(flops, efficiency)
        tr = _tracer()
        if tr.enabled:
            tr.emit(
                "cpe_compute", "cpe_compute", track="cpe",
                start=self.clock.now, dur=dt,
                args={"flops": flops, "efficiency": efficiency,
                      "cpe": f"({self.row},{self.col})"},
            )
        mx = _metrics()
        if mx.enabled:
            mx.count("cpe.busy_s", dt)
            mx.count("cpe.flops", flops)
            mx.observe("cpe.efficiency", efficiency)
        self.clock.advance(dt, category="compute")

    def simd_efficiency(self, vector_len: int, dtype_bytes: int = 8) -> float:
        """Fraction of SIMD lanes useful for a given inner vector length.

        256-bit registers hold 4 doubles or 8 singles; short trip counts
        leave lanes idle. This captures the paper's observation that small
        channel counts (< 64) starve the SIMD/RLC path.
        """
        lanes = self.params.rlc_word_bytes * 8 // (dtype_bytes * 8)
        if vector_len <= 0:
            return 1.0 / lanes
        full, rem = divmod(vector_len, lanes)
        issued = full + (1 if rem else 0)
        return vector_len / (issued * lanes)
