"""Register-level communication (RLC) between CPEs.

SW26010's unique feature (the paper's Principle 4): CPEs in the same row or
column of the 8x8 mesh exchange 256-bit messages through register buses in
an anonymous producer-consumer pattern. Fully pipelined, the mesh reaches
2549 GB/s aggregate P2P and 4461 GB/s aggregate broadcast bandwidth
(Xu et al., IPDPSW'17, the paper's [7]).

Only 256-bit (4 x double) transfers exist; there is no single-precision RLC
instruction, which is why swCaffe performs RLC in double precision and
converts inline with SIMD shuffles — the model exposes that constraint via
:attr:`RegisterComm.word_bytes`.
"""

from __future__ import annotations

from repro.faults.injector import active as _faults, charge_transient
from repro.hw.clock import SimClock
from repro.hw.spec import SW26010Params, SW_PARAMS
from repro.metrics.registry import active as _metrics
from repro.trace.tracer import active as _tracer


class RegisterComm:
    """Cost model for row/column register communication on one CPE mesh."""

    def __init__(self, params: SW26010Params | None = None, clock: SimClock | None = None) -> None:
        self.params = params or SW_PARAMS
        self.clock = clock or SimClock()
        #: Most recent traced span on this engine; operations on one
        #: engine are serial, so each depends on the one before it.
        self._last_span = None

    @property
    def word_bytes(self) -> int:
        """Granularity of a single RLC transfer (256 bits)."""
        return self.params.rlc_word_bytes

    def validate_pair(self, src: tuple[int, int], dst: tuple[int, int]) -> None:
        """Check that a P2P transfer is legal (same row or same column)."""
        rows, cols = self.params.cpe_rows, self.params.cpe_cols
        for r, c in (src, dst):
            if not (0 <= r < rows and 0 <= c < cols):
                raise ValueError(f"CPE coordinate {(r, c)} outside {rows}x{cols} mesh")
        if src == dst:
            raise ValueError("RLC P2P requires distinct CPEs")
        if src[0] != dst[0] and src[1] != dst[1]:
            raise ValueError(
                f"RLC only connects CPEs in the same row or column: {src} -> {dst}"
            )

    def _message_time(self, nbytes: float, aggregate_bw: float, n_concurrent: int) -> float:
        """Pipeline-fill latency plus transfer at the per-lane share of bandwidth."""
        if nbytes <= 0:
            return 0.0
        startup = self.params.rlc_startup_cycles / self.params.clock_hz
        lane_bw = aggregate_bw / max(1, n_concurrent) * n_concurrent
        # With n_concurrent lanes active the *aggregate* moves n*nbytes bytes;
        # per-lane completion time is total bytes / aggregate bandwidth.
        return startup + (nbytes * n_concurrent) / lane_bw

    def p2p_time(self, nbytes: float, n_concurrent: int = 1) -> float:
        """Seconds for ``n_concurrent`` simultaneous P2P transfers of ``nbytes``."""
        return self._message_time(nbytes, self.params.rlc_p2p_bw, n_concurrent)

    def broadcast_time(self, nbytes: float, n_concurrent: int = 1) -> float:
        """Seconds for ``n_concurrent`` simultaneous row/col broadcasts of ``nbytes``."""
        return self._message_time(nbytes, self.params.rlc_bcast_bw, n_concurrent)

    def charge_p2p(self, nbytes: float, n_concurrent: int = 1) -> None:
        """Advance the clock by a P2P transfer."""
        dt = self.p2p_time(nbytes, n_concurrent)
        tr = _tracer()
        if tr.enabled:
            span = tr.emit(
                "rlc_p2p", "rlc_exchange", track="rlc",
                start=self.clock.now, dur=dt,
                args={"bytes": nbytes, "n_concurrent": n_concurrent},
            )
            if self._last_span is not None:
                tr.edge(self._last_span, span)
            self._last_span = span
        self._record_metrics("p2p", nbytes, n_concurrent, dt)
        self.clock.advance(dt, category="rlc")
        if _faults().enabled:
            # A lost register-bus message is simply re-sent.
            charge_transient("rlc", self.clock, dt, track="rlc")

    def charge_broadcast(self, nbytes: float, n_concurrent: int = 1) -> None:
        """Advance the clock by a broadcast transfer."""
        dt = self.broadcast_time(nbytes, n_concurrent)
        tr = _tracer()
        if tr.enabled:
            span = tr.emit(
                "rlc_bcast", "rlc_exchange", track="rlc",
                start=self.clock.now, dur=dt,
                args={"bytes": nbytes, "n_concurrent": n_concurrent},
            )
            if self._last_span is not None:
                tr.edge(self._last_span, span)
            self._last_span = span
        self._record_metrics("bcast", nbytes, n_concurrent, dt)
        self.clock.advance(dt, category="rlc")
        if _faults().enabled:
            charge_transient("rlc", self.clock, dt, track="rlc")

    def _record_metrics(self, kind: str, nbytes: float, n_concurrent: int, dt: float) -> None:
        """Feed the register-bus utilization counters for one charge."""
        mx = _metrics()
        if not mx.enabled:
            return
        mx.count("rlc.bytes", float(nbytes) * max(1, n_concurrent), kind=kind)
        mx.count("rlc.busy_s", dt)
