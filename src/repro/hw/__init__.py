"""SW26010 architectural model.

This subpackage simulates the Sunway SW26010 many-core processor that
swCaffe targets: four core groups (CGs), each with a management processing
element (MPE), an 8x8 mesh of computing processing elements (CPEs) with
64 KiB software-managed local directive memory (LDM), a DMA engine between
LDM and DDR3 memory, and register-level communication (RLC) buses along
CPE rows and columns.

The model is *functional + temporal*: data movement helpers operate on real
NumPy buffers (so kernels built on top are bit-exact), while every operation
charges simulated time to a :class:`~repro.hw.clock.SimClock` according to
bandwidth/latency models calibrated against the measurements in the paper
(Fig. 2 for DMA, the IPDPSW'17 benchmark for RLC, Table I for peaks).
"""

from repro.hw.spec import (
    ProcessorSpec,
    SW26010_SPEC,
    K40M_SPEC,
    KNL_SPEC,
    E5_2680V3_SPEC,
    SW26010Params,
    SW_PARAMS,
)
from repro.hw.clock import SimClock
from repro.hw.ldm import LDMAllocator
from repro.hw.dma import DMAEngine, DMAMode
from repro.hw.rlc import RegisterComm
from repro.hw.cpe import CPE
from repro.hw.mpe import MPE
from repro.hw.core_group import CoreGroup
from repro.hw.processor import SW26010
from repro.hw.mesh_sim import MeshOp, MeshSimulator, gemm_inner_schedule

__all__ = [
    "ProcessorSpec",
    "SW26010_SPEC",
    "K40M_SPEC",
    "KNL_SPEC",
    "E5_2680V3_SPEC",
    "SW26010Params",
    "SW_PARAMS",
    "SimClock",
    "LDMAllocator",
    "DMAEngine",
    "DMAMode",
    "RegisterComm",
    "CPE",
    "MPE",
    "CoreGroup",
    "SW26010",
    "MeshOp",
    "MeshSimulator",
    "gemm_inner_schedule",
]
