"""Whole-processor model: four core groups on a network-on-chip.

swCaffe's single-node parallelism (paper Fig. 5 and Algorithm 1) runs one
pthread per core group; each thread trains on a quarter of the mini-batch
and CG 0 reduces the four gradient copies. :class:`SW26010` provides the
fork/join timing rule for that pattern plus processor-level constants.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

from repro.hw.clock import SimClock
from repro.hw.core_group import CoreGroup
from repro.hw.spec import SW26010Params, SW_PARAMS

T = TypeVar("T")


class SW26010:
    """A full SW26010 processor: 4 core groups sharing a node."""

    def __init__(self, params: SW26010Params | None = None, clock: SimClock | None = None) -> None:
        self.params = params or SW_PARAMS
        self.clock = clock or SimClock()
        self.core_groups = [
            CoreGroup(index=i, params=self.params) for i in range(self.params.n_core_groups)
        ]

    @property
    def n_core_groups(self) -> int:
        """Number of core groups (4)."""
        return len(self.core_groups)

    @property
    def peak_flops(self) -> float:
        """Whole-chip peak double-precision FLOP/s (~3.02 TFlops)."""
        return sum(cg.peak_flops + cg.mpe.peak_flops for cg in self.core_groups)

    def fork_join(
        self,
        work: Callable[[CoreGroup], T],
        *,
        sync_overhead_s: float = 2e-6,
    ) -> list[T]:
        """Run ``work`` on each CG "in parallel" and join.

        Each CG runs on its own private clock; the processor clock advances
        by the slowest CG plus a synchronization handshake (the paper's
        ``simple_sync`` semaphore barrier). Results are returned in CG order.
        """
        results: list[T] = []
        child_clocks: list[SimClock] = []
        for cg in self.core_groups:
            cg.clock.reset()
            results.append(work(cg))
            child_clocks.append(cg.clock)
        self.clock.merge_max(*child_clocks)
        self.clock.advance(sync_overhead_s, category="sync")
        return results

    def parallel_time(self, per_cg_times: Sequence[float], sync_overhead_s: float = 2e-6) -> float:
        """Fork/join duration for precomputed per-CG times."""
        if len(per_cg_times) == 0:
            return 0.0
        return max(per_cg_times) + sync_overhead_s
