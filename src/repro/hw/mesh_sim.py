"""Discrete-event simulator of the 8x8 CPE mesh's register buses.

The analytic RLC model (:mod:`repro.hw.rlc`) prices communication with
aggregate bandwidths; this simulator executes a schedule event by event —
per-bus occupancy, per-CPE readiness, sender/receiver stalls — which is how
the paper's Fig. 3 GEMM inner loop actually behaves on hardware (the send
is asynchronous; the receiver stalls until data arrives; a bus serializes
its messages).

Used two ways:

* cross-validation: the event-driven time of the 8-step GEMM schedule must
  agree with the analytic model when the schedule is conflict-free (see
  ``tests/test_mesh_sim.py``);
* what-if studies: naive schedules with bus conflicts are measurably worse,
  quantifying why the Cannon-style step structure matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.injector import active as _faults
from repro.hw.spec import SW26010Params, SW_PARAMS
from repro.metrics.registry import active as _metrics
from repro.trace.tracer import active as _tracer


@dataclass(frozen=True)
class MeshOp:
    """One scheduled mesh operation.

    ``kind`` is ``"row_bcast"`` (src broadcasts to its row),
    ``"col_bcast"`` (to its column), ``"p2p"`` (same row or column), or
    ``"compute"`` (local FLOPs on the source CPE). Operations carry an
    integer ``step`` tag: an op waits for all of the CPE's previous-step
    work (the lockstep structure of the GEMM inner loop).
    """

    kind: str
    src: tuple[int, int]
    nbytes: float = 0.0
    dst: tuple[int, int] | None = None
    flops: float = 0.0
    efficiency: float = 1.0
    step: int = 0


@dataclass
class MeshTrace:
    """Simulation outcome."""

    finish_s: float = 0.0
    per_op_finish: list[float] = field(default_factory=list)
    bus_busy_s: dict[str, float] = field(default_factory=dict)
    #: Per-bus serialization stalls: time ready ops spent queueing for a bus.
    bus_wait_s: dict[str, float] = field(default_factory=dict)

    @property
    def max_bus_utilization(self) -> float:
        if not self.bus_busy_s or self.finish_s == 0:
            return 0.0
        return max(self.bus_busy_s.values()) / self.finish_s


class MeshSimulator:
    """Event-driven execution of a mesh op schedule.

    Resources: 8 row buses, 8 column buses (one message at a time each,
    at the per-lane register-communication rate), and 64 CPE compute
    pipelines. Within a step ops run as concurrently as resources allow;
    a CPE's step-k ops wait for its step-(k-1) ops (data dependence of the
    GEMM accumulation).
    """

    def __init__(self, params: SW26010Params | None = None) -> None:
        self.params = params or SW_PARAMS
        mesh = self.params.cpe_rows
        # Per-lane rates: the aggregate figures assume all 8 buses of a
        # kind run concurrently.
        self._bcast_rate = self.params.rlc_bcast_bw / mesh
        self._p2p_rate = self.params.rlc_p2p_bw / mesh
        self._startup = self.params.rlc_startup_cycles / self.params.clock_hz

    def _bus_of(self, op: MeshOp) -> str:
        r, c = op.src
        if op.kind == "row_bcast":
            return f"row{r}"
        if op.kind == "col_bcast":
            return f"col{c}"
        if op.kind == "p2p":
            if op.dst is None:
                raise ValueError("p2p op needs a destination")
            dr, dc = op.dst
            if r == dr:
                return f"row{r}"
            if c == dc:
                return f"col{c}"
            raise ValueError(f"p2p {op.src} -> {op.dst} is neither row nor column")
        raise ValueError(f"op kind {op.kind!r} uses no bus")

    def run(self, ops: list[MeshOp]) -> MeshTrace:
        """Simulate a schedule; ops are considered in list order."""
        mesh = self.params.cpe_rows
        bus_free: dict[str, float] = {}
        bus_busy: dict[str, float] = {}
        bus_wait: dict[str, float] = {}
        cpe_ready = [[0.0] * mesh for _ in range(mesh)]
        # Step barriers per CPE: finish time of the CPE's latest op per step.
        step_done = [[{} for _ in range(mesh)] for _ in range(mesh)]
        trace = MeshTrace()

        def dep_time(pos: tuple[int, int], step: int) -> float:
            r, c = pos
            prior = [t for s, t in step_done[r][c].items() if s < step]
            return max(prior) if prior else 0.0

        tr = _tracer()
        fi = _faults()
        # Mesh-link degradation cuts every bus's bandwidth for the whole
        # schedule (transfer times stretch by the plan's mesh_factor).
        degrade = fi.mesh_degrade() if fi.enabled else 1.0
        for op in ops:
            r, c = op.src
            if op.kind == "compute":
                if not 0 < op.efficiency <= 1:
                    raise ValueError("efficiency must be in (0, 1]")
                start = max(cpe_ready[r][c], dep_time(op.src, op.step))
                dur = op.flops / (self.params.cpe_peak_flops * op.efficiency)
                finish = start + dur
                cpe_ready[r][c] = finish
                if tr.enabled:
                    tr.emit(
                        f"compute s{op.step}", "cpe_compute",
                        track=f"mesh/cpe_r{r}c{c}", start=start, dur=dur,
                        args={"flops": op.flops, "step": op.step},
                    )
            else:
                bus = self._bus_of(op)
                rate = self._bcast_rate if op.kind.endswith("bcast") else self._p2p_rate
                # Sends are asynchronous producer-consumer pushes of
                # LDM-resident data: they wait for the bus and for the
                # CPE's own earlier-step work, but NOT for unrelated
                # incoming data (cpe_ready).
                ready = dep_time(op.src, op.step)
                start = max(bus_free.get(bus, 0.0), ready)
                dur = self._startup + op.nbytes / rate * degrade
                finish = start + dur
                bus_free[bus] = finish
                bus_busy[bus] = bus_busy.get(bus, 0.0) + dur
                # Contention stall: the op was ready but its bus was not.
                bus_wait[bus] = bus_wait.get(bus, 0.0) + (start - ready)
                if tr.enabled:
                    tr.emit(
                        f"{op.kind} s{op.step}", "rlc_exchange",
                        track=f"mesh/{bus}", start=start, dur=dur,
                        args={"bytes": op.nbytes, "src": f"({r},{c})", "step": op.step},
                    )
                # Sender is free once the (asynchronous) send is issued;
                # receivers become data-ready at message completion.
                receivers: list[tuple[int, int]]
                if op.kind == "row_bcast":
                    receivers = [(r, j) for j in range(mesh) if j != c]
                elif op.kind == "col_bcast":
                    receivers = [(i, c) for i in range(mesh) if i != r]
                else:
                    receivers = [op.dst]  # type: ignore[list-item]
                for rr, rc in receivers:
                    cpe_ready[rr][rc] = max(cpe_ready[rr][rc], finish)
                    step_done[rr][rc][op.step] = max(
                        step_done[rr][rc].get(op.step, 0.0), finish
                    )
            step_done[r][c][op.step] = max(step_done[r][c].get(op.step, 0.0), finish)
            trace.per_op_finish.append(finish)
            trace.finish_s = max(trace.finish_s, finish)
        trace.bus_busy_s = bus_busy
        trace.bus_wait_s = bus_wait
        mx = _metrics()
        if mx.enabled:
            for bus, busy in bus_busy.items():
                mx.count("mesh.bus_busy_s", busy, bus=bus)
            for bus, wait in bus_wait.items():
                if wait > 0:
                    mx.count("mesh.bus_wait_s", wait, bus=bus)
            mx.high_water("mesh.bus_utilization", trace.max_bus_utilization)
        return trace


def gemm_inner_schedule(
    tile_a_bytes: float,
    tile_b_bytes: float,
    tile_flops: float,
    efficiency: float = 0.8,
    params: SW26010Params | None = None,
) -> list[MeshOp]:
    """The Fig. 3 schedule for one LDM-resident block product.

    At step t, CPE(i, t) broadcasts its A tile along row i and CPE(t, j)
    broadcasts its B tile along column j; every CPE then accumulates its
    C tile. Eight steps total, all 16 broadcasts of a step on distinct
    buses — the conflict-free structure that reaches full aggregate RLC
    bandwidth.
    """
    p = params or SW_PARAMS
    mesh = p.cpe_rows
    ops: list[MeshOp] = []
    for t in range(mesh):
        for i in range(mesh):
            ops.append(
                MeshOp(kind="row_bcast", src=(i, t), nbytes=tile_a_bytes, step=2 * t)
            )
        for j in range(mesh):
            ops.append(
                MeshOp(kind="col_bcast", src=(t, j), nbytes=tile_b_bytes, step=2 * t)
            )
        for i in range(mesh):
            for j in range(mesh):
                ops.append(
                    MeshOp(
                        kind="compute",
                        src=(i, j),
                        flops=tile_flops,
                        efficiency=efficiency,
                        step=2 * t + 1,
                    )
                )
    return ops


def naive_single_bus_schedule(
    tile_a_bytes: float,
    tile_b_bytes: float,
    tile_flops: float,
    efficiency: float = 0.8,
    params: SW26010Params | None = None,
) -> list[MeshOp]:
    """A deliberately bad alternative: every tile relayed through row 0.

    All broadcasts funnel through bus ``row0`` (then column buses fan out),
    serializing what the proper schedule overlaps — the kind of layout a
    naive port produces.
    """
    p = params or SW_PARAMS
    mesh = p.cpe_rows
    ops: list[MeshOp] = []
    for t in range(mesh):
        for i in range(mesh):
            # Stage every A tile through CPE (0, t)'s row bus...
            ops.append(
                MeshOp(kind="row_bcast", src=(0, t), nbytes=tile_a_bytes, step=2 * t)
            )
        for j in range(mesh):
            ops.append(
                MeshOp(kind="col_bcast", src=(0, j), nbytes=tile_b_bytes, step=2 * t)
            )
        for i in range(mesh):
            for j in range(mesh):
                ops.append(
                    MeshOp(
                        kind="compute",
                        src=(i, j),
                        flops=tile_flops,
                        efficiency=efficiency,
                        step=2 * t + 1,
                    )
                )
    return ops
