"""Core group (CG) model: MPE + 8x8 CPE mesh + memory controller.

The core group is the scheduling unit for swCaffe kernels: a kernel plan is
"spawned" onto the 64 CPEs (athread model), moves data via the CG's DMA
engine, exchanges tiles via register communication, and computes on the CPE
pipelines. :meth:`CoreGroup.run_phase` prices one such phase with the
overlap rule the dual pipelines allow: compute and DMA overlap, so phase
time is the max of the two (plus serialized RLC when it cannot be hidden).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.clock import SimClock
from repro.hw.cpe import CPE
from repro.hw.dma import DMAEngine
from repro.hw.mpe import MPE
from repro.hw.rlc import RegisterComm
from repro.hw.spec import SW26010Params, SW_PARAMS


@dataclass(frozen=True)
class PhaseCost:
    """Time breakdown of one kernel phase on a core group."""

    compute_s: float
    dma_s: float
    rlc_s: float
    total_s: float


class CoreGroup:
    """One of the four SW26010 core groups."""

    def __init__(
        self,
        index: int = 0,
        params: SW26010Params | None = None,
        clock: SimClock | None = None,
    ) -> None:
        self.index = index
        self.params = params or SW_PARAMS
        self.clock = clock or SimClock()
        self.mpe = MPE(params=self.params, clock=self.clock)
        self.dma = DMAEngine(params=self.params, clock=self.clock)
        self.rlc = RegisterComm(params=self.params, clock=self.clock)
        self.cpes = [
            CPE(row=r, col=c, params=self.params, clock=self.clock)
            for r in range(self.params.cpe_rows)
            for c in range(self.params.cpe_cols)
        ]

    @property
    def n_cpes(self) -> int:
        """Number of CPEs in the mesh (64)."""
        return len(self.cpes)

    @property
    def peak_flops(self) -> float:
        """CPE-cluster peak double-precision FLOP/s (742.4 GFlops)."""
        return self.params.cg_cpe_peak_flops

    def cpe(self, row: int, col: int) -> CPE:
        """The CPE at mesh position ``(row, col)``."""
        return self.cpes[row * self.params.cpe_cols + col]

    def compute_time(self, flops: float, efficiency: float = 1.0) -> float:
        """Seconds for ``flops`` spread across the full CPE cluster."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        if not 0 < efficiency <= 1.0:
            raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
        return flops / (self.peak_flops * efficiency)

    def phase_cost(
        self,
        *,
        flops: float = 0.0,
        compute_efficiency: float = 1.0,
        dma_bytes: float = 0.0,
        dma_block_bytes: float | None = None,
        n_cpes: int | None = None,
        rlc_bytes: float = 0.0,
        rlc_broadcast: bool = True,
        rlc_overlapped: bool = True,
    ) -> PhaseCost:
        """Price one kernel phase without advancing the clock.

        Parameters
        ----------
        flops:
            Floating-point work in the phase (whole cluster).
        compute_efficiency:
            Fraction of peak the compute kernel sustains.
        dma_bytes:
            Total bytes moved between memory and LDMs in the phase.
        dma_block_bytes:
            Contiguous block size for strided DMA, or ``None``.
        n_cpes:
            CPEs participating in the DMA (default: all 64).
        rlc_bytes:
            Bytes exchanged over register communication.
        rlc_broadcast:
            Whether RLC uses broadcast (vs P2P) bandwidth.
        rlc_overlapped:
            Fully pipelined RLC hides under compute (the GEMM inner loop);
            otherwise it serializes.
        """
        cpes = self.n_cpes if n_cpes is None else n_cpes
        compute_s = self.compute_time(flops, compute_efficiency) if flops else 0.0
        dma_s = 0.0
        if dma_bytes > 0:
            dma_s = self.dma.transfer_time(
                dma_bytes / cpes, cpes, block_bytes=dma_block_bytes
            )
        rlc_s = 0.0
        if rlc_bytes > 0:
            rlc_s = (
                self.rlc.broadcast_time(rlc_bytes)
                if rlc_broadcast
                else self.rlc.p2p_time(rlc_bytes)
            )
        # Compute and DMA issue on different pipelines and overlap; RLC
        # either pipelines under compute or serializes after it.
        overlapped = max(compute_s, dma_s)
        if rlc_overlapped:
            overlapped = max(overlapped, rlc_s)
            total = overlapped
        else:
            total = overlapped + rlc_s
        return PhaseCost(compute_s=compute_s, dma_s=dma_s, rlc_s=rlc_s, total_s=total)

    def run_phase(self, **kwargs: float | bool | None) -> PhaseCost:
        """Price a phase and advance the clock by its total time."""
        cost = self.phase_cost(**kwargs)  # type: ignore[arg-type]
        self.clock.advance(cost.total_s, category="kernel")
        return cost
