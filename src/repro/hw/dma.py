"""DMA engine model between DDR3 memory and CPE LDMs.

Reproduces the behaviour the paper measures in Fig. 2 and turns into design
Principles 2 and 3:

* aggregate bandwidth saturates around 28 GB/s per core group;
* a single CPE cannot saturate the memory controller — transfers should be
  issued from all 64 CPEs together;
* per-CPE transfers should be >= 2 KB to hide the hundreds-of-cycles LDM
  transfer latency;
* strided access needs blocks >= 256 B, below which bandwidth collapses.

The model is multiplicative-efficiency: ``bw = peak * f_size * f_cpes *
f_stride`` with saturating half-max curves. The constants live in
:class:`~repro.hw.spec.SW26010Params` and are calibrated so the quoted
operating points hold (see ``tests/test_hw_dma.py``).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.faults.injector import active as _faults, charge_transient
from repro.hw.clock import SimClock
from repro.hw.spec import SW26010Params, SW_PARAMS
from repro.metrics.registry import active as _metrics
from repro.trace.tracer import active as _tracer


class DMAMode(enum.Enum):
    """Transfer direction, matching the athread DMA intrinsics."""

    GET = "dma_get"  # memory -> LDM
    PUT = "dma_put"  # LDM -> memory


class DMAEngine:
    """Per-core-group DMA bandwidth/latency model.

    The engine both *prices* transfers (:meth:`transfer_time`,
    :meth:`aggregate_bandwidth`) and *executes* them on NumPy buffers while
    charging a :class:`SimClock` (:meth:`get`, :meth:`put`), so functional
    kernels and the cost model can never drift apart.
    """

    def __init__(self, params: SW26010Params | None = None, clock: SimClock | None = None) -> None:
        self.params = params or SW_PARAMS
        self.clock = clock or SimClock()
        #: Most recent traced span on this engine; operations on one
        #: engine are serial, so each depends on the one before it.
        self._last_span = None

    # ------------------------------------------------------------------ #
    # cost model
    # ------------------------------------------------------------------ #
    def _size_efficiency(self, bytes_per_cpe: float) -> float:
        """Saturating efficiency in the per-CPE transfer size."""
        n = float(bytes_per_cpe)
        if n <= 0:
            return 0.0
        return n / (n + self.params.dma_size_half_bytes)

    def _cpe_efficiency(self, n_cpes: int) -> float:
        """Saturating efficiency in the number of CPEs issuing the transfer."""
        c = float(n_cpes)
        if c <= 0:
            return 0.0
        return c / (c + self.params.dma_cpe_half)

    def _stride_efficiency(self, block_bytes: float | None) -> float:
        """Efficiency of strided access as a function of the block size.

        ``None`` means fully continuous access (efficiency 1). The paper's
        guidance that blocks should be >= 256 B corresponds to the point
        where this factor crosses ~0.73.
        """
        if block_bytes is None:
            return 1.0
        b = float(block_bytes)
        if b <= 0:
            return 0.0
        return b / (b + self.params.dma_stride_overhead_bytes)

    def aggregate_bandwidth(
        self,
        bytes_per_cpe: float,
        n_cpes: int = 64,
        *,
        block_bytes: float | None = None,
    ) -> float:
        """Achieved aggregate bandwidth (bytes/s) across ``n_cpes`` CPEs.

        Parameters
        ----------
        bytes_per_cpe:
            Bytes transferred by each participating CPE.
        n_cpes:
            Number of CPEs issuing DMA simultaneously (1..64).
        block_bytes:
            For strided access, the contiguous block size; ``None`` for a
            fully continuous transfer.
        """
        if not 1 <= n_cpes <= self.params.n_cpes_per_cg:
            raise ValueError(f"n_cpes must be in [1, 64], got {n_cpes}")
        peak = self.params.dma_peak_bw
        # Normalise so the calibration point (64 CPEs, large continuous
        # transfers) reaches the measured 28 GB/s exactly.
        norm = self._cpe_efficiency(self.params.n_cpes_per_cg)
        eff = (
            self._size_efficiency(bytes_per_cpe)
            * self._cpe_efficiency(n_cpes)
            / norm
            * self._stride_efficiency(block_bytes)
        )
        return peak * eff

    def transfer_time(
        self,
        bytes_per_cpe: float,
        n_cpes: int = 64,
        *,
        block_bytes: float | None = None,
    ) -> float:
        """Seconds to move ``bytes_per_cpe`` on each of ``n_cpes`` CPEs.

        Includes one LDM-transfer latency (the transfers are issued
        concurrently, so latency is paid once, not per CPE).
        """
        total = float(bytes_per_cpe) * n_cpes
        if total <= 0:
            return 0.0
        bw = self.aggregate_bandwidth(bytes_per_cpe, n_cpes, block_bytes=block_bytes)
        return self.params.dma_latency_s + total / bw

    def bulk_time(self, total_bytes: float, *, block_bytes: float | None = None) -> float:
        """Seconds for a full-cluster (64-CPE) transfer of ``total_bytes``."""
        per_cpe = float(total_bytes) / self.params.n_cpes_per_cg
        return self.transfer_time(per_cpe, self.params.n_cpes_per_cg, block_bytes=block_bytes)

    # ------------------------------------------------------------------ #
    # functional transfers
    # ------------------------------------------------------------------ #
    def get(
        self,
        src: np.ndarray,
        n_cpes: int = 64,
        *,
        block_bytes: float | None = None,
    ) -> np.ndarray:
        """Simulate ``dma_get``: copy ``src`` into "LDM" and charge the clock.

        Returns a contiguous copy, standing in for the LDM-resident buffer.
        """
        out = np.ascontiguousarray(src).copy()
        per_cpe = out.nbytes / n_cpes
        dt = self.transfer_time(per_cpe, n_cpes, block_bytes=block_bytes)
        tr = _tracer()
        if tr.enabled:
            span = tr.emit(
                "dma_get", "dma_transfer", track="dma",
                start=self.clock.now, dur=dt,
                args={"bytes": int(out.nbytes), "n_cpes": n_cpes},
            )
            if self._last_span is not None:
                tr.edge(self._last_span, span)
            self._last_span = span
        self._record_metrics("get", out.nbytes, dt)
        self.clock.advance(dt, category="dma")
        if _faults().enabled:
            # Corrupted transfers are re-issued; data is re-copied intact.
            charge_transient("dma", self.clock, dt, track="dma")
        return out

    def put(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        n_cpes: int = 64,
        *,
        block_bytes: float | None = None,
    ) -> None:
        """Simulate ``dma_put``: copy "LDM" data back to memory, charge clock."""
        if dst.shape != src.shape:
            raise ValueError(f"dma_put shape mismatch: {src.shape} -> {dst.shape}")
        np.copyto(dst, src)
        per_cpe = src.nbytes / n_cpes
        dt = self.transfer_time(per_cpe, n_cpes, block_bytes=block_bytes)
        tr = _tracer()
        if tr.enabled:
            span = tr.emit(
                "dma_put", "dma_transfer", track="dma",
                start=self.clock.now, dur=dt,
                args={"bytes": int(src.nbytes), "n_cpes": n_cpes},
            )
            if self._last_span is not None:
                tr.edge(self._last_span, span)
            self._last_span = span
        self._record_metrics("put", src.nbytes, dt)
        self.clock.advance(dt, category="dma")
        if _faults().enabled:
            charge_transient("dma", self.clock, dt, track="dma")

    def _record_metrics(self, direction: str, nbytes: int, dt: float) -> None:
        """Feed the utilization counters for one executed transfer."""
        mx = _metrics()
        if not mx.enabled:
            return
        mx.count("dma.bytes", int(nbytes), dir=direction)
        mx.count("dma.transfers", 1)
        mx.count("dma.busy_s", dt)
        if dt > 0 and nbytes > 0:
            mx.observe("dma.achieved_frac", nbytes / dt / self.params.dma_peak_bw)
