"""Local Directive Memory (LDM) allocator.

Each CPE has 64 KiB of software-managed scratchpad. Kernel plans must
explicitly budget every buffer they stage there; this allocator enforces the
capacity limit (the paper's blocking parameters all derive from it) and
tracks the high-water mark so tests can assert a plan's declared footprint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LDMAllocationError
from repro.hw.spec import SW_PARAMS
from repro.metrics.registry import active as _metrics
from repro.trace.tracer import active as _tracer


@dataclass(frozen=True)
class LDMBuffer:
    """A named reservation inside one CPE's LDM."""

    name: str
    nbytes: int
    offset: int


class LDMAllocator:
    """Bump allocator over a single CPE's LDM.

    Parameters
    ----------
    capacity:
        LDM size in bytes (default: the SW26010's 64 KiB).
    """

    def __init__(self, capacity: int | None = None) -> None:
        self.capacity = int(SW_PARAMS.ldm_bytes if capacity is None else capacity)
        if self.capacity <= 0:
            raise ValueError("LDM capacity must be positive")
        self._buffers: dict[str, LDMBuffer] = {}
        self._used = 0
        self._high_water = 0

    @property
    def used(self) -> int:
        """Bytes currently allocated."""
        return self._used

    @property
    def free(self) -> int:
        """Bytes still available."""
        return self.capacity - self._used

    @property
    def high_water(self) -> int:
        """Largest simultaneous allocation seen since construction/reset."""
        return self._high_water

    def alloc(self, name: str, nbytes: int) -> LDMBuffer:
        """Reserve ``nbytes`` under ``name``.

        Raises
        ------
        LDMAllocationError
            If the buffer does not fit or the name is already taken.
        """
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("buffer size must be non-negative")
        if name in self._buffers:
            raise LDMAllocationError(f"LDM buffer {name!r} already allocated")
        if self._used + nbytes > self.capacity:
            raise LDMAllocationError(
                f"LDM overflow allocating {name!r}: need {nbytes} B, "
                f"free {self.free} B of {self.capacity} B"
            )
        buf = LDMBuffer(name=name, nbytes=nbytes, offset=self._used)
        self._buffers[name] = buf
        self._used += nbytes
        self._high_water = max(self._high_water, self._used)
        tr = _tracer()
        if tr.enabled:
            tr.instant_event(
                f"ldm_alloc {name}", "ldm_alloc", track="ldm",
                args={"nbytes": nbytes, "used": self._used, "free": self.free},
            )
        mx = _metrics()
        if mx.enabled:
            mx.high_water("ldm.high_water_bytes", self._used)
        return buf

    def require(self, name: str, nbytes: int) -> LDMBuffer:
        """Like :meth:`alloc`, but idempotent for an identical existing buffer."""
        existing = self._buffers.get(name)
        if existing is not None:
            if existing.nbytes != int(nbytes):
                raise LDMAllocationError(
                    f"LDM buffer {name!r} re-requested with different size "
                    f"({existing.nbytes} B vs {nbytes} B)"
                )
            return existing
        return self.alloc(name, nbytes)

    def free_buffer(self, name: str) -> None:
        """Release a named buffer (space is reclaimed in bulk, bump-style)."""
        buf = self._buffers.pop(name, None)
        if buf is None:
            raise LDMAllocationError(f"LDM buffer {name!r} is not allocated")
        self._used -= buf.nbytes
        # Note: a bump allocator does not compact; `offset` values of live
        # buffers stay valid, which is all the cost model needs.

    def reset(self) -> None:
        """Drop all buffers (high-water mark is preserved)."""
        self._buffers.clear()
        self._used = 0

    def fits(self, nbytes: int) -> bool:
        """Whether an additional buffer of ``nbytes`` would fit right now."""
        return self._used + int(nbytes) <= self.capacity

    def __contains__(self, name: str) -> bool:
        return name in self._buffers

    def __getitem__(self, name: str) -> LDMBuffer:
        return self._buffers[name]
