"""Command-line interface: ``python -m repro <command>``.

The command set lives in :data:`REGISTRY` — one :class:`Command` per
subcommand, each carrying its own usage/description lines — and the help
text is *generated* from it, so ``python -m repro --help`` can never drift
from the commands that actually dispatch (pinned by
``tests/test_cli_and_multiloss.py``).

Commands
--------
report
    Regenerate every paper table/figure (minutes; builds the model zoo).
experiment NAME
    Run one harness by name (``table2``, ``fig10``, ``serving``, ...).
profile NET [BATCH]
    Print the simulated SW26010 profile of a model-zoo network.
trace NET [options]
    Trace a simulated data-parallel training step; export Chrome
    trace-event JSON for ui.perfetto.dev (see docs/observability.md).
whatif NET [options]
    Critical-path what-if projection: scale any resource class or layer
    cost and project the new end-to-end time from the dependency graph;
    ``--validate`` re-runs the simulator under the same scaling and
    checks projection == simulation (see docs/observability.md).
metrics NET [options]
    Measure the same step: per-resource utilization counters and the
    per-layer roofline classification (text, ``--json``, or a Perfetto
    trace with counter tracks via ``--trace``).
chaos NET [options]
    Train data-parallel under a seeded fault plan (DMA/RLC/link faults,
    stragglers, rank crashes) with elastic recovery, then verify the
    final weights bit-for-bit against a fault-free reference run
    (see docs/robustness.md).
serve NET [options]
    Replay a seeded request-arrival stream through the batched-inference
    engine: dynamic batching, per-request latency percentiles, SLO
    attainment, and a Perfetto-loadable serving trace
    (see docs/serving.md).
pipeline NET [options]
    Partition a net into balanced pipeline stages, walk a microbatch
    schedule (GPipe fill-drain or 1F1B), and compare the priced
    iteration against data-parallel SGD at the same node count
    (see docs/parallelism.md).
train [ITERS]
    Run the LeNet quickstart training loop.
list
    Show available experiments and networks.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Callable

#: Experiment name -> harness module path.
EXPERIMENTS = {
    "table1": "repro.harness.table1_specs",
    "fig2": "repro.harness.fig2_dma",
    "fig6": "repro.harness.fig6_network",
    "fig7": "repro.harness.fig7_allreduce",
    "table2": "repro.harness.table2_vgg_conv",
    "fig8": "repro.harness.fig8_alexnet_layers",
    "fig9": "repro.harness.fig9_vgg_layers",
    "table3": "repro.harness.table3_throughput",
    "fig10": "repro.harness.fig10_scalability",
    "fig11": "repro.harness.fig11_comm_ratio",
    "ablations": "repro.harness.ablations",
    "naive-port": "repro.harness.naive_port",
    "inference": "repro.harness.inference_throughput",
    "memory": "repro.harness.memory_budget",
    "straggler": "repro.harness.straggler_study",
    "allreduce-sweep": "repro.harness.allreduce_sweep",
    "roofline": "repro.harness.roofline_report",
    "serving": "repro.harness.serving_latency",
    "pipeline": "repro.harness.pipeline_compare",
}

#: Network name -> (builder path, default batch).
NETWORKS = {
    "lenet": ("repro.frame.model_zoo.lenet", "build", 16),
    "alexnet": ("repro.frame.model_zoo.alexnet", "build", 256),
    "vgg16": ("repro.frame.model_zoo.vgg", "build_vgg16", 64),
    "vgg19": ("repro.frame.model_zoo.vgg", "build_vgg19", 64),
    "resnet18": ("repro.frame.model_zoo.resnet_small", "build_resnet18", 32),
    "resnet34": ("repro.frame.model_zoo.resnet_small", "build_resnet34", 32),
    "resnet50": ("repro.frame.model_zoo.resnet", "build_resnet50", 32),
    "googlenet": ("repro.frame.model_zoo.googlenet", "build", 128),
}


def _load_builder(net: str):
    """Resolve a network name to its model-zoo build function."""
    import importlib

    mod_path, fn_name, default_batch = NETWORKS[net]
    return getattr(importlib.import_module(mod_path), fn_name), default_batch


def _fail(what: str, got: str, known: dict) -> int:
    """Exit-2 path for an unknown command/experiment/network name."""
    print(
        f"error: unknown {what} {got!r} (choose from: {', '.join(sorted(known))})",
        file=sys.stderr,
    )
    print("run `python -m repro --help` for usage", file=sys.stderr)
    return 2


def cmd_report(_: list[str]) -> int:
    from repro.harness import report

    report.run()
    return 0


def cmd_experiment(args: list[str]) -> int:
    if not args:
        print("error: experiment needs a name", file=sys.stderr)
        print(f"known experiments: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    if args[0] not in EXPERIMENTS:
        return _fail("experiment", args[0], EXPERIMENTS)
    import importlib

    module = importlib.import_module(EXPERIMENTS[args[0]])
    print(module.render())
    return 0


def cmd_profile(args: list[str]) -> int:
    if not args:
        print("error: profile needs a network name", file=sys.stderr)
        print(f"known networks: {', '.join(sorted(NETWORKS))}", file=sys.stderr)
        return 2
    if args[0] not in NETWORKS:
        return _fail("network", args[0], NETWORKS)
    from repro.utils.profiler import NetProfiler

    builder, default_batch = _load_builder(args[0])
    try:
        batch = int(args[1]) if len(args) > 1 else default_batch
    except ValueError:
        print(f"error: batch must be an integer, got {args[1]!r}", file=sys.stderr)
        return 2
    net = builder(batch_size=batch)
    print(NetProfiler(net).render())
    return 0


def cmd_trace(args: list[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Trace one simulated data-parallel training step.",
    )
    parser.add_argument("net", choices=sorted(NETWORKS), help="model-zoo network")
    parser.add_argument("--ranks", type=int, default=4, help="simulated nodes (default 4)")
    parser.add_argument("--iters", type=int, default=1, help="iterations to trace")
    parser.add_argument("--batch", type=int, default=None, help="mini-batch size")
    parser.add_argument("--out", default="trace.json", help="Chrome trace-event output path")
    parser.add_argument(
        "--scheme", choices=("improved", "original"), default="improved",
        help="allreduce rank placement (round-robin vs block)",
    )
    parser.add_argument(
        "--supernode", type=int, default=None,
        help="nodes per supernode (default: ranks/2 when even)",
    )
    parser.add_argument("--timeline", action="store_true", help="print the text timeline")
    ns = parser.parse_args(args)

    from repro.trace import render_attribution, render_timeline, write_chrome_json
    from repro.trace.critpath import critical_path, path_spans, render_critpath
    from repro.trace.session import trace_training_step
    from repro.utils.units import format_bytes, format_time

    builder, default_batch = _load_builder(ns.net)
    net = builder(batch_size=ns.batch if ns.batch is not None else default_batch)
    tracer, summary = trace_training_step(
        net,
        ranks=ns.ranks,
        iterations=ns.iters,
        scheme=ns.scheme,
        nodes_per_supernode=ns.supernode,
    )
    write_chrome_json(tracer, ns.out)
    print(
        f"traced {summary.iterations} iteration(s) of {summary.model!r} on "
        f"{summary.ranks} rank(s): compute {format_time(summary.compute_s)}, "
        f"allreduce {format_time(summary.allreduce_s)} "
        f"({summary.allreduce_steps} steps, "
        f"{format_bytes(summary.payload_bytes)} gradients, {summary.scheme})"
    )
    print(f"wrote {len(tracer.spans)} spans to {ns.out} (load in ui.perfetto.dev)")
    print()
    print(render_attribution(tracer))
    print()
    print(render_critpath(critical_path(tracer)))
    if ns.timeline:
        print()
        print(render_timeline(tracer, highlight=path_spans(tracer)))
    return 0


def cmd_whatif(args: list[str]) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro whatif",
        description=(
            "Project the effect of scaling a resource class or layer cost "
            "by re-walking the critical-path graph of one traced training "
            "step; --validate re-runs the simulator under the same scaling "
            "and checks projection == simulation."
        ),
    )
    parser.add_argument("net", choices=sorted(NETWORKS), help="model-zoo network")
    parser.add_argument("--ranks", type=int, default=4, help="simulated nodes (default 4)")
    parser.add_argument("--iters", type=int, default=1, help="iterations to trace")
    parser.add_argument("--batch", type=int, default=None, help="mini-batch size")
    parser.add_argument(
        "--scale", action="append", default=[], metavar="CLASS=FACTOR",
        help="cost scaling, e.g. dma=0.5, rlc=2.0, layer:conv1=0.25 "
             "(repeatable)",
    )
    parser.add_argument(
        "--scheme", choices=("improved", "original"), default="improved",
        help="allreduce rank placement (round-robin vs block)",
    )
    parser.add_argument(
        "--supernode", type=int, default=None,
        help="nodes per supernode (default: ranks/2 when even)",
    )
    parser.add_argument("--validate", action="store_true",
                        help="re-run the simulator under the scaling and "
                             "check the projection against it")
    parser.add_argument("--json", action="store_true",
                        help="print the machine-readable report")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="also write the machine-readable report")
    ns = parser.parse_args(args)

    from repro.trace.whatif import parse_scales, render_whatif, whatif_training

    try:
        factors = parse_scales(ns.scale)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    builder, default_batch = _load_builder(ns.net)
    net = builder(batch_size=ns.batch if ns.batch is not None else default_batch)
    result = whatif_training(
        net,
        factors,
        ranks=ns.ranks,
        iterations=ns.iters,
        scheme=ns.scheme,
        nodes_per_supernode=ns.supernode,
        validate=ns.validate,
    )
    if ns.json:
        print(json.dumps(result.to_json(), indent=1, sort_keys=True))
    else:
        print(render_whatif(result))
    if ns.out:
        with open(ns.out, "w", encoding="utf-8") as fh:
            json.dump(result.to_json(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        if not ns.json:
            print(f"\nwrote what-if report to {ns.out}")
    if ns.validate and result.validation is not None and not result.validation.ok:
        print(
            f"error: projection {result.validation.projected_s!r} != "
            f"simulation {result.validation.simulated_s!r} "
            f"(rel err {result.validation.rel_error:.3e})",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_metrics(args: list[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro metrics",
        description=(
            "Measure one simulated data-parallel training step: per-resource "
            "utilization counters and per-layer roofline classification."
        ),
    )
    parser.add_argument("net", choices=sorted(NETWORKS), help="model-zoo network")
    parser.add_argument("--ranks", type=int, default=4, help="simulated nodes (default 4)")
    parser.add_argument("--iters", type=int, default=1, help="iterations to measure")
    parser.add_argument("--batch", type=int, default=None, help="mini-batch size")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="also write the machine-readable report")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="also write Chrome trace-event JSON with counter tracks")
    parser.add_argument(
        "--scheme", choices=("improved", "original"), default="improved",
        help="allreduce rank placement (round-robin vs block)",
    )
    parser.add_argument(
        "--supernode", type=int, default=None,
        help="nodes per supernode (default: ranks/2 when even)",
    )
    ns = parser.parse_args(args)

    from repro.metrics.export import write_chrome_json_with_metrics
    from repro.metrics.session import collect_training_step
    from repro.trace.tracer import Tracer

    builder, default_batch = _load_builder(ns.net)
    net = builder(batch_size=ns.batch if ns.batch is not None else default_batch)
    tracer = Tracer() if ns.trace else None
    report = collect_training_step(
        net,
        ranks=ns.ranks,
        iterations=ns.iters,
        scheme=ns.scheme,
        nodes_per_supernode=ns.supernode,
        tracer=tracer,
    )
    print(report.render())
    if ns.json:
        report.write_json(ns.json)
        print(f"\nwrote metrics report to {ns.json}")
    if ns.trace:
        write_chrome_json_with_metrics(tracer, ns.trace)
        print(f"wrote {len(tracer.spans)} spans + counter tracks to {ns.trace}")
    return 0


def cmd_chaos(args: list[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description=(
            "Train data-parallel under a seeded fault plan with elastic "
            "recovery; verify final weights against a fault-free reference."
        ),
    )
    parser.add_argument("net", choices=sorted(NETWORKS), help="model-zoo network")
    parser.add_argument("--ranks", type=int, default=4, help="simulated nodes (default 4)")
    parser.add_argument("--iters", type=int, default=8, help="training iterations")
    parser.add_argument("--batch", type=int, default=None, help="mini-batch size")
    parser.add_argument(
        "--faults", default="chaos:0x5caffe:0", metavar="SEED",
        help="fault seed string '<profile>:<hex>:<index>' "
             "(profiles: transient, degrade, crash, chaos)",
    )
    parser.add_argument(
        "--algorithm", choices=("rhd", "ring", "topo-aware"), default="rhd",
        help="allreduce algorithm (default rhd)",
    )
    parser.add_argument(
        "--supernode", type=int, default=4, help="nodes per supernode (default 4)"
    )
    parser.add_argument(
        "--snapshot-every", type=int, default=2, help="snapshot cadence (iterations)"
    )
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="also export Chrome trace-event JSON with fault spans")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the fault-free reference run")
    ns = parser.parse_args(args)

    from repro.faults.plan import parse_seed_string
    from repro.faults.session import run_chaos
    from repro.trace import write_chrome_json
    from repro.trace.tracer import Tracer

    try:
        parse_seed_string(ns.faults)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    builder, default_batch = _load_builder(ns.net)
    batch = ns.batch if ns.batch is not None else default_batch

    def net_factory(rank: int):
        return builder(batch_size=batch)

    tracer = Tracer() if ns.trace else None
    report = run_chaos(
        net_factory,
        ranks=ns.ranks,
        iterations=ns.iters,
        seed=ns.faults,
        algorithm=ns.algorithm,
        nodes_per_supernode=ns.supernode,
        snapshot_every=ns.snapshot_every,
        tracer=tracer,
        verify=not ns.no_verify,
    )
    print(report.render())
    if ns.trace:
        write_chrome_json(tracer, ns.trace)
        print(f"wrote {len(tracer.spans)} spans to {ns.trace} (load in ui.perfetto.dev)")
    return 0 if report.weights_match in (True, None) else 1


def cmd_serve(args: list[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description=(
            "Replay a seeded request-arrival stream through the batched-"
            "inference engine on the simulated clock: dynamic batching, "
            "per-request latency percentiles, SLO attainment."
        ),
    )
    parser.add_argument("net", choices=sorted(NETWORKS), help="model-zoo network")
    parser.add_argument(
        "--arrivals", default="poisson:0xc0ffee:0", metavar="SEED",
        help="arrival seed string '<profile>:<hex>:<index>' "
             "(profiles: poisson, bursty, steady; default poisson:0xc0ffee:0)",
    )
    parser.add_argument("--requests", type=int, default=200,
                        help="requests to replay (default 200)")
    parser.add_argument("--rate", type=float, default=None, metavar="RPS",
                        help="offered load in requests/s (default: 60%% of "
                             "batched capacity)")
    parser.add_argument("--slo-ms", type=float, default=50.0,
                        help="latency SLO in milliseconds (default 50)")
    parser.add_argument("--max-batch", type=int, default=8,
                        help="dynamic batching: max batch size (default 8)")
    parser.add_argument("--max-wait-ms", type=float, default=10.0,
                        help="dynamic batching: max queue wait before a "
                             "partial batch dispatches (default 10)")
    parser.add_argument("--queue-bound", type=int, default=64,
                        help="admission queue depth before shedding (default 64)")
    parser.add_argument("--faults", default=None, metavar="SEED",
                        help="also run under a fault seed (docs/robustness.md)")
    parser.add_argument("--trace", default="serve-trace.json", metavar="FILE",
                        help="Chrome trace-event output path (default "
                             "serve-trace.json)")
    parser.add_argument("--no-trace", action="store_true",
                        help="skip trace collection and export")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="also write the machine-readable report")
    parser.add_argument("--timeline", action="store_true",
                        help="print the text timeline of the serving trace")
    parser.add_argument("--explain-plans", action="store_true",
                        help="show per-conv-layer plan choice vs batch size")
    ns = parser.parse_args(args)

    from repro.serve import (
        NetForwardCostModel,
        PROFILES,
        ServeConfig,
        parse_seed_string,
        run_serving,
    )
    from repro.trace import render_timeline, write_chrome_json
    from repro.trace.tracer import Tracer

    try:
        profile, _, _ = parse_seed_string(ns.arrivals)
        if profile not in PROFILES:
            raise ValueError(
                f"unknown arrival profile {profile!r} (choose from {PROFILES})"
            )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if ns.faults is not None:
        from repro.faults.plan import parse_seed_string as parse_fault_seed

        try:
            parse_fault_seed(ns.faults)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        config = ServeConfig(
            max_batch=ns.max_batch,
            max_wait_s=ns.max_wait_ms / 1e3,
            queue_bound=ns.queue_bound,
            slo_s=ns.slo_ms / 1e3,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    builder, _ = _load_builder(ns.net)
    tracer = None if ns.no_trace else Tracer()
    report = run_serving(
        builder,
        arrivals_seed=ns.arrivals,
        n_requests=ns.requests,
        rate_rps=ns.rate,
        config=config,
        fault_seed=ns.faults,
        model=ns.net,
        tracer=tracer,
    )
    print(report.render())
    if ns.json:
        report.write_json(ns.json)
        print(f"\nwrote serving report to {ns.json}")
    if tracer is not None:
        write_chrome_json(tracer, ns.trace)
        print(f"wrote {len(tracer.spans)} spans to {ns.trace} (load in ui.perfetto.dev)")
        if ns.timeline:
            print()
            print(render_timeline(tracer))
    if ns.explain_plans:
        cost_model = NetForwardCostModel(builder, name=ns.net)
        batches = tuple(sorted({1, 4, ns.max_batch}))
        print()
        print(f"forward plan choice vs batch size ({ns.net}):")
        print(f"  {'batch':>5}  {'layer':<12} {'plan':<22} {'forward_s':>10}")
        for row in cost_model.plan_table(batches):
            print(
                f"  {row['batch']:>5}  {row['layer']:<12} "
                f"{row['plan']:<22} {row['forward_s']:>10.6f}"
            )
    return 0


def cmd_pipeline(args: list[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro pipeline",
        description=(
            "Partition a net into balanced pipeline stages, walk a "
            "microbatch schedule, and compare the priced iteration "
            "against data-parallel SGD at the same node count."
        ),
    )
    parser.add_argument("net", choices=sorted(NETWORKS), help="model-zoo network")
    parser.add_argument("--stages", type=int, default=4, help="pipeline stages S")
    parser.add_argument(
        "--microbatches", type=int, default=8, help="microbatches per iteration M"
    )
    parser.add_argument(
        "--replicas", type=int, default=1,
        help="data-parallel replicas per stage (hybrid mode when > 1)",
    )
    parser.add_argument(
        "--schedule", choices=("1f1b", "fill_drain"), default="1f1b",
        help="microbatch schedule",
    )
    parser.add_argument(
        "--method", choices=("dp", "greedy"), default="dp",
        help="stage partitioner",
    )
    parser.add_argument("--batch", type=int, default=None, help="sub-mini-batch size")
    parser.add_argument(
        "--bucket-mb", type=float, default=32.0,
        help="hybrid per-stage-group allreduce bucket bound (MB)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="export the walked schedule as Chrome trace-event JSON",
    )
    ns = parser.parse_args(args)
    if ns.stages < 1:
        print(f"error: --stages must be >= 1, got {ns.stages}", file=sys.stderr)
        return 2
    if ns.microbatches < 1:
        print(
            f"error: --microbatches must be >= 1, got {ns.microbatches}",
            file=sys.stderr,
        )
        return 2
    if ns.replicas < 1:
        print(f"error: --replicas must be >= 1, got {ns.replicas}", file=sys.stderr)
        return 2

    from repro.parallel.ssgd import SSGDIterationModel
    from repro.perf.layer_cost import net_iteration_time
    from repro.pipeline import PipelineIterationModel, plan_stages
    from repro.utils.units import format_bytes, format_time

    builder, default_batch = _load_builder(ns.net)
    net = builder(batch_size=ns.batch if ns.batch is not None else default_batch)
    if ns.stages > len(net.layers):
        print(
            f"error: --stages {ns.stages} exceeds {ns.net}'s "
            f"{len(net.layers)} layers",
            file=sys.stderr,
        )
        return 2
    plan = plan_stages(net, ns.stages, method=ns.method)
    model = PipelineIterationModel(
        plan,
        n_microbatches=ns.microbatches,
        schedule=ns.schedule,
        replicas=ns.replicas,
        bucket_mb=ns.bucket_mb,
    )
    bd = model.breakdown()
    n = model.n_nodes
    print(
        f"{ns.net}: {ns.stages} stage(s) x {ns.replicas} replica(s) = "
        f"{n} node(s), {ns.microbatches} microbatch(es), {ns.schedule} "
        f"({ns.method} partition)"
    )
    print(f"  stage imbalance {100 * plan.stage_imbalance:.1f}% (max/mean - 1)")
    for s in range(plan.n_stages):
        layers = ", ".join(
            net.layers[i].name for i in plan.layer_range(s)
        )
        print(
            f"  stage {s}: {format_time(plan.stage_cost_s[s])} "
            f"[{layers}]"
        )
    for i, (blobs, nbytes) in enumerate(zip(plan.cut_blobs, plan.cut_bytes)):
        print(
            f"  cut {i}->{i + 1}: {format_bytes(nbytes)} "
            f"({', '.join(blobs)})"
        )
    print(
        f"  pipeline {format_time(bd.pipeline_s)} "
        f"(bubble {100 * bd.bubble_frac:.1f}%), allreduce exposed "
        f"{format_time(bd.allreduce_s)} / hidden "
        f"{format_time(bd.allreduce_hidden_s)}, update "
        f"{format_time(bd.update_s)}"
    )
    print(
        f"  iteration {format_time(bd.total_s)}, exposed comm "
        f"{100 * bd.comm_fraction:.1f}%"
    )
    dp = SSGDIterationModel(
        compute_s=net_iteration_time(net, "sw26010"),
        model_bytes=net.param_bytes(),
        bucket_mb=ns.bucket_mb,
    )
    dp_bd = dp.breakdown(n)
    print(
        f"  DP reference at {n} node(s): {format_time(dp_bd.total_s)}, "
        f"exposed comm {100 * dp_bd.comm_fraction:.1f}%"
    )
    if ns.trace:
        from repro.pipeline import emit_pipeline_trace
        from repro.trace.export import write_chrome_json
        from repro.trace.tracer import Tracer

        tracer = Tracer()
        emit_pipeline_trace(tracer, model.timeline())
        write_chrome_json(tracer, ns.trace)
        print(
            f"wrote {len(tracer.spans)} spans to {ns.trace} "
            "(load in ui.perfetto.dev)"
        )
    return 0


def cmd_train(args: list[str]) -> int:
    from repro.frame.model_zoo import lenet
    from repro.frame.solver import SGDSolver
    from repro.utils.units import format_time

    iters = int(args[0]) if args else 50
    net = lenet.build(batch_size=16)
    solver = SGDSolver(net, base_lr=0.005, momentum=0.9)
    stats = solver.step(iters)
    print(
        f"trained LeNet for {iters} iterations: loss "
        f"{stats.losses[0]:.3f} -> {stats.losses[-1]:.3f} "
        f"(simulated SW26010 time {format_time(stats.simulated_time_s)})"
    )
    return 0


def cmd_list(_: list[str]) -> int:
    print("experiments:", ", ".join(sorted(EXPERIMENTS)))
    print("networks:", ", ".join(sorted(NETWORKS)))
    return 0


@dataclass(frozen=True)
class Command:
    """One CLI subcommand: dispatch target plus its own help lines.

    ``usage`` is the invocation synopsis — the first element starts with the
    command name; extra elements render as 8-space continuation lines.
    ``help`` lines render in the 24-column description field. The generated
    help can therefore never list a command that does not dispatch, nor
    dispatch a command the help omits.
    """

    name: str
    handler: Callable[[list[str]], int]
    usage: tuple[str, ...]
    help: tuple[str, ...]


#: The single source of truth for the command set. ``--help`` output and
#: dispatch both derive from it (pinned by the help == registry test).
REGISTRY: dict[str, Command] = {
    cmd.name: cmd
    for cmd in (
        Command(
            "report", cmd_report,
            ("report",),
            ("regenerate every paper table/figure",),
        ),
        Command(
            "experiment", cmd_experiment,
            ("experiment NAME",),
            (f"one of: {', '.join(sorted(EXPERIMENTS))}",),
        ),
        Command(
            "profile", cmd_profile,
            ("profile NET [BATCH]",),
            (f"one of: {', '.join(sorted(NETWORKS))}",),
        ),
        Command(
            "trace", cmd_trace,
            (
                "trace NET [--ranks N] [--iters K] [--batch B] [--out FILE]",
                "[--scheme improved|original] [--timeline]",
            ),
            (
                "trace one simulated training step and",
                "export Perfetto-loadable JSON",
            ),
        ),
        Command(
            "whatif", cmd_whatif,
            (
                "whatif NET [--ranks N] [--iters K] [--batch B]",
                "[--scale CLASS=FACTOR ...] [--scheme improved|original]",
                "[--validate] [--json] [--out FILE]",
            ),
            (
                "critical-path what-if: project end-to-end",
                "time under scaled resource/layer costs;",
                "--validate pins projection == simulation",
            ),
        ),
        Command(
            "metrics", cmd_metrics,
            (
                "metrics NET [--ranks N] [--iters K] [--batch B] [--json FILE]",
                "[--trace FILE] [--scheme improved|original] [--supernode Q]",
            ),
            (
                "per-resource utilization + per-layer",
                "roofline of the same simulated step",
            ),
        ),
        Command(
            "chaos", cmd_chaos,
            (
                "chaos NET [--ranks N] [--iters K] [--batch B] [--faults SEED]",
                "[--algorithm rhd|ring|topo-aware] [--supernode Q]",
                "[--snapshot-every K] [--trace FILE] [--no-verify]",
            ),
            (
                "fault-injected training with elastic",
                "recovery, verified against a fault-free",
                "reference (docs/robustness.md)",
            ),
        ),
        Command(
            "serve", cmd_serve,
            (
                "serve NET [--arrivals SEED] [--requests N] [--rate RPS]",
                "[--slo-ms MS] [--max-batch B] [--max-wait-ms MS]",
                "[--queue-bound N] [--faults SEED] [--trace FILE]",
                "[--json FILE] [--timeline] [--explain-plans]",
            ),
            (
                "replay a seeded arrival stream through",
                "the batched-inference engine: latency",
                "percentiles, SLO attainment, Perfetto",
                "trace (docs/serving.md)",
            ),
        ),
        Command(
            "pipeline", cmd_pipeline,
            (
                "pipeline NET [--stages S] [--microbatches M] [--replicas R]",
                "[--schedule 1f1b|fill_drain] [--method dp|greedy]",
                "[--batch B] [--bucket-mb MB] [--trace FILE]",
            ),
            (
                "partition into balanced stages, walk a",
                "microbatch schedule, and compare against",
                "data-parallel SGD (docs/parallelism.md)",
            ),
        ),
        Command(
            "train", cmd_train,
            ("train [ITERS]",),
            ("quickstart LeNet training",),
        ),
        Command(
            "list", cmd_list,
            ("list",),
            ("show experiments and networks",),
        ),
    )
}

#: Name -> handler view of :data:`REGISTRY` (kept for importers/tests).
COMMANDS = {name: cmd.handler for name, cmd in REGISTRY.items()}


def _usage() -> str:
    """Render the help text from :data:`REGISTRY` (never hand-written)."""
    lines = ["usage: python -m repro <command>", "", "commands:"]
    for cmd in REGISTRY.values():
        first = f"  {cmd.usage[0]}"
        descriptions = list(cmd.help)
        if len(cmd.usage) == 1 and len(first) < 24 and descriptions:
            lines.append(f"{first:<24}{descriptions.pop(0)}")
        else:
            lines.append(first)
            lines.extend(f"        {u}" for u in cmd.usage[1:])
        lines.extend(f"{' ' * 24}{d}" for d in descriptions)
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_usage())
        return 0
    if argv[0] not in COMMANDS:
        return _fail("command", argv[0], COMMANDS)
    return COMMANDS[argv[0]](argv[1:])


if __name__ == "__main__":
    raise SystemExit(main())
