"""Command-line interface: ``python -m repro <command>``.

Commands
--------
report
    Regenerate every paper table/figure (minutes; builds the model zoo).
experiment NAME
    Run one harness by name (``table2``, ``fig10``, ``ablations``, ...).
profile NET [BATCH]
    Print the simulated SW26010 profile of a model-zoo network.
trace NET [options]
    Trace a simulated data-parallel training step; export Chrome
    trace-event JSON for ui.perfetto.dev (see docs/observability.md).
metrics NET [options]
    Measure the same step: per-resource utilization counters and the
    per-layer roofline classification (text, ``--json``, or a Perfetto
    trace with counter tracks via ``--trace``).
chaos NET [options]
    Train data-parallel under a seeded fault plan (DMA/RLC/link faults,
    stragglers, rank crashes) with elastic recovery, then verify the
    final weights bit-for-bit against a fault-free reference run
    (see docs/robustness.md).
train [ITERS]
    Run the LeNet quickstart training loop.
list
    Show available experiments and networks.
"""

from __future__ import annotations

import sys

#: Experiment name -> harness module path.
EXPERIMENTS = {
    "table1": "repro.harness.table1_specs",
    "fig2": "repro.harness.fig2_dma",
    "fig6": "repro.harness.fig6_network",
    "fig7": "repro.harness.fig7_allreduce",
    "table2": "repro.harness.table2_vgg_conv",
    "fig8": "repro.harness.fig8_alexnet_layers",
    "fig9": "repro.harness.fig9_vgg_layers",
    "table3": "repro.harness.table3_throughput",
    "fig10": "repro.harness.fig10_scalability",
    "fig11": "repro.harness.fig11_comm_ratio",
    "ablations": "repro.harness.ablations",
    "naive-port": "repro.harness.naive_port",
    "inference": "repro.harness.inference_throughput",
    "memory": "repro.harness.memory_budget",
    "straggler": "repro.harness.straggler_study",
    "allreduce-sweep": "repro.harness.allreduce_sweep",
    "roofline": "repro.harness.roofline_report",
}

#: Network name -> (builder path, default batch).
NETWORKS = {
    "lenet": ("repro.frame.model_zoo.lenet", "build", 16),
    "alexnet": ("repro.frame.model_zoo.alexnet", "build", 256),
    "vgg16": ("repro.frame.model_zoo.vgg", "build_vgg16", 64),
    "vgg19": ("repro.frame.model_zoo.vgg", "build_vgg19", 64),
    "resnet18": ("repro.frame.model_zoo.resnet_small", "build_resnet18", 32),
    "resnet34": ("repro.frame.model_zoo.resnet_small", "build_resnet34", 32),
    "resnet50": ("repro.frame.model_zoo.resnet", "build_resnet50", 32),
    "googlenet": ("repro.frame.model_zoo.googlenet", "build", 128),
}


def _usage() -> str:
    return (
        "usage: python -m repro <command>\n\n"
        "commands:\n"
        "  report                regenerate every paper table/figure\n"
        f"  experiment NAME       one of: {', '.join(sorted(EXPERIMENTS))}\n"
        f"  profile NET [BATCH]   one of: {', '.join(sorted(NETWORKS))}\n"
        "  trace NET [--ranks N] [--iters K] [--batch B] [--out FILE]\n"
        "        [--scheme improved|original] [--timeline]\n"
        "                        trace one simulated training step and\n"
        "                        export Perfetto-loadable JSON\n"
        "  metrics NET [--ranks N] [--iters K] [--batch B] [--json FILE]\n"
        "        [--trace FILE] [--scheme improved|original] [--supernode Q]\n"
        "                        per-resource utilization + per-layer\n"
        "                        roofline of the same simulated step\n"
        "  chaos NET [--ranks N] [--iters K] [--batch B] [--faults SEED]\n"
        "        [--algorithm rhd|ring|topo-aware] [--supernode Q]\n"
        "        [--snapshot-every K] [--trace FILE] [--no-verify]\n"
        "                        fault-injected training with elastic\n"
        "                        recovery, verified against a fault-free\n"
        "                        reference (docs/robustness.md)\n"
        "  train [ITERS]         quickstart LeNet training\n"
        "  list                  show experiments and networks\n"
    )


def _fail(what: str, got: str, known: dict) -> int:
    """Exit-2 path for an unknown command/experiment/network name."""
    print(
        f"error: unknown {what} {got!r} (choose from: {', '.join(sorted(known))})",
        file=sys.stderr,
    )
    print("run `python -m repro --help` for usage", file=sys.stderr)
    return 2


def cmd_report(_: list[str]) -> int:
    from repro.harness import report

    report.run()
    return 0


def cmd_experiment(args: list[str]) -> int:
    if not args:
        print("error: experiment needs a name", file=sys.stderr)
        print(f"known experiments: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    if args[0] not in EXPERIMENTS:
        return _fail("experiment", args[0], EXPERIMENTS)
    import importlib

    module = importlib.import_module(EXPERIMENTS[args[0]])
    print(module.render())
    return 0


def cmd_profile(args: list[str]) -> int:
    if not args:
        print("error: profile needs a network name", file=sys.stderr)
        print(f"known networks: {', '.join(sorted(NETWORKS))}", file=sys.stderr)
        return 2
    if args[0] not in NETWORKS:
        return _fail("network", args[0], NETWORKS)
    import importlib

    from repro.utils.profiler import NetProfiler

    mod_path, fn_name, default_batch = NETWORKS[args[0]]
    try:
        batch = int(args[1]) if len(args) > 1 else default_batch
    except ValueError:
        print(f"error: batch must be an integer, got {args[1]!r}", file=sys.stderr)
        return 2
    builder = getattr(importlib.import_module(mod_path), fn_name)
    net = builder(batch_size=batch)
    print(NetProfiler(net).render())
    return 0


def cmd_trace(args: list[str]) -> int:
    import argparse
    import importlib

    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Trace one simulated data-parallel training step.",
    )
    parser.add_argument("net", choices=sorted(NETWORKS), help="model-zoo network")
    parser.add_argument("--ranks", type=int, default=4, help="simulated nodes (default 4)")
    parser.add_argument("--iters", type=int, default=1, help="iterations to trace")
    parser.add_argument("--batch", type=int, default=None, help="mini-batch size")
    parser.add_argument("--out", default="trace.json", help="Chrome trace-event output path")
    parser.add_argument(
        "--scheme", choices=("improved", "original"), default="improved",
        help="allreduce rank placement (round-robin vs block)",
    )
    parser.add_argument(
        "--supernode", type=int, default=None,
        help="nodes per supernode (default: ranks/2 when even)",
    )
    parser.add_argument("--timeline", action="store_true", help="print the text timeline")
    ns = parser.parse_args(args)

    from repro.trace import render_attribution, render_timeline, write_chrome_json
    from repro.trace.session import trace_training_step
    from repro.utils.units import format_bytes, format_time

    mod_path, fn_name, default_batch = NETWORKS[ns.net]
    builder = getattr(importlib.import_module(mod_path), fn_name)
    net = builder(batch_size=ns.batch if ns.batch is not None else default_batch)
    tracer, summary = trace_training_step(
        net,
        ranks=ns.ranks,
        iterations=ns.iters,
        scheme=ns.scheme,
        nodes_per_supernode=ns.supernode,
    )
    write_chrome_json(tracer, ns.out)
    print(
        f"traced {summary.iterations} iteration(s) of {summary.model!r} on "
        f"{summary.ranks} rank(s): compute {format_time(summary.compute_s)}, "
        f"allreduce {format_time(summary.allreduce_s)} "
        f"({summary.allreduce_steps} steps, "
        f"{format_bytes(summary.payload_bytes)} gradients, {summary.scheme})"
    )
    print(f"wrote {len(tracer.spans)} spans to {ns.out} (load in ui.perfetto.dev)")
    print()
    print(render_attribution(tracer))
    if ns.timeline:
        print()
        print(render_timeline(tracer))
    return 0


def cmd_metrics(args: list[str]) -> int:
    import argparse
    import importlib

    parser = argparse.ArgumentParser(
        prog="python -m repro metrics",
        description=(
            "Measure one simulated data-parallel training step: per-resource "
            "utilization counters and per-layer roofline classification."
        ),
    )
    parser.add_argument("net", choices=sorted(NETWORKS), help="model-zoo network")
    parser.add_argument("--ranks", type=int, default=4, help="simulated nodes (default 4)")
    parser.add_argument("--iters", type=int, default=1, help="iterations to measure")
    parser.add_argument("--batch", type=int, default=None, help="mini-batch size")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="also write the machine-readable report")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="also write Chrome trace-event JSON with counter tracks")
    parser.add_argument(
        "--scheme", choices=("improved", "original"), default="improved",
        help="allreduce rank placement (round-robin vs block)",
    )
    parser.add_argument(
        "--supernode", type=int, default=None,
        help="nodes per supernode (default: ranks/2 when even)",
    )
    ns = parser.parse_args(args)

    from repro.metrics.export import write_chrome_json_with_metrics
    from repro.metrics.session import collect_training_step
    from repro.trace.tracer import Tracer

    mod_path, fn_name, default_batch = NETWORKS[ns.net]
    builder = getattr(importlib.import_module(mod_path), fn_name)
    net = builder(batch_size=ns.batch if ns.batch is not None else default_batch)
    tracer = Tracer() if ns.trace else None
    report = collect_training_step(
        net,
        ranks=ns.ranks,
        iterations=ns.iters,
        scheme=ns.scheme,
        nodes_per_supernode=ns.supernode,
        tracer=tracer,
    )
    print(report.render())
    if ns.json:
        report.write_json(ns.json)
        print(f"\nwrote metrics report to {ns.json}")
    if ns.trace:
        write_chrome_json_with_metrics(tracer, ns.trace)
        print(f"wrote {len(tracer.spans)} spans + counter tracks to {ns.trace}")
    return 0


def cmd_chaos(args: list[str]) -> int:
    import argparse
    import importlib

    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description=(
            "Train data-parallel under a seeded fault plan with elastic "
            "recovery; verify final weights against a fault-free reference."
        ),
    )
    parser.add_argument("net", choices=sorted(NETWORKS), help="model-zoo network")
    parser.add_argument("--ranks", type=int, default=4, help="simulated nodes (default 4)")
    parser.add_argument("--iters", type=int, default=8, help="training iterations")
    parser.add_argument("--batch", type=int, default=None, help="mini-batch size")
    parser.add_argument(
        "--faults", default="chaos:0x5caffe:0", metavar="SEED",
        help="fault seed string '<profile>:<hex>:<index>' "
             "(profiles: transient, degrade, crash, chaos)",
    )
    parser.add_argument(
        "--algorithm", choices=("rhd", "ring", "topo-aware"), default="rhd",
        help="allreduce algorithm (default rhd)",
    )
    parser.add_argument(
        "--supernode", type=int, default=4, help="nodes per supernode (default 4)"
    )
    parser.add_argument(
        "--snapshot-every", type=int, default=2, help="snapshot cadence (iterations)"
    )
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="also export Chrome trace-event JSON with fault spans")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the fault-free reference run")
    ns = parser.parse_args(args)

    from repro.faults.plan import parse_seed_string
    from repro.faults.session import run_chaos
    from repro.trace import write_chrome_json
    from repro.trace.tracer import Tracer

    try:
        parse_seed_string(ns.faults)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    mod_path, fn_name, default_batch = NETWORKS[ns.net]
    builder = getattr(importlib.import_module(mod_path), fn_name)
    batch = ns.batch if ns.batch is not None else default_batch

    def net_factory(rank: int):
        return builder(batch_size=batch)

    tracer = Tracer() if ns.trace else None
    report = run_chaos(
        net_factory,
        ranks=ns.ranks,
        iterations=ns.iters,
        seed=ns.faults,
        algorithm=ns.algorithm,
        nodes_per_supernode=ns.supernode,
        snapshot_every=ns.snapshot_every,
        tracer=tracer,
        verify=not ns.no_verify,
    )
    print(report.render())
    if ns.trace:
        write_chrome_json(tracer, ns.trace)
        print(f"wrote {len(tracer.spans)} spans to {ns.trace} (load in ui.perfetto.dev)")
    return 0 if report.weights_match in (True, None) else 1


def cmd_train(args: list[str]) -> int:
    from repro.frame.model_zoo import lenet
    from repro.frame.solver import SGDSolver
    from repro.utils.units import format_time

    iters = int(args[0]) if args else 50
    net = lenet.build(batch_size=16)
    solver = SGDSolver(net, base_lr=0.005, momentum=0.9)
    stats = solver.step(iters)
    print(
        f"trained LeNet for {iters} iterations: loss "
        f"{stats.losses[0]:.3f} -> {stats.losses[-1]:.3f} "
        f"(simulated SW26010 time {format_time(stats.simulated_time_s)})"
    )
    return 0


def cmd_list(_: list[str]) -> int:
    print("experiments:", ", ".join(sorted(EXPERIMENTS)))
    print("networks:", ", ".join(sorted(NETWORKS)))
    return 0


COMMANDS = {
    "report": cmd_report,
    "experiment": cmd_experiment,
    "profile": cmd_profile,
    "trace": cmd_trace,
    "metrics": cmd_metrics,
    "chaos": cmd_chaos,
    "train": cmd_train,
    "list": cmd_list,
}


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_usage())
        return 0
    if argv[0] not in COMMANDS:
        return _fail("command", argv[0], COMMANDS)
    return COMMANDS[argv[0]](argv[1:])


if __name__ == "__main__":
    raise SystemExit(main())
