"""Package-wide exception types."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class LDMAllocationError(ReproError):
    """Raised when a kernel plan requests more LDM than a CPE provides."""


class PlanError(ReproError):
    """Raised when a kernel plan cannot be constructed for a given shape."""


class ShapeError(ReproError):
    """Raised when layer/blob shapes are inconsistent."""


class CommunicatorError(ReproError):
    """Raised on invalid simulated-MPI usage (bad rank, mismatched buffers)."""
