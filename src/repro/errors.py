"""Package-wide exception types."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class LDMAllocationError(ReproError):
    """Raised when a kernel plan requests more LDM than a CPE provides."""


class PlanError(ReproError):
    """Raised when a kernel plan cannot be constructed for a given shape."""


class ShapeError(ReproError):
    """Raised when layer/blob shapes are inconsistent."""


class CommunicatorError(ReproError):
    """Raised on invalid simulated-MPI usage (bad rank, mismatched buffers)."""


class SnapshotMismatchError(ReproError):
    """Raised when a snapshot's stored state contradicts the requested path.

    E.g. loading ``model_iter_300.npz`` whose stored iteration counter says
    200: silently resuming from the wrong point corrupts a recovery, so the
    mismatch fails loudly instead.
    """


class TraceError(ReproError):
    """Base class for tracing errors (:mod:`repro.trace`)."""


class SpanValidationError(TraceError, ValueError):
    """Raised when a span's geometry is malformed at record time.

    Negative durations (``end < start``), NaN and infinite durations, and
    non-finite start times are all rejected when the span is emitted —
    silently recording them would export malformed Chrome JSON and poison
    the critical-path graph downstream. Subclasses :class:`ValueError` so
    callers that predate the typed hierarchy keep working.
    """


class CritPathError(TraceError):
    """Raised when a critical-path graph is inconsistent (e.g. a cycle)."""


class FaultError(ReproError):
    """Base class for injected-fault and recovery errors (:mod:`repro.faults`)."""


class CollectiveTimeout(FaultError):
    """A collective step timed out waiting on crashed rank(s).

    Carries the set of logical ranks the communicator declared dead so the
    elastic trainer can shrink around exactly those ranks.
    """

    def __init__(self, message: str, ranks: frozenset[int] = frozenset()) -> None:
        super().__init__(message)
        self.ranks = frozenset(ranks)
