"""repro.serve: batched-inference serving on the simulated clock.

The first inference-side subsystem: seeded replayable arrival streams
(:mod:`repro.serve.arrivals`), a bounded admission queue with Clipper-style
dynamic batching and load shedding, a discrete-event engine dispatching
forward-only batches priced by the kernel cost models
(:mod:`repro.serve.engine`), batch-size-sensitive plan selection
(:mod:`repro.serve.costmodel`), and per-request latency accounting with
p50/p95/p99 and SLO attainment (:mod:`repro.serve.report`).

Entry points: ``python -m repro serve <net> --arrivals <seed> --slo-ms N``
and :func:`repro.serve.session.run_serving`. See ``docs/serving.md``.
"""

from repro.serve.arrivals import (
    ArrivalPlan,
    PROFILES,
    Request,
    parse_seed_string,
    seed_string,
)
from repro.serve.costmodel import NetForwardCostModel, TableCostModel
from repro.serve.engine import ServeConfig, ServingEngine
from repro.serve.report import RequestRecord, ServeReport, SERVE_SCHEMA
from repro.serve.session import auto_rate, run_serving

__all__ = [
    "ArrivalPlan",
    "PROFILES",
    "Request",
    "parse_seed_string",
    "seed_string",
    "NetForwardCostModel",
    "TableCostModel",
    "ServeConfig",
    "ServingEngine",
    "RequestRecord",
    "ServeReport",
    "SERVE_SCHEMA",
    "auto_rate",
    "run_serving",
]
