"""Batch-size-sensitive forward cost models for serving batch shapes.

Training prices a net at one fixed mini-batch; a serving engine dispatches
whatever batch the admission queue formed — 1 on a quiet tail, ``max_batch``
under load — and the kernel plans react to the shape: the autotuner's
explicit-vs-implicit choice, the GEMM blocking, and the work-saturation
efficiency all depend on the batch.

:class:`NetForwardCostModel` owns that mapping. It rebuilds the network at
each *distinct per-core-group batch share* it is asked about and sums the
layers' forward costs. The share is the key insight (Algorithm 1, line 4):
the four core groups process batch quarters concurrently, so batches 1-4
all price as share 1 and cost the same — the first 4x of dynamic batching
is architecturally free, and costs only step at multiples of 4 after that
(``docs/serving.md`` walks through the consequences for plan selection).

:class:`TableCostModel` is the deterministic stub the engine tests and the
golden serve trace use: an explicit ``{batch: seconds}`` table, no network
construction, no plan search.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.hw.spec import SW_PARAMS
from repro.kernels.plan import PlanCost, combine_sequential


class TableCostModel:
    """Explicit per-batch compute table (tests, goldens, what-if studies).

    Batches missing from the table price linearly from the largest listed
    batch (``seconds * batch / listed``), so a sparse table still covers
    every dispatch size.
    """

    def __init__(self, seconds_by_batch: Mapping[int, float]) -> None:
        if not seconds_by_batch:
            raise ValueError("cost table must not be empty")
        self._table = {int(b): float(s) for b, s in seconds_by_batch.items()}
        if any(b < 1 or s < 0 for b, s in self._table.items()):
            raise ValueError("cost table needs batches >= 1 and seconds >= 0")
        self.max_batch = max(self._table)

    def compute_s(self, batch: int) -> float:
        """Simulated forward seconds for one batch of ``batch`` requests."""
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        if batch in self._table:
            return self._table[batch]
        return self._table[self.max_batch] * batch / self.max_batch

    def cost(self, batch: int) -> PlanCost:
        """A :class:`PlanCost` view (compute only) of :meth:`compute_s`."""
        return PlanCost(compute_s=self.compute_s(batch))


class NetForwardCostModel:
    """Forward-only cost of a model-zoo network, cached per batch share.

    Parameters
    ----------
    builder:
        A model-zoo build function: ``builder(batch_size=b) -> Net``.
    name:
        Model name for reports (defaults to the first built net's name).
    """

    def __init__(self, builder: Callable[..., object], name: str = "") -> None:
        self._builder = builder
        self.name = name
        #: cg-share -> (representative batch, total forward PlanCost).
        self._by_share: dict[int, tuple[int, PlanCost]] = {}
        self._n_core_groups = SW_PARAMS.n_core_groups

    def _share(self, batch: int) -> int:
        """Per-core-group batch share (Algorithm 1: ceil(batch / 4))."""
        return max(1, -(-batch // self._n_core_groups))

    def _price(self, batch: int) -> PlanCost:
        net = self._builder(batch_size=batch)
        net.set_phase("test")
        if not self.name:
            self.name = net.name
        return combine_sequential(
            [layer.sw_forward_cost() for layer in net.layers]
        )

    def cost(self, batch: int) -> PlanCost:
        """Total forward :class:`PlanCost` of one batch, cached per share."""
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        share = self._share(batch)
        if share not in self._by_share:
            self._by_share[share] = (batch, self._price(batch))
        return self._by_share[share][1]

    def compute_s(self, batch: int) -> float:
        """Simulated forward seconds for one batch of ``batch`` requests."""
        return self.cost(batch).total_s

    def plan_table(self, batches: tuple[int, ...]) -> list[dict[str, object]]:
        """Per-conv-layer forward plan choice at each serving batch size.

        One row per (batch, conv layer): the winning plan name and its
        priced time, from the same autotuner the training path uses — the
        "how batch size interacts with plan selection" data the serve CLI
        prints under ``--explain-plans``.
        """
        rows: list[dict[str, object]] = []
        for b in batches:
            net = self._builder(batch_size=b)
            net.set_phase("test")
            for layer in net.layers:
                if layer.type != "Convolution":
                    continue
                choice = layer.chosen_plans()
                rows.append(
                    {
                        "batch": b,
                        "layer": layer.name,
                        "plan": choice["forward"],
                        "forward_s": layer.sw_forward_cost().total_s,
                    }
                )
        return rows
