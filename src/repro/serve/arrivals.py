"""Seeded, replayable request-arrival profiles for the serving engine.

An :class:`ArrivalPlan` is the serving-side analogue of a
:class:`~repro.faults.plan.FaultPlan`: a deterministic "what traffic shows
up when" schedule addressed by a seed string with the same replay spec as
the fault and fuzzer seeds — ``"<profile>:<base_seed_hex>:<index>"``, e.g.
``"poisson:0xc0ffee:3"`` — so any serving result reported by CI can be
replayed locally bit-for-bit.

Three arrival profiles:

* ``poisson`` — memoryless traffic: i.i.d. exponential inter-arrival
  times at the requested rate (the classic open-loop load model);
* ``bursty`` — a two-state modulated Poisson process: the generator
  alternates between a *hot* state (several times the nominal rate) and a
  *calm* state (a fraction of it), with geometrically distributed state
  lengths. Mean rate matches ``rate_rps``; the bursts are what stress the
  admission queue;
* ``steady`` — fixed ``1/rate`` spacing, no randomness (the degenerate
  profile the batching-invariant tests reason about analytically).

Timestamps are *simulated* seconds from the start of the serving session,
strictly non-decreasing, generated in one pass from a
``numpy.random.Generator`` seeded by ``(base_seed, crc32(profile), index)``
— the same derivation :class:`~repro.faults.plan.FaultPlan` uses, so one
hex namespace covers both planes.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

#: Default arrival namespace (a serving-flavoured sibling of the chaos seed).
BASE_SEED = 0xC0FFEE

#: The traffic profiles a seed string may name.
PROFILES = ("poisson", "bursty", "steady")

#: Bursty profile shape: hot/calm rate multipliers and the mean state
#: length (in requests). States alternate with equal expected request
#: counts, so the mean inter-arrival gap is the average of the per-state
#: gaps: (1/HOT + 1/CALM) / 2r = (1/3 + 5/3) / 2r = 1/r — the mean rate
#: stays exactly the nominal ``rate_rps`` while bursts run at 3x.
BURST_HOT_FACTOR = 3.0
BURST_CALM_FACTOR = 3.0 / 5.0
BURST_MEAN_STATE_LEN = 16


def seed_string(profile: str, index: int, base_seed: int = BASE_SEED) -> str:
    """Canonical replayable address of one arrival schedule."""
    return f"{profile}:{base_seed:#x}:{index}"


def parse_seed_string(s: str) -> tuple[str, int, int]:
    """Invert :func:`seed_string` -> ``(profile, base_seed, index)``."""
    try:
        profile, base_hex, index = s.rsplit(":", 2)
        return profile, int(base_hex, 16), int(index)
    except ValueError as exc:
        raise ValueError(
            f"malformed arrival seed {s!r} (expected '<profile>:<hex>:<index>')"
        ) from exc


@dataclass(frozen=True)
class Request:
    """One inference request: an id and a simulated arrival time."""

    rid: int
    arrival_s: float


@dataclass(frozen=True)
class ArrivalPlan:
    """One seeded arrival schedule: ``n_requests`` at ``rate_rps`` mean rate.

    Immutable; :meth:`generate` is a pure function of the plan, so two
    plans built from the same seed and knobs produce identical request
    streams (pinned by ``tests/test_serve_arrivals.py``).
    """

    seed: str
    profile: str
    rate_rps: float
    n_requests: int

    @classmethod
    def from_seed(cls, seed: str, *, rate_rps: float, n_requests: int) -> "ArrivalPlan":
        """Build the plan a seed string addresses for a given load shape."""
        profile, _, _ = parse_seed_string(seed)
        if profile not in PROFILES:
            raise ValueError(
                f"unknown arrival profile {profile!r} (choose from {PROFILES})"
            )
        if rate_rps <= 0:
            raise ValueError(f"rate_rps must be > 0, got {rate_rps!r}")
        if n_requests < 1:
            raise ValueError(f"n_requests must be >= 1, got {n_requests!r}")
        return cls(
            seed=seed, profile=profile, rate_rps=float(rate_rps),
            n_requests=int(n_requests),
        )

    def _rng(self) -> np.random.Generator:
        profile, base_seed, index = parse_seed_string(self.seed)
        return np.random.default_rng(
            [base_seed, zlib.crc32(profile.encode("utf-8")), index]
        )

    def generate(self) -> tuple[Request, ...]:
        """The full request stream, sorted by (non-decreasing) arrival time."""
        if self.profile == "steady":
            gaps = np.full(self.n_requests, 1.0 / self.rate_rps)
        elif self.profile == "poisson":
            gaps = self._rng().exponential(1.0 / self.rate_rps, size=self.n_requests)
        else:  # bursty
            gaps = self._bursty_gaps()
        arrivals = np.cumsum(gaps)
        return tuple(
            Request(rid=i, arrival_s=float(t)) for i, t in enumerate(arrivals)
        )

    def _bursty_gaps(self) -> np.ndarray:
        rng = self._rng()
        gaps = np.empty(self.n_requests)
        hot = bool(rng.integers(0, 2))
        i = 0
        while i < self.n_requests:
            run = int(rng.geometric(1.0 / BURST_MEAN_STATE_LEN))
            run = min(run, self.n_requests - i)
            factor = BURST_HOT_FACTOR if hot else BURST_CALM_FACTOR
            gaps[i : i + run] = rng.exponential(
                1.0 / (self.rate_rps * factor), size=run
            )
            i += run
            hot = not hot
        return gaps

    def describe(self) -> str:
        """One-line human summary (used by the serve CLI report)."""
        return (
            f"profile={self.profile} rate={self.rate_rps:g} req/s "
            f"n={self.n_requests} seed={self.seed}"
        )
