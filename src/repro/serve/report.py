"""Serving reports: per-request latency accounting and SLO attainment.

Every request that enters the engine leaves a :class:`RequestRecord` with
its latency split into the three phases ``docs/serving.md`` defines:

* ``queue_s`` — waiting for the engine to finish earlier batches (the
  server was busy when the request arrived);
* ``batch_s`` — waiting for the batch to form once the server was free
  (the dynamic-batching delay, bounded by ``max_wait_s``);
* ``compute_s`` — the dispatched batch's forward time (shared by every
  request in the batch).

The :class:`ServeReport` aggregates them into p50/p95/p99 latency
percentiles (reusing the exact linear-interpolation percentile the metrics
histograms pin against NumPy), throughput, *goodput* (within-SLO
completions per second), and SLO attainment over all offered requests —
shed requests count as SLO misses, never as successes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.metrics.registry import Histogram
from repro.utils.tables import Table
from repro.utils.units import format_time

#: Version tag of the JSON document ``python -m repro serve --json`` emits.
SERVE_SCHEMA = "repro-serve/1"


@dataclass(frozen=True)
class RequestRecord:
    """One request's fate: either a latency split or a shed marker."""

    rid: int
    arrival_s: float
    shed: bool = False
    queue_s: float = 0.0
    batch_s: float = 0.0
    compute_s: float = 0.0
    batch_id: int = -1
    batch_size: int = 0

    @property
    def latency_s(self) -> float:
        return self.queue_s + self.batch_s + self.compute_s

    @property
    def done_s(self) -> float:
        return self.arrival_s + self.latency_s


def _percentile(samples: list[float], q: float) -> float:
    """NumPy-linear percentile via the metrics histogram (0.0 when empty)."""
    if not samples:
        return 0.0
    h = Histogram()
    for s in samples:
        h.observe(s)
    return h.percentile(q)


@dataclass
class ServeReport:
    """Everything one serving session measured."""

    model: str
    arrivals: str
    n_requests: int
    max_batch: int
    max_wait_s: float
    queue_bound: int
    slo_s: float
    makespan_s: float
    n_batches: int
    records: list[RequestRecord] = field(default_factory=list)
    fault_seed: str | None = None

    # ------------------------------------------------------------------ #
    # aggregates
    # ------------------------------------------------------------------ #
    @property
    def completed(self) -> list[RequestRecord]:
        return [r for r in self.records if not r.shed]

    @property
    def n_shed(self) -> int:
        return sum(1 for r in self.records if r.shed)

    @property
    def n_completed(self) -> int:
        return len(self.records) - self.n_shed

    @property
    def throughput_rps(self) -> float:
        """Completed requests per simulated second."""
        return self.n_completed / self.makespan_s if self.makespan_s > 0 else 0.0

    @property
    def n_within_slo(self) -> int:
        return sum(1 for r in self.completed if r.latency_s <= self.slo_s)

    @property
    def goodput_rps(self) -> float:
        """Within-SLO completions per simulated second."""
        return self.n_within_slo / self.makespan_s if self.makespan_s > 0 else 0.0

    @property
    def slo_attainment(self) -> float:
        """Fraction of *offered* requests served within the SLO."""
        return self.n_within_slo / self.n_requests if self.n_requests else 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.n_completed / self.n_batches if self.n_batches else 0.0

    def latency_percentile(self, q: float) -> float:
        return _percentile([r.latency_s for r in self.completed], q)

    def phase_means(self) -> dict[str, float]:
        """Mean queue/batch/compute seconds over completed requests."""
        done = self.completed
        n = len(done) or 1
        return {
            "queue_s": sum(r.queue_s for r in done) / n,
            "batch_s": sum(r.batch_s for r in done) / n,
            "compute_s": sum(r.compute_s for r in done) / n,
        }

    # ------------------------------------------------------------------ #
    # serialization / rendering
    # ------------------------------------------------------------------ #
    def to_json_dict(self) -> dict[str, Any]:
        return {
            "schema": SERVE_SCHEMA,
            "model": self.model,
            "arrivals": self.arrivals,
            "fault_seed": self.fault_seed,
            "config": {
                "max_batch": self.max_batch,
                "max_wait_s": self.max_wait_s,
                "queue_bound": self.queue_bound,
                "slo_s": self.slo_s,
            },
            "n_requests": self.n_requests,
            "n_completed": self.n_completed,
            "n_shed": self.n_shed,
            "n_batches": self.n_batches,
            "mean_batch_size": self.mean_batch_size,
            "makespan_s": self.makespan_s,
            "throughput_rps": self.throughput_rps,
            "goodput_rps": self.goodput_rps,
            "slo_attainment": self.slo_attainment,
            "latency_s": {
                "p50": self.latency_percentile(50),
                "p95": self.latency_percentile(95),
                "p99": self.latency_percentile(99),
            },
            "phase_means_s": self.phase_means(),
        }

    def write_json(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        return path

    def render(self) -> str:
        """Terminal rendering: headline, percentile table, phase split."""
        head = (
            f"served {self.n_completed}/{self.n_requests} request(s) of "
            f"{self.model!r} in {format_time(self.makespan_s)} simulated "
            f"({self.n_batches} batch(es), mean size "
            f"{self.mean_batch_size:.2f}, {self.n_shed} shed)"
        )
        if self.fault_seed:
            head += f"\nfaults: {self.fault_seed}"
        table = Table(
            headers=("metric", "value"),
            title=f"latency vs SLO {format_time(self.slo_s)} ({self.arrivals})",
        )
        for q in (50, 95, 99):
            table.add_row(f"p{q} latency", format_time(self.latency_percentile(q)))
        phases = self.phase_means()
        table.add_row("mean queue wait", format_time(phases["queue_s"]))
        table.add_row("mean batch wait", format_time(phases["batch_s"]))
        table.add_row("mean compute", format_time(phases["compute_s"]))
        table.add_row("throughput", f"{self.throughput_rps:.2f} req/s")
        table.add_row("goodput (within SLO)", f"{self.goodput_rps:.2f} req/s")
        table.add_row("SLO attainment", f"{100 * self.slo_attainment:.1f}%")
        return "\n".join([head, "", table.render()])
