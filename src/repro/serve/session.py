"""Serving sessions: the workload behind ``python -m repro serve``.

Glues the pieces together for the CLI and the harness: build the
batch-size-sensitive cost model from a model-zoo builder, realize the
seeded arrival stream, optionally install a fault plan, and run the
engine — emitting trace spans and ``serve.*`` metrics into whatever
ambient collectors the caller installed.
"""

from __future__ import annotations

from contextlib import ExitStack

from repro.faults.injector import FaultInjector, injecting
from repro.faults.plan import FaultPlan
from repro.metrics.registry import MetricsRegistry, collecting
from repro.serve.arrivals import ArrivalPlan
from repro.serve.costmodel import NetForwardCostModel
from repro.serve.engine import ServeConfig, ServingEngine
from repro.serve.report import ServeReport
from repro.trace.tracer import Tracer, tracing

#: Target engine utilization the auto-derived arrival rate aims at: busy
#: enough that dynamic batching forms real batches, slack enough that the
#: queue stays bounded.
AUTO_RATE_UTILIZATION = 0.6


def auto_rate(cost_model, config: ServeConfig) -> float:
    """Default offered load: ~60% of the batched engine's capacity.

    The engine serves at most ``max_batch / compute_s(max_batch)`` requests
    per second; driving it at a fraction of that keeps the session in the
    regime where batching wins but latency stays finite — the "default
    operating point" of the serving benchmarks.
    """
    capacity = config.max_batch / cost_model.compute_s(config.max_batch)
    return AUTO_RATE_UTILIZATION * capacity


def run_serving(
    builder,
    *,
    arrivals_seed: str,
    n_requests: int = 200,
    rate_rps: float | None = None,
    config: ServeConfig | None = None,
    fault_seed: str | None = None,
    model: str = "",
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
) -> ServeReport:
    """Serve a seeded arrival stream through one model-zoo network.

    ``rate_rps=None`` derives the default operating point with
    :func:`auto_rate`. The cost model is primed for every batch share up to
    ``max_batch`` *before* ``tracer``/``registry`` are installed, so the
    trace holds only serving spans — never the plan search's churn. When
    ``fault_seed`` is given, the engine runs under that fault plan.
    """
    cfg = config or ServeConfig()
    cost_model = NetForwardCostModel(builder, name=model)
    for share in range(1, cost_model._share(cfg.max_batch) + 1):
        cost_model.cost(share * cost_model._n_core_groups)
    rate = rate_rps if rate_rps is not None else auto_rate(cost_model, cfg)
    plan = ArrivalPlan.from_seed(
        arrivals_seed, rate_rps=rate, n_requests=n_requests
    )
    engine = ServingEngine(cost_model, cfg)

    with ExitStack() as stack:
        if tracer is not None:
            stack.enter_context(tracing(tracer))
        if registry is not None:
            stack.enter_context(collecting(registry))
        if fault_seed is not None:
            fault_plan = FaultPlan.from_seed(fault_seed, ranks=1, iterations=1)
            stack.enter_context(injecting(FaultInjector(fault_plan)))
        return engine.run(
            plan.generate(), model=cost_model.name, arrivals=plan.describe()
        )
