"""The batched-inference serving engine on the simulated clock.

A discrete-event loop over one model replica (one SW26010 node — its four
core groups already batch-parallelize inside the cost model). Requests from
an :class:`~repro.serve.arrivals.ArrivalPlan` enter a bounded admission
queue; a Clipper-style dynamic batcher dispatches a batch when it is full
(``max_batch``) **or** the oldest admitted request has waited
``max_wait_s`` **or** no future arrival can ever grow the batch; the batch
then occupies the engine for the cost model's forward time. Arrivals that
find the queue at ``queue_bound`` are *shed* — under a chaos fault plan the
engine degrades by shedding load and stretching compute, never by dying.

Scheduling invariants (pinned by ``tests/test_serve_engine.py``):

* a batch never exceeds ``max_batch`` requests;
* admission is FIFO and batches preserve arrival order;
* when the engine is idle, no admitted request waits past its
  ``max_wait_s`` deadline before dispatch;
* event time only moves forward, and the result is a pure function of
  (arrivals, cost model, config, ambient fault plan) — no wall clock.

Ambient integration mirrors the training-side subsystems: ``serve.*``
metrics and ``request_queued`` / ``batch_dispatch`` / ``batch_compute``
trace spans are emitted only when a collector is installed (the engine
itself allocates none), and fault hooks consult the ambient injector
(compute stretched by straggler/mesh degradation, per-batch transient
retries through the shared ``comm`` site).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Sequence

from repro.faults.injector import active as _injector, transient_delay
from repro.metrics.registry import active as _metrics
from repro.serve.arrivals import Request
from repro.serve.report import RequestRecord, ServeReport
from repro.trace.scaling import active as _scaling
from repro.trace.tracer import Span, active as _tracer


@dataclass(frozen=True)
class ServeConfig:
    """The batching and SLO knobs of one serving session."""

    #: Largest batch one dispatch may carry.
    max_batch: int = 8
    #: Longest an admitted request may wait for its batch to form while
    #: the engine is idle (the dynamic-batching deadline).
    max_wait_s: float = 0.010
    #: Admission-queue capacity; arrivals beyond it are shed.
    queue_bound: int = 64
    #: Latency objective requests are scored against.
    slo_s: float = 0.050

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {self.max_wait_s}")
        if self.queue_bound < 1:
            raise ValueError(f"queue_bound must be >= 1, got {self.queue_bound}")
        if self.slo_s <= 0:
            raise ValueError(f"slo_s must be > 0, got {self.slo_s}")


class ServingEngine:
    """Runs one arrival stream through dynamic batching and forward compute.

    ``cost_model`` is anything with ``compute_s(batch) -> float`` (a
    :class:`~repro.serve.costmodel.NetForwardCostModel` in production, a
    :class:`~repro.serve.costmodel.TableCostModel` in tests).
    """

    def __init__(self, cost_model, config: ServeConfig | None = None) -> None:
        self.cost_model = cost_model
        self.config = config or ServeConfig()

    # ------------------------------------------------------------------ #
    def run(
        self,
        requests: Sequence[Request],
        *,
        model: str = "",
        arrivals: str = "",
    ) -> ServeReport:
        """Serve every request; returns the full latency report."""
        cfg = self.config
        tr = _tracer()
        mx = _metrics()
        fi = _injector()
        # Degradations apply to the whole session: a straggling node or a
        # degraded CPE mesh slows every batch by a constant factor.
        slow = 1.0
        if fi.enabled:
            slow = max(fi.comm_scale(0, 0), fi.mesh_degrade())

        pending = sorted(requests, key=lambda r: (r.arrival_s, r.rid))
        queue: deque[Request] = deque()
        records: list[RequestRecord] = []
        queued_spans: dict[int, Span] = {}
        prev_batch_span: Span | None = None
        t = 0.0  # event time (simulated seconds)
        t_free = 0.0  # when the engine last went idle
        i = 0  # next not-yet-admitted arrival
        n_batches = 0

        def admit_until(now: float) -> None:
            nonlocal i
            while i < len(pending) and pending[i].arrival_s <= now:
                req = pending[i]
                i += 1
                if len(queue) >= cfg.queue_bound:
                    records.append(
                        RequestRecord(rid=req.rid, arrival_s=req.arrival_s, shed=True)
                    )
                    if mx.enabled:
                        mx.count("serve.requests", 1, outcome="shed")
                    if tr.enabled:
                        tr.instant_event(
                            f"req{req.rid} shed", "request_shed",
                            track="serve/requests", start=req.arrival_s,
                            args={"rid": req.rid, "depth": len(queue)},
                        )
                    continue
                queue.append(req)
                if mx.enabled:
                    mx.high_water("serve.queue_depth", len(queue))
                if tr.enabled:
                    queued_spans[req.rid] = tr.instant_event(
                        f"req{req.rid}", "request_queued",
                        track="serve/requests", start=req.arrival_s,
                        args={"rid": req.rid, "depth": len(queue)},
                    )

        while i < len(pending) or queue:
            if not queue:
                t = max(t, pending[i].arrival_s)
            admit_until(t)
            if not queue:
                continue  # everything admitted at t was shed; jump again
            deadline = queue[0].arrival_s + cfg.max_wait_s
            exhausted = i >= len(pending)
            if len(queue) < cfg.max_batch and t < deadline and not exhausted:
                # Wait for whichever comes first: the batch-forming deadline
                # or the next arrival that could grow the batch.
                t = min(deadline, pending[i].arrival_s)
                continue

            # --- dispatch ------------------------------------------------ #
            batch = [queue.popleft() for _ in range(min(len(queue), cfg.max_batch))]
            size = len(batch)
            base_s = self.cost_model.compute_s(size) * slow
            sc = _scaling()
            if sc.enabled:
                # What-if validation: one multiply on the batch's forward
                # time, the same operation the projection applies.
                base_s *= sc.factor("batch")
            compute_s = base_s + transient_delay(
                "comm", base_s, track="serve/engine", at_s=t
            )
            if tr.enabled:
                # When this batch *could* have dispatched, engine
                # availability aside: its composition's earliest trigger
                # (full / deadline / arrivals exhausted), no earlier than
                # its last member's arrival. The critical-path graph floors
                # the batch there; the gap to the recorded start is engine
                # backlog, which a what-if can shrink.
                triggers = [batch[0].arrival_s + cfg.max_wait_s]
                if size == cfg.max_batch:
                    triggers.append(batch[-1].arrival_s)
                if i >= len(pending):
                    triggers.append(pending[-1].arrival_s if pending else t)
                ready_s = max(batch[-1].arrival_s, min(triggers))
                tr.instant_event(
                    f"batch{n_batches}", "batch_dispatch",
                    track="serve/scheduler", start=t,
                    args={"batch_id": n_batches, "size": size,
                          "backlog": len(queue)},
                )
                batch_span = tr.emit(
                    f"batch{n_batches} x{size}", "batch_compute",
                    track="serve/engine", start=t, dur=compute_s,
                    args={"batch_id": n_batches, "size": size,
                          "ready_s": ready_s},
                )
                for req in batch:
                    queued = queued_spans.pop(req.rid, None)
                    if queued is not None:
                        tr.edge(queued, batch_span)
                if prev_batch_span is not None:
                    # One engine: batches execute serially.
                    tr.edge(prev_batch_span, batch_span)
                prev_batch_span = batch_span
            for req in batch:
                queue_s = max(0.0, t_free - req.arrival_s)
                batch_s = t - max(req.arrival_s, t_free)
                rec = RequestRecord(
                    rid=req.rid,
                    arrival_s=req.arrival_s,
                    queue_s=queue_s,
                    batch_s=batch_s,
                    compute_s=compute_s,
                    batch_id=n_batches,
                    batch_size=size,
                )
                records.append(rec)
                if mx.enabled:
                    mx.count("serve.requests", 1, outcome="completed")
                    mx.observe("serve.queue_wait_s", queue_s)
                    mx.observe("serve.batch_wait_s", batch_s)
                    mx.observe("serve.latency_s", rec.latency_s)
                    if rec.latency_s > cfg.slo_s:
                        mx.count("serve.slo_miss", 1)
            if mx.enabled:
                mx.count("serve.batches", 1)
                mx.observe("serve.batch_size", size)
                mx.count("serve.compute_s", compute_s)
            n_batches += 1
            t = t_free = t + compute_s

        records.sort(key=lambda r: (r.arrival_s, r.rid))
        return ServeReport(
            model=model or getattr(self.cost_model, "name", "") or "model",
            arrivals=arrivals,
            n_requests=len(pending),
            max_batch=cfg.max_batch,
            max_wait_s=cfg.max_wait_s,
            queue_bound=cfg.queue_bound,
            slo_s=cfg.slo_s,
            makespan_s=t,
            n_batches=n_batches,
            records=records,
            fault_seed=fi.plan.seed if fi.enabled else None,
        )
