"""Scalability study (paper Figs. 10-11).

Sweeps node counts for each (network, sub-mini-batch) configuration and
reports weak-scaling speedups and communication fractions. Configurations
default to the paper's: AlexNet with sub-mini-batch 64/128/256 and
ResNet-50 with 32/64, on supernodes of 256 nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.parallel.ssgd import SSGDIterationModel


#: The node counts plotted in Fig. 10/11 (powers of two, 2..1024).
PAPER_NODE_COUNTS = (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


@dataclass(frozen=True)
class ScalingPoint:
    """One (config, node-count) sample of the study."""

    label: str
    n_nodes: int
    iteration_s: float
    speedup: float
    comm_fraction: float
    #: Allreduce seconds hidden behind backward (0 for the fused path).
    overlap_hidden_s: float = 0.0


@dataclass
class ScalingStudy:
    """Collects scaling curves for several training configurations."""

    node_counts: tuple[int, ...] = PAPER_NODE_COUNTS
    configs: dict[str, SSGDIterationModel] = field(default_factory=dict)

    def add_config(self, label: str, model: SSGDIterationModel) -> None:
        """Register a (net, batch) configuration under ``label``."""
        if label in self.configs:
            raise ValueError(f"duplicate scaling config {label!r}")
        self.configs[label] = model

    def run(self) -> list[ScalingPoint]:
        """Evaluate every config at every node count."""
        points: list[ScalingPoint] = []
        for label, model in self.configs.items():
            for n in self.node_counts:
                breakdown = model.breakdown(n)
                points.append(
                    ScalingPoint(
                        label=label,
                        n_nodes=n,
                        iteration_s=breakdown.total_s,
                        speedup=model.speedup(n),
                        comm_fraction=breakdown.comm_fraction,
                        overlap_hidden_s=breakdown.overlap_hidden_s,
                    )
                )
        return points

    def curve(self, label: str) -> list[ScalingPoint]:
        """One config's points across all node counts."""
        model = self.configs[label]
        return [p for p in self.run() if p.label == label]
