"""Asynchronous SGD with stale gradients (the Inspur-Caffe scheme).

The paper's related work describes Inspur-Caffe as "an MPI-based Caffe fork
that exploits [the] parameter-server approach with stale asynchronous
gradient updates" — the main alternative to the synchronous scheme swCaffe
adopts. This trainer executes it: workers compute gradients against the
parameter version they last pulled, and the server applies them as they
arrive, so a gradient computed at version ``v`` may be applied at version
``v + staleness``.

Asynchrony removes the synchronization barrier (no allreduce, no waiting
for stragglers) at the cost of gradient staleness; the tests show the
convergence penalty growing with staleness, which is the trade-off that
made the paper choose synchronous SGD "considering the high quality of
network and balanced performance per node".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.frame.net import Net
from repro.parallel.packing import GradientPacker


@dataclass
class AsyncTrainStats:
    """Records of an asynchronous run."""

    losses: list[float] = field(default_factory=list)
    applied_updates: int = 0
    mean_staleness: float = 0.0

    @property
    def iterations(self) -> int:
        return len(self.losses)


class AsyncSGDTrainer:
    """Round-robin simulation of asynchronous parameter-server SGD.

    One *logical* net evaluates gradients (workers share architecture and
    data source distribution; what differs per worker is *when* it pulled
    parameters). The scheduler interleaves workers round-robin: at each
    tick one worker finishes a gradient computed against the parameters it
    pulled ``staleness`` ticks ago, the server applies it immediately, and
    the worker re-pulls. ``staleness = 0`` degenerates to sequential SGD.

    Parameters
    ----------
    net_factory:
        Builds the (single) evaluation net.
    n_workers:
        Concurrent workers; with round-robin scheduling each gradient is
        applied ``n_workers - 1`` updates after the pull that produced it.
    base_lr:
        Learning rate (no momentum — the classic downpour configuration).
    """

    def __init__(
        self,
        net_factory: Callable[[], Net],
        n_workers: int,
        base_lr: float = 0.01,
    ) -> None:
        if n_workers <= 0:
            raise ValueError("need at least one worker")
        self.net = net_factory()
        self.packer = GradientPacker(self.net.params)
        self.n_workers = int(n_workers)
        self.base_lr = float(base_lr)
        # Pending gradients: (gradient, version_pulled).
        self._pending: deque[tuple[np.ndarray, int]] = deque()
        self._version = 0
        self._staleness_sum = 0

    def _evaluate_gradient(self) -> tuple[float, np.ndarray]:
        """Forward/backward at the *current* parameters."""
        self.net.zero_param_diffs()
        losses = self.net.forward()
        self.net.backward()
        return sum(losses.values()), self.packer.pack_diffs()

    def step(self, n_iters: int = 1) -> AsyncTrainStats:
        """Run ``n_iters`` gradient evaluations with async application.

        The pipeline keeps ``n_workers`` gradients in flight: a gradient
        evaluated at version ``v`` is applied at version
        ``v + n_workers - 1``.
        """
        stats = AsyncTrainStats()
        for _ in range(n_iters):
            loss, grad = self._evaluate_gradient()
            stats.losses.append(loss)
            self._pending.append((grad, self._version))
            # Apply the oldest in-flight gradient once the pipe is full.
            if len(self._pending) >= self.n_workers:
                stale_grad, pulled_at = self._pending.popleft()
                flat = self.packer.pack_data().astype(np.float64)
                flat -= self.base_lr * stale_grad.astype(np.float64)
                self._write_params(flat)
                self._staleness_sum += self._version - pulled_at
                self._version += 1
                stats.applied_updates += 1
        if stats.applied_updates:
            stats.mean_staleness = self._staleness_sum / max(1, stats.applied_updates)
        return stats

    def _write_params(self, flat: np.ndarray) -> None:
        pos = 0
        for p in self.net.params:
            n = p.count
            p.data = flat[pos : pos + n].reshape(p.shape).astype(p.dtype)
            pos += n
