"""Functional distributed SSGD trainer over simulated workers.

This is the *executable* counterpart of the timing model: ``k`` net
replicas train on disjoint data shards; after each backward pass the packed
gradients are allreduced with a real simulated collective (data actually
moves through the algorithm) and every replica applies the same update.

The defining invariant — replicas stay bit-identical, and the result equals
single-process training on the concatenated batch — is what the tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.frame.net import Net
from repro.frame.solver import SGDSolver
from repro.parallel.packing import GradientPacker
from repro.simmpi.comm import SimComm
from repro.simmpi.collectives import rhd_allreduce, ring_allreduce, topo_aware_allreduce
from repro.simmpi.reorder import block_placement
from repro.topology.fabric import TaihuLightFabric

ALGORITHMS: dict[str, Callable] = {
    "ring": ring_allreduce,
    "rhd": rhd_allreduce,
    "topo-aware": topo_aware_allreduce,
}


@dataclass
class DistributedStats:
    """Per-iteration records of a distributed run."""

    losses: list[float] = field(default_factory=list)
    comm_time_s: float = 0.0

    @property
    def iterations(self) -> int:
        return len(self.losses)


class DistributedTrainer:
    """Data-parallel synchronous SGD across simulated workers.

    Parameters
    ----------
    net_factory:
        Builds one identically-initialized net replica per call (must be
        deterministic — same seeds — or the replicas diverge immediately).
    n_workers:
        Worker (node) count.
    algorithm:
        ``"ring"``, ``"rhd"`` or ``"topo-aware"``.
    nodes_per_supernode:
        Supernode size for the simulated fabric.
    base_lr, momentum, weight_decay:
        Solver hyperparameters (identical on every worker).
    """

    def __init__(
        self,
        net_factory: Callable[[int], Net],
        n_workers: int,
        algorithm: str = "topo-aware",
        nodes_per_supernode: int = 4,
        base_lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        if n_workers <= 0:
            raise ValueError("need at least one worker")
        if algorithm not in ALGORITHMS:
            raise ValueError(f"unknown algorithm {algorithm!r}; use {set(ALGORITHMS)}")
        self.algorithm = algorithm
        self.nets = [net_factory(rank) for rank in range(n_workers)]
        self.solvers = [
            SGDSolver(
                net,
                base_lr=base_lr,
                momentum=momentum,
                weight_decay=weight_decay,
            )
            for net in self.nets
        ]
        self.packers = [GradientPacker(net.params) for net in self.nets]
        fabric = TaihuLightFabric(
            n_nodes=max(n_workers, nodes_per_supernode),
            nodes_per_supernode=nodes_per_supernode,
        )
        self.comm = SimComm(fabric, block_placement(n_workers, 1))
        self._collective = ALGORITHMS[algorithm]

    @property
    def n_workers(self) -> int:
        return len(self.nets)

    def step(self, n_iters: int = 1) -> DistributedStats:
        """Run synchronized iterations across all workers."""
        stats = DistributedStats()
        for _ in range(n_iters):
            # Local forward/backward on each worker's shard.
            iter_losses = []
            for net in self.nets:
                net.zero_param_diffs()
                losses = net.forward()
                net.backward()
                iter_losses.append(sum(losses.values()))
            # Allreduce the packed gradients (averaged across workers).
            buffers = [p.pack_diffs() for p in self.packers]
            t0 = self.comm.clock.now
            self._collective(self.comm, buffers, average=True)
            stats.comm_time_s += self.comm.clock.now - t0
            for packer, buf in zip(self.packers, buffers):
                packer.unpack_diffs(buf)
            # Identical updates everywhere.
            for solver in self.solvers:
                solver.apply_update()
                solver.iter += 1
            stats.losses.append(float(np.mean(iter_losses)))
        return stats

    def replicas_in_sync(self, atol: float = 0.0) -> bool:
        """Whether all replicas hold identical parameters."""
        ref = self.packers[0].pack_data()
        return all(
            np.allclose(p.pack_data(), ref, rtol=0, atol=atol)
            for p in self.packers[1:]
        )
