"""Functional distributed SSGD trainer over simulated workers.

This is the *executable* counterpart of the timing model: ``k`` net
replicas train on disjoint data shards; after each backward pass the packed
gradients are allreduced with a real simulated collective (data actually
moves through the algorithm) and every replica applies the same update.

The defining invariant — replicas stay bit-identical, and the result equals
single-process training on the concatenated batch — is what the tests pin.

The trainer is *elastic*: when fault injection (:mod:`repro.faults`) crashes
a rank, the collective raises :class:`~repro.errors.CollectiveTimeout`, and
the trainer shrinks around the dead rank — survivors keep their logical
order, the communicator is rebuilt (renumbered) for the smaller placement,
every surviving solver rolls back to the last snapshot and its data sources
rewind to the resume iteration. The recovered run is bit-identical to an
uninterrupted run at the same effective schedule: full scale up to the
snapshot, surviving scale after it (pinned by ``tests/test_faults_chaos.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import CollectiveTimeout, FaultError
from repro.faults.injector import active as _faults
from repro.faults.recovery import rebuild_comm, rewind_net_sources, survivor_indices
from repro.frame.net import Net
from repro.frame.snapshot import load_solver, save_solver, snapshot_path
from repro.frame.solver import SGDSolver
from repro.metrics.registry import active as _metrics
from repro.parallel.packing import BucketedPacker, GradientPacker
from repro.simmpi.comm import SimComm
from repro.simmpi.nonblocking import IAllreduceQueue
from repro.simmpi.collectives import rhd_allreduce, ring_allreduce, topo_aware_allreduce
from repro.simmpi.reorder import block_placement
from repro.topology.fabric import TaihuLightFabric

ALGORITHMS: dict[str, Callable] = {
    "ring": ring_allreduce,
    "rhd": rhd_allreduce,
    "topo-aware": topo_aware_allreduce,
}


@dataclass
class DistributedStats:
    """Per-iteration records of a distributed run.

    ``losses`` gains one entry per *completed* iteration, including any that
    a later crash rollback discards and reruns; weights, not losses, are
    the recovery-equivalence currency.
    """

    losses: list[float] = field(default_factory=list)
    comm_time_s: float = 0.0
    #: Comm seconds hidden behind backward compute (bucketed runs only).
    comm_hidden_s: float = 0.0

    @property
    def iterations(self) -> int:
        return len(self.losses)


class DistributedTrainer:
    """Data-parallel synchronous SGD across simulated workers.

    Parameters
    ----------
    net_factory:
        Builds one identically-initialized net replica per call (must be
        deterministic — same seeds — or the replicas diverge immediately).
    n_workers:
        Worker (node) count.
    algorithm:
        ``"ring"``, ``"rhd"`` or ``"topo-aware"``.
    nodes_per_supernode:
        Supernode size for the simulated fabric.
    base_lr, momentum, weight_decay:
        Solver hyperparameters (identical on every worker).
    snapshot_prefix:
        When set, the trainer snapshots solver state to
        ``{prefix}_iter_{N}.npz`` (one file — replicas are identical) at
        iteration 0 and every ``snapshot_every`` iterations, which is what
        elastic recovery rolls back to. Without it, a rank crash is fatal.
    snapshot_every:
        Snapshot cadence in iterations.
    bucket_mb:
        When set, gradients are exchanged as size-bounded buckets in
        reverse layer order, each launched as a nonblocking allreduce as
        soon as the backward sweep finishes its layers (the overlap-aware
        path). ``None`` keeps the paper's fused single-buffer exchange.
        Both paths produce bit-identical weights (pinned by the
        conformance suite); only the simulated comm schedule differs.
    backward_s:
        Modeled per-iteration backward-compute seconds, used to place
        bucket launches on the simulated timeline (bucket ``b`` is ready
        once its share of gradient bytes is produced). With the default
        0.0 every bucket launches at the iteration start and no comm is
        hidden — timing enrichment only, never data.
    """

    def __init__(
        self,
        net_factory: Callable[[int], Net],
        n_workers: int,
        algorithm: str = "topo-aware",
        nodes_per_supernode: int = 4,
        base_lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        snapshot_prefix: str | None = None,
        snapshot_every: int = 2,
        bucket_mb: float | None = None,
        backward_s: float = 0.0,
    ) -> None:
        if n_workers <= 0:
            raise ValueError("need at least one worker")
        if algorithm not in ALGORITHMS:
            raise ValueError(f"unknown algorithm {algorithm!r}; use {set(ALGORITHMS)}")
        if snapshot_every <= 0:
            raise ValueError("snapshot_every must be >= 1")
        if bucket_mb is not None and bucket_mb <= 0:
            raise ValueError("bucket_mb must be positive")
        if backward_s < 0:
            raise ValueError("backward_s must be >= 0")
        self.algorithm = algorithm
        self.nodes_per_supernode = nodes_per_supernode
        self.bucket_mb = bucket_mb
        self.backward_s = backward_s
        self.nets = [net_factory(rank) for rank in range(n_workers)]
        self.solvers = [
            SGDSolver(
                net,
                base_lr=base_lr,
                momentum=momentum,
                weight_decay=weight_decay,
            )
            for net in self.nets
        ]
        self.packers = [self._make_packer(net) for net in self.nets]
        fabric = TaihuLightFabric(
            n_nodes=max(n_workers, nodes_per_supernode),
            nodes_per_supernode=nodes_per_supernode,
        )
        self.comm = SimComm(fabric, block_placement(n_workers, 1))
        self._collective = ALGORITHMS[algorithm]
        # --- elastic state ------------------------------------------------
        #: External worker ids still participating; logical rank i is
        #: ``active[i]``. Starts as the identity roster.
        self.active: list[int] = list(range(n_workers))
        #: Completed-iteration counter across step() calls and rollbacks.
        self.global_iter: int = 0
        #: Recovery log: ``(resume_iteration, surviving external ids)`` per
        #: crash, exactly what a fault-free reference run must replay with
        #: :meth:`shrink_to` to reproduce the recovered weights.
        self.recoveries: list[tuple[int, tuple[int, ...]]] = []
        self.snapshot_prefix = snapshot_prefix
        self.snapshot_every = snapshot_every
        self._last_snapshot = 0
        #: Nonblocking launch queue of the iteration in flight (bucketed
        #: runs only); cleared by :meth:`_recover` so a crash never leaks
        #: launched-but-uncompleted bucket state across a rebuild.
        self._queue: IAllreduceQueue | None = None
        if snapshot_prefix is not None:
            save_solver(self.solvers[0], snapshot_path(snapshot_prefix, 0))

    def _make_packer(self, net: Net):
        """Fused packer by default; bucketed when ``bucket_mb`` is set."""
        if self.bucket_mb is None:
            return GradientPacker(net.params)
        layer_ids = [
            i for i, layer in enumerate(net.layers) for _ in layer.params
        ]
        return BucketedPacker(
            net.params, self.bucket_mb * 1e6, layer_ids=layer_ids
        )

    @property
    def n_workers(self) -> int:
        return len(self.nets)

    def step(self, n_iters: int = 1) -> DistributedStats:
        """Run synchronized iterations across all (surviving) workers.

        Counts *effective* iterations: a crash rolls ``global_iter`` back to
        the last snapshot and the discarded span is rerun at the surviving
        scale, so the trainer always ends ``n_iters`` effective iterations
        ahead of where it started.
        """
        stats = DistributedStats()
        end = self.global_iter + n_iters
        while self.global_iter < end:
            fi = _faults()
            if fi.enabled:
                fi.begin_iteration(self.global_iter)
                fi.set_rank_map(self.active)
                self._mark_failures(fi)
            try:
                self._one_iteration(stats)
            except CollectiveTimeout as exc:
                self._recover(exc.ranks)
                continue
            self.global_iter += 1
            if (
                self.snapshot_prefix is not None
                and self.global_iter % self.snapshot_every == 0
            ):
                self._snapshot()
        return stats

    def _one_iteration(self, stats: DistributedStats) -> None:
        """One synchronous iteration: local grads, allreduce, update."""
        if self.bucket_mb is not None:
            self._one_iteration_bucketed(stats)
            return
        # Local forward/backward on each worker's shard.
        iter_losses = []
        for net in self.nets:
            net.zero_param_diffs()
            losses = net.forward()
            net.backward()
            iter_losses.append(sum(losses.values()))
        # Allreduce the packed gradients (averaged across workers).
        buffers = [p.pack_diffs() for p in self.packers]
        t0 = self.comm.clock.now
        self._collective(self.comm, buffers, average=True)
        stats.comm_time_s += self.comm.clock.now - t0
        for packer, buf in zip(self.packers, buffers):
            packer.unpack_diffs(buf)
        # Identical updates everywhere.
        for solver in self.solvers:
            solver.apply_update()
            solver.iter += 1
        stats.losses.append(float(np.mean(iter_losses)))

    def _one_iteration_bucketed(self, stats: DistributedStats) -> None:
        """Overlap-aware iteration: per-bucket nonblocking allreduces.

        Workers 0..k-2 run their full backward first; the last worker's
        backward drives the launch schedule through the net's per-layer
        hooks — once a bucket's layers have all produced gradients on
        every replica, its allreduce launches immediately. Data-wise each
        bucket is reduced with the same algorithm and intra-bucket layout
        as the fused path; time-wise the launches land on the simulated
        timeline where backward compute can still hide them.
        """
        iter_losses = []
        for net in self.nets[:-1]:
            net.zero_param_diffs()
            losses = net.forward()
            net.backward()
            iter_losses.append(sum(losses.values()))
        last = self.nets[-1]
        last.zero_param_diffs()
        losses = last.forward()

        lead = self.packers[0]
        t0 = self.comm.clock.now
        barrier_s = t0 + self.backward_s
        cumfrac = lead.cumulative_fractions()
        queue = IAllreduceQueue(self.comm, self._collective, origin_s=t0)
        self._queue = queue
        launched: list[int] = []

        def launch(bucket: int) -> None:
            bufs = [p.pack_bucket_diffs(bucket) for p in self.packers]
            queue.iallreduce(
                bufs,
                ready_s=t0 + self.backward_s * cumfrac[bucket],
                average=True,
                tag=f"bucket{bucket}",
            )
            launched.append(bucket)

        def hook(layer, index) -> None:
            while (
                len(launched) < lead.n_buckets
                and lead.ready_layer[len(launched)] >= index
            ):
                launch(len(launched))

        last.add_backward_hook(hook)
        try:
            last.backward()
        finally:
            last.remove_backward_hook(hook)
        iter_losses.append(sum(losses.values()))
        # Hook-less nets (or params outside any layer) cannot occur, but a
        # bucket that never triggered must still be exchanged.
        while len(launched) < lead.n_buckets:
            launch(len(launched))
        requests = queue.wait_all(barrier_s=barrier_s)
        self._queue = None
        stats.comm_time_s += self.comm.clock.now - t0
        stats.comm_hidden_s += sum(r.hidden_before(barrier_s) for r in requests)
        for bucket, req in enumerate(requests):
            for worker, packer in enumerate(self.packers):
                packer.unpack_bucket_diffs(bucket, req.buffers[worker])
        for solver in self.solvers:
            solver.apply_update()
            solver.iter += 1
        stats.losses.append(float(np.mean(iter_losses)))

    # ------------------------------------------------------------------ #
    # elastic recovery
    # ------------------------------------------------------------------ #
    def _mark_failures(self, fi) -> None:
        """Translate the plan's crashed external ids into logical ranks."""
        dead_external = fi.failed_ranks() & set(self.active)
        if dead_external:
            self.comm.failed_ranks = frozenset(
                i for i, r in enumerate(self.active) if r in dead_external
            )
            if fi.plan is not None:
                self.comm.timeout_s = fi.plan.timeout_s

    def shrink_to(self, survivors: list[int]) -> None:
        """Drop every worker not in ``survivors`` and renumber the rest.

        ``survivors`` lists external ids (an order-preserving subset of
        :attr:`active`). Used by recovery after a crash and by fault-free
        reference runs replaying a recorded :attr:`recoveries` schedule.
        """
        if not survivors:
            raise FaultError("cannot shrink to zero survivors")
        index_of = {r: i for i, r in enumerate(self.active)}
        missing = [r for r in survivors if r not in index_of]
        if missing:
            raise FaultError(f"survivors {missing} are not active workers")
        keep = [index_of[r] for r in survivors]
        self.nets = [self.nets[i] for i in keep]
        self.solvers = [self.solvers[i] for i in keep]
        self.packers = [self.packers[i] for i in keep]
        self.active = list(survivors)
        self.comm = rebuild_comm(len(survivors), self.nodes_per_supernode)

    def _recover(self, dead_logical: frozenset[int]) -> None:
        """Shrink around crashed ranks and roll back to the last snapshot."""
        if self.snapshot_prefix is None:
            raise FaultError(
                "rank crash without snapshots enabled; pass snapshot_prefix "
                "to DistributedTrainer to allow elastic recovery"
            )
        dead_external = {self.active[i] for i in dead_logical}
        survivors = survivor_indices(self.active, dead_external)
        if not survivors:
            raise FaultError(f"all ranks crashed at iteration {self.global_iter}")
        # Launched-but-uncompleted bucket allreduces die with the old
        # communicator: their buffers must never be unpacked after the
        # rollback, or partially-reduced gradients would leak into the
        # rebuilt roster's first iteration.
        if self._queue is not None:
            self._queue.discard()
            self._queue = None
        self.shrink_to(survivors)
        resume = self._last_snapshot
        path = snapshot_path(self.snapshot_prefix, resume)
        for solver in self.solvers:
            load_solver(solver, path)
        for net in self.nets:
            rewind_net_sources(net, resume)
        self.global_iter = resume
        self.recoveries.append((resume, tuple(survivors)))
        fi = _faults()
        if fi.enabled:
            fi.set_rank_map(self.active)
            fi.note_crash(frozenset(dead_external))
            fi.note_rebuild()
        mx = _metrics()
        if mx.enabled:
            mx.count("faults.rank_rebuilds", 1)

    def _snapshot(self) -> None:
        """Persist solver state; replicas are identical, one file suffices."""
        save_solver(self.solvers[0], snapshot_path(self.snapshot_prefix, self.global_iter))
        if self.global_iter > self._last_snapshot:
            self._last_snapshot = self.global_iter

    def replicas_in_sync(self, atol: float = 0.0) -> bool:
        """Whether all replicas hold identical parameters."""
        ref = self.packers[0].pack_data()
        return all(
            np.allclose(p.pack_data(), ref, rtol=0, atol=atol)
            for p in self.packers[1:]
        )
