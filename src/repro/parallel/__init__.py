"""Multi-node scaling of swCaffe (paper Sec. V).

* :mod:`repro.parallel.threads` — Algorithm 1's single-node side: four
  pthreads (one per core group), the ``simple_sync`` semaphore barrier, and
  CG0's local gradient average;
* :mod:`repro.parallel.packing` — gradient packing: all layer gradients are
  fused into one buffer so the allreduce and the CPE-cluster summation run
  at full bandwidth;
* :mod:`repro.parallel.ssgd` — the synchronous-SGD iteration timing model
  (compute + local average + allreduce + update + exposed I/O);
* :mod:`repro.parallel.trainer` — a functional distributed trainer over
  simulated workers (real data, real collectives, replica consistency);
* :mod:`repro.parallel.scaling` — the Fig. 10/11 sweep: speedups and
  communication fractions from 2 to 1024 nodes.
"""

from repro.parallel.threads import MultiCGRunner
from repro.parallel.packing import BucketedPacker, GradientPacker
from repro.parallel.ssgd import SSGDIterationModel
from repro.parallel.trainer import DistributedTrainer
from repro.parallel.node_trainer import MultiCGTrainer
from repro.parallel.param_server import ParameterServerModel, ParameterServerTrainer
from repro.parallel.scaling import ScalingStudy, ScalingPoint

__all__ = [
    "MultiCGRunner",
    "GradientPacker",
    "BucketedPacker",
    "SSGDIterationModel",
    "DistributedTrainer",
    "MultiCGTrainer",
    "ParameterServerModel",
    "ParameterServerTrainer",
    "ScalingStudy",
    "ScalingPoint",
]
