"""Synchronous-SGD iteration timing model (Algorithm 1 at cluster scale).

One training iteration on ``N`` nodes:

1. each node's 4 CGs forward/backward a quarter of its sub-mini-batch
   (``compute_s``, from the net's kernel plans or measured throughput);
2. CG0 averages the four gradient copies (``local_reduce``);
3. the packed gradient is allreduced across nodes (topology-aware RHD);
4. every node applies the SGD update;
5. the I/O thread's exposed prefetch time, if any, is added.

Weak scaling: the global batch is ``N * sub_batch``, so
``speedup(N) = N * t(1) / t(N)`` — with t(1) having no allreduce.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.io.prefetch import PrefetchPipeline
from repro.parallel.threads import MultiCGRunner
from repro.simmpi.collectives.analysis import stepwise_rhd_cost
from repro.simmpi.comm import reduce_gamma
from repro.topology.cost_model import NetworkModel, SW_COLLECTIVE_NETWORK
from repro.topology.supernode import NODES_PER_SUPERNODE


@dataclass
class IterationBreakdown:
    """Where one distributed iteration's time goes."""

    compute_s: float
    local_reduce_s: float
    allreduce_s: float
    update_s: float
    io_s: float

    @property
    def total_s(self) -> float:
        return (
            self.compute_s
            + self.local_reduce_s
            + self.allreduce_s
            + self.update_s
            + self.io_s
        )

    @property
    def comm_fraction(self) -> float:
        """Fraction of iteration spent in inter-node communication."""
        t = self.total_s
        return self.allreduce_s / t if t > 0 else 0.0


@dataclass
class SSGDIterationModel:
    """Prices distributed SSGD iterations for one (net, sub-batch) config.

    Parameters
    ----------
    compute_s:
        Node-local forward+backward time for the sub-mini-batch.
    model_bytes:
        Packed gradient payload (``net.param_bytes()``).
    nodes_per_supernode:
        Supernode size q (256 on TaihuLight).
    network:
        Collective network curve (defaults to the calibrated effective
        collective model).
    placement:
        ``"round-robin"`` (swCaffe) or ``"block"`` (MPICH baseline) rank
        numbering for the allreduce.
    reduce_engine:
        Where the post-gather summation runs ("cpe" = swCaffe, "mpe" =
        stock MPI_Allreduce).
    prefetch:
        Optional I/O pipeline; when given, ``batch_io_bytes`` is the
        per-node mini-batch payload read each iteration.
    """

    compute_s: float
    model_bytes: float
    nodes_per_supernode: int = NODES_PER_SUPERNODE
    network: NetworkModel = field(default_factory=lambda: SW_COLLECTIVE_NETWORK)
    placement: str = "round-robin"
    reduce_engine: str = "cpe"
    prefetch: PrefetchPipeline | None = None
    batch_io_bytes: float = 0.0
    runner: MultiCGRunner = field(default_factory=MultiCGRunner)

    def allreduce_time(self, n_nodes: int) -> float:
        """Inter-node gradient allreduce time at ``n_nodes``."""
        if n_nodes <= 1:
            return 0.0
        gamma = reduce_gamma(self.reduce_engine)
        return stepwise_rhd_cost(
            self.model_bytes,
            n_nodes,
            self.nodes_per_supernode,
            self.network,
            gamma,
            placement=self.placement,
        )

    def update_time(self) -> float:
        """SGD update: stream params + grads + velocity (5x traffic)."""
        return 5.0 * self.model_bytes / self.runner.params.dma_peak_bw

    def breakdown(self, n_nodes: int) -> IterationBreakdown:
        """Full iteration breakdown at ``n_nodes``."""
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        node = self.runner.iteration_time(self.compute_s, self.model_bytes)
        io_s = 0.0
        if self.prefetch is not None and self.batch_io_bytes > 0:
            io_s = self.prefetch.iteration_io_time(
                n_nodes, self.batch_io_bytes, self.compute_s
            )
        return IterationBreakdown(
            compute_s=node.compute_s + node.sync_s,
            local_reduce_s=node.local_reduce_s,
            allreduce_s=self.allreduce_time(n_nodes),
            update_s=self.update_time(),
            io_s=io_s,
        )

    def iteration_time(self, n_nodes: int) -> float:
        """End-to-end iteration seconds at ``n_nodes``."""
        return self.breakdown(n_nodes).total_s

    def comm_fraction(self, n_nodes: int) -> float:
        """Fig. 11's quantity: allreduce share of the iteration."""
        return self.breakdown(n_nodes).comm_fraction

    def speedup(self, n_nodes: int) -> float:
        """Fig. 10's quantity: weak-scaling speedup over one node."""
        t1 = self.iteration_time(1)
        tn = self.iteration_time(n_nodes)
        return n_nodes * t1 / tn
