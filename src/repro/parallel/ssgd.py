"""Synchronous-SGD iteration timing model (Algorithm 1 at cluster scale).

One training iteration on ``N`` nodes:

1. each node's 4 CGs forward/backward a quarter of its sub-mini-batch
   (``compute_s``, from the net's kernel plans or measured throughput);
2. CG0 averages the four gradient copies (``local_reduce``);
3. the packed gradient is allreduced across nodes (topology-aware RHD);
4. every node applies the SGD update;
5. the I/O thread's exposed prefetch time, if any, is added.

Weak scaling: the global batch is ``N * sub_batch``, so
``speedup(N) = N * t(1) / t(N)`` — with t(1) having no allreduce.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.io.prefetch import PrefetchPipeline
from repro.parallel.comm_cost import allreduce_cost
from repro.parallel.threads import MultiCGRunner
from repro.topology.cost_model import NetworkModel, SW_COLLECTIVE_NETWORK
from repro.topology.supernode import NODES_PER_SUPERNODE


@dataclass(frozen=True)
class OverlapSchedule:
    """Bucketed allreduces scheduled against the backward window.

    Buckets become ready one after another as backward finishes their
    layers; a serial fabric serves them in order (``start = max(ready,
    previous end)``). Buckets that become ready while the fabric is
    still busy coalesce into a single launch (Horovod-style tensor
    fusion), so the per-collective startup overhead is paid once per
    launch, not once per bucket. Service before ``barrier_s`` — the end
    of local compute — is *hidden* behind backward; only what spills
    past the barrier lands on the iteration's critical path. With a
    single bucket (the fused path) ``ready == barrier`` and everything
    is exposed, which is exactly the non-overlapped model.
    """

    ready_s: tuple[float, ...]
    start_s: tuple[float, ...]
    comm_s: tuple[float, ...]
    #: How many gradient buckets each launch coalesced.
    merged: tuple[int, ...]
    barrier_s: float

    @property
    def n_launches(self) -> int:
        return len(self.comm_s)

    @property
    def n_buckets(self) -> int:
        return sum(self.merged)

    @property
    def total_comm_s(self) -> float:
        """Total network occupancy across every bucket."""
        return sum(self.comm_s)

    @property
    def hidden_s(self) -> float:
        """Comm time hidden behind the remaining backward compute: per
        launch, the slice of service before the barrier (the same rule
        the trainer's nonblocking queue uses)."""
        return sum(
            max(0.0, min(s + c, self.barrier_s) - s)
            for s, c in zip(self.start_s, self.comm_s)
        )

    @property
    def exposed_s(self) -> float:
        """Comm time past the barrier — what lands on the critical path.
        Exactly the full occupancy for the fused single-bucket schedule,
        whose only launch starts at the barrier."""
        return self.total_comm_s - self.hidden_s


@dataclass
class IterationBreakdown:
    """Where one distributed iteration's time goes.

    ``allreduce_s`` is the *exposed* allreduce time — with bucketed
    overlap enabled, the hidden portion is reported separately in
    ``overlap_hidden_s`` and does not extend the iteration.
    """

    compute_s: float
    local_reduce_s: float
    allreduce_s: float
    update_s: float
    io_s: float
    overlap_hidden_s: float = 0.0

    @property
    def total_s(self) -> float:
        return (
            self.compute_s
            + self.local_reduce_s
            + self.allreduce_s
            + self.update_s
            + self.io_s
        )

    @property
    def comm_fraction(self) -> float:
        """Fraction of iteration spent in inter-node communication."""
        t = self.total_s
        return self.allreduce_s / t if t > 0 else 0.0


@dataclass
class SSGDIterationModel:
    """Prices distributed SSGD iterations for one (net, sub-batch) config.

    Parameters
    ----------
    compute_s:
        Node-local forward+backward time for the sub-mini-batch.
    model_bytes:
        Packed gradient payload (``net.param_bytes()``).
    nodes_per_supernode:
        Supernode size q (256 on TaihuLight).
    network:
        Collective network curve (defaults to the calibrated effective
        collective model).
    placement:
        ``"round-robin"`` (swCaffe) or ``"block"`` (MPICH baseline) rank
        numbering for the allreduce.
    reduce_engine:
        Where the post-gather summation runs ("cpe" = swCaffe, "mpe" =
        stock MPI_Allreduce).
    prefetch:
        Optional I/O pipeline; when given, ``batch_io_bytes`` is the
        per-node mini-batch payload read each iteration.
    bucket_mb:
        Gradient-bucket size bound in MB for overlap-aware allreduce.
        ``None`` (the default) is the fused path: one bucket holding the
        whole model, launched only when backward has fully finished —
        i.e. the model's historical behavior, unchanged.
    backward_frac:
        Fraction of node compute that is backward — the window at the
        *end* of compute during which bucket gradients become ready.
        Defaults to 2/3 (backward costs roughly twice forward).
    """

    compute_s: float
    model_bytes: float
    nodes_per_supernode: int = NODES_PER_SUPERNODE
    network: NetworkModel = field(default_factory=lambda: SW_COLLECTIVE_NETWORK)
    placement: str = "round-robin"
    reduce_engine: str = "cpe"
    prefetch: PrefetchPipeline | None = None
    batch_io_bytes: float = 0.0
    runner: MultiCGRunner = field(default_factory=MultiCGRunner)
    bucket_mb: float | None = None
    backward_frac: float = 2.0 / 3.0

    def bucket_sizes(self) -> tuple[float, ...]:
        """Per-bucket payloads (bytes), an even split bounded by
        ``bucket_mb``; a single full-model bucket when fused."""
        if self.bucket_mb is None:
            return (self.model_bytes,)
        bound = float(self.bucket_mb) * 1e6
        if bound <= 0:
            raise ValueError("bucket_mb must be positive")
        k = max(1, math.ceil(self.model_bytes / bound))
        return tuple([self.model_bytes / k] * k)

    def _single_allreduce_time(self, nbytes: float, n_nodes: int) -> float:
        return allreduce_cost(
            nbytes,
            n_nodes,
            nodes_per_supernode=self.nodes_per_supernode,
            network=self.network,
            reduce_engine=self.reduce_engine,
            placement=self.placement,
        )

    def allreduce_time(self, n_nodes: int) -> float:
        """Inter-node gradient allreduce time at ``n_nodes`` for the
        fused (single-message) payload."""
        if n_nodes <= 1:
            return 0.0
        return self._single_allreduce_time(self.model_bytes, n_nodes)

    def overlap_schedule(self, n_nodes: int, compute_s: float) -> OverlapSchedule:
        """Schedule the bucket allreduces against a compute window.

        ``compute_s`` is the node-local compute time (forward + backward
        + thread sync); backward occupies its last ``backward_frac``
        slice, and bucket ``i`` of ``K`` becomes ready when backward is
        ``(i + 1) / K`` done (gradients accumulate in reverse layer
        order, so equal-size buckets fill at an even pace). Every bucket
        already ready when the fabric frees up rides in the same launch.
        """
        if not 0.0 <= self.backward_frac <= 1.0:
            raise ValueError("backward_frac must be in [0, 1]")
        sizes = self.bucket_sizes()
        if n_nodes <= 1:
            sizes = ()
        backward_start = compute_s * (1.0 - self.backward_frac)
        window = compute_s - backward_start
        k = len(sizes)
        bucket_ready = [backward_start + window * (i + 1) / k for i in range(k)]
        ready: list[float] = []
        start: list[float] = []
        comm: list[float] = []
        merged: list[int] = []
        free = 0.0
        i = 0
        while i < k:
            s = max(bucket_ready[i], free)
            j = i + 1
            while j < k and bucket_ready[j] <= s:
                j += 1
            c = self._single_allreduce_time(sum(sizes[i:j]), n_nodes)
            ready.append(bucket_ready[i])
            start.append(s)
            comm.append(c)
            merged.append(j - i)
            free = s + c
            i = j
        return OverlapSchedule(
            ready_s=tuple(ready),
            start_s=tuple(start),
            comm_s=tuple(comm),
            merged=tuple(merged),
            barrier_s=compute_s,
        )

    def update_time(self) -> float:
        """SGD update: stream params + grads + velocity (5x traffic)."""
        return 5.0 * self.model_bytes / self.runner.params.dma_peak_bw

    def breakdown(self, n_nodes: int) -> IterationBreakdown:
        """Full iteration breakdown at ``n_nodes``."""
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        node = self.runner.iteration_time(self.compute_s, self.model_bytes)
        io_s = 0.0
        if self.prefetch is not None and self.batch_io_bytes > 0:
            io_s = self.prefetch.iteration_io_time(
                n_nodes, self.batch_io_bytes, self.compute_s
            )
        compute = node.compute_s + node.sync_s
        schedule = self.overlap_schedule(n_nodes, compute)
        return IterationBreakdown(
            compute_s=compute,
            local_reduce_s=node.local_reduce_s,
            allreduce_s=schedule.exposed_s,
            update_s=self.update_time(),
            io_s=io_s,
            overlap_hidden_s=schedule.hidden_s,
        )

    def iteration_time(self, n_nodes: int) -> float:
        """End-to-end iteration seconds at ``n_nodes``."""
        return self.breakdown(n_nodes).total_s

    def comm_fraction(self, n_nodes: int) -> float:
        """Fig. 11's quantity: allreduce share of the iteration."""
        return self.breakdown(n_nodes).comm_fraction

    def speedup(self, n_nodes: int) -> float:
        """Fig. 10's quantity: weak-scaling speedup over one node."""
        t1 = self.iteration_time(1)
        tn = self.iteration_time(n_nodes)
        return n_nodes * t1 / tn
