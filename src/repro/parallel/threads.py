"""Single-node multi-threading over the four core groups (Algorithm 1).

swCaffe starts one pthread per CG; each runs forward/backward on a quarter
of the node's sub-mini-batch, synchronizing with a handshake
(initiation-confirmation semaphore in shared memory) — the paper's
``simple_sync()``. CG0 then sums the four gradient copies to form the
node-local average.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.spec import SW26010Params, SW_PARAMS


@dataclass(frozen=True)
class NodeIterationTime:
    """Breakdown of one node-local training iteration."""

    compute_s: float
    sync_s: float
    local_reduce_s: float

    @property
    def total_s(self) -> float:
        return self.compute_s + self.sync_s + self.local_reduce_s


class MultiCGRunner:
    """Times Algorithm 1's node-local portion.

    Parameters
    ----------
    params:
        SW26010 constants.
    sync_overhead_s:
        One ``simple_sync`` handshake (semaphore store + spin in shared
        memory, microsecond scale).
    thread_spawn_s:
        ``pthread_create``/``join`` cost per iteration (4 threads).
    """

    def __init__(
        self,
        params: SW26010Params | None = None,
        sync_overhead_s: float = 2e-6,
        thread_spawn_s: float = 5e-5,
    ) -> None:
        self.params = params or SW_PARAMS
        self.sync_overhead_s = float(sync_overhead_s)
        self.thread_spawn_s = float(thread_spawn_s)

    def simple_sync_time(self, n_syncs: int = 1) -> float:
        """Cost of ``n_syncs`` handshake barriers across the 4 CGs."""
        if n_syncs < 0:
            raise ValueError("n_syncs must be non-negative")
        return n_syncs * self.sync_overhead_s

    def local_reduce_time(self, model_bytes: float) -> float:
        """CG0 sums the four per-CG gradient copies.

        Streaming reduction: read 4 copies, write 1, through DMA at the
        saturated per-CG bandwidth.
        """
        if model_bytes < 0:
            raise ValueError("model_bytes must be non-negative")
        traffic = 5.0 * model_bytes
        return traffic / self.params.dma_peak_bw

    def iteration_time(
        self,
        per_cg_compute_s: list[float] | float,
        model_bytes: float,
        n_layer_syncs: int = 0,
    ) -> NodeIterationTime:
        """Fork/join over the CGs plus the local gradient average.

        ``per_cg_compute_s`` is either one number (symmetric CGs, the
        common case) or a per-CG list (imbalance makes the node wait for
        the slowest).
        """
        if isinstance(per_cg_compute_s, (int, float)):
            compute = float(per_cg_compute_s)
        else:
            if not per_cg_compute_s:
                raise ValueError("need at least one CG time")
            compute = max(float(t) for t in per_cg_compute_s)
        sync = self.thread_spawn_s + self.simple_sync_time(max(1, n_layer_syncs))
        return NodeIterationTime(
            compute_s=compute,
            sync_s=sync,
            local_reduce_s=self.local_reduce_time(model_bytes),
        )
