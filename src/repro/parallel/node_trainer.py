"""Node-level trainer: Algorithm 1's intra-node portion, executed.

Fig. 5's structure — four pthreads, one per core group, each running
forward/backward on a quarter of the node's sub-mini-batch, synchronizing
through ``simple_sync`` and averaging gradients on CG0 — is functionally
data-parallel SGD with free-ish shared-memory communication. This trainer
executes it: four net replicas process batch quarters, CG0 (replica 0)
averages the parameter gradients in shared memory, and a single update is
applied to all replicas.

The invariant (tested): training equals single-replica training on the
full sub-mini-batch, while the simulated time follows the fork/join +
local-reduce model of :class:`~repro.parallel.threads.MultiCGRunner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.frame.net import Net
from repro.frame.solver import SGDSolver
from repro.hw.spec import SW_PARAMS
from repro.parallel.packing import GradientPacker
from repro.parallel.threads import MultiCGRunner


@dataclass
class NodeTrainStats:
    """Records of an intra-node (4-CG) training run."""

    losses: list[float] = field(default_factory=list)
    simulated_time_s: float = 0.0

    @property
    def iterations(self) -> int:
        return len(self.losses)


class MultiCGTrainer:
    """Algorithm 1 on one node: 4 core groups over batch quarters.

    Parameters
    ----------
    net_factory:
        ``net_factory(cg_index)`` builds one replica reading that CG's
        quarter of the data (replicas must share weight seeds).
    base_lr, momentum, weight_decay:
        Update hyperparameters (applied identically on every CG).
    """

    def __init__(
        self,
        net_factory: Callable[[int], Net],
        base_lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        self.n_cgs = SW_PARAMS.n_core_groups
        self.nets = [net_factory(i) for i in range(self.n_cgs)]
        self.solvers = [
            SGDSolver(net, base_lr=base_lr, momentum=momentum, weight_decay=weight_decay)
            for net in self.nets
        ]
        self.packers = [GradientPacker(net.params) for net in self.nets]
        self.runner = MultiCGRunner()

    def step(self, n_iters: int = 1) -> NodeTrainStats:
        """Run synchronized node-local iterations."""
        stats = NodeTrainStats()
        model_bytes = self.packers[0].total_bytes
        for _ in range(n_iters):
            per_cg_losses = []
            per_cg_times = []
            for net in self.nets:
                net.zero_param_diffs()
                losses = net.forward()
                net.backward()
                per_cg_losses.append(sum(losses.values()))
                per_cg_times.append(net.sw_iteration_time())
            # CG0 averages the four gradient copies (shared memory).
            flats = [p.pack_diffs() for p in self.packers]
            mean = np.mean(flats, axis=0)
            for packer in self.packers:
                packer.unpack_diffs(mean)
            for solver in self.solvers:
                solver.apply_update()
                solver.iter += 1
            node_time = self.runner.iteration_time(
                per_cg_times, model_bytes, n_layer_syncs=len(self.nets[0].layers)
            )
            stats.simulated_time_s += node_time.total_s
            stats.losses.append(float(np.mean(per_cg_losses)))
        return stats

    def replicas_in_sync(self, atol: float = 0.0) -> bool:
        """Whether the four CG replicas hold identical parameters."""
        ref = self.packers[0].pack_data()
        return all(
            np.allclose(p.pack_data(), ref, rtol=0, atol=atol)
            for p in self.packers[1:]
        )
