"""Shared communication pricing for the iteration timing models.

Both the data-parallel model (:class:`~repro.parallel.ssgd.SSGDIterationModel`,
figs. 10/11) and the pipeline/hybrid model
(:class:`~repro.pipeline.model.PipelineIterationModel`) need the same two
quantities: the stepwise topology-aware allreduce cost of a gradient
payload across a node group, and the point-to-point cost of a boundary
activation tensor between two stages. Keeping them here means the models
cannot drift apart — the fig10/fig11 pins gate the hybrid model's
within-stage allreduce pricing too.
"""

from __future__ import annotations

from repro.simmpi.collectives.analysis import stepwise_rhd_cost
from repro.simmpi.comm import reduce_gamma
from repro.topology.cost_model import NetworkModel


def allreduce_cost(
    nbytes: float,
    n_nodes: int,
    *,
    nodes_per_supernode: int,
    network: NetworkModel,
    reduce_engine: str = "cpe",
    placement: str = "round-robin",
) -> float:
    """Stepwise recursive-halving/doubling allreduce seconds.

    The single source of truth for gradient-synchronization pricing:
    MPICH's RHD step structure over the supernode topology, with the
    local reduction priced at :func:`~repro.simmpi.comm.reduce_gamma`'s
    rate for ``reduce_engine``. Returns 0 for a single node.
    """
    if n_nodes <= 1:
        return 0.0
    gamma = reduce_gamma(reduce_engine)
    return stepwise_rhd_cost(
        nbytes,
        n_nodes,
        nodes_per_supernode,
        network,
        gamma,
        placement=placement,
    )


def ptp_cost(
    nbytes: float,
    *,
    network: NetworkModel,
    cross_supernode: bool = False,
) -> float:
    """One point-to-point transfer's seconds on the collective network
    curve (cross-supernode messages pay the oversubscribed bandwidth)."""
    return network.ptp_time(nbytes, oversubscribed=cross_supernode)
