"""Gradient packing (paper Sec. V-A, last paragraph).

Layer gradients vary from kilobytes (first conv filters) to hundreds of
megabytes (first fully-connected layer). Reducing them one allreduce per
layer pays a latency term per layer and runs the CPE summation at tiny-DMA
granularity; swCaffe packs all gradients into one contiguous buffer after
backward propagation, so both the network and the memory system see one
large, efficient operation.

:class:`GradientPacker` provides both the functional pack/unpack (used by
the distributed trainer) and the cost comparison (used by the ablation
bench).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.frame.blob import Blob


class GradientPacker:
    """Packs a fixed set of parameter blobs into one flat float32 buffer."""

    def __init__(self, params: list[Blob]) -> None:
        if not params:
            raise ShapeError("cannot pack an empty parameter list")
        self.params = list(params)
        self._counts = [p.count for p in self.params]
        self._offsets = np.concatenate([[0], np.cumsum(self._counts)])
        self.total_count = int(self._offsets[-1])

    @property
    def total_bytes(self) -> int:
        """Payload of the packed buffer."""
        return self.total_count * 4

    @property
    def layer_bytes(self) -> list[int]:
        """Per-parameter payloads (the per-layer allreduce message sizes)."""
        return [c * 4 for c in self._counts]

    def pack_diffs(self) -> np.ndarray:
        """Gather all parameter gradients into one flat buffer."""
        out = np.empty(self.total_count, dtype=np.float32)
        for p, lo, hi in zip(self.params, self._offsets[:-1], self._offsets[1:]):
            out[lo:hi] = p.diff.ravel()
        return out

    def unpack_diffs(self, flat: np.ndarray) -> None:
        """Scatter a flat buffer back into the parameter gradients."""
        if flat.size != self.total_count:
            raise ShapeError(
                f"packed buffer has {flat.size} elements, expected {self.total_count}"
            )
        for p, lo, hi in zip(self.params, self._offsets[:-1], self._offsets[1:]):
            p.diff = flat[lo:hi].reshape(p.shape).astype(p.dtype, copy=False)

    def pack_data(self) -> np.ndarray:
        """Gather parameter *values* (used for replica-consistency checks)."""
        out = np.empty(self.total_count, dtype=np.float32)
        for p, lo, hi in zip(self.params, self._offsets[:-1], self._offsets[1:]):
            out[lo:hi] = p.data.ravel()
        return out

    # ------------------------------------------------------------------ #
    # cost comparison (the packing ablation)
    # ------------------------------------------------------------------ #
    def allreduce_time_packed(self, cost_fn) -> float:
        """One fused allreduce of the whole model. ``cost_fn(nbytes)``."""
        return float(cost_fn(self.total_bytes))

    def allreduce_time_per_layer(self, cost_fn) -> float:
        """One allreduce per parameter tensor (the unpacked baseline)."""
        return float(sum(cost_fn(nb) for nb in self.layer_bytes))
