"""Gradient packing (paper Sec. V-A, last paragraph) and gradient bucketing.

Layer gradients vary from kilobytes (first conv filters) to hundreds of
megabytes (first fully-connected layer). Reducing them one allreduce per
layer pays a latency term per layer and runs the CPE summation at tiny-DMA
granularity; swCaffe packs all gradients into one contiguous buffer after
backward propagation, so both the network and the memory system see one
large, efficient operation.

:class:`GradientPacker` provides both the functional pack/unpack (used by
the distributed trainer) and the cost comparison (used by the ablation
bench).

:class:`BucketedPacker` is the overlap-aware refinement: parameters are
partitioned into size-bounded buckets in *reverse layer order* (the order
backward propagation finishes them), so each bucket's allreduce can launch
while earlier layers are still computing their gradients. The fused packer
is the degenerate single-bucket case: ``BucketedPacker(params, None)``
packs exactly the buffer :class:`GradientPacker` packs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.frame.blob import Blob


class GradientPacker:
    """Packs a fixed set of parameter blobs into one flat buffer.

    The buffer dtype is the (single) dtype shared by all parameters; mixed
    dtypes are rejected up front rather than silently truncated — packing a
    float64 parameter into a float32 buffer would round gradients before
    the collective ever sees them.
    """

    def __init__(self, params: list[Blob]) -> None:
        if not params:
            raise ShapeError("cannot pack an empty parameter list")
        self.params = list(params)
        dtypes = sorted({p.dtype.name for p in self.params})
        if len(dtypes) > 1:
            raise ShapeError(
                f"cannot pack mixed parameter dtypes {dtypes}; packed "
                "collectives require one uniform dtype"
            )
        #: Dtype of the packed buffer (identical to every parameter's).
        self.dtype = self.params[0].dtype
        self._counts = [p.count for p in self.params]
        self._offsets = np.concatenate([[0], np.cumsum(self._counts)])
        self.total_count = int(self._offsets[-1])

    @property
    def total_bytes(self) -> int:
        """Payload of the packed buffer."""
        return self.total_count * self.dtype.itemsize

    @property
    def layer_bytes(self) -> list[int]:
        """Per-parameter payloads (the per-layer allreduce message sizes)."""
        return [c * self.dtype.itemsize for c in self._counts]

    def pack_diffs(self) -> np.ndarray:
        """Gather all parameter gradients into one flat buffer."""
        out = np.empty(self.total_count, dtype=self.dtype)
        for p, lo, hi in zip(self.params, self._offsets[:-1], self._offsets[1:]):
            out[lo:hi] = p.diff.ravel()
        return out

    def unpack_diffs(self, flat: np.ndarray) -> None:
        """Scatter a flat buffer back into the parameter gradients.

        Each gradient is an explicit *copy* of its slice: ``p.diff`` must
        never alias the packed buffer, or a later in-place mutation of the
        flat buffer (an in-place collective, a reused scratch buffer) would
        silently corrupt the per-parameter gradients.
        """
        if flat.size != self.total_count:
            raise ShapeError(
                f"packed buffer has {flat.size} elements, expected {self.total_count}"
            )
        for p, lo, hi in zip(self.params, self._offsets[:-1], self._offsets[1:]):
            p.diff = flat[lo:hi].reshape(p.shape).astype(p.dtype, copy=True)

    def pack_data(self) -> np.ndarray:
        """Gather parameter *values* (used for replica-consistency checks)."""
        out = np.empty(self.total_count, dtype=self.dtype)
        for p, lo, hi in zip(self.params, self._offsets[:-1], self._offsets[1:]):
            out[lo:hi] = p.data.ravel()
        return out

    # ------------------------------------------------------------------ #
    # cost comparison (the packing ablation)
    # ------------------------------------------------------------------ #
    def allreduce_time_packed(self, cost_fn) -> float:
        """One fused allreduce of the whole model. ``cost_fn(nbytes)``."""
        return float(cost_fn(self.total_bytes))

    def allreduce_time_per_layer(self, cost_fn) -> float:
        """One allreduce per parameter tensor (the unpacked baseline)."""
        return float(sum(cost_fn(nb) for nb in self.layer_bytes))


class BucketedPacker:
    """Partitions parameters into size-bounded allreduce buckets.

    Buckets are assigned by walking the parameter list in *reverse* order —
    the order the backward sweep completes gradients — and greedily filling
    each bucket up to ``bucket_bytes`` (a parameter larger than the bound
    gets a bucket of its own). Bucket 0 therefore holds the *last* layers'
    parameters and is the first whose gradients are complete during
    backward propagation. Within a bucket, parameters keep their forward
    (layer) order, so the single-bucket case (``bucket_bytes=None``) packs
    exactly the fused :class:`GradientPacker` buffer.

    The assignment is a deterministic function of the parameter shapes and
    ``bucket_bytes`` alone, and it is a partition: every parameter lands in
    exactly one bucket (property-tested in ``tests/test_parallel.py``).

    Parameters
    ----------
    params:
        Parameter blobs in forward layer order (``net.params``).
    bucket_bytes:
        Size bound per bucket in bytes; ``None`` means one fused bucket.
    layer_ids:
        Optional per-parameter producer-layer index (monotone, forward
        order). :attr:`ready_layer` uses it to decide, during the backward
        sweep, when a bucket's gradients are all complete; defaults to the
        parameter's own index.
    """

    def __init__(
        self,
        params: list[Blob],
        bucket_bytes: float | None = None,
        layer_ids: list[int] | None = None,
    ) -> None:
        if not params:
            raise ShapeError("cannot bucket an empty parameter list")
        if bucket_bytes is not None and bucket_bytes <= 0:
            raise ShapeError(f"bucket_bytes must be positive, got {bucket_bytes}")
        if layer_ids is not None and len(layer_ids) != len(params):
            raise ShapeError(
                f"layer_ids has {len(layer_ids)} entries for {len(params)} params"
            )
        self.params = list(params)
        self.bucket_bytes = None if bucket_bytes is None else float(bucket_bytes)
        ids = list(layer_ids) if layer_ids is not None else list(range(len(params)))

        # Greedy fill over the reversed parameter list; param indices per
        # bucket, then restored to forward order within each bucket.
        groups: list[list[int]] = []
        current: list[int] = []
        current_bytes = 0
        for idx in reversed(range(len(self.params))):
            nbytes = self.params[idx].count * self.params[idx].dtype.itemsize
            if (
                self.bucket_bytes is not None
                and current
                and current_bytes + nbytes > self.bucket_bytes
            ):
                groups.append(current)
                current, current_bytes = [], 0
            current.append(idx)
            current_bytes += nbytes
        groups.append(current)
        #: Forward-order parameter indices of each bucket.
        self.bucket_param_indices: list[tuple[int, ...]] = [
            tuple(sorted(g)) for g in groups
        ]
        #: One fused packer per bucket (validates dtype uniformity too).
        self.buckets: list[GradientPacker] = [
            GradientPacker([self.params[i] for i in g])
            for g in self.bucket_param_indices
        ]
        #: Forward layer index at which each bucket's gradients are all
        #: complete: backward runs last-to-first, so bucket ``b`` is ready
        #: once the layer with its *smallest* forward index has finished.
        self.ready_layer: list[int] = [
            min(ids[i] for i in g) for g in self.bucket_param_indices
        ]
        self._fused = GradientPacker(self.params)

    @property
    def n_buckets(self) -> int:
        return len(self.buckets)

    @property
    def dtype(self) -> np.dtype:
        return self._fused.dtype

    @property
    def total_bytes(self) -> int:
        """Whole-model payload (equals the fused packer's)."""
        return self._fused.total_bytes

    @property
    def bucket_sizes(self) -> list[int]:
        """Per-bucket payload bytes, in launch (reverse-layer) order."""
        return [b.total_bytes for b in self.buckets]

    def cumulative_fractions(self) -> list[float]:
        """Fraction of the model's gradient bytes complete once bucket
        ``i``'s last gradient is produced (buckets in launch order)."""
        total = float(self.total_bytes)
        acc, out = 0.0, []
        for nb in self.bucket_sizes:
            acc += nb
            out.append(acc / total)
        return out

    def pack_bucket_diffs(self, bucket: int) -> np.ndarray:
        """Gather one bucket's gradients into a flat buffer."""
        return self.buckets[bucket].pack_diffs()

    def unpack_bucket_diffs(self, bucket: int, flat: np.ndarray) -> None:
        """Scatter one bucket's reduced buffer back (always copies)."""
        self.buckets[bucket].unpack_diffs(flat)

    def pack_diffs(self) -> np.ndarray:
        """Fused whole-model gradient buffer (forward layer order)."""
        return self._fused.pack_diffs()

    def unpack_diffs(self, flat: np.ndarray) -> None:
        """Fused whole-model unpack (forward layer order)."""
        self._fused.unpack_diffs(flat)

    def pack_data(self) -> np.ndarray:
        """Whole-model parameter values (replica-consistency checks)."""
        return self._fused.pack_data()
