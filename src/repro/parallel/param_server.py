"""Parameter-server synchronization — the baseline the paper rejects.

Sec. V-A: "The parameter server scheme is unable to sufficiently exploit
the bandwidth potential ... since the processor has only one network port,
thus, receiving gradients simultaneously from a large number of workers
could potentially become a bottleneck." This module makes that argument
executable:

* :class:`ParameterServerModel` — the timing model: the model is sharded
  over S servers; each iteration every worker pushes its gradient shard to
  each server and pulls fresh parameters back. Each server's single NIC
  serializes its (p - s)/s incoming and outgoing transfers, which is the
  ingestion bottleneck the paper describes.
* :class:`ParameterServerTrainer` — a functional synchronous PS trainer
  (real shards, real updates) proven equivalent to allreduce training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.frame.net import Net
from repro.frame.solver import SGDSolver
from repro.parallel.packing import GradientPacker
from repro.topology.cost_model import NetworkModel, SW_COLLECTIVE_NETWORK


@dataclass
class ParameterServerModel:
    """Timing model for sharded synchronous parameter-server sync.

    Parameters
    ----------
    model_bytes:
        Total gradient/parameter payload.
    n_servers:
        Server count (each holds ``model_bytes / n_servers``).
    network:
        Per-link curve; one NIC per node (the SW26010 reality).
    """

    model_bytes: float
    n_servers: int = 8
    network: NetworkModel = field(default_factory=lambda: SW_COLLECTIVE_NETWORK)

    def sync_time(self, n_workers: int) -> float:
        """One iteration's push + pull time.

        Every worker sends each server its shard (and later pulls it
        back). A server's NIC serializes its ``n_workers`` incoming shard
        messages, then its ``n_workers`` outgoing ones; workers' sends to
        *different* servers proceed in parallel, so the slowest server
        paces the phase.
        """
        if n_workers <= 0:
            raise ValueError("need at least one worker")
        if n_workers == 1:
            return 0.0
        shard = self.model_bytes / self.n_servers
        per_msg = self.network.ptp_time(shard)
        # Ingest: n_workers shard messages serialized at one server NIC.
        push = n_workers * per_msg
        pull = n_workers * per_msg
        return push + pull

    def crossover_vs_allreduce(self, allreduce_time: Callable[[int], float], max_workers: int = 4096) -> int | None:
        """Smallest power-of-two worker count where PS becomes slower."""
        n = 2
        while n <= max_workers:
            if self.sync_time(n) > allreduce_time(n):
                return n
            n *= 2
        return None


@dataclass
class PSTrainStats:
    """Records of a functional parameter-server run."""

    losses: list[float] = field(default_factory=list)
    simulated_sync_s: float = 0.0

    @property
    def iterations(self) -> int:
        return len(self.losses)


class ParameterServerTrainer:
    """Functional synchronous parameter-server training.

    The packed parameter vector is sharded over ``n_servers``; each
    iteration the workers' gradient shards are averaged server-side, one
    SGD update runs per shard, and the fresh parameters are broadcast
    back. Numerically this *is* synchronous data-parallel SGD, so it must
    match the allreduce trainer exactly — only the communication pattern
    (and therefore the simulated time) differs.
    """

    def __init__(
        self,
        net_factory: Callable[[int], Net],
        n_workers: int,
        n_servers: int = 2,
        base_lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        network: NetworkModel | None = None,
    ) -> None:
        if n_workers <= 0 or n_servers <= 0:
            raise ValueError("workers and servers must be positive")
        self.nets = [net_factory(rank) for rank in range(n_workers)]
        self.packers = [GradientPacker(net.params) for net in self.nets]
        self.n_servers = int(n_servers)
        # One reference solver per worker applies the identical update.
        self.solvers = [
            SGDSolver(net, base_lr=base_lr, momentum=momentum, weight_decay=weight_decay)
            for net in self.nets
        ]
        self.model = ParameterServerModel(
            model_bytes=self.packers[0].total_bytes,
            n_servers=n_servers,
            network=network or SW_COLLECTIVE_NETWORK,
        )

    @property
    def n_workers(self) -> int:
        return len(self.nets)

    def step(self, n_iters: int = 1) -> PSTrainStats:
        """Run synchronous PS iterations."""
        stats = PSTrainStats()
        n = self.packers[0].total_count
        bounds = np.linspace(0, n, self.n_servers + 1).astype(int)
        for _ in range(n_iters):
            iter_losses = []
            for net in self.nets:
                net.zero_param_diffs()
                losses = net.forward()
                net.backward()
                iter_losses.append(sum(losses.values()))
            grads = [p.pack_diffs() for p in self.packers]
            # Server-side shard averaging (push phase).
            mean = np.zeros(n, dtype=np.float64)
            for s in range(self.n_servers):
                lo, hi = bounds[s], bounds[s + 1]
                mean[lo:hi] = np.mean([g[lo:hi] for g in grads], axis=0)
            # Workers pull the averaged gradient and update identically.
            for packer, solver in zip(self.packers, self.solvers):
                packer.unpack_diffs(mean.astype(np.float32))
                solver.apply_update()
                solver.iter += 1
            stats.simulated_sync_s += self.model.sync_time(self.n_workers)
            stats.losses.append(float(np.mean(iter_losses)))
        return stats

    def replicas_in_sync(self, atol: float = 0.0) -> bool:
        """Whether all worker replicas hold identical parameters."""
        ref = self.packers[0].pack_data()
        return all(
            np.allclose(p.pack_data(), ref, rtol=0, atol=atol)
            for p in self.packers[1:]
        )
