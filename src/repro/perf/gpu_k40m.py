"""NVIDIA K40m baseline model (Caffe + cuDNN v5.1).

Per-layer roofline with two structural effects the paper leans on:

* **PCIe input staging**: training data crosses the PCIe bus every
  iteration; for AlexNet this is "over 40% [of] time during training"
  because the compute per batch is small. SW26010 has no such stage (CPEs
  DMA from the same DRAM the data layer fills).
* **cuDNN convolution efficiency**: grows with channel count (small-channel
  convolutions underuse the SMs), saturating near the fraction of peak
  cuDNN v5 reached on K40-class parts.
"""

from __future__ import annotations

from repro.frame.layer import Layer
from repro.frame.layers import ConvolutionLayer, DataLayer
from repro.perf.roofline import RooflineDevice
from repro.perf.workload import layer_workload
from repro.utils.units import GB

#: K40m roofline (Table I peaks; efficiencies calibrated to Table III).
K40M_DEVICE = RooflineDevice(
    name="NVIDIA K40m",
    peak_flops=4.29e12,
    mem_bandwidth=288 * GB,
    launch_overhead_s=18e-6,
    compute_efficiency=0.40,
    bandwidth_efficiency=0.75,
)

#: Per-image input staging cost: JPEG decode + host preprocessing + pinned
#: copy + PCIe transfer. Caffe's single-threaded data path on this class of
#: host sustains ~200 img/s, which is what makes the stage "over 40% [of]
#: time during training of AlexNet" (Sec. VI-B) while staying minor for the
#: compute-heavy VGGs.
DATA_STAGING_PER_IMAGE = 5.0e-3

#: cuDNN conv efficiency: eff = CONV_EFF_MAX * c / (c + CONV_EFF_HALF)
#: on the geometric-mean channel count c, times structural factors.
CONV_EFF_MAX = 0.40
CONV_EFF_HALF = 48.0
#: 1x1 convolutions get no filter reuse in cuDNN's implicit GEMM; on
#: K40-era cuDNN they sustain well under half of the 3x3 rate (the reason
#: the GPU, too, is slower per-flop on ResNet-50/GoogLeNet).
K1_FACTOR = 0.45
#: Large kernels (AlexNet's 11x11 and 5x5) also fall off cuDNN's fast
#: path on this generation.
K_LARGE_FACTOR = 0.6
#: GEMM-tile fill in the fused batch*Ho*Wo dimension: small feature maps
#: with small batches underfill the SMs.
SPATIAL_HALF = 3000.0


def conv_efficiency(
    ni: int, no: int, k: int = 3, spatial: float = 1e9
) -> float:
    """cuDNN sustained fraction of peak for one conv layer."""
    c = (ni * no) ** 0.5
    eff = CONV_EFF_MAX * c / (c + CONV_EFF_HALF)
    if k == 1:
        eff *= K1_FACTOR
    elif k >= 5:
        eff *= K_LARGE_FACTOR
    eff *= spatial / (spatial + SPATIAL_HALF)
    return eff


def gpu_layer_time(layer: Layer, direction: str) -> float:
    """Simulated K40m time of one layer in one direction.

    The data layer models the PCIe staging of the input batch (forward
    only); everything else is rooflined from its workload.
    """
    if isinstance(layer, DataLayer):
        if direction != "forward":
            return 0.0
        return layer.batch_size * DATA_STAGING_PER_IMAGE
    wl = layer_workload(layer, direction)
    if wl.flops == 0 and wl.bytes_moved == 0:
        return 0.0
    ce = None
    if isinstance(layer, ConvolutionLayer):
        b, ni, h, w = layer._bottom_shape
        from repro.kernels.im2col import conv_out_dim

        ho = conv_out_dim(h, layer.kernel_size, layer.stride, layer.pad)
        wo = conv_out_dim(w, layer.kernel_size, layer.stride, layer.pad)
        ce = conv_efficiency(
            ni, layer.num_output, k=layer.kernel_size, spatial=b * ho * wo
        )
    return K40M_DEVICE.kernel_time(wl.flops, wl.bytes_moved, compute_efficiency=ce)
