"""Whole-net timing on every device (the engine behind Figs. 8/9 and
Table III)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.frame.layer import Layer
from repro.frame.layers import DataLayer
from repro.frame.net import Net
from repro.perf.cpu_host import cpu_layer_time
from repro.perf.gpu_k40m import gpu_layer_time


@dataclass(frozen=True)
class LayerTiming:
    """One layer's forward/backward time on one device."""

    layer_name: str
    layer_type: str
    forward_s: float
    backward_s: float

    @property
    def total_s(self) -> float:
        return self.forward_s + self.backward_s


def _sw_layer_time(layer: Layer, direction: str) -> float:
    if isinstance(layer, DataLayer):
        # CPEs DMA training data straight from node DRAM; the prefetch
        # thread hides the filesystem read (Sec. V-B), so the data layer
        # contributes no device-visible time.
        return 0.0
    cost = layer.sw_forward_cost() if direction == "forward" else layer.sw_backward_cost()
    return cost.total_s


#: Device name -> per-layer timing function.
DEVICE_TIMERS: dict[str, Callable[[Layer, str], float]] = {
    "sw26010": _sw_layer_time,
    "k40m": gpu_layer_time,
    "cpu": cpu_layer_time,
}


def net_layer_timings(net: Net, device: str) -> list[LayerTiming]:
    """Per-layer forward/backward times of a net on one device."""
    try:
        timer = DEVICE_TIMERS[device]
    except KeyError:
        raise ValueError(f"unknown device {device!r}; use {sorted(DEVICE_TIMERS)}")
    out = []
    for layer in net.layers:
        out.append(
            LayerTiming(
                layer_name=layer.name,
                layer_type=layer.type,
                forward_s=timer(layer, "forward"),
                backward_s=timer(layer, "backward"),
            )
        )
    return out


def net_iteration_time(net: Net, device: str) -> float:
    """One full training iteration (forward + backward) on a device."""
    return sum(t.total_s for t in net_layer_timings(net, device))


def net_throughput(net: Net, device: str, batch_size: int) -> float:
    """Training throughput in images/second (Table III's metric)."""
    t = net_iteration_time(net, device)
    if t <= 0:
        raise ValueError("net has no timed layers")
    return batch_size / t
