"""Memory-capacity planning for SW26010 core groups.

Each core group owns 8 GB of DDR3. A training iteration must hold the
parameters (+gradients, +solver state), every activation blob (data +
diff, since backward consumes forward activations), and the explicit conv
plan's im2col workspace. This planner accounts those, reports the
per-CG footprint, and finds the largest feasible sub-mini-batch — the
constraint behind Table III's per-network batch choices (AlexNet 256 but
VGG only 64, ResNet-50 only 32).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.frame.layers import ConvolutionLayer
from repro.frame.net import Net
from repro.hw.spec import SW_PARAMS


@dataclass(frozen=True)
class MemoryFootprint:
    """Bytes per core group for one training configuration."""

    params_bytes: int
    solver_bytes: int
    activation_bytes: int
    workspace_bytes: int

    @property
    def total_bytes(self) -> int:
        return (
            self.params_bytes
            + self.solver_bytes
            + self.activation_bytes
            + self.workspace_bytes
        )

    def fits(self, capacity_bytes: int | None = None) -> bool:
        cap = SW_PARAMS.mem_per_cg_bytes if capacity_bytes is None else capacity_bytes
        return self.total_bytes <= cap


def net_memory_footprint(net: Net) -> MemoryFootprint:
    """Training-time memory of ``net``'s per-CG share.

    Activations are sized from the blob shapes (already the full batch;
    each CG holds a quarter of every activation, plus data+diff pairs).
    Parameters are replicated per CG (the paper's 4-thread scheme keeps a
    full copy per core group); solver state adds one velocity buffer.
    The im2col workspace is the largest unrolled matrix any explicit conv
    plan materializes (one image at a time).
    """
    n_cg = SW_PARAMS.n_core_groups
    params = net.param_bytes()
    solver = params  # momentum velocities, float32-equivalent accounting
    # Gradients live in the param blobs' diff arrays:
    params_total = 2 * params

    activations = 0
    for name, blob in net.blobs.items():
        activations += 2 * blob.nbytes  # data + diff
    activations = -(-activations // n_cg)

    workspace = 0
    for layer in net.layers:
        if isinstance(layer, ConvolutionLayer):
            _, ni, h, w = layer._bottom_shape
            from repro.kernels.im2col import conv_out_dim

            k = layer.kernel_size
            if k == 1 and layer.stride == 1 and layer.pad == 0:
                continue
            ho = conv_out_dim(h, k, layer.stride, layer.pad)
            wo = conv_out_dim(w, k, layer.stride, layer.pad)
            cols = (ni // layer.groups) * k * k * ho * wo * 4
            workspace = max(workspace, cols)

    return MemoryFootprint(
        params_bytes=params_total,
        solver_bytes=solver,
        activation_bytes=activations,
        workspace_bytes=workspace,
    )


def max_feasible_batch(
    builder: Callable[..., Net],
    capacity_bytes: int | None = None,
    candidates: tuple[int, ...] = (16, 32, 64, 128, 256, 512, 1024),
) -> int:
    """Largest candidate sub-mini-batch whose footprint fits one CG's DRAM.

    Returns 0 if even the smallest candidate does not fit.
    """
    best = 0
    for batch in sorted(candidates):
        net = builder(batch_size=batch)
        if net_memory_footprint(net).fits(capacity_bytes):
            best = batch
        else:
            break
    return best
