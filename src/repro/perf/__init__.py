"""Baseline performance models and whole-net timing.

The paper compares swCaffe on one SW26010 against Caffe+cuDNN on a K40m
GPU and Caffe on a 12-core E5-2680 v3 (Table III, Figs. 8-9). We have
neither device, so both baselines are per-layer roofline models built from
their published peaks (Table I) plus the structural effects the paper
highlights: the GPU pays PCIe input staging (dominant for AlexNet), both
devices hide bandwidth-bound layers better than SW26010, and cuDNN's
convolution efficiency depends mildly on channel count.
"""

from repro.perf.roofline import RooflineDevice
from repro.perf.gpu_k40m import K40M_DEVICE, gpu_layer_time
from repro.perf.cpu_host import CPU_DEVICE, cpu_layer_time
from repro.perf.layer_cost import (
    LayerTiming,
    net_layer_timings,
    net_iteration_time,
    net_throughput,
)

__all__ = [
    "RooflineDevice",
    "K40M_DEVICE",
    "CPU_DEVICE",
    "gpu_layer_time",
    "cpu_layer_time",
    "LayerTiming",
    "net_layer_timings",
    "net_iteration_time",
    "net_throughput",
]
