"""Generic roofline device model for the GPU/CPU baselines."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RooflineDevice:
    """A device characterized by compute and bandwidth rooflines.

    Layer time = ``max(flops / (peak * eff), bytes / bandwidth) +
    launch_overhead`` — the first-order model behind Figs. 8/9: a layer is
    either compute-bound or bandwidth-bound, and every kernel launch pays a
    fixed overhead (significant for the many tiny layers of deep nets).
    """

    name: str
    peak_flops: float  # single-precision FLOP/s
    mem_bandwidth: float  # bytes/s
    launch_overhead_s: float  # per-kernel fixed cost
    #: Default fraction of peak sustained by dense compute kernels.
    compute_efficiency: float = 0.6
    #: Default fraction of peak bandwidth sustained by streaming kernels.
    bandwidth_efficiency: float = 0.75

    def kernel_time(
        self,
        flops: float,
        bytes_moved: float,
        compute_efficiency: float | None = None,
        bandwidth_efficiency: float | None = None,
    ) -> float:
        """Roofline time of one kernel."""
        if flops < 0 or bytes_moved < 0:
            raise ValueError("flops and bytes must be non-negative")
        ce = self.compute_efficiency if compute_efficiency is None else compute_efficiency
        be = (
            self.bandwidth_efficiency
            if bandwidth_efficiency is None
            else bandwidth_efficiency
        )
        compute_s = flops / (self.peak_flops * ce) if flops else 0.0
        mem_s = bytes_moved / (self.mem_bandwidth * be) if bytes_moved else 0.0
        return max(compute_s, mem_s) + self.launch_overhead_s
