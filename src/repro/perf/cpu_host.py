"""Host-CPU baseline model (Caffe on a 12-core E5-2680 v3).

The paper's CPU column (Table III) reflects stock Caffe with a BLAS
backend: convolution via im2col+SGEMM at a modest fraction of peak, and
bandwidth-bound layers limited by the 68 GB/s memory system. No PCIe term —
the data is already in host memory.
"""

from __future__ import annotations

from repro.frame.layer import Layer
from repro.frame.layers import ConvolutionLayer, DataLayer
from repro.perf.roofline import RooflineDevice
from repro.perf.workload import layer_workload
from repro.utils.units import GB

#: E5-2680 v3 roofline (footnote 2 of the paper; efficiencies calibrated
#: to the Table III CPU column).
CPU_DEVICE = RooflineDevice(
    name="Intel E5-2680 v3 (12 cores)",
    peak_flops=1.28e12,
    mem_bandwidth=68 * GB,
    launch_overhead_s=5e-6,
    compute_efficiency=0.08,
    bandwidth_efficiency=0.6,
)

#: BLAS conv efficiency saturates lower than cuDNN and needs larger
#: channels to amortize im2col.
CONV_EFF_MAX = 0.10
CONV_EFF_HALF = 40.0
#: 1x1 convolutions skip im2col but yield skinny SGEMMs.
K1_FACTOR = 0.40
#: Large kernels (11x11, 5x5) blow the cache blocking of the BLAS path.
K_LARGE_FACTOR = 0.7


def conv_efficiency(ni: int, no: int, k: int = 3) -> float:
    """Sustained fraction of CPU peak for a conv layer's channels."""
    c = (ni * no) ** 0.5
    eff = CONV_EFF_MAX * c / (c + CONV_EFF_HALF)
    if k == 1:
        eff *= K1_FACTOR
    elif k >= 5:
        eff *= K_LARGE_FACTOR
    return eff


def cpu_layer_time(layer: Layer, direction: str) -> float:
    """Simulated CPU time of one layer in one direction."""
    if isinstance(layer, DataLayer):
        return 0.0
    wl = layer_workload(layer, direction)
    if wl.flops == 0 and wl.bytes_moved == 0:
        return 0.0
    ce = None
    if isinstance(layer, ConvolutionLayer):
        ni = layer._bottom_shape[1]
        ce = conv_efficiency(ni, layer.num_output, k=layer.kernel_size)
    return CPU_DEVICE.kernel_time(wl.flops, wl.bytes_moved, compute_efficiency=ce)
