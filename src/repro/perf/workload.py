"""Layer workload extraction: FLOPs and memory traffic per direction.

Device-independent arithmetic used by the GPU/CPU roofline baselines. The
SW26010 path does *not* use these numbers directly — it prices the actual
kernel plans — but tests cross-check that plan FLOP counts agree with the
workloads here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frame.layer import Layer
from repro.frame.layers import (
    BatchNormLayer,
    ConcatLayer,
    ConvolutionLayer,
    DropoutLayer,
    EltwiseLayer,
    InnerProductLayer,
    LRNLayer,
    LSTMLayer,
    PoolingLayer,
    ReLULayer,
    SoftmaxLayer,
    SoftmaxWithLossLayer,
)


@dataclass(frozen=True)
class Workload:
    """One direction's arithmetic and traffic."""

    flops: float
    bytes_moved: float
    kind: str  # "conv", "gemm", "bandwidth"


def _conv_workload(layer: ConvolutionLayer, direction: str) -> Workload:
    b, ni, h, w = layer._bottom_shape
    k = layer.kernel_size
    groups = getattr(layer, "groups", 1)
    from repro.kernels.im2col import conv_out_dim

    ho = conv_out_dim(h, k, layer.stride, layer.pad)
    wo = conv_out_dim(w, k, layer.stride, layer.pad)
    flops = 2.0 * b * layer.num_output * (ni // groups) * k * k * ho * wo
    in_bytes = b * ni * h * w * 4.0
    out_bytes = b * layer.num_output * ho * wo * 4.0
    w_bytes = layer.num_output * (ni // groups) * k * k * 4.0
    if direction == "forward":
        return Workload(flops, in_bytes + out_bytes + w_bytes, "conv")
    if direction == "backward":
        # dW needs (x, dy); dX needs (w, dy): roughly 2x forward work when
        # input gradients are required.
        mult = 2.0 if layer.propagate_down else 1.0
        return Workload(mult * flops, mult * (in_bytes + out_bytes) + w_bytes, "conv")
    raise ValueError(f"unknown direction {direction!r}")


def _ip_workload(layer: InnerProductLayer, direction: str) -> Workload:
    b = layer._bottom_shape[0]
    d = layer._flat_dim(layer._bottom_shape)
    m = layer.num_output
    flops = 2.0 * b * d * m
    traffic = (b * d + b * m + d * m) * 4.0
    if direction == "forward":
        return Workload(flops, traffic, "gemm")
    mult = 2.0 if layer.propagate_down else 1.0
    return Workload(mult * flops, mult * traffic, "gemm")


def _lstm_workload(layer: LSTMLayer, direction: str) -> Workload:
    b, t, d = layer._shape
    h = layer.hidden
    flops = 2.0 * b * t * 4 * h * (d + h)
    traffic = (b * t * (d + h) + 4 * h * (d + h)) * 4.0
    if direction == "forward":
        return Workload(flops, traffic, "gemm")
    return Workload(2.0 * flops, 2.0 * traffic, "gemm")


#: Streaming layers: (reads, writes, flops/element) multipliers per direction.
_STREAMING: dict[type, tuple[float, float, float]] = {
    ReLULayer: (1.0, 1.0, 1.0),
    DropoutLayer: (1.0, 1.0, 2.0),
    BatchNormLayer: (2.0, 1.0, 5.0),
    LRNLayer: (2.0, 1.0, 10.0),
    SoftmaxLayer: (1.0, 1.0, 4.0),
    SoftmaxWithLossLayer: (1.0, 1.0, 5.0),
    ConcatLayer: (1.0, 1.0, 0.0),
    EltwiseLayer: (2.0, 1.0, 1.0),
}


def layer_workload(layer: Layer, direction: str) -> Workload:
    """FLOPs and traffic of one layer in one direction.

    Layers without compute (data, accuracy) report zero workload.
    """
    if direction not in ("forward", "backward"):
        raise ValueError(f"direction must be forward/backward, got {direction!r}")
    if isinstance(layer, ConvolutionLayer):
        return _conv_workload(layer, direction)
    if isinstance(layer, InnerProductLayer):
        return _ip_workload(layer, direction)
    if isinstance(layer, LSTMLayer):
        return _lstm_workload(layer, direction)
    if isinstance(layer, PoolingLayer):
        plan = layer._plan
        in_b = plan.batch * plan.channels * plan.height * plan.width * 4.0
        out_b = plan.batch * plan.channels * plan.out_h * plan.out_w * 4.0
        if direction == "backward" and not layer.propagate_down:
            return Workload(0.0, 0.0, "bandwidth")
        return Workload(out_b / 4.0 * plan.k * plan.k, in_b + out_b, "bandwidth")
    for cls, (reads, writes, fpe) in _STREAMING.items():
        if isinstance(layer, cls):
            count = getattr(layer, "_count", 0)
            if direction == "backward" and not layer.propagate_down and not layer.params:
                return Workload(0.0, 0.0, "bandwidth")
            return Workload(fpe * count, (reads + writes) * count * 4.0, "bandwidth")
    return Workload(0.0, 0.0, "bandwidth")
