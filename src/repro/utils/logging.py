"""Package logging helpers.

Simulation runs are long; harnesses and trainers log progress through a
package-namespaced logger so applications control verbosity the standard
way (``logging.getLogger("repro").setLevel(...)``).
"""

from __future__ import annotations

import logging

#: Root logger name for the whole package.
ROOT = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger under the package namespace.

    ``get_logger("harness.fig10")`` -> logger ``repro.harness.fig10``.
    """
    return logging.getLogger(ROOT if not name else f"{ROOT}.{name}")


def configure(level: int = logging.INFO) -> None:
    """Attach a simple stderr handler to the package logger (idempotent)."""
    logger = logging.getLogger(ROOT)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
    logger.setLevel(level)
