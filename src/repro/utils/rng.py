"""Deterministic random number generation.

Every stochastic component (weight init, synthetic datasets, dropout masks)
draws from a :class:`numpy.random.Generator` created here, so whole-cluster
simulations replay bit-identically.
"""

from __future__ import annotations

import numpy as np

#: Default seed used across the package when a caller does not supply one.
DEFAULT_SEED = 0x5CAFFE


def seeded_rng(seed: int | None = None) -> np.random.Generator:
    """Return a fresh PCG64 generator seeded with ``seed`` (or the default)."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def derive_rng(parent: np.random.Generator, *keys: int | str) -> np.random.Generator:
    """Derive a child generator from ``parent`` and a key path.

    The derivation is order-sensitive and collision-resistant enough for
    simulation purposes: each key perturbs a seed sequence spawned from the
    parent's bit generator. Use this to give each simulated rank / layer its
    own stream without global coordination.
    """
    material: list[int] = []
    for key in keys:
        if isinstance(key, str):
            material.extend(key.encode("utf-8"))
        else:
            material.append(int(key) & 0xFFFFFFFF)
    seed = parent.integers(0, 2**63 - 1, dtype=np.int64)
    return np.random.default_rng([int(seed), *material])
