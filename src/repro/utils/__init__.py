"""Shared utilities: units, deterministic RNG, table rendering, logging."""

from repro.utils.units import (
    KiB,
    MiB,
    GiB,
    GB,
    MB,
    KB,
    US,
    MS,
    format_bytes,
    format_time,
    format_rate,
)
from repro.utils.rng import seeded_rng, derive_rng
from repro.utils.tables import Table
from repro.utils.logging import configure, get_logger

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "GB",
    "MB",
    "KB",
    "US",
    "MS",
    "format_bytes",
    "format_time",
    "format_rate",
    "seeded_rng",
    "derive_rng",
    "Table",
    "configure",
    "get_logger",
]
