"""Net profiling: the ``caffe time`` equivalent for the simulated SW26010.

Aggregates each layer's simulated cost breakdown (compute / DMA / RLC /
overhead) across a net, identifies the bottleneck resource per layer, and
renders a profile table — the tool you'd use to decide where the next
kernel optimization goes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frame.net import Net
from repro.kernels.plan import PlanCost
from repro.utils.tables import Table
from repro.utils.units import format_time


@dataclass(frozen=True)
class LayerProfile:
    """One layer's simulated cost decomposition (forward + backward)."""

    name: str
    type: str
    forward: PlanCost
    backward: PlanCost

    @property
    def total_s(self) -> float:
        return self.forward.total_s + self.backward.total_s

    @property
    def bottleneck(self) -> str:
        """Which resource bounds this layer's time."""
        parts = {
            "compute": self.forward.compute_s + self.backward.compute_s,
            "dma": self.forward.dma_s + self.backward.dma_s,
            "rlc": self.forward.rlc_s + self.backward.rlc_s,
            "overhead": self.forward.overhead_s + self.backward.overhead_s,
        }
        return max(parts, key=parts.get)


class NetProfiler:
    """Profiles a net's simulated per-layer costs on one core group."""

    def __init__(self, net: Net) -> None:
        self.net = net

    def profile(self) -> list[LayerProfile]:
        """Collect every layer's cost breakdown."""
        out = []
        for layer in self.net.layers:
            out.append(
                LayerProfile(
                    name=layer.name,
                    type=layer.type,
                    forward=layer.sw_forward_cost(),
                    backward=layer.sw_backward_cost(),
                )
            )
        return out

    def totals(self, profiles: list[LayerProfile] | None = None) -> dict[str, float]:
        """Whole-net resource totals in seconds."""
        profiles = profiles if profiles is not None else self.profile()
        agg = {"compute": 0.0, "dma": 0.0, "rlc": 0.0, "overhead": 0.0, "total": 0.0}
        for p in profiles:
            for cost in (p.forward, p.backward):
                agg["compute"] += cost.compute_s
                agg["dma"] += cost.dma_s
                agg["rlc"] += cost.rlc_s
                agg["overhead"] += cost.overhead_s
                agg["total"] += cost.total_s
        return agg

    def top_layers(self, n: int = 5, profiles: list[LayerProfile] | None = None) -> list[LayerProfile]:
        """The n most expensive layers."""
        profiles = profiles if profiles is not None else self.profile()
        return sorted(profiles, key=lambda p: p.total_s, reverse=True)[:n]

    def render(self, min_fraction: float = 0.005) -> str:
        """Profile table; layers under ``min_fraction`` of total are folded."""
        profiles = self.profile()
        agg = self.totals(profiles)
        total = agg["total"] or 1.0
        table = Table(
            headers=["layer", "type", "fwd", "bwd", "share", "bottleneck"],
            title=f"SW26010 profile of {self.net.name!r} (one CG per iteration)",
        )
        folded = 0.0
        for p in profiles:
            share = p.total_s / total
            if share < min_fraction:
                folded += p.total_s
                continue
            table.add_row(
                p.name, p.type,
                format_time(p.forward.total_s), format_time(p.backward.total_s),
                f"{100 * share:.1f}%", p.bottleneck,
            )
        if folded:
            table.add_row(
                f"({sum(1 for p in profiles if p.total_s / total < min_fraction)} small layers)",
                "-", "-", "-", f"{100 * folded / total:.1f}%", "-",
            )
        lines = [table.render()]
        lines.append(
            "totals: "
            + ", ".join(
                f"{k}={format_time(v)}" for k, v in agg.items() if k != "total"
            )
            + f" | iteration={format_time(agg['total'])}"
        )
        return "\n".join(lines)
