"""Byte/time unit constants and human-readable formatting.

All simulated quantities in this package use SI seconds and plain byte
counts; these helpers keep conversion factors in one place so cost models
never embed magic numbers.
"""

from __future__ import annotations

# Binary byte units (used for on-chip memories: LDM, caches).
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

# Decimal byte units (used for bandwidths quoted in GB/s, as in the paper).
KB = 1000
MB = 1000 * KB
GB = 1000 * MB

# Time units, in seconds.
US = 1e-6
MS = 1e-3


def format_bytes(n: float) -> str:
    """Render a byte count with a binary suffix (``1536 -> '1.5 KiB'``)."""
    n = float(n)
    for unit, suffix in ((GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")):
        if abs(n) >= unit:
            return f"{n / unit:.4g} {suffix}"
    return f"{n:.0f} B"


def format_time(seconds: float) -> str:
    """Render a duration with an adaptive unit (``3.2e-5 -> '32 us'``)."""
    s = float(seconds)
    if abs(s) >= 1.0:
        return f"{s:.4g} s"
    if abs(s) >= MS:
        return f"{s / MS:.4g} ms"
    if abs(s) >= US:
        return f"{s / US:.4g} us"
    return f"{s / 1e-9:.4g} ns"


def format_rate(bytes_per_second: float) -> str:
    """Render a bandwidth in decimal units (``2.8e10 -> '28 GB/s'``)."""
    r = float(bytes_per_second)
    for unit, suffix in ((GB, "GB/s"), (MB, "MB/s"), (KB, "KB/s")):
        if abs(r) >= unit:
            return f"{r / unit:.4g} {suffix}"
    return f"{r:.4g} B/s"
