"""Plain-text table rendering for the experiment harnesses.

The harness modules reproduce the paper's tables/figures as rows of numbers;
:class:`Table` gives them a uniform, dependency-free way to print aligned
output and to serialize rows for tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


@dataclass
class Table:
    """A simple column-aligned text table.

    Parameters
    ----------
    headers:
        Column names.
    title:
        Optional caption printed above the table.
    """

    headers: Sequence[str]
    title: str = ""
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        """Append a row; cells are stringified with sensible float formatting."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([_fmt(c) for c in cells])

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        """Append many rows."""
        for row in rows:
            self.add_row(*row)

    def render(self) -> str:
        """Return the aligned text rendering."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        sep = "-+-".join("-" * w for w in widths)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
