"""Minimal ASCII plotting for the figure harnesses.

The paper's figures are log-log curves; a dependency-free character plot
lets ``python -m repro.harness.report`` show their *shape*, not just rows
of numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Characters cycled across series.
MARKERS = "ox+*#@%&"


@dataclass(frozen=True)
class PlotSeries:
    """One named curve."""

    label: str
    x: tuple[float, ...]
    y: tuple[float, ...]


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ValueError("log-scale plots need positive values")
        return math.log10(value)
    return value


def ascii_plot(
    series: list[PlotSeries],
    *,
    width: int = 64,
    height: int = 18,
    logx: bool = False,
    logy: bool = False,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render curves on a character grid with axis annotations."""
    if not series or any(len(s.x) != len(s.y) or not s.x for s in series):
        raise ValueError("need non-empty series with matching x/y lengths")
    xs = [_transform(x, logx) for s in series for x in s.x]
    ys = [_transform(y, logy) for s in series for y in s.y]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for si, s in enumerate(series):
        marker = MARKERS[si % len(MARKERS)]
        for x, y in zip(s.x, s.y):
            cx = round((_transform(x, logx) - x_lo) / x_span * (width - 1))
            cy = round((_transform(y, logy) - y_lo) / y_span * (height - 1))
            grid[height - 1 - cy][cx] = marker
    lines = []
    if title:
        lines.append(title)
    top_lab = f"{10 ** y_hi if logy else y_hi:.4g}"
    bot_lab = f"{10 ** y_lo if logy else y_lo:.4g}"
    pad = max(len(top_lab), len(bot_lab))
    for i, row in enumerate(grid):
        label = top_lab if i == 0 else (bot_lab if i == height - 1 else "")
        lines.append(f"{label.rjust(pad)} |{''.join(row)}")
    lines.append(" " * pad + " +" + "-" * width)
    left = f"{10 ** x_lo if logx else x_lo:.4g}"
    right = f"{10 ** x_hi if logx else x_hi:.4g}"
    gap = width - len(left) - len(right)
    lines.append(" " * (pad + 2) + left + " " * max(1, gap) + right)
    if xlabel or ylabel:
        lines.append(" " * (pad + 2) + f"x: {xlabel}   y: {ylabel}".rstrip())
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]}={s.label}" for i, s in enumerate(series)
    )
    lines.append(" " * (pad + 2) + legend)
    return "\n".join(lines)
