"""swCaffe framework core: Blob / Layer / Net / Solver.

Mirrors Caffe's three-level architecture (Sec. II-C):

* **layers** (:mod:`repro.frame.layers`) implement the per-layer algorithms,
  each paired with an SW26010 kernel plan for simulated timing;
* the **net** (:mod:`repro.frame.net`) wires layers into a DAG and runs
  forward/backward propagation over named blobs;
* **solvers** (:mod:`repro.frame.solver`) drive training (SGD with
  momentum, weight decay and learning-rate policies) and host the
  distributed-training hooks.
"""

from repro.frame.blob import Blob
from repro.frame.layer import Layer, LayerCost
from repro.frame.net import Net
from repro.frame.netspec import build_from_spec, load_spec, save_spec
from repro.frame.prototxt import net_from_prototxt, solver_from_prototxt
from repro.frame.snapshot import load_solver, load_weights, save_solver, save_weights
from repro.frame.solver import SGDSolver
from repro.frame.solvers_ext import (
    AdaGradSolver,
    AdamSolver,
    LARSSolver,
    NesterovSolver,
    RMSPropSolver,
)

__all__ = [
    "Blob",
    "Layer",
    "LayerCost",
    "Net",
    "SGDSolver",
    "NesterovSolver",
    "AdaGradSolver",
    "RMSPropSolver",
    "AdamSolver",
    "LARSSolver",
    "build_from_spec",
    "load_spec",
    "save_spec",
    "net_from_prototxt",
    "solver_from_prototxt",
    "save_weights",
    "load_weights",
    "save_solver",
    "load_solver",
]
