"""Vectorized NumPy convolution arithmetic shared by the conv layer.

These are the *functional* kernels (bit-level semantics of the SW26010
plans, minus the hardware). Forward/backward are implemented as K*K
strided-slice contractions — mathematically identical to im2col+GEMM and to
the implicit blocked kernel, but efficient in NumPy for whole batches.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.kernels.im2col import conv_out_dim


def conv_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    pad: int,
    groups: int = 1,
) -> np.ndarray:
    """Batched convolution forward: (B,Ni,H,W) x (No,Ni/g,K,K) -> (B,No,Ho,Wo)."""
    if groups > 1:
        return _grouped(conv_forward, x, weight, bias, stride, pad, groups)
    b, ni, h, w = x.shape
    no, ni_w, k, k2 = weight.shape
    if ni_w != ni or k != k2:
        raise ShapeError(f"weight {weight.shape} incompatible with input {x.shape}")
    ho = conv_out_dim(h, k, stride, pad)
    wo = conv_out_dim(w, k, stride, pad)
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad))) if pad else x
    out = np.zeros((b, no, ho, wo), dtype=np.result_type(x, weight))
    for i in range(k):
        for j in range(k):
            patch = xp[:, :, i : i + stride * ho : stride, j : j + stride * wo : stride]
            out += np.einsum("bchw,oc->bohw", patch, weight[:, :, i, j], optimize=True)
    if bias is not None:
        out += bias.reshape(1, no, 1, 1)
    return out


def _grouped(fn, x, weight, third, stride, pad, groups, **kwargs):
    """Dispatch a conv op group by group and stitch the results.

    ``third`` is the bias (forward) or dy (backward); outputs are
    concatenated (forward) or recombined (backward).
    """
    b, ni, h, w = x.shape
    no = weight.shape[0]
    if ni % groups or no % groups:
        raise ShapeError(
            f"channels (Ni={ni}, No={no}) not divisible by groups={groups}"
        )
    nig, nog = ni // groups, no // groups
    if fn is conv_forward:
        outs = []
        for g in range(groups):
            bias_g = third[g * nog : (g + 1) * nog] if third is not None else None
            outs.append(
                conv_forward(
                    x[:, g * nig : (g + 1) * nig],
                    weight[g * nog : (g + 1) * nog],
                    bias_g,
                    stride,
                    pad,
                )
            )
        return np.concatenate(outs, axis=1)
    # backward
    need_input_grad = kwargs.get("need_input_grad", True)
    dx = np.zeros_like(x, dtype=np.float64) if need_input_grad else None
    dw = np.zeros_like(weight, dtype=np.float64)
    db = np.zeros(no, dtype=np.float64)
    for g in range(groups):
        dxg, dwg, dbg = conv_backward(
            x[:, g * nig : (g + 1) * nig],
            weight[g * nog : (g + 1) * nog],
            third[:, g * nog : (g + 1) * nog],
            stride,
            pad,
            need_input_grad=need_input_grad,
        )
        if need_input_grad:
            dx[:, g * nig : (g + 1) * nig] = dxg
        dw[g * nog : (g + 1) * nog] = dwg
        db[g * nog : (g + 1) * nog] = dbg
    if dx is not None:
        dx = dx.astype(x.dtype, copy=False)
    return dx, dw.astype(weight.dtype, copy=False), db.astype(weight.dtype, copy=False)


def conv_backward(
    x: np.ndarray,
    weight: np.ndarray,
    dy: np.ndarray,
    stride: int,
    pad: int,
    *,
    need_input_grad: bool = True,
    groups: int = 1,
) -> tuple[np.ndarray | None, np.ndarray, np.ndarray]:
    """Batched convolution backward: returns (dx, dw, db)."""
    if groups > 1:
        return _grouped(
            conv_backward, x, weight, dy, stride, pad, groups,
            need_input_grad=need_input_grad,
        )
    b, ni, h, w = x.shape
    no, _, k, _ = weight.shape
    _, _, ho, wo = dy.shape
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad))) if pad else x
    dw = np.zeros_like(weight, dtype=np.float64)
    dxp = (
        np.zeros((b, ni, h + 2 * pad, w + 2 * pad), dtype=np.float64)
        if need_input_grad
        else None
    )
    for i in range(k):
        for j in range(k):
            patch = xp[:, :, i : i + stride * ho : stride, j : j + stride * wo : stride]
            dw[:, :, i, j] = np.einsum("bohw,bchw->oc", dy, patch, optimize=True)
            if need_input_grad:
                dxp[:, :, i : i + stride * ho : stride, j : j + stride * wo : stride] += (
                    np.einsum("bohw,oc->bchw", dy, weight[:, :, i, j], optimize=True)
                )
    db = dy.sum(axis=(0, 2, 3))
    dx = None
    if need_input_grad:
        dx = dxp[:, :, pad : pad + h, pad : pad + w] if pad else dxp
        dx = np.ascontiguousarray(dx)
    return dx, dw.astype(weight.dtype, copy=False), db.astype(weight.dtype, copy=False)
