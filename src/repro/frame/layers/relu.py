"""ReLU activation layer (bandwidth-bound on SW26010)."""

from __future__ import annotations

import numpy as np

from repro.frame.blob import Blob
from repro.frame.layer import Layer
from repro.kernels.elementwise import ElementwisePlan
from repro.kernels.plan import PlanCost


class ReLULayer(Layer):
    """y = max(x, 0), with optional leaky negative slope."""

    type = "ReLU"

    def __init__(self, name: str, negative_slope: float = 0.0, params=None) -> None:
        super().__init__(name, params)
        self.negative_slope = float(negative_slope)
        self._mask: np.ndarray | None = None

    def check_bottom(self, bottom: list[Blob]) -> None:
        self.require_bottoms(bottom, 1, self.type)

    def reshape(self, bottom: list[Blob], top: list[Blob]) -> None:
        top[0].reshape(bottom[0].shape)
        self._count = bottom[0].count

    def forward_impl(self, bottom: list[Blob], top: list[Blob]) -> None:
        x = bottom[0].data
        self._mask = x > 0
        if self.negative_slope:
            top[0].data = np.where(self._mask, x, self.negative_slope * x)
        else:
            top[0].data = np.where(self._mask, x, 0.0)

    def backward_impl(self, top: list[Blob], bottom: list[Blob]) -> None:
        if not self.propagate_down:
            return
        dy = top[0].diff
        grad = np.where(self._mask, dy, self.negative_slope * dy)
        bottom[0].diff = bottom[0].diff + grad

    def _plan(self) -> ElementwisePlan:
        per_cg = -(-self._count // self.hw.n_core_groups)
        return ElementwisePlan.for_tensor(per_cg, flops_per_element=1.0, params=self.hw)

    def sw_forward_cost(self) -> PlanCost:
        return self._plan().cost()

    def sw_backward_cost(self) -> PlanCost:
        return self._plan().cost() if self.propagate_down else PlanCost()
