"""Elementwise combination layer (ResNet residual additions)."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.frame.blob import Blob
from repro.frame.layer import Layer
from repro.kernels.elementwise import ElementwisePlan
from repro.kernels.plan import PlanCost


class EltwiseLayer(Layer):
    """y = sum_i coeff_i * x_i (operation "sum") or elementwise max/prod."""

    type = "Eltwise"

    def __init__(
        self,
        name: str,
        operation: str = "sum",
        coeffs: list[float] | None = None,
        params=None,
    ) -> None:
        super().__init__(name, params)
        if operation not in ("sum", "max", "prod"):
            raise ShapeError(f"{name}: unknown eltwise operation {operation!r}")
        self.operation = operation
        self.coeffs = coeffs
        self._cache = None

    def check_bottom(self, bottom: list[Blob]) -> None:
        if len(bottom) < 2:
            raise ShapeError(f"{self.name}: eltwise needs >= 2 bottoms")
        ref = bottom[0].shape
        for b in bottom[1:]:
            if b.shape != ref:
                raise ShapeError(f"{self.name}: shape mismatch {ref} vs {b.shape}")
        if self.coeffs is not None and len(self.coeffs) != len(bottom):
            raise ShapeError(f"{self.name}: need one coeff per bottom")
        if self.coeffs is not None and self.operation != "sum":
            raise ShapeError(f"{self.name}: coeffs only apply to 'sum'")

    def reshape(self, bottom: list[Blob], top: list[Blob]) -> None:
        top[0].reshape(bottom[0].shape)
        self._n_bottoms = len(bottom)
        self._count = bottom[0].count

    def forward_impl(self, bottom: list[Blob], top: list[Blob]) -> None:
        xs = [b.data for b in bottom]
        if self.operation == "sum":
            coeffs = self.coeffs or [1.0] * len(xs)
            out = sum(c * x for c, x in zip(coeffs, xs))
            self._cache = None
        elif self.operation == "prod":
            out = np.prod(xs, axis=0)
            self._cache = (xs, out)
        else:  # max
            stacked = np.stack(xs)
            arg = stacked.argmax(axis=0)
            out = np.take_along_axis(stacked, arg[None], axis=0)[0]
            self._cache = arg
        top[0].data = out.astype(bottom[0].dtype, copy=False)

    def backward_impl(self, top: list[Blob], bottom: list[Blob]) -> None:
        if not self.propagate_down:
            return
        dy = top[0].diff
        if self.operation == "sum":
            coeffs = self.coeffs or [1.0] * len(bottom)
            for c, b in zip(coeffs, bottom):
                b.diff = b.diff + c * dy
        elif self.operation == "prod":
            xs, out = self._cache
            for i, b in enumerate(bottom):
                with np.errstate(divide="ignore", invalid="ignore"):
                    others = np.where(xs[i] != 0, out / xs[i], 0.0)
                # Recompute exactly for zero entries.
                if np.any(xs[i] == 0):
                    rest = np.prod([x for j, x in enumerate(xs) if j != i], axis=0)
                    others = np.where(xs[i] == 0, rest, others)
                b.diff = b.diff + dy * others
        else:  # max: route to the winner
            arg = self._cache
            for i, b in enumerate(bottom):
                b.diff = b.diff + dy * (arg == i)

    def sw_forward_cost(self) -> PlanCost:
        per_cg = -(-self._count // self.hw.n_core_groups)
        return ElementwisePlan.for_tensor(
            per_cg, flops_per_element=1.0, n_inputs=self._n_bottoms, params=self.hw
        ).cost()

    def sw_backward_cost(self) -> PlanCost:
        if not self.propagate_down:
            return PlanCost()
        per_cg = -(-self._count // self.hw.n_core_groups)
        return ElementwisePlan.for_tensor(
            per_cg, flops_per_element=1.0, n_outputs=self._n_bottoms, params=self.hw
        ).cost()
