"""Data layer: feeds mini-batches from a dataset source.

Tops are ``[data, label]``. The layer pulls from any object exposing
``next_batch(batch_size) -> (images, labels)`` — in practice the synthetic
ImageNet source in :mod:`repro.io.dataset`, optionally wrapped in the
prefetching pipeline of :mod:`repro.io.prefetch`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.frame.blob import Blob
from repro.frame.layer import Layer


class DataLayer(Layer):
    """Produces (data, label) blobs from a batch source."""

    type = "Data"

    def __init__(
        self,
        name: str,
        source,
        batch_size: int,
        params=None,
    ) -> None:
        super().__init__(name, params)
        if batch_size <= 0:
            raise ShapeError(f"{name}: batch_size must be positive")
        self.source = source
        self.batch_size = int(batch_size)
        self.propagate_down = False

    def check_bottom(self, bottom: list[Blob]) -> None:
        if bottom:
            raise ShapeError(f"{self.name}: data layer takes no bottoms")

    def reshape(self, bottom: list[Blob], top: list[Blob]) -> None:
        if len(top) != 2:
            raise ShapeError(f"{self.name}: data layer needs [data, label] tops")
        sample_shape = tuple(self.source.sample_shape)
        top[0].reshape((self.batch_size, *sample_shape))
        # Classification sources yield scalar labels; regression sources may
        # declare a per-sample label shape.
        label_shape = tuple(getattr(self.source, "label_shape", ()))
        top[1].reshape((self.batch_size, *label_shape))

    def forward_impl(self, bottom: list[Blob], top: list[Blob]) -> None:
        images, labels = self.source.next_batch(self.batch_size)
        top[0].data = images.astype(np.float32, copy=False)
        top[1].data = labels.astype(np.float32, copy=False)

    def backward_impl(self, top: list[Blob], bottom: list[Blob]) -> None:
        # Data layers produce no gradient.
        return
