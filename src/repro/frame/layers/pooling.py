"""Pooling layer wrapping the DMA-strategy pooling plan (Sec. IV-D)."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.frame.blob import Blob
from repro.frame.layer import Layer
from repro.kernels.plan import PlanCost
from repro.kernels.pooling import PoolingPlan


class PoolingLayer(Layer):
    """Max/average pooling over (B, C, H, W)."""

    type = "Pooling"

    def __init__(
        self,
        name: str,
        kernel_size: int,
        stride: int | None = None,
        pad: int = 0,
        mode: str = "max",
        global_pooling: bool = False,
        params=None,
    ) -> None:
        super().__init__(name, params)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride) if stride is not None else int(kernel_size)
        self.pad = int(pad)
        self.mode = mode
        self.global_pooling = bool(global_pooling)
        self._plan: PoolingPlan | None = None
        self._x_cache: np.ndarray | None = None
        self._argmax: np.ndarray | None = None

    def check_bottom(self, bottom: list[Blob]) -> None:
        self.require_bottoms(bottom, 1, self.type)
        if len(bottom[0].shape) != 4:
            raise ShapeError(f"{self.name}: pooling input must be 4D")

    def reshape(self, bottom: list[Blob], top: list[Blob]) -> None:
        b, c, h, w = bottom[0].shape
        if self.global_pooling:
            self.kernel_size = h
            self.stride = 1
            self.pad = 0
            if h != w:
                raise ShapeError(f"{self.name}: global pooling needs square input")
        self._plan = PoolingPlan(
            b, c, h, w, self.kernel_size, self.stride, self.pad, self.mode,
            params=self.hw,
        )
        top[0].reshape((b, c, self._plan.out_h, self._plan.out_w))

    def forward_impl(self, bottom: list[Blob], top: list[Blob]) -> None:
        self._x_cache = bottom[0].data
        out, arg = self._plan.forward(bottom[0].data)
        self._argmax = arg
        top[0].data = out.astype(bottom[0].dtype, copy=False)

    def backward_impl(self, top: list[Blob], bottom: list[Blob]) -> None:
        if not self.propagate_down:
            return
        dx = self._plan.backward(self._x_cache, top[0].diff, self._argmax)
        bottom[0].diff = bottom[0].diff + dx

    def _cg_plan(self) -> PoolingPlan:
        p = self._plan
        return PoolingPlan(
            self.cg_batch(p.batch), p.channels, p.height, p.width,
            p.k, p.stride, p.pad, p.mode, params=self.hw,
        )

    def sw_forward_cost(self) -> PlanCost:
        return self._cg_plan().cost()

    def sw_backward_cost(self) -> PlanCost:
        # Backward moves the same traffic in reverse.
        return self._cg_plan().cost() if self.propagate_down else PlanCost()
