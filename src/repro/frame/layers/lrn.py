"""Local response normalization (across channels), original AlexNet style.

Kept alongside BatchNorm so the harness can build both the original AlexNet
and the paper's BN refinement.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.frame.blob import Blob
from repro.frame.layer import Layer
from repro.kernels.elementwise import ElementwisePlan
from repro.kernels.plan import PlanCost


class LRNLayer(Layer):
    """y = x / (k + alpha/n * sum_{window} x^2)^beta across channels."""

    type = "LRN"

    def __init__(
        self,
        name: str,
        local_size: int = 5,
        alpha: float = 1e-4,
        beta: float = 0.75,
        k: float = 1.0,
        params=None,
    ) -> None:
        super().__init__(name, params)
        if local_size % 2 == 0 or local_size <= 0:
            raise ShapeError(f"{name}: local_size must be odd and positive")
        self.local_size = int(local_size)
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.k = float(k)
        self._cache = None

    def check_bottom(self, bottom: list[Blob]) -> None:
        self.require_bottoms(bottom, 1, self.type)
        if len(bottom[0].shape) != 4:
            raise ShapeError(f"{self.name}: LRN input must be 4D")

    def reshape(self, bottom: list[Blob], top: list[Blob]) -> None:
        top[0].reshape(bottom[0].shape)
        self._count = bottom[0].count

    def _window_sums(self, sq: np.ndarray) -> np.ndarray:
        """Sliding cross-channel sums of x^2 with a centered window."""
        b, c, h, w = sq.shape
        half = self.local_size // 2
        padded = np.zeros((b, c + 2 * half, h, w), dtype=sq.dtype)
        padded[:, half : half + c] = sq
        csum = np.cumsum(padded, axis=1)
        zeros = np.zeros((b, 1, h, w), dtype=sq.dtype)
        csum = np.concatenate([zeros, csum], axis=1)
        return csum[:, self.local_size :] - csum[:, : c]

    def forward_impl(self, bottom: list[Blob], top: list[Blob]) -> None:
        x = bottom[0].data.astype(np.float64)
        sums = self._window_sums(x * x)
        scale = self.k + (self.alpha / self.local_size) * sums
        y = x * scale ** (-self.beta)
        self._cache = (x, scale, y)
        top[0].data = y.astype(bottom[0].dtype)

    def backward_impl(self, top: list[Blob], bottom: list[Blob]) -> None:
        if not self.propagate_down:
            return
        x, scale, y = self._cache
        dy = top[0].diff.astype(np.float64)
        # dx_i = dy_i * scale_i^-beta
        #        - 2 alpha beta / n * x_i * sum_{j: i in win(j)} dy_j y_j / scale_j
        ratio = dy * y / scale
        # The adjoint of the centered window sum is itself a centered window sum.
        win = self._window_sums_adjoint(ratio)
        dx = dy * scale ** (-self.beta) - (
            2.0 * self.alpha * self.beta / self.local_size
        ) * x * win
        bottom[0].diff = bottom[0].diff + dx

    def _window_sums_adjoint(self, v: np.ndarray) -> np.ndarray:
        """Adjoint of :meth:`_window_sums`: also a centered window sum."""
        return self._window_sums(v)

    def sw_forward_cost(self) -> PlanCost:
        per_cg = -(-self._count // self.hw.n_core_groups)
        return ElementwisePlan.for_tensor(
            per_cg, flops_per_element=2.0 * self.local_size, params=self.hw
        ).cost()

    def sw_backward_cost(self) -> PlanCost:
        if not self.propagate_down:
            return PlanCost()
        per_cg = -(-self._count // self.hw.n_core_groups)
        return ElementwisePlan.for_tensor(
            per_cg, flops_per_element=3.0 * self.local_size, n_inputs=3, params=self.hw
        ).cost()
