"""Scale layer: per-channel learnable scale and optional bias.

Caffe pairs this with its stats-only BatchNorm layer; our BatchNorm fuses
the affine transform, but Scale remains useful standalone (e.g. ResNet
variants, feature recalibration) and keeps the layer zoo Caffe-complete.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.frame.blob import Blob
from repro.frame.layer import Layer
from repro.kernels.elementwise import ElementwisePlan
from repro.kernels.plan import PlanCost


class ScaleLayer(Layer):
    """y = scale[c] * x (+ bias[c]) over the channel axis."""

    type = "Scale"

    def __init__(self, name: str, bias: bool = True, params=None) -> None:
        super().__init__(name, params)
        self.use_bias = bool(bias)
        self.scale: Blob | None = None
        self.bias: Blob | None = None
        self._x_cache: np.ndarray | None = None

    def check_bottom(self, bottom: list[Blob]) -> None:
        self.require_bottoms(bottom, 1, self.type)
        if len(bottom[0].shape) not in (2, 4):
            raise ShapeError(f"{self.name}: Scale input must be 2D or 4D")

    @staticmethod
    def _bshape(ndim: int) -> tuple[int, ...]:
        return (1, -1) if ndim == 2 else (1, -1, 1, 1)

    @staticmethod
    def _axes(ndim: int) -> tuple[int, ...]:
        return (0,) if ndim == 2 else (0, 2, 3)

    def reshape(self, bottom: list[Blob], top: list[Blob]) -> None:
        c = bottom[0].shape[1]
        if self.scale is None:
            self.scale = self.add_param("scale", np.ones(c, dtype=np.float32), decay_mult=0.0)
            if self.use_bias:
                self.bias = self.add_param("bias", np.zeros(c, dtype=np.float32), decay_mult=0.0)
        top[0].reshape(bottom[0].shape)
        self._count = bottom[0].count

    def forward_impl(self, bottom: list[Blob], top: list[Blob]) -> None:
        x = bottom[0].data
        self._x_cache = x
        bs = self._bshape(x.ndim)
        y = x * self.scale.data.reshape(bs)
        if self.bias is not None:
            y = y + self.bias.data.reshape(bs)
        top[0].data = y.astype(x.dtype, copy=False)

    def backward_impl(self, top: list[Blob], bottom: list[Blob]) -> None:
        dy = top[0].diff.astype(np.float64)
        x = self._x_cache
        axes = self._axes(dy.ndim)
        bs = self._bshape(dy.ndim)
        self.scale.diff = self.scale.diff + (dy * x).sum(axis=axes)
        if self.bias is not None:
            self.bias.diff = self.bias.diff + dy.sum(axis=axes)
        if self.propagate_down:
            bottom[0].diff = bottom[0].diff + dy * self.scale.data.reshape(bs)

    def sw_forward_cost(self) -> PlanCost:
        per_cg = -(-self._count // self.hw.n_core_groups)
        return ElementwisePlan.for_tensor(per_cg, flops_per_element=2.0, params=self.hw).cost()

    def sw_backward_cost(self) -> PlanCost:
        per_cg = -(-self._count // self.hw.n_core_groups)
        return ElementwisePlan.for_tensor(
            per_cg, flops_per_element=3.0, n_inputs=2, params=self.hw
        ).cost()
