"""Dropout layer (inverted dropout, Caffe semantics)."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.frame.blob import Blob
from repro.frame.layer import Layer
from repro.kernels.elementwise import ElementwisePlan
from repro.kernels.plan import PlanCost
from repro.utils.rng import seeded_rng


class DropoutLayer(Layer):
    """Zero a random fraction during training; identity at test time."""

    type = "Dropout"

    def __init__(
        self,
        name: str,
        ratio: float = 0.5,
        rng: np.random.Generator | None = None,
        params=None,
    ) -> None:
        super().__init__(name, params)
        if not 0.0 <= ratio < 1.0:
            raise ShapeError(f"{name}: dropout ratio must be in [0, 1), got {ratio}")
        self.ratio = float(ratio)
        self._rng = rng or seeded_rng()
        self._mask: np.ndarray | None = None

    def check_bottom(self, bottom: list[Blob]) -> None:
        self.require_bottoms(bottom, 1, self.type)

    def reshape(self, bottom: list[Blob], top: list[Blob]) -> None:
        top[0].reshape(bottom[0].shape)
        self._count = bottom[0].count

    def forward_impl(self, bottom: list[Blob], top: list[Blob]) -> None:
        x = bottom[0].data
        if self.phase == "train" and self.ratio > 0:
            keep = 1.0 - self.ratio
            self._mask = (self._rng.random(x.shape) < keep) / keep
            top[0].data = (x * self._mask).astype(x.dtype)
        else:
            self._mask = None
            top[0].data = x.copy()

    def backward_impl(self, top: list[Blob], bottom: list[Blob]) -> None:
        if not self.propagate_down:
            return
        dy = top[0].diff
        grad = dy * self._mask if self._mask is not None else dy
        bottom[0].diff = bottom[0].diff + grad

    def sw_forward_cost(self) -> PlanCost:
        per_cg = -(-self._count // self.hw.n_core_groups)
        return ElementwisePlan.for_tensor(per_cg, flops_per_element=2.0, params=self.hw).cost()

    def sw_backward_cost(self) -> PlanCost:
        if not self.propagate_down:
            return PlanCost()
        per_cg = -(-self._count // self.hw.n_core_groups)
        return ElementwisePlan.for_tensor(per_cg, flops_per_element=1.0, params=self.hw).cost()
