"""Shape-manipulation layers: Flatten, Reshape, Split, Slice.

Pure bookkeeping layers (views and copies); Split is how Caffe expresses
explicit fan-out, and Slice is Concat's inverse. All are priced as pure
DMA streams on SW26010.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.frame.blob import Blob
from repro.frame.layer import Layer
from repro.kernels.elementwise import ElementwisePlan
from repro.kernels.plan import PlanCost


class _StreamCost(Layer):
    def _plan_cost(self) -> PlanCost:
        per_cg = -(-self._count // self.hw.n_core_groups)
        return ElementwisePlan.for_tensor(per_cg, flops_per_element=0.0, params=self.hw).cost()

    def sw_forward_cost(self) -> PlanCost:
        return self._plan_cost()

    def sw_backward_cost(self) -> PlanCost:
        return self._plan_cost() if self.propagate_down else PlanCost()


class FlattenLayer(_StreamCost):
    """(B, ...) -> (B, prod(...))."""

    type = "Flatten"

    def check_bottom(self, bottom: list[Blob]) -> None:
        self.require_bottoms(bottom, 1, self.type)
        if len(bottom[0].shape) < 2:
            raise ShapeError(f"{self.name}: flatten needs a batch dimension")

    def reshape(self, bottom: list[Blob], top: list[Blob]) -> None:
        b = bottom[0].shape[0]
        top[0].reshape((b, bottom[0].count // b))
        self._count = bottom[0].count
        self._bottom_shape = bottom[0].shape

    def forward_impl(self, bottom: list[Blob], top: list[Blob]) -> None:
        top[0].data = bottom[0].data.reshape(top[0].shape)

    def backward_impl(self, top: list[Blob], bottom: list[Blob]) -> None:
        if not self.propagate_down:
            return
        bottom[0].diff = bottom[0].diff + top[0].diff.reshape(self._bottom_shape)


class ReshapeLayer(_StreamCost):
    """Arbitrary reshape; one ``-1`` wildcard allowed."""

    type = "Reshape"

    def __init__(self, name: str, shape: tuple[int, ...], params=None) -> None:
        super().__init__(name, params)
        if sum(1 for s in shape if s == -1) > 1:
            raise ShapeError(f"{name}: at most one -1 in the target shape")
        self.target = tuple(int(s) for s in shape)

    def check_bottom(self, bottom: list[Blob]) -> None:
        self.require_bottoms(bottom, 1, self.type)

    def reshape(self, bottom: list[Blob], top: list[Blob]) -> None:
        count = bottom[0].count
        fixed = 1
        for s in self.target:
            if s != -1:
                fixed *= s
        if -1 in self.target:
            if count % fixed:
                raise ShapeError(
                    f"{self.name}: cannot infer -1: {count} not divisible by {fixed}"
                )
            shape = tuple(count // fixed if s == -1 else s for s in self.target)
        else:
            if fixed != count:
                raise ShapeError(
                    f"{self.name}: target {self.target} has {fixed} elements, "
                    f"input has {count}"
                )
            shape = self.target
        top[0].reshape(shape)
        self._count = count
        self._bottom_shape = bottom[0].shape

    def forward_impl(self, bottom: list[Blob], top: list[Blob]) -> None:
        top[0].data = bottom[0].data.reshape(top[0].shape)

    def backward_impl(self, top: list[Blob], bottom: list[Blob]) -> None:
        if not self.propagate_down:
            return
        bottom[0].diff = bottom[0].diff + top[0].diff.reshape(self._bottom_shape)


class SplitLayer(_StreamCost):
    """Copy one bottom into N tops (explicit fan-out; gradients sum)."""

    type = "Split"

    def __init__(self, name: str, n_tops: int = 2, params=None) -> None:
        super().__init__(name, params)
        if n_tops < 1:
            raise ShapeError(f"{name}: need at least one top")
        self.n_tops = int(n_tops)

    def check_bottom(self, bottom: list[Blob]) -> None:
        self.require_bottoms(bottom, 1, self.type)

    def reshape(self, bottom: list[Blob], top: list[Blob]) -> None:
        if len(top) != self.n_tops:
            raise ShapeError(f"{self.name}: expected {self.n_tops} tops, got {len(top)}")
        for t in top:
            t.reshape(bottom[0].shape)
        self._count = bottom[0].count * self.n_tops

    def forward_impl(self, bottom: list[Blob], top: list[Blob]) -> None:
        for t in top:
            t.data = bottom[0].data.copy()

    def backward_impl(self, top: list[Blob], bottom: list[Blob]) -> None:
        if not self.propagate_down:
            return
        total = np.zeros(bottom[0].shape, dtype=np.float64)
        for t in top:
            total += t.diff
        bottom[0].diff = bottom[0].diff + total


class SliceLayer(_StreamCost):
    """Split one bottom into N tops along ``axis`` at ``slice_points``."""

    type = "Slice"

    def __init__(self, name: str, slice_points: list[int], axis: int = 1, params=None) -> None:
        super().__init__(name, params)
        if sorted(slice_points) != list(slice_points) or len(set(slice_points)) != len(slice_points):
            raise ShapeError(f"{name}: slice_points must be strictly increasing")
        self.slice_points = [int(s) for s in slice_points]
        self.axis = int(axis)

    @property
    def n_tops(self) -> int:
        return len(self.slice_points) + 1

    def check_bottom(self, bottom: list[Blob]) -> None:
        self.require_bottoms(bottom, 1, self.type)
        dim = bottom[0].shape[self.axis]
        if self.slice_points and not (0 < self.slice_points[0] and self.slice_points[-1] < dim):
            raise ShapeError(f"{self.name}: slice points outside axis of size {dim}")

    def _bounds(self, dim: int) -> list[tuple[int, int]]:
        edges = [0] + self.slice_points + [dim]
        return list(zip(edges[:-1], edges[1:]))

    def reshape(self, bottom: list[Blob], top: list[Blob]) -> None:
        if len(top) != self.n_tops:
            raise ShapeError(f"{self.name}: expected {self.n_tops} tops, got {len(top)}")
        dim = bottom[0].shape[self.axis]
        for t, (lo, hi) in zip(top, self._bounds(dim)):
            shape = list(bottom[0].shape)
            shape[self.axis] = hi - lo
            t.reshape(tuple(shape))
        self._count = bottom[0].count

    def forward_impl(self, bottom: list[Blob], top: list[Blob]) -> None:
        dim = bottom[0].shape[self.axis]
        for t, (lo, hi) in zip(top, self._bounds(dim)):
            index = [slice(None)] * len(bottom[0].shape)
            index[self.axis] = slice(lo, hi)
            t.data = np.ascontiguousarray(bottom[0].data[tuple(index)])

    def backward_impl(self, top: list[Blob], bottom: list[Blob]) -> None:
        if not self.propagate_down:
            return
        dim = bottom[0].shape[self.axis]
        grad = np.zeros(bottom[0].shape, dtype=np.float64)
        for t, (lo, hi) in zip(top, self._bounds(dim)):
            index = [slice(None)] * len(bottom[0].shape)
            index[self.axis] = slice(lo, hi)
            grad[tuple(index)] = t.diff
        bottom[0].diff = bottom[0].diff + grad
