"""Batch normalization layer.

The paper replaces AlexNet's LRN with BN ("we adopt some refinements to
AlexNet without affecting the accuracy by changing the local response
normalization (LRN) to batch normalization (BN)"). Unlike Caffe, which
splits BatchNorm and Scale into two layers, this implementation fuses the
learnable scale/shift into one layer for clarity; the arithmetic is
identical.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.frame.blob import Blob
from repro.frame.layer import Layer
from repro.kernels.elementwise import ElementwisePlan
from repro.kernels.plan import PlanCost


class BatchNormLayer(Layer):
    """Per-channel batch normalization with learnable scale and shift."""

    type = "BatchNorm"

    def __init__(
        self, name: str, eps: float = 1e-5, momentum: float = 0.9, params=None
    ) -> None:
        super().__init__(name, params)
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.gamma: Blob | None = None
        self.beta: Blob | None = None
        self.running_mean: np.ndarray | None = None
        self.running_var: np.ndarray | None = None
        self._cache = None

    def check_bottom(self, bottom: list[Blob]) -> None:
        self.require_bottoms(bottom, 1, self.type)
        if len(bottom[0].shape) not in (2, 4):
            raise ShapeError(f"{self.name}: BN input must be 2D or 4D")

    def _channels(self, shape: tuple[int, ...]) -> int:
        return shape[1]

    def reshape(self, bottom: list[Blob], top: list[Blob]) -> None:
        c = self._channels(bottom[0].shape)
        if self.gamma is None:
            self.gamma = self.add_param("gamma", np.ones(c, dtype=np.float32), decay_mult=0.0)
            self.beta = self.add_param("beta", np.zeros(c, dtype=np.float32), decay_mult=0.0)
            self.running_mean = np.zeros(c, dtype=np.float64)
            self.running_var = np.ones(c, dtype=np.float64)
        top[0].reshape(bottom[0].shape)
        self._count = bottom[0].count

    @staticmethod
    def _axes(ndim: int) -> tuple[int, ...]:
        return (0,) if ndim == 2 else (0, 2, 3)

    @staticmethod
    def _bshape(ndim: int) -> tuple[int, ...]:
        return (1, -1) if ndim == 2 else (1, -1, 1, 1)

    def forward_impl(self, bottom: list[Blob], top: list[Blob]) -> None:
        x = bottom[0].data.astype(np.float64)
        axes = self._axes(x.ndim)
        bs = self._bshape(x.ndim)
        if self.phase == "train":
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        xhat = (x - mean.reshape(bs)) * inv_std.reshape(bs)
        self._cache = (xhat, inv_std)
        y = self.gamma.data.reshape(bs) * xhat + self.beta.data.reshape(bs)
        top[0].data = y.astype(bottom[0].dtype)

    def backward_impl(self, top: list[Blob], bottom: list[Blob]) -> None:
        xhat, inv_std = self._cache
        dy = top[0].diff.astype(np.float64)
        axes = self._axes(dy.ndim)
        bs = self._bshape(dy.ndim)
        m = dy.size / dy.shape[1]
        self.gamma.diff = self.gamma.diff + (dy * xhat).sum(axis=axes)
        self.beta.diff = self.beta.diff + dy.sum(axis=axes)
        if not self.propagate_down:
            return
        g = self.gamma.data.astype(np.float64).reshape(bs)
        dxhat = dy * g
        if self.phase == "train":
            # Full training-mode gradient (mean/var depend on x).
            dx = (
                inv_std.reshape(bs)
                / m
                * (
                    m * dxhat
                    - dxhat.sum(axis=axes).reshape(bs)
                    - xhat * (dxhat * xhat).sum(axis=axes).reshape(bs)
                )
            )
        else:
            dx = dxhat * inv_std.reshape(bs)
        bottom[0].diff = bottom[0].diff + dx

    def _plan(self, flops_per_element: float) -> ElementwisePlan:
        per_cg = -(-self._count // self.hw.n_core_groups)
        return ElementwisePlan.for_tensor(
            per_cg, flops_per_element=flops_per_element, params=self.hw
        )

    def sw_forward_cost(self) -> PlanCost:
        # Two passes: statistics, then normalize (read x twice, write once).
        per_cg = -(-self._count // self.hw.n_core_groups)
        stats = ElementwisePlan.for_tensor(
            per_cg, flops_per_element=2.0, n_outputs=0, params=self.hw
        )
        norm = self._plan(4.0)
        return stats.cost() + norm.cost()

    def sw_backward_cost(self) -> PlanCost:
        return self._plan(8.0).cost()
