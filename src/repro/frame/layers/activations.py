"""Additional activation layers from the Caffe zoo.

Sigmoid, TanH, ELU and Power — all bandwidth-bound streaming kernels on
SW26010, priced identically to ReLU through :class:`ElementwisePlan`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.frame.blob import Blob
from repro.frame.layer import Layer
from repro.kernels.elementwise import ElementwisePlan
from repro.kernels.plan import PlanCost


class _StreamingActivation(Layer):
    """Shared wiring for unary elementwise activations."""

    flops_per_element = 4.0

    def check_bottom(self, bottom: list[Blob]) -> None:
        self.require_bottoms(bottom, 1, self.type)

    def reshape(self, bottom: list[Blob], top: list[Blob]) -> None:
        top[0].reshape(bottom[0].shape)
        self._count = bottom[0].count

    def _plan(self) -> ElementwisePlan:
        per_cg = -(-self._count // self.hw.n_core_groups)
        return ElementwisePlan.for_tensor(
            per_cg, flops_per_element=self.flops_per_element, params=self.hw
        )

    def sw_forward_cost(self) -> PlanCost:
        return self._plan().cost()

    def sw_backward_cost(self) -> PlanCost:
        return self._plan().cost() if self.propagate_down else PlanCost()


class SigmoidLayer(_StreamingActivation):
    """y = 1 / (1 + exp(-x))."""

    type = "Sigmoid"

    def forward_impl(self, bottom: list[Blob], top: list[Blob]) -> None:
        y = 1.0 / (1.0 + np.exp(-bottom[0].data.astype(np.float64)))
        self._y = y
        top[0].data = y.astype(bottom[0].dtype)

    def backward_impl(self, top: list[Blob], bottom: list[Blob]) -> None:
        if not self.propagate_down:
            return
        y = self._y
        bottom[0].diff = bottom[0].diff + top[0].diff * y * (1 - y)


class TanHLayer(_StreamingActivation):
    """y = tanh(x)."""

    type = "TanH"

    def forward_impl(self, bottom: list[Blob], top: list[Blob]) -> None:
        y = np.tanh(bottom[0].data.astype(np.float64))
        self._y = y
        top[0].data = y.astype(bottom[0].dtype)

    def backward_impl(self, top: list[Blob], bottom: list[Blob]) -> None:
        if not self.propagate_down:
            return
        bottom[0].diff = bottom[0].diff + top[0].diff * (1 - self._y**2)


class ELULayer(_StreamingActivation):
    """y = x if x > 0 else alpha * (exp(x) - 1)."""

    type = "ELU"

    def __init__(self, name: str, alpha: float = 1.0, params=None) -> None:
        super().__init__(name, params)
        self.alpha = float(alpha)

    def forward_impl(self, bottom: list[Blob], top: list[Blob]) -> None:
        x = bottom[0].data.astype(np.float64)
        self._mask = x > 0
        neg = self.alpha * (np.exp(np.minimum(x, 0.0)) - 1.0)
        y = np.where(self._mask, x, neg)
        self._neg = neg
        top[0].data = y.astype(bottom[0].dtype)

    def backward_impl(self, top: list[Blob], bottom: list[Blob]) -> None:
        if not self.propagate_down:
            return
        dy = top[0].diff
        grad = np.where(self._mask, dy, dy * (self._neg + self.alpha))
        bottom[0].diff = bottom[0].diff + grad


class PowerLayer(_StreamingActivation):
    """y = (scale * x + shift) ** power (Caffe's Power layer)."""

    type = "Power"

    def __init__(
        self, name: str, power: float = 1.0, scale: float = 1.0,
        shift: float = 0.0, params=None,
    ) -> None:
        super().__init__(name, params)
        self.power = float(power)
        self.scale = float(scale)
        self.shift = float(shift)

    def forward_impl(self, bottom: list[Blob], top: list[Blob]) -> None:
        x = bottom[0].data.astype(np.float64)
        base = self.scale * x + self.shift
        if self.power != 1.0 and np.any(base < 0) and self.power != int(self.power):
            raise ShapeError(
                f"{self.name}: fractional power of negative base"
            )
        self._base = base
        top[0].data = (base**self.power).astype(bottom[0].dtype)

    def backward_impl(self, top: list[Blob], bottom: list[Blob]) -> None:
        if not self.propagate_down:
            return
        dy = top[0].diff.astype(np.float64)
        grad = dy * self.power * self.scale * self._base ** (self.power - 1.0)
        bottom[0].diff = bottom[0].diff + grad
