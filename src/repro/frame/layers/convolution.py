"""Convolution layer with autotuned SW26010 plans (Sec. IV-B, VI-A)."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.frame.blob import Blob
from repro.frame.conv_ops import conv_backward, conv_forward
from repro.frame.layer import Layer
from repro.hw.spec import SW26010Params
from repro.kernels.autotune import ConvConfig, PlanAutotuner
from repro.kernels.im2col import conv_out_dim
from repro.kernels.plan import PlanCost
from repro.utils.rng import seeded_rng


class ConvolutionLayer(Layer):
    """2D convolution: (B, Ni, H, W) -> (B, No, Ho, Wo).

    The functional path is exact NumPy arithmetic; the timing path asks the
    plan autotuner (explicit vs implicit GEMM transformation) for the best
    plan per direction, exactly like swCaffe's first-two-iterations probe.
    """

    type = "Convolution"

    def __init__(
        self,
        name: str,
        num_output: int,
        kernel_size: int,
        stride: int = 1,
        pad: int = 0,
        bias: bool = True,
        groups: int = 1,
        weight_filler: str = "msra",
        rng: np.random.Generator | None = None,
        params: SW26010Params | None = None,
    ) -> None:
        super().__init__(name, params)
        if num_output <= 0 or kernel_size <= 0 or stride <= 0 or pad < 0:
            raise ShapeError(f"bad conv hyperparameters for layer {name!r}")
        if groups <= 0 or num_output % groups:
            raise ShapeError(
                f"{name}: num_output={num_output} not divisible by groups={groups}"
            )
        self.groups = int(groups)
        self.num_output = int(num_output)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.pad = int(pad)
        self.use_bias = bool(bias)
        self.weight_filler = weight_filler
        self._rng = rng or seeded_rng()
        self._autotuner = PlanAutotuner(params)
        self._x_cache: np.ndarray | None = None
        self.weight: Blob | None = None
        self.bias: Blob | None = None

    # ------------------------------------------------------------------ #
    def check_bottom(self, bottom: list[Blob]) -> None:
        self.require_bottoms(bottom, 1, self.type)
        if len(bottom[0].shape) != 4:
            raise ShapeError(f"{self.name}: conv input must be 4D, got {bottom[0].shape}")

    def _init_weights(self, ni: int) -> None:
        k = self.kernel_size
        ni = ni // self.groups
        fan_in = ni * k * k
        if self.weight_filler == "msra":
            std = float(np.sqrt(2.0 / fan_in))
        elif self.weight_filler == "xavier":
            std = float(np.sqrt(1.0 / fan_in))
        else:
            raise ValueError(f"unknown weight filler {self.weight_filler!r}")
        w = std * self._rng.standard_normal(
            size=(self.num_output, ni, k, k), dtype=np.float32
        )
        self.weight = self.add_param("weight", w)
        if self.use_bias:
            b = np.zeros(self.num_output, dtype=np.float32)
            self.bias = self.add_param("bias", b, lr_mult=2.0, decay_mult=0.0)

    def reshape(self, bottom: list[Blob], top: list[Blob]) -> None:
        b, ni, h, w = bottom[0].shape
        if ni % self.groups:
            raise ShapeError(
                f"{self.name}: input channels {ni} not divisible by "
                f"groups={self.groups}"
            )
        if self.weight is None:
            self._init_weights(ni)
        ho = conv_out_dim(h, self.kernel_size, self.stride, self.pad)
        wo = conv_out_dim(w, self.kernel_size, self.stride, self.pad)
        top[0].reshape((b, self.num_output, ho, wo))
        self._bottom_shape = (b, ni, h, w)

    # ------------------------------------------------------------------ #
    def forward_impl(self, bottom: list[Blob], top: list[Blob]) -> None:
        x = bottom[0].data
        self._x_cache = x
        bias = self.bias.data if self.bias is not None else None
        top[0].data = conv_forward(
            x, self.weight.data, bias, self.stride, self.pad, groups=self.groups
        )

    def backward_impl(self, top: list[Blob], bottom: list[Blob]) -> None:
        x = self._x_cache if self._x_cache is not None else bottom[0].data
        dx, dw, db = conv_backward(
            x,
            self.weight.data,
            top[0].diff,
            self.stride,
            self.pad,
            need_input_grad=self.propagate_down,
            groups=self.groups,
        )
        self.weight.diff = self.weight.diff + dw
        if self.bias is not None:
            self.bias.diff = self.bias.diff + db
        if self.propagate_down and dx is not None:
            bottom[0].diff = bottom[0].diff + dx

    # ------------------------------------------------------------------ #
    def _config(self) -> ConvConfig:
        """Autotuner key; grouped convs are priced as per-group kernels
        run sequentially (see sw_forward_cost)."""
        b, ni, h, w = self._bottom_shape
        return ConvConfig(
            batch=self.cg_batch(b),
            ni=ni // self.groups,
            no=self.num_output // self.groups,
            height=h,
            width=w,
            k=self.kernel_size,
            stride=self.stride,
            pad=self.pad,
        )

    def _times_groups(self, cost: PlanCost) -> PlanCost:
        if self.groups == 1:
            return cost
        from repro.kernels.plan import combine_sequential

        return combine_sequential([cost] * self.groups)

    def sw_forward_cost(self) -> PlanCost:
        return self._times_groups(
            self._autotuner.choose(self._config(), "forward").cost
        )

    def sw_backward_cost(self) -> PlanCost:
        cfg = self._config()
        cost = self._autotuner.choose(cfg, "backward_weight").cost
        if self.propagate_down:
            cost = cost + self._autotuner.choose(cfg, "backward_input").cost
        return self._times_groups(cost)

    def chosen_plans(self) -> dict[str, str]:
        """Which plan won each direction (for the Table II harness)."""
        cfg = self._config()
        out = {"forward": self._autotuner.choose(cfg, "forward").plan_name}
        out["backward_weight"] = self._autotuner.choose(cfg, "backward_weight").plan_name
        if self.propagate_down:
            out["backward_input"] = self._autotuner.choose(cfg, "backward_input").plan_name
        return out
