"""LSTM layer.

The paper singles out LSTM as a "more complicated layer ... mainly
involving GEMM operations" (Sec. IV-A): each timestep is a pair of GEMMs
against the input and recurrent weight matrices, so on SW26010 it rides the
register-communication GEMM plan. This implementation is a standard
single-layer LSTM over (B, T, D) sequences with full BPTT.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.frame.blob import Blob
from repro.frame.layer import Layer
from repro.hw.spec import SW26010Params
from repro.kernels.gemm import SWGemmPlan
from repro.kernels.plan import PlanCost, combine_sequential
from repro.utils.rng import seeded_rng


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


class LSTMLayer(Layer):
    """Single-layer LSTM: (B, T, D) -> (B, T, H).

    Gate order in the packed weight matrices is (i, f, g, o). The forget
    gate bias is initialized to 1, the usual trick for gradient flow.
    """

    type = "LSTM"

    def __init__(
        self,
        name: str,
        num_output: int,
        rng: np.random.Generator | None = None,
        params: SW26010Params | None = None,
    ) -> None:
        super().__init__(name, params)
        if num_output <= 0:
            raise ShapeError(f"{name}: num_output must be positive")
        self.hidden = int(num_output)
        self._rng = rng or seeded_rng()
        self.wx: Blob | None = None
        self.wh: Blob | None = None
        self.bias: Blob | None = None
        self._cache = None

    def check_bottom(self, bottom: list[Blob]) -> None:
        self.require_bottoms(bottom, 1, self.type)
        if len(bottom[0].shape) != 3:
            raise ShapeError(f"{self.name}: LSTM input must be (B, T, D)")

    def reshape(self, bottom: list[Blob], top: list[Blob]) -> None:
        b, t, d = bottom[0].shape
        h = self.hidden
        if self.wx is None:
            sx = float(np.sqrt(1.0 / d))
            sh = float(np.sqrt(1.0 / h))
            self.wx = self.add_param(
                "wx", self._rng.normal(0, sx, size=(4 * h, d)).astype(np.float32)
            )
            self.wh = self.add_param(
                "wh", self._rng.normal(0, sh, size=(4 * h, h)).astype(np.float32)
            )
            bias = np.zeros(4 * h, dtype=np.float32)
            bias[h : 2 * h] = 1.0  # forget gate
            self.bias = self.add_param("bias", bias, decay_mult=0.0)
        top[0].reshape((b, t, h))
        self._shape = (b, t, d)

    # ------------------------------------------------------------------ #
    def forward_impl(self, bottom: list[Blob], top: list[Blob]) -> None:
        x = bottom[0].data.astype(np.float64)
        b, t, d = x.shape
        h = self.hidden
        wx = self.wx.data.astype(np.float64)
        wh = self.wh.data.astype(np.float64)
        bias = self.bias.data.astype(np.float64)
        h_t = np.zeros((b, h))
        c_t = np.zeros((b, h))
        hs = np.zeros((b, t, h))
        steps = []
        for step in range(t):
            z = x[:, step] @ wx.T + h_t @ wh.T + bias
            i = _sigmoid(z[:, :h])
            f = _sigmoid(z[:, h : 2 * h])
            g = np.tanh(z[:, 2 * h : 3 * h])
            o = _sigmoid(z[:, 3 * h :])
            c_prev = c_t
            c_t = f * c_prev + i * g
            tanh_c = np.tanh(c_t)
            h_prev = h_t
            h_t = o * tanh_c
            hs[:, step] = h_t
            steps.append((i, f, g, o, c_prev, c_t, tanh_c, h_prev))
        self._cache = (x, steps)
        top[0].data = hs.astype(bottom[0].dtype)

    def backward_impl(self, top: list[Blob], bottom: list[Blob]) -> None:
        x, steps = self._cache
        b, t, d = x.shape
        h = self.hidden
        wx = self.wx.data.astype(np.float64)
        wh = self.wh.data.astype(np.float64)
        dy = top[0].diff.astype(np.float64)
        dwx = np.zeros_like(wx)
        dwh = np.zeros_like(wh)
        dbias = np.zeros(4 * h)
        dx = np.zeros_like(x)
        dh_next = np.zeros((b, h))
        dc_next = np.zeros((b, h))
        for step in reversed(range(t)):
            i, f, g, o, c_prev, c_t, tanh_c, h_prev = steps[step]
            dh = dy[:, step] + dh_next
            do = dh * tanh_c
            dc = dc_next + dh * o * (1 - tanh_c**2)
            di = dc * g
            df = dc * c_prev
            dg = dc * i
            dz = np.concatenate(
                [
                    di * i * (1 - i),
                    df * f * (1 - f),
                    dg * (1 - g**2),
                    do * o * (1 - o),
                ],
                axis=1,
            )
            dwx += dz.T @ x[:, step]
            dwh += dz.T @ h_prev
            dbias += dz.sum(axis=0)
            dx[:, step] = dz @ wx
            dh_next = dz @ wh
            dc_next = dc * f
        self.wx.diff = self.wx.diff + dwx
        self.wh.diff = self.wh.diff + dwh
        self.bias.diff = self.bias.diff + dbias
        if self.propagate_down:
            bottom[0].diff = bottom[0].diff + dx

    # ------------------------------------------------------------------ #
    def sw_forward_cost(self) -> PlanCost:
        b, t, d = self._shape
        bc = self.cg_batch(b)
        h = self.hidden
        per_step = combine_sequential(
            [
                SWGemmPlan(4 * h, bc, d, params=self.hw).cost(),
                SWGemmPlan(4 * h, bc, h, params=self.hw).cost(),
            ]
        )
        return combine_sequential([per_step] * t)

    def sw_backward_cost(self) -> PlanCost:
        b, t, d = self._shape
        bc = self.cg_batch(b)
        h = self.hidden
        per_step = combine_sequential(
            [
                SWGemmPlan(4 * h, d, bc, params=self.hw).cost(),
                SWGemmPlan(4 * h, h, bc, params=self.hw).cost(),
                SWGemmPlan(bc, d, 4 * h, params=self.hw).cost(),
                SWGemmPlan(bc, h, 4 * h, params=self.hw).cost(),
            ]
        )
        return combine_sequential([per_step] * t)
