"""Euclidean (L2) loss layer — Caffe's regression head.

``loss = 1/(2B) * sum ||pred - target||^2`` with gradient
``(pred - target) / B`` into the first bottom (and the negative into the
second, when it needs gradients).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.frame.blob import Blob
from repro.frame.layer import Layer
from repro.kernels.elementwise import ElementwisePlan
from repro.kernels.plan import PlanCost


class EuclideanLossLayer(Layer):
    """L2 regression loss over ``[predictions, targets]`` bottoms."""

    type = "EuclideanLoss"

    def __init__(self, name: str, params=None) -> None:
        super().__init__(name, params)
        self.is_loss = True
        self._diff: np.ndarray | None = None

    def check_bottom(self, bottom: list[Blob]) -> None:
        self.require_bottoms(bottom, 2, self.type)
        if bottom[0].shape != bottom[1].shape:
            raise ShapeError(
                f"{self.name}: prediction shape {bottom[0].shape} != "
                f"target shape {bottom[1].shape}"
            )

    def reshape(self, bottom: list[Blob], top: list[Blob]) -> None:
        top[0].reshape((1,))
        self._count = bottom[0].count

    def forward_impl(self, bottom: list[Blob], top: list[Blob]) -> None:
        b = bottom[0].shape[0]
        diff = bottom[0].data.astype(np.float64) - bottom[1].data.astype(np.float64)
        self._diff = diff
        top[0].data = np.array(
            [0.5 * float(np.sum(diff * diff)) / b], dtype=np.float32
        )

    def backward_impl(self, top: list[Blob], bottom: list[Blob]) -> None:
        b = bottom[0].shape[0]
        loss_weight = float(top[0].diff[0])
        grad = self._diff * (loss_weight / b)
        bottom[0].diff = bottom[0].diff + grad
        # Targets rarely need gradients, but support it (Caffe does).
        if bottom[1].name in getattr(self, "_grad_targets", ()):  # pragma: no cover
            bottom[1].diff = bottom[1].diff - grad

    def sw_forward_cost(self) -> PlanCost:
        per_cg = -(-self._count // self.hw.n_core_groups)
        return ElementwisePlan.for_tensor(
            per_cg, flops_per_element=3.0, n_inputs=2, params=self.hw
        ).cost()

    def sw_backward_cost(self) -> PlanCost:
        per_cg = -(-self._count // self.hw.n_core_groups)
        return ElementwisePlan.for_tensor(per_cg, flops_per_element=1.0, params=self.hw).cost()
