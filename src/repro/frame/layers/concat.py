"""Channel concatenation layer (GoogLeNet inception joins)."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.frame.blob import Blob
from repro.frame.layer import Layer
from repro.kernels.elementwise import ElementwisePlan
from repro.kernels.plan import PlanCost


class ConcatLayer(Layer):
    """Concatenate bottoms along ``axis`` (default: channels)."""

    type = "Concat"

    def __init__(self, name: str, axis: int = 1, params=None) -> None:
        super().__init__(name, params)
        self.axis = int(axis)
        self._splits: list[int] = []

    def check_bottom(self, bottom: list[Blob]) -> None:
        if len(bottom) < 1:
            raise ShapeError(f"{self.name}: concat needs at least one bottom")
        ref = bottom[0].shape
        for b in bottom[1:]:
            for ax, (s0, s1) in enumerate(zip(ref, b.shape)):
                if ax != self.axis and s0 != s1:
                    raise ShapeError(
                        f"{self.name}: bottoms disagree off-axis: {ref} vs {b.shape}"
                    )

    def reshape(self, bottom: list[Blob], top: list[Blob]) -> None:
        shape = list(bottom[0].shape)
        shape[self.axis] = sum(b.shape[self.axis] for b in bottom)
        top[0].reshape(tuple(shape))
        self._splits = [b.shape[self.axis] for b in bottom]
        self._count = top[0].count

    def forward_impl(self, bottom: list[Blob], top: list[Blob]) -> None:
        top[0].data = np.concatenate([b.data for b in bottom], axis=self.axis)

    def backward_impl(self, top: list[Blob], bottom: list[Blob]) -> None:
        if not self.propagate_down:
            return
        offset = 0
        for b, width in zip(bottom, self._splits):
            index = [slice(None)] * len(top[0].shape)
            index[self.axis] = slice(offset, offset + width)
            b.diff = b.diff + top[0].diff[tuple(index)]
            offset += width

    def sw_forward_cost(self) -> PlanCost:
        per_cg = -(-self._count // self.hw.n_core_groups)
        return ElementwisePlan.for_tensor(per_cg, flops_per_element=0.0, params=self.hw).cost()

    def sw_backward_cost(self) -> PlanCost:
        return self.sw_forward_cost() if self.propagate_down else PlanCost()
