"""Top-k accuracy layer (evaluation only, no backward)."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.frame.blob import Blob
from repro.frame.layer import Layer


class AccuracyLayer(Layer):
    """Fraction of rows whose label appears in the top-k logits."""

    type = "Accuracy"

    def __init__(self, name: str, top_k: int = 1, params=None) -> None:
        super().__init__(name, params)
        if top_k <= 0:
            raise ShapeError(f"{name}: top_k must be positive")
        self.top_k = int(top_k)
        self.propagate_down = False

    def check_bottom(self, bottom: list[Blob]) -> None:
        self.require_bottoms(bottom, 2, self.type)
        if len(bottom[0].shape) != 2:
            raise ShapeError(f"{self.name}: logits must be (B, C)")
        if self.top_k > bottom[0].shape[1]:
            raise ShapeError(
                f"{self.name}: top_k={self.top_k} exceeds class count "
                f"{bottom[0].shape[1]}"
            )

    def reshape(self, bottom: list[Blob], top: list[Blob]) -> None:
        top[0].reshape((1,))

    def forward_impl(self, bottom: list[Blob], top: list[Blob]) -> None:
        logits = bottom[0].data
        labels = bottom[1].data.astype(np.int64)
        if self.top_k == 1:
            hits = logits.argmax(axis=1) == labels
        else:
            topk = np.argpartition(-logits, self.top_k - 1, axis=1)[:, : self.top_k]
            hits = (topk == labels[:, None]).any(axis=1)
        top[0].data = np.array([hits.mean()], dtype=np.float32)

    def backward_impl(self, top: list[Blob], bottom: list[Blob]) -> None:
        # Accuracy produces no gradient.
        return
