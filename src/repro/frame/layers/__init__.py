"""swCaffe layer zoo.

Every layer type the evaluated networks (AlexNet-BN, VGG-16/19, ResNet-50,
GoogLeNet) need, plus the swCaffe-specific tensor-transformation layer and
an LSTM layer (the paper's example of a GEMM-dominated complex layer).
"""

from repro.frame.layers.data import DataLayer
from repro.frame.layers.convolution import ConvolutionLayer
from repro.frame.layers.inner_product import InnerProductLayer
from repro.frame.layers.relu import ReLULayer
from repro.frame.layers.pooling import PoolingLayer
from repro.frame.layers.batch_norm import BatchNormLayer
from repro.frame.layers.lrn import LRNLayer
from repro.frame.layers.dropout import DropoutLayer
from repro.frame.layers.softmax import SoftmaxLayer, SoftmaxWithLossLayer
from repro.frame.layers.accuracy import AccuracyLayer
from repro.frame.layers.concat import ConcatLayer
from repro.frame.layers.eltwise import EltwiseLayer
from repro.frame.layers.transform import TensorTransformLayer
from repro.frame.layers.lstm import LSTMLayer
from repro.frame.layers.activations import ELULayer, PowerLayer, SigmoidLayer, TanHLayer
from repro.frame.layers.reshape_ops import FlattenLayer, ReshapeLayer, SliceLayer, SplitLayer
from repro.frame.layers.scale import ScaleLayer
from repro.frame.layers.euclidean_loss import EuclideanLossLayer

__all__ = [
    "EuclideanLossLayer",
    "ELULayer",
    "PowerLayer",
    "SigmoidLayer",
    "TanHLayer",
    "FlattenLayer",
    "ReshapeLayer",
    "SliceLayer",
    "SplitLayer",
    "ScaleLayer",
    "DataLayer",
    "ConvolutionLayer",
    "InnerProductLayer",
    "ReLULayer",
    "PoolingLayer",
    "BatchNormLayer",
    "LRNLayer",
    "DropoutLayer",
    "SoftmaxLayer",
    "SoftmaxWithLossLayer",
    "AccuracyLayer",
    "ConcatLayer",
    "EltwiseLayer",
    "TensorTransformLayer",
    "LSTMLayer",
]
