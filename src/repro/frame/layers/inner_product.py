"""Inner-product (fully connected) layer: GEMM on the CPE mesh (Sec. IV-A)."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.frame.blob import Blob
from repro.frame.layer import Layer
from repro.hw.spec import SW26010Params
from repro.kernels.gemm import SWGemmPlan
from repro.kernels.plan import PlanCost, combine_sequential
from repro.utils.rng import seeded_rng


class InnerProductLayer(Layer):
    """y = x W^T + b over flattened inputs: (B, D) -> (B, M)."""

    type = "InnerProduct"

    def __init__(
        self,
        name: str,
        num_output: int,
        bias: bool = True,
        weight_filler: str = "xavier",
        rng: np.random.Generator | None = None,
        params: SW26010Params | None = None,
    ) -> None:
        super().__init__(name, params)
        if num_output <= 0:
            raise ShapeError(f"{name}: num_output must be positive")
        self.num_output = int(num_output)
        self.use_bias = bool(bias)
        self.weight_filler = weight_filler
        self._rng = rng or seeded_rng()
        self.weight: Blob | None = None
        self.bias: Blob | None = None
        self._x_cache: np.ndarray | None = None

    def check_bottom(self, bottom: list[Blob]) -> None:
        self.require_bottoms(bottom, 1, self.type)

    def _flat_dim(self, shape: tuple[int, ...]) -> int:
        d = 1
        for s in shape[1:]:
            d *= s
        return d

    def reshape(self, bottom: list[Blob], top: list[Blob]) -> None:
        b = bottom[0].shape[0]
        d = self._flat_dim(bottom[0].shape)
        if self.weight is None:
            if self.weight_filler == "xavier":
                std = float(np.sqrt(1.0 / d))
            elif self.weight_filler == "msra":
                std = float(np.sqrt(2.0 / d))
            else:
                raise ValueError(f"unknown weight filler {self.weight_filler!r}")
            w = std * self._rng.standard_normal(size=(self.num_output, d), dtype=np.float32)
            self.weight = self.add_param("weight", w)
            if self.use_bias:
                self.bias = self.add_param(
                    "bias", np.zeros(self.num_output, dtype=np.float32),
                    lr_mult=2.0, decay_mult=0.0,
                )
        elif self.weight.shape != (self.num_output, d):
            raise ShapeError(
                f"{self.name}: input dim changed ({self.weight.shape[1]} -> {d})"
            )
        top[0].reshape((b, self.num_output))
        self._bottom_shape = bottom[0].shape

    def forward_impl(self, bottom: list[Blob], top: list[Blob]) -> None:
        x = bottom[0].data.reshape(bottom[0].shape[0], -1)
        self._x_cache = x
        y = x @ self.weight.data.T
        if self.bias is not None:
            y += self.bias.data
        top[0].data = y

    def backward_impl(self, top: list[Blob], bottom: list[Blob]) -> None:
        x = self._x_cache if self._x_cache is not None else bottom[0].data.reshape(
            bottom[0].shape[0], -1
        )
        dy = top[0].diff
        self.weight.diff = self.weight.diff + dy.T @ x
        if self.bias is not None:
            self.bias.diff = self.bias.diff + dy.sum(axis=0)
        if self.propagate_down:
            dx = (dy @ self.weight.data).reshape(bottom[0].shape)
            bottom[0].diff = bottom[0].diff + dx

    # ------------------------------------------------------------------ #
    def sw_forward_cost(self) -> PlanCost:
        b = self.cg_batch(self._bottom_shape[0])
        d = self._flat_dim(self._bottom_shape)
        return SWGemmPlan(self.num_output, b, d, params=self.hw).cost()

    def sw_backward_cost(self) -> PlanCost:
        b = self.cg_batch(self._bottom_shape[0])
        d = self._flat_dim(self._bottom_shape)
        costs = [SWGemmPlan(self.num_output, d, b, params=self.hw).cost()]  # dW
        if self.propagate_down:
            costs.append(SWGemmPlan(b, d, self.num_output, params=self.hw).cost())  # dX
        return combine_sequential(costs)
