"""Softmax and softmax-with-loss layers."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.frame.blob import Blob
from repro.frame.layer import Layer
from repro.kernels.elementwise import ElementwisePlan
from repro.kernels.plan import PlanCost


def stable_softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise numerically stable softmax for (B, C) inputs."""
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class SoftmaxLayer(Layer):
    """Plain softmax over the channel axis of (B, C) inputs."""

    type = "Softmax"

    def __init__(self, name: str, params=None) -> None:
        super().__init__(name, params)
        self._probs: np.ndarray | None = None

    def check_bottom(self, bottom: list[Blob]) -> None:
        self.require_bottoms(bottom, 1, self.type)
        if len(bottom[0].shape) != 2:
            raise ShapeError(f"{self.name}: softmax expects (B, C) input")

    def reshape(self, bottom: list[Blob], top: list[Blob]) -> None:
        top[0].reshape(bottom[0].shape)
        self._count = bottom[0].count

    def forward_impl(self, bottom: list[Blob], top: list[Blob]) -> None:
        self._probs = stable_softmax(bottom[0].data.astype(np.float64))
        top[0].data = self._probs.astype(bottom[0].dtype)

    def backward_impl(self, top: list[Blob], bottom: list[Blob]) -> None:
        if not self.propagate_down:
            return
        p = self._probs
        dy = top[0].diff.astype(np.float64)
        dot = (dy * p).sum(axis=1, keepdims=True)
        bottom[0].diff = bottom[0].diff + p * (dy - dot)

    def sw_forward_cost(self) -> PlanCost:
        per_cg = -(-self._count // self.hw.n_core_groups)
        return ElementwisePlan.for_tensor(per_cg, flops_per_element=4.0, params=self.hw).cost()

    def sw_backward_cost(self) -> PlanCost:
        return self.sw_forward_cost() if self.propagate_down else PlanCost()


class SoftmaxWithLossLayer(Layer):
    """Fused softmax + multinomial cross-entropy (Caffe's training head).

    Bottoms: ``[logits (B, C), labels (B,)]``. Top: scalar loss. Backward
    writes ``(p - onehot) / B`` into the logits diff — it owns the gradient
    seed, so the net calls it first in the backward sweep.
    """

    type = "SoftmaxWithLoss"

    def __init__(self, name: str, params=None) -> None:
        super().__init__(name, params)
        self._probs: np.ndarray | None = None
        self._labels: np.ndarray | None = None
        self.is_loss = True

    def check_bottom(self, bottom: list[Blob]) -> None:
        self.require_bottoms(bottom, 2, self.type)
        if len(bottom[0].shape) != 2:
            raise ShapeError(f"{self.name}: logits must be (B, C)")
        if len(bottom[1].shape) != 1 or bottom[1].shape[0] != bottom[0].shape[0]:
            raise ShapeError(
                f"{self.name}: labels shape {bottom[1].shape} does not match "
                f"logits {bottom[0].shape}"
            )

    def reshape(self, bottom: list[Blob], top: list[Blob]) -> None:
        top[0].reshape((1,))
        self._count = bottom[0].count

    def forward_impl(self, bottom: list[Blob], top: list[Blob]) -> None:
        logits = bottom[0].data.astype(np.float64)
        labels = bottom[1].data.astype(np.int64)
        p = stable_softmax(logits)
        self._probs, self._labels = p, labels
        b = logits.shape[0]
        nll = -np.log(np.clip(p[np.arange(b), labels], 1e-30, None))
        top[0].data = np.array([nll.mean()], dtype=np.float32)

    def backward_impl(self, top: list[Blob], bottom: list[Blob]) -> None:
        p, labels = self._probs, self._labels
        b = p.shape[0]
        grad = p.copy()
        grad[np.arange(b), labels] -= 1.0
        grad /= b
        # The net seeds the loss blob's diff with the loss weight (1.0).
        loss_weight = float(top[0].diff[0])
        bottom[0].diff = bottom[0].diff + grad * loss_weight

    def sw_forward_cost(self) -> PlanCost:
        per_cg = -(-self._count // self.hw.n_core_groups)
        return ElementwisePlan.for_tensor(per_cg, flops_per_element=5.0, params=self.hw).cost()

    def sw_backward_cost(self) -> PlanCost:
        per_cg = -(-self._count // self.hw.n_core_groups)
        return ElementwisePlan.for_tensor(per_cg, flops_per_element=2.0, params=self.hw).cost()
