"""Tensor transformation layer (Sec. IV-C).

swCaffe inserts these at the boundary of implicit-GEMM convolution chains
to transpose between the default (B, N, R, C) layout and the implicit
(R, C, N, B) layout. Functionally the layer is a pure transposition (its
backward is the inverse transposition of the gradient); its cost is the
strided-DMA + SIMD-shuffle plan.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.frame.blob import Blob
from repro.frame.layer import Layer
from repro.kernels.plan import PlanCost
from repro.kernels.transform import TensorTransformPlan


class TensorTransformLayer(Layer):
    """Layout transposition between explicit and implicit data layouts."""

    type = "TensorTransform"

    def __init__(self, name: str, to_implicit: bool = True, params=None) -> None:
        super().__init__(name, params)
        self.to_implicit = bool(to_implicit)
        self._plan: TensorTransformPlan | None = None

    def check_bottom(self, bottom: list[Blob]) -> None:
        self.require_bottoms(bottom, 1, self.type)
        if len(bottom[0].shape) != 4:
            raise ShapeError(f"{self.name}: transform input must be 4D")

    def reshape(self, bottom: list[Blob], top: list[Blob]) -> None:
        shape = bottom[0].shape
        if self.to_implicit:
            # (B, N, R, C) -> (R, C, N, B)
            explicit_shape = shape
            out_shape = (shape[2], shape[3], shape[1], shape[0])
        else:
            # (R, C, N, B) -> (B, N, R, C)
            explicit_shape = (shape[3], shape[2], shape[0], shape[1])
            out_shape = explicit_shape
        self._plan = TensorTransformPlan(
            explicit_shape, to_implicit=self.to_implicit, params=self.hw
        )
        top[0].reshape(out_shape)

    def forward_impl(self, bottom: list[Blob], top: list[Blob]) -> None:
        top[0].data = self._plan.run(bottom[0].data)

    def backward_impl(self, top: list[Blob], bottom: list[Blob]) -> None:
        if not self.propagate_down:
            return
        inverse = TensorTransformPlan(
            self._plan.shape, to_implicit=not self.to_implicit, params=self.hw
        )
        bottom[0].diff = bottom[0].diff + inverse.run(top[0].diff)

    def sw_forward_cost(self) -> PlanCost:
        # Per-CG share: the batch axis is split across core groups.
        b, n, r, c = self._plan.shape
        per_cg = TensorTransformPlan(
            (self.cg_batch(b), n, r, c), self.to_implicit, params=self.hw
        )
        return per_cg.cost()

    def sw_backward_cost(self) -> PlanCost:
        return self.sw_forward_cost() if self.propagate_down else PlanCost()
