"""Blob: Caffe's named tensor with paired data and gradient storage.

Storage is lazy: a blob created during net construction knows its shape but
allocates no memory until data or diff is touched, so pricing a 1024-node
ResNet-50 run does not allocate gigabytes of activations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


class Blob:
    """A named tensor with ``data`` and ``diff`` arrays of the same shape."""

    def __init__(self, name: str, shape: tuple[int, ...] = (), dtype=np.float32) -> None:
        self.name = name
        self.dtype = np.dtype(dtype)
        self._shape: tuple[int, ...] = tuple(int(s) for s in shape)
        self._data: np.ndarray | None = None
        self._diff: np.ndarray | None = None
        #: Per-blob learning-rate and weight-decay multipliers (Caffe's
        #: ``lr_mult`` / ``decay_mult``), honored by the solver.
        self.lr_mult: float = 1.0
        self.decay_mult: float = 1.0

    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        """Current logical shape."""
        return self._shape

    @property
    def count(self) -> int:
        """Total number of elements."""
        n = 1
        for s in self._shape:
            n *= s
        return n if self._shape else 0

    @property
    def nbytes(self) -> int:
        """Payload size of the data array in bytes."""
        return self.count * self.dtype.itemsize

    def reshape(self, shape: tuple[int, ...]) -> None:
        """Change the logical shape; storage is re-allocated lazily."""
        shape = tuple(int(s) for s in shape)
        if any(s <= 0 for s in shape):
            raise ShapeError(f"blob {self.name!r}: non-positive shape {shape}")
        if shape != self._shape:
            self._shape = shape
            self._data = None
            self._diff = None

    # ------------------------------------------------------------------ #
    @property
    def data(self) -> np.ndarray:
        """The value tensor (allocated zeroed on first touch)."""
        if self._data is None:
            if not self._shape:
                raise ShapeError(f"blob {self.name!r} has no shape yet")
            self._data = np.zeros(self._shape, dtype=self.dtype)
        return self._data

    @data.setter
    def data(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=self.dtype)
        if self._shape and value.shape != self._shape:
            raise ShapeError(
                f"blob {self.name!r}: assigned data shape {value.shape} != {self._shape}"
            )
        self._shape = value.shape
        self._data = value

    @property
    def diff(self) -> np.ndarray:
        """The gradient tensor (allocated zeroed on first touch)."""
        if self._diff is None:
            if not self._shape:
                raise ShapeError(f"blob {self.name!r} has no shape yet")
            self._diff = np.zeros(self._shape, dtype=self.dtype)
        return self._diff

    @diff.setter
    def diff(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=self.dtype)
        if self._shape and value.shape != self._shape:
            raise ShapeError(
                f"blob {self.name!r}: assigned diff shape {value.shape} != {self._shape}"
            )
        self._diff = value

    def zero_diff(self) -> None:
        """Reset the gradient accumulator (cheap if never allocated)."""
        if self._diff is not None:
            self._diff.fill(0)

    def has_data(self) -> bool:
        """Whether the data array has been materialized."""
        return self._data is not None

    def __repr__(self) -> str:
        return f"Blob({self.name!r}, shape={self._shape})"
