"""Net: the layer DAG and forward/backward propagation engine.

Layers are added in topological order (each bottom must already be produced
by an earlier layer or be a data-layer top); the net owns the named blobs,
runs the propagation sweeps, and aggregates per-layer SW26010 costs for the
timing harnesses (Figs. 8/9, Table III).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.frame.blob import Blob
from repro.frame.layer import Layer, LayerCost
from repro.kernels.plan import PlanCost
from repro.metrics.registry import active as _metrics
from repro.trace.tracer import active as _tracer, emit_cost_spans, suspended


class Net:
    """A DAG of layers over named blobs."""

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self.layers: list[Layer] = []
        self._bottoms: dict[str, list[str]] = {}
        self._tops: dict[str, list[str]] = {}
        self.blobs: dict[str, Blob] = {}
        self._producer: dict[str, Layer] = {}
        self.phase = "train"
        self._backward_hooks: list = []
        #: Most recent traced layer span: each layer pass depends on the
        #: one before it (the propagation order), and gradient bucketing
        #: reads it to anchor a bucket launch to the layer that filled it.
        self.last_traced_span = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add(self, layer: Layer, bottoms: list[str], tops: list[str]) -> Layer:
        """Append a layer, wiring it to named blobs.

        Bottom blobs must already exist; top blobs are created (a top may
        not overwrite an existing blob — no in-place layers, so gradient
        fan-in stays unambiguous).
        """
        if any(l.name == layer.name for l in self.layers):
            raise ShapeError(f"duplicate layer name {layer.name!r}")
        for b in bottoms:
            if b not in self.blobs:
                raise ShapeError(
                    f"layer {layer.name!r}: bottom blob {b!r} does not exist yet"
                )
        for t in tops:
            if t in self.blobs:
                raise ShapeError(
                    f"layer {layer.name!r}: top blob {t!r} already exists "
                    "(in-place layers are not supported)"
                )
        bottom_blobs = [self.blobs[b] for b in bottoms]
        top_blobs = [Blob(t) for t in tops]
        for t, blob in zip(tops, top_blobs):
            self.blobs[t] = blob
            self._producer[t] = layer
        # A layer propagates gradients down only if some bottom was made by
        # a learnable (non-data) layer.
        if layer.propagate_down:
            layer.propagate_down = any(
                b in self._producer and self._producer[b].type != "Data"
                for b in bottoms
            )
        layer.phase = self.phase
        layer.setup(bottom_blobs, top_blobs)
        self.layers.append(layer)
        self._bottoms[layer.name] = list(bottoms)
        self._tops[layer.name] = list(tops)
        return layer

    def layer_by_name(self, name: str) -> Layer:
        """Look up a layer."""
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer named {name!r}")

    def set_phase(self, phase: str) -> None:
        """Switch train/test behaviour (BN statistics, dropout)."""
        if phase not in ("train", "test"):
            raise ValueError(f"phase must be 'train' or 'test', got {phase!r}")
        self.phase = phase
        for layer in self.layers:
            layer.phase = phase

    # ------------------------------------------------------------------ #
    # propagation
    # ------------------------------------------------------------------ #
    def _io(self, layer: Layer) -> tuple[list[Blob], list[Blob]]:
        return (
            [self.blobs[b] for b in self._bottoms[layer.name]],
            [self.blobs[t] for t in self._tops[layer.name]],
        )

    def forward(self) -> dict[str, float]:
        """Run the forward sweep; returns {loss_blob_name: weighted value}.

        Loss values are scaled by their layer's ``loss_weight`` (Caffe's
        convention: the reported training loss is the weighted sum).
        """
        losses: dict[str, float] = {}
        tr = _tracer()
        mx = _metrics()
        for layer in self.layers:
            bottom, top = self._io(layer)
            layer.forward(bottom, top)
            if mx.enabled:
                mx.count("layer.passes", 1, dir="fwd", layer_type=layer.type)
            if tr.enabled:
                with suspended():  # keep plan-search churn out of the trace
                    cost = layer.sw_forward_cost()
                parent = emit_cost_spans(
                    tr, f"{layer.name} fwd", cost,
                    cat="layer_fwd", args={"layer_type": layer.type},
                )
                if parent is not None:
                    if self.last_traced_span is not None:
                        tr.edge(self.last_traced_span, parent)
                    self.last_traced_span = parent
            if getattr(layer, "is_loss", False):
                losses[self._tops[layer.name][0]] = layer.loss_weight * float(
                    top[0].data[0]
                )
        return losses

    # ------------------------------------------------------------------ #
    # inference
    # ------------------------------------------------------------------ #
    def output_blobs(self) -> list[str]:
        """Names of the net's sink blobs: tops no layer consumes as a bottom.

        These are what a serving deployment returns per request (softmax
        probabilities, loss-free logits, ...), in creation order.
        """
        consumed = {b for bottoms in self._bottoms.values() for b in bottoms}
        return [
            t
            for tops in self._tops.values()
            for t in tops
            if t not in consumed
        ]

    def forward_only(self) -> dict[str, np.ndarray]:
        """One inference sweep: forward under the test phase, no gradients.

        Temporarily switches the net to the ``test`` phase (BN running
        statistics, dropout pass-through), runs :meth:`forward`, restores
        the phase, and returns ``{output_blob: data}`` for every sink blob.
        """
        previous = self.phase
        if previous != "test":
            self.set_phase("test")
        try:
            self.forward()
        finally:
            if previous != "test":
                self.set_phase(previous)
        return {name: self.blobs[name].data for name in self.output_blobs()}

    def demux_outputs(self, n: int | None = None) -> list[dict[str, np.ndarray]]:
        """Split the current output blobs back into per-sample rows.

        The serving engine batches ``n`` requests into one forward pass;
        this undoes the batching: element ``i`` maps each output blob name
        to row ``i`` of its data. Outputs whose leading dimension does not
        match the batch (scalar losses, accuracy aggregates) are skipped —
        they have no per-request meaning. ``n`` defaults to the first
        demuxable output's leading dimension.
        """
        outputs = {name: self.blobs[name].data for name in self.output_blobs()}
        batched = {
            name: data
            for name, data in outputs.items()
            if getattr(data, "ndim", 0) >= 1
        }
        if n is None:
            n = next((d.shape[0] for d in batched.values()), 0)
        rows: list[dict[str, np.ndarray]] = []
        for i in range(n):
            rows.append(
                {
                    name: data[i]
                    for name, data in batched.items()
                    if data.shape[0] >= n
                }
            )
        return rows

    def sw_forward_time(self) -> float:
        """Forward-only simulated seconds (the serving engine's compute)."""
        return self.sw_iteration_time(include_backward=False)

    def add_backward_hook(self, hook) -> None:
        """Register ``hook(layer, index)``, fired as each layer completes
        its backward pass (``index`` is the layer's forward position).

        Backward runs last-to-first, so when the hook fires for ``index``,
        every layer at ``index`` or later has finished producing its
        parameter gradients — the signal gradient bucketing uses to launch
        a bucket's allreduce while earlier layers are still computing.
        """
        self._backward_hooks.append(hook)

    def remove_backward_hook(self, hook) -> None:
        """Unregister a hook previously added with :meth:`add_backward_hook`."""
        self._backward_hooks.remove(hook)

    def backward(self) -> None:
        """Run the backward sweep (activation diffs are reset first)."""
        for blob in self.blobs.values():
            blob.zero_diff()
        # Seed each loss gradient with its layer's loss weight.
        for layer in self.layers:
            if getattr(layer, "is_loss", False):
                top_blob = self.blobs[self._tops[layer.name][0]]
                top_blob.diff = np.full(
                    top_blob.shape, layer.loss_weight, dtype=top_blob.dtype
                )
        tr = _tracer()
        mx = _metrics()
        for index in range(len(self.layers) - 1, -1, -1):
            layer = self.layers[index]
            bottom, top = self._io(layer)
            layer.backward(top, bottom)
            if mx.enabled:
                mx.count("layer.passes", 1, dir="bwd", layer_type=layer.type)
            if tr.enabled:
                with suspended():
                    cost = layer.sw_backward_cost()
                parent = emit_cost_spans(
                    tr, f"{layer.name} bwd", cost,
                    cat="layer_bwd", args={"layer_type": layer.type},
                )
                if parent is not None:
                    if self.last_traced_span is not None:
                        tr.edge(self.last_traced_span, parent)
                    self.last_traced_span = parent
            for hook in self._backward_hooks:
                hook(layer, index)

    # ------------------------------------------------------------------ #
    # parameters
    # ------------------------------------------------------------------ #
    @property
    def params(self) -> list[Blob]:
        """All learnable parameter blobs in layer order."""
        out: list[Blob] = []
        for layer in self.layers:
            out.extend(layer.params)
        return out

    def param_bytes(self) -> int:
        """Total model size in bytes (the allreduce payload)."""
        return sum(p.nbytes for p in self.params)

    def zero_param_diffs(self) -> None:
        """Reset all parameter gradients."""
        for p in self.params:
            p.zero_diff()

    # ------------------------------------------------------------------ #
    # SW26010 timing
    # ------------------------------------------------------------------ #
    def sw_layer_costs(self) -> list[tuple[Layer, LayerCost]]:
        """Per-layer simulated forward/backward costs on one core group."""
        return [(layer, layer.sw_cost()) for layer in self.layers]

    def sw_iteration_time(self, include_backward: bool = True) -> float:
        """One training iteration's compute time on the SW26010 node.

        The four core groups process batch quarters concurrently and are
        symmetric, so node time equals per-CG time (Algorithm 1) plus the
        inter-CG gradient average, charged by the parallel trainer.
        """
        total = 0.0
        for _, cost in self.sw_layer_costs():
            total += cost.forward.total_s
            if include_backward:
                total += cost.backward.total_s
        return total

    def __repr__(self) -> str:
        return f"Net({self.name!r}, {len(self.layers)} layers, {len(self.blobs)} blobs)"
