"""Solvers: SGD with momentum, weight decay, and learning-rate policies.

Caffe's solver level (Sec. II-C): controls the training loop and the
parameter-tuning algorithm. The distributed trainer in
:mod:`repro.parallel.trainer` builds on this class, inserting its gradient
allreduce between backward and update.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.frame.net import Net
from repro.metrics.registry import active as _metrics
from repro.trace.tracer import active as _tracer


@dataclass
class SolverStats:
    """Training-curve record returned by :meth:`SGDSolver.step`."""

    iterations: int = 0
    losses: list[float] = field(default_factory=list)
    learning_rates: list[float] = field(default_factory=list)
    simulated_time_s: float = 0.0

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ValueError("no iterations recorded")
        return self.losses[-1]


class SGDSolver:
    """Mini-batch SGD with momentum (Caffe update rule).

    ``v <- momentum * v + lr * (grad + weight_decay * w); w <- w - v``.

    Parameters
    ----------
    net:
        The net to train.
    base_lr, momentum, weight_decay:
        Optimizer hyperparameters.
    lr_policy:
        One of ``fixed``, ``step`` (scale by ``gamma`` every ``stepsize``),
        ``multistep`` (scale at each iteration in ``steps``), ``poly``
        (``base_lr * (1 - iter/max_iter)^power``).
    iter_size:
        Caffe's gradient accumulation: each iteration runs ``iter_size``
        forward/backward passes and updates with the averaged gradient —
        an effective batch of ``iter_size * batch_size`` within one CG's
        memory budget.
    """

    def __init__(
        self,
        net: Net,
        base_lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        lr_policy: str = "fixed",
        gamma: float = 0.1,
        stepsize: int = 100000,
        steps: list[int] | None = None,
        max_iter: int = 100000,
        power: float = 1.0,
        iter_size: int = 1,
    ) -> None:
        if base_lr <= 0:
            raise ValueError("base_lr must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if lr_policy not in ("fixed", "step", "multistep", "poly"):
            raise ValueError(f"unknown lr_policy {lr_policy!r}")
        if iter_size < 1:
            raise ValueError("iter_size must be >= 1")
        self.iter_size = int(iter_size)
        self.net = net
        self.base_lr = float(base_lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.lr_policy = lr_policy
        self.gamma = float(gamma)
        self.stepsize = int(stepsize)
        self.steps = sorted(steps or [])
        self.max_iter = int(max_iter)
        self.power = float(power)
        self.iter = 0
        self._velocity: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    def learning_rate(self, iteration: int | None = None) -> float:
        """Learning rate at ``iteration`` (default: the current one)."""
        it = self.iter if iteration is None else iteration
        if self.lr_policy == "fixed":
            return self.base_lr
        if self.lr_policy == "step":
            return self.base_lr * self.gamma ** (it // self.stepsize)
        if self.lr_policy == "multistep":
            passed = sum(1 for s in self.steps if it >= s)
            return self.base_lr * self.gamma**passed
        # poly
        frac = min(it / self.max_iter, 1.0)
        return self.base_lr * (1.0 - frac) ** self.power

    def apply_update(self, lr: float | None = None) -> None:
        """Apply one SGD update from the accumulated parameter diffs."""
        lr = self.learning_rate() if lr is None else lr
        for p in self.net.params:
            grad = p.diff.astype(np.float64)
            if self.weight_decay and p.decay_mult:
                grad = grad + self.weight_decay * p.decay_mult * p.data.astype(np.float64)
            v = self._velocity.get(id(p))
            if v is None:
                v = np.zeros(p.shape, dtype=np.float64)
            v = self.momentum * v + lr * p.lr_mult * grad
            self._velocity[id(p)] = v
            p.data = (p.data.astype(np.float64) - v).astype(p.dtype)

    def step(self, n_iters: int = 1) -> SolverStats:
        """Run ``n_iters`` full iterations (forward, backward, update).

        With ``iter_size > 1``, each iteration accumulates that many
        forward/backward passes and updates with the averaged gradient.
        """
        stats = SolverStats()
        for _ in range(n_iters):
            self.net.zero_param_diffs()
            loss_sum = 0.0
            iter_time = 0.0
            for _ in range(self.iter_size):
                losses = self.net.forward()
                self.net.backward()
                loss_sum += sum(losses.values())
                pass_time = self.net.sw_iteration_time()
                stats.simulated_time_s += pass_time
                iter_time += pass_time
            tr = _tracer()
            if tr.enabled:
                tr.emit(
                    f"iter {self.iter}", "solver_iter", track="solver",
                    dur=iter_time,
                    args={"lr": self.learning_rate(), "iter_size": self.iter_size},
                )
            mx = _metrics()
            if mx.enabled:
                mx.count("solver.iterations", 1)
            if self.iter_size > 1:
                for p in self.net.params:
                    p.diff = p.diff / self.iter_size
            lr = self.learning_rate()
            self.apply_update(lr)
            stats.iterations += 1
            stats.losses.append(loss_sum / self.iter_size)
            stats.learning_rates.append(lr)
            self.iter += 1
        return stats
