"""Extended solver family.

Caffe ships several parameter-update rules beyond plain momentum SGD; the
paper's conclusion also points at large-batch methods (its reference [12]
is You, Gitman & Ginsburg's layer-wise adaptive rate scaling). This module
implements them all on top of :class:`~repro.frame.solver.SGDSolver`'s
loop/learning-rate machinery by overriding :meth:`apply_update`:

* :class:`NesterovSolver` — Nesterov accelerated gradient (Caffe semantics);
* :class:`AdaGradSolver` — per-element adaptive rates;
* :class:`RMSPropSolver` — leaky second-moment normalization;
* :class:`AdamSolver` — bias-corrected first/second moments;
* :class:`LARSSolver` — layer-wise adaptive rate scaling for very large
  batches (trust ratio ||w|| / (||g|| + wd ||w||) per parameter tensor),
  the technique that pushes mini-batches to 32K on the paper's framework.
"""

from __future__ import annotations

import numpy as np

from repro.frame.net import Net
from repro.frame.solver import SGDSolver


class NesterovSolver(SGDSolver):
    """Nesterov accelerated gradient (Caffe's ``type: "Nesterov"``)."""

    def apply_update(self, lr: float | None = None) -> None:
        lr = self.learning_rate() if lr is None else lr
        for p in self.net.params:
            grad = p.diff.astype(np.float64)
            if self.weight_decay and p.decay_mult:
                grad = grad + self.weight_decay * p.decay_mult * p.data.astype(np.float64)
            v_prev = self._velocity.get(id(p))
            if v_prev is None:
                v_prev = np.zeros(p.shape, dtype=np.float64)
            v = self.momentum * v_prev + lr * p.lr_mult * grad
            self._velocity[id(p)] = v
            # Caffe's Nesterov step: w -= (1 + mu) * v - mu * v_prev.
            step = (1 + self.momentum) * v - self.momentum * v_prev
            p.data = (p.data.astype(np.float64) - step).astype(p.dtype)


class AdaGradSolver(SGDSolver):
    """AdaGrad: accumulate squared gradients, scale rates elementwise."""

    def __init__(self, net: Net, eps: float = 1e-8, **kwargs) -> None:
        kwargs.setdefault("momentum", 0.0)
        super().__init__(net, **kwargs)
        if self.momentum != 0.0:
            raise ValueError("AdaGrad does not use momentum")
        self.eps = float(eps)
        self._hist: dict[int, np.ndarray] = {}

    def apply_update(self, lr: float | None = None) -> None:
        lr = self.learning_rate() if lr is None else lr
        for p in self.net.params:
            grad = p.diff.astype(np.float64)
            if self.weight_decay and p.decay_mult:
                grad = grad + self.weight_decay * p.decay_mult * p.data.astype(np.float64)
            h = self._hist.get(id(p))
            if h is None:
                h = np.zeros(p.shape, dtype=np.float64)
            h = h + grad * grad
            self._hist[id(p)] = h
            p.data = (
                p.data.astype(np.float64)
                - lr * p.lr_mult * grad / (np.sqrt(h) + self.eps)
            ).astype(p.dtype)


class RMSPropSolver(SGDSolver):
    """RMSProp: exponentially-decayed squared-gradient normalization."""

    def __init__(self, net: Net, decay: float = 0.99, eps: float = 1e-8, **kwargs) -> None:
        kwargs.setdefault("momentum", 0.0)
        super().__init__(net, **kwargs)
        if not 0.0 < decay < 1.0:
            raise ValueError("decay must be in (0, 1)")
        self.decay = float(decay)
        self.eps = float(eps)
        self._ms: dict[int, np.ndarray] = {}

    def apply_update(self, lr: float | None = None) -> None:
        lr = self.learning_rate() if lr is None else lr
        for p in self.net.params:
            grad = p.diff.astype(np.float64)
            if self.weight_decay and p.decay_mult:
                grad = grad + self.weight_decay * p.decay_mult * p.data.astype(np.float64)
            ms = self._ms.get(id(p))
            if ms is None:
                ms = np.zeros(p.shape, dtype=np.float64)
            ms = self.decay * ms + (1 - self.decay) * grad * grad
            self._ms[id(p)] = ms
            p.data = (
                p.data.astype(np.float64)
                - lr * p.lr_mult * grad / (np.sqrt(ms) + self.eps)
            ).astype(p.dtype)


class AdamSolver(SGDSolver):
    """Adam with bias correction."""

    def __init__(
        self,
        net: Net,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        **kwargs,
    ) -> None:
        kwargs.setdefault("momentum", 0.0)
        super().__init__(net, **kwargs)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m: dict[int, np.ndarray] = {}
        self._v2: dict[int, np.ndarray] = {}
        self._t = 0

    def apply_update(self, lr: float | None = None) -> None:
        lr = self.learning_rate() if lr is None else lr
        self._t += 1
        b1t = 1 - self.beta1**self._t
        b2t = 1 - self.beta2**self._t
        for p in self.net.params:
            grad = p.diff.astype(np.float64)
            if self.weight_decay and p.decay_mult:
                grad = grad + self.weight_decay * p.decay_mult * p.data.astype(np.float64)
            m = self._m.get(id(p), np.zeros(p.shape, dtype=np.float64))
            v = self._v2.get(id(p), np.zeros(p.shape, dtype=np.float64))
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad * grad
            self._m[id(p)] = m
            self._v2[id(p)] = v
            step = lr * p.lr_mult * (m / b1t) / (np.sqrt(v / b2t) + self.eps)
            p.data = (p.data.astype(np.float64) - step).astype(p.dtype)


class LARSSolver(SGDSolver):
    """Layer-wise adaptive rate scaling (You et al., the paper's [12]).

    Each parameter tensor gets a local learning rate
    ``trust * ||w|| / (||g|| + wd * ||w||)`` combined with momentum, which
    is what lets synchronous SGD keep accuracy at the 32K global batches
    the paper's scalability section targets.
    """

    def __init__(self, net: Net, trust: float = 0.001, **kwargs) -> None:
        super().__init__(net, **kwargs)
        if trust <= 0:
            raise ValueError("trust coefficient must be positive")
        self.trust = float(trust)

    def local_rate(self, p) -> float:
        """The LARS trust ratio for one parameter tensor."""
        w_norm = float(np.linalg.norm(p.data.astype(np.float64)))
        g_norm = float(np.linalg.norm(p.diff.astype(np.float64)))
        denom = g_norm + self.weight_decay * p.decay_mult * w_norm
        if w_norm == 0.0 or denom == 0.0:
            return 1.0
        return self.trust * w_norm / denom

    def apply_update(self, lr: float | None = None) -> None:
        lr = self.learning_rate() if lr is None else lr
        for p in self.net.params:
            grad = p.diff.astype(np.float64)
            if self.weight_decay and p.decay_mult:
                grad = grad + self.weight_decay * p.decay_mult * p.data.astype(np.float64)
            local = self.local_rate(p)
            v = self._velocity.get(id(p))
            if v is None:
                v = np.zeros(p.shape, dtype=np.float64)
            v = self.momentum * v + lr * local * p.lr_mult * grad
            self._velocity[id(p)] = v
            p.data = (p.data.astype(np.float64) - v).astype(p.dtype)
