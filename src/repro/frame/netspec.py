"""Declarative network specification (Caffe-prototxt style).

swCaffe keeps "the same interfaces as Caffe": networks are described as a
list of layer specs rather than imperative code. This module provides that
interface in Python/JSON form — a spec is a dict with a ``layers`` list,
each entry naming a registered layer ``type``, its ``params``, and its
``bottoms``/``tops`` — plus (de)serialization, so model definitions can be
checked into files.

Example::

    spec = {
        "name": "mlp",
        "layers": [
            {"type": "Data", "name": "data", "tops": ["data", "label"],
             "params": {"batch_size": 32}},
            {"type": "InnerProduct", "name": "ip1", "bottoms": ["data"],
             "tops": ["ip1"], "params": {"num_output": 64}},
            {"type": "ReLU", "name": "relu1", "bottoms": ["ip1"], "tops": ["a1"]},
            {"type": "InnerProduct", "name": "ip2", "bottoms": ["a1"],
             "tops": ["logits"], "params": {"num_output": 10}},
            {"type": "SoftmaxWithLoss", "name": "loss",
             "bottoms": ["logits", "label"], "tops": ["loss"]},
        ],
    }
    net = build_from_spec(spec, source=my_dataset)
"""

from __future__ import annotations

import json
from typing import Any, Callable

import numpy as np

from repro.errors import ShapeError
from repro.frame.layers import (
    AccuracyLayer,
    BatchNormLayer,
    ConcatLayer,
    ConvolutionLayer,
    DataLayer,
    DropoutLayer,
    EltwiseLayer,
    InnerProductLayer,
    LRNLayer,
    LSTMLayer,
    PoolingLayer,
    ReLULayer,
    SoftmaxLayer,
    SoftmaxWithLossLayer,
    TensorTransformLayer,
)
from repro.frame.net import Net
from repro.utils.rng import seeded_rng

#: Registered layer constructors: type name -> factory(name, params, ctx).
LAYER_REGISTRY: dict[str, Callable[..., Any]] = {}


def register_layer(type_name: str):
    """Decorator registering a spec factory for a layer type."""

    def deco(fn):
        LAYER_REGISTRY[type_name] = fn
        return fn

    return deco


@register_layer("Data")
def _data(name, params, ctx):
    source = ctx.get("source")
    if source is None:
        raise ShapeError("Data layer requires a `source=` passed to build_from_spec")
    return DataLayer(name, source, batch_size=int(params["batch_size"]))


@register_layer("Convolution")
def _conv(name, params, ctx):
    return ConvolutionLayer(
        name,
        num_output=int(params["num_output"]),
        kernel_size=int(params["kernel_size"]),
        stride=int(params.get("stride", 1)),
        pad=int(params.get("pad", 0)),
        bias=bool(params.get("bias", True)),
        groups=int(params.get("groups", 1)),
        weight_filler=params.get("weight_filler", "msra"),
        rng=ctx["rng"],
    )


@register_layer("InnerProduct")
def _ip(name, params, ctx):
    return InnerProductLayer(
        name,
        num_output=int(params["num_output"]),
        bias=bool(params.get("bias", True)),
        weight_filler=params.get("weight_filler", "xavier"),
        rng=ctx["rng"],
    )


@register_layer("ReLU")
def _relu(name, params, ctx):
    return ReLULayer(name, negative_slope=float(params.get("negative_slope", 0.0)))


@register_layer("Pooling")
def _pool(name, params, ctx):
    return PoolingLayer(
        name,
        kernel_size=int(params.get("kernel_size", 2)),
        stride=params.get("stride"),
        pad=int(params.get("pad", 0)),
        mode=params.get("mode", "max"),
        global_pooling=bool(params.get("global_pooling", False)),
    )


@register_layer("BatchNorm")
def _bn(name, params, ctx):
    return BatchNormLayer(
        name, eps=float(params.get("eps", 1e-5)),
        momentum=float(params.get("momentum", 0.9)),
    )


@register_layer("LRN")
def _lrn(name, params, ctx):
    return LRNLayer(
        name,
        local_size=int(params.get("local_size", 5)),
        alpha=float(params.get("alpha", 1e-4)),
        beta=float(params.get("beta", 0.75)),
        k=float(params.get("k", 1.0)),
    )


@register_layer("Dropout")
def _dropout(name, params, ctx):
    return DropoutLayer(name, ratio=float(params.get("ratio", 0.5)), rng=ctx["rng"])


@register_layer("Softmax")
def _softmax(name, params, ctx):
    return SoftmaxLayer(name)


@register_layer("SoftmaxWithLoss")
def _softmax_loss(name, params, ctx):
    return SoftmaxWithLossLayer(name)


@register_layer("Accuracy")
def _accuracy(name, params, ctx):
    return AccuracyLayer(name, top_k=int(params.get("top_k", 1)))


@register_layer("Concat")
def _concat(name, params, ctx):
    return ConcatLayer(name, axis=int(params.get("axis", 1)))


@register_layer("Eltwise")
def _eltwise(name, params, ctx):
    return EltwiseLayer(
        name, operation=params.get("operation", "sum"), coeffs=params.get("coeffs")
    )


@register_layer("TensorTransform")
def _transform(name, params, ctx):
    return TensorTransformLayer(name, to_implicit=bool(params.get("to_implicit", True)))


@register_layer("LSTM")
def _lstm(name, params, ctx):
    return LSTMLayer(name, num_output=int(params["num_output"]), rng=ctx["rng"])


@register_layer("Sigmoid")
def _sigmoid(name, params, ctx):
    from repro.frame.layers import SigmoidLayer

    return SigmoidLayer(name)


@register_layer("TanH")
def _tanh(name, params, ctx):
    from repro.frame.layers import TanHLayer

    return TanHLayer(name)


@register_layer("ELU")
def _elu(name, params, ctx):
    from repro.frame.layers import ELULayer

    return ELULayer(name, alpha=float(params.get("alpha", 1.0)))


@register_layer("Power")
def _power(name, params, ctx):
    from repro.frame.layers import PowerLayer

    return PowerLayer(
        name,
        power=float(params.get("power", 1.0)),
        scale=float(params.get("scale", 1.0)),
        shift=float(params.get("shift", 0.0)),
    )


@register_layer("Scale")
def _scale(name, params, ctx):
    from repro.frame.layers import ScaleLayer

    return ScaleLayer(name, bias=bool(params.get("bias", True)))


@register_layer("Flatten")
def _flatten(name, params, ctx):
    from repro.frame.layers import FlattenLayer

    return FlattenLayer(name)


@register_layer("Reshape")
def _reshape(name, params, ctx):
    from repro.frame.layers import ReshapeLayer

    return ReshapeLayer(name, shape=tuple(params["shape"]))


@register_layer("Split")
def _split(name, params, ctx):
    from repro.frame.layers import SplitLayer

    return SplitLayer(name, n_tops=int(params.get("n_tops", 2)))


@register_layer("Slice")
def _slice(name, params, ctx):
    from repro.frame.layers import SliceLayer

    return SliceLayer(
        name,
        slice_points=list(params["slice_points"]),
        axis=int(params.get("axis", 1)),
    )


@register_layer("EuclideanLoss")
def _euclidean(name, params, ctx):
    from repro.frame.layers import EuclideanLossLayer

    return EuclideanLossLayer(name)


def build_from_spec(
    spec: dict[str, Any],
    source=None,
    rng: np.random.Generator | None = None,
) -> Net:
    """Instantiate a :class:`Net` from a declarative spec.

    Parameters
    ----------
    spec:
        ``{"name": ..., "layers": [{"type", "name", "bottoms", "tops",
        "params"}, ...]}`` in topological order.
    source:
        Batch source for Data layers.
    rng:
        Weight-init generator (defaults to the package seed).
    """
    if "layers" not in spec or not isinstance(spec["layers"], list):
        raise ShapeError("spec must contain a 'layers' list")
    ctx = {"source": source, "rng": rng or seeded_rng()}
    net = Net(spec.get("name", "net"))
    for entry in spec["layers"]:
        type_name = entry.get("type")
        if type_name not in LAYER_REGISTRY:
            raise ShapeError(
                f"unknown layer type {type_name!r}; registered: "
                f"{sorted(LAYER_REGISTRY)}"
            )
        name = entry.get("name")
        if not name:
            raise ShapeError(f"layer entry of type {type_name!r} has no name")
        layer = LAYER_REGISTRY[type_name](name, entry.get("params", {}), ctx)
        if "loss_weight" in entry:
            layer.loss_weight = float(entry["loss_weight"])
        net.add(layer, bottoms=list(entry.get("bottoms", [])), tops=list(entry.get("tops", [name])))
    return net


def load_spec(path: str) -> dict[str, Any]:
    """Read a JSON spec file."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def save_spec(spec: dict[str, Any], path: str) -> None:
    """Write a spec as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(spec, fh, indent=2)
