"""Model and solver snapshots (Caffe's ``snapshot``/``restore``).

Weights are stored as a compressed ``.npz`` keyed by parameter blob name;
solver state (iteration counter, velocity buffers) goes alongside so
training resumes exactly. Loading validates shapes against the target net
and fails loudly on mismatches.
"""

from __future__ import annotations

import os
import re

import numpy as np

from repro.errors import ShapeError, SnapshotMismatchError
from repro.frame.net import Net
from repro.frame.solver import SGDSolver

#: Caffe-style snapshot filename produced by :func:`snapshot_path`.
_ITER_RE = re.compile(r"_iter_(\d+)\.npz$")


def save_weights(net: Net, path: str) -> None:
    """Write all parameter blobs of ``net`` to ``path`` (.npz)."""
    arrays = {p.name: p.data for p in net.params}
    if not arrays:
        raise ShapeError(f"net {net.name!r} has no parameters to save")
    np.savez_compressed(path, **arrays)


def load_weights(net: Net, path: str, *, strict: bool = True) -> list[str]:
    """Load parameters into ``net`` from an ``.npz`` snapshot.

    Returns the list of loaded blob names. With ``strict=True`` (default),
    every net parameter must be present in the file and vice versa.
    """
    with np.load(path) as data:
        stored = {k: data[k] for k in data.files}
    loaded = []
    for p in net.params:
        if p.name not in stored:
            if strict:
                raise ShapeError(f"snapshot is missing parameter {p.name!r}")
            continue
        arr = stored.pop(p.name)
        if arr.shape != p.shape:
            raise ShapeError(
                f"snapshot parameter {p.name!r} has shape {arr.shape}, "
                f"net expects {p.shape}"
            )
        p.data = arr
        loaded.append(p.name)
    if strict and stored:
        raise ShapeError(
            f"snapshot contains parameters the net does not: {sorted(stored)}"
        )
    return loaded


def save_solver(solver: SGDSolver, path: str) -> None:
    """Write weights + solver state (iteration, velocities) to ``path``."""
    arrays: dict[str, np.ndarray] = {"__iter__": np.array([solver.iter])}
    for p in solver.net.params:
        arrays[f"w::{p.name}"] = p.data
        v = solver._velocity.get(id(p))
        if v is not None:
            arrays[f"v::{p.name}"] = v
    np.savez_compressed(path, **arrays)


def load_solver(solver: SGDSolver, path: str) -> None:
    """Restore weights + solver state written by :func:`save_solver`.

    When ``path`` follows the Caffe-style ``{prefix}_iter_{N}.npz`` naming,
    the stored iteration counter must equal ``N`` — a recovery resuming
    from the wrong point would silently corrupt training, so a mismatch
    raises :class:`~repro.errors.SnapshotMismatchError` instead.
    """
    with np.load(path) as data:
        stored = {k: data[k] for k in data.files}
    if "__iter__" not in stored:
        raise ShapeError(f"{path!r} is not a solver snapshot")
    stored_iter = int(stored.pop("__iter__")[0])
    m = _ITER_RE.search(os.path.basename(path))
    if m is not None and stored_iter != int(m.group(1)):
        raise SnapshotMismatchError(
            f"snapshot {path!r} claims iteration {m.group(1)} in its name "
            f"but stores iteration {stored_iter}"
        )
    solver.iter = stored_iter
    # Restore means *exact* state: velocities absent from the snapshot
    # (e.g. an iteration-0 file) must not survive from before the load,
    # or a rollback would resume with momentum the snapshot never had.
    solver._velocity.clear()
    by_name = {p.name: p for p in solver.net.params}
    for key, arr in stored.items():
        kind, _, name = key.partition("::")
        p = by_name.get(name)
        if p is None:
            raise ShapeError(f"snapshot references unknown parameter {name!r}")
        if arr.shape != p.shape:
            raise ShapeError(
                f"snapshot parameter {name!r} shape {arr.shape} != {p.shape}"
            )
        if kind == "w":
            p.data = arr
        elif kind == "v":
            solver._velocity[id(p)] = arr.astype(np.float64)
        else:
            raise ShapeError(f"unknown snapshot key {key!r}")


def snapshot_exists(prefix: str, iteration: int) -> bool:
    """Whether ``{prefix}_iter_{iteration}.npz`` exists."""
    return os.path.exists(f"{prefix}_iter_{iteration}.npz")


def snapshot_path(prefix: str, iteration: int) -> str:
    """Caffe-style snapshot filename."""
    return f"{prefix}_iter_{iteration}.npz"
