"""Layer base class.

A layer transforms bottom blobs into top blobs (forward), routes gradients
back (backward), and prices both directions on the SW26010 model. Following
Algorithm 1, the timing convention is: functional arrays carry the *full*
mini-batch, while SW26010 costs are computed for the per-core-group share
(batch / 4) — the four CGs process disjoint quarters concurrently and the
node-level time is the per-CG time (they are symmetric).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ShapeError
from repro.frame.blob import Blob
from repro.hw.spec import SW26010Params, SW_PARAMS
from repro.kernels.plan import PlanCost


class LayerCost:
    """Forward/backward simulated costs of one layer on one core group."""

    def __init__(self, forward: PlanCost, backward: PlanCost) -> None:
        self.forward = forward
        self.backward = backward

    @property
    def total_s(self) -> float:
        return self.forward.total_s + self.backward.total_s


class Layer(abc.ABC):
    """Base class for all swCaffe layers.

    Subclasses implement :meth:`reshape`, :meth:`forward_impl`,
    :meth:`backward_impl`, and the cost hooks :meth:`sw_forward_cost` /
    :meth:`sw_backward_cost`.
    """

    #: Layer type name (mirrors Caffe's ``type:`` field).
    type: str = "Layer"

    def __init__(self, name: str, params: SW26010Params | None = None) -> None:
        self.name = name
        self.hw = params or SW_PARAMS
        #: Learnable parameter blobs (weights, biases, ...).
        self.params: list[Blob] = []
        #: Whether backward should compute bottom diffs (False for data
        #: layers and the first learnable layer's input).
        self.propagate_down: bool = True
        #: Gradient seed for loss layers (Caffe's ``loss_weight``); ignored
        #: by non-loss layers. GoogLeNet's auxiliary heads use 0.3.
        self.loss_weight: float = 1.0
        self.phase: str = "train"

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #
    def setup(self, bottom: list[Blob], top: list[Blob]) -> None:
        """One-time setup: validate bottoms, create params, shape tops."""
        self.check_bottom(bottom)
        self.reshape(bottom, top)

    def check_bottom(self, bottom: list[Blob]) -> None:
        """Validate bottom count/shapes; default accepts anything."""

    @abc.abstractmethod
    def reshape(self, bottom: list[Blob], top: list[Blob]) -> None:
        """Shape the top blobs from the bottom shapes."""

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def forward(self, bottom: list[Blob], top: list[Blob]) -> None:
        """Compute top data from bottom data."""
        self.forward_impl(bottom, top)

    def backward(self, top: list[Blob], bottom: list[Blob]) -> None:
        """Accumulate bottom diffs (and param diffs) from top diffs."""
        self.backward_impl(top, bottom)

    @abc.abstractmethod
    def forward_impl(self, bottom: list[Blob], top: list[Blob]) -> None:
        ...

    def backward_impl(self, top: list[Blob], bottom: list[Blob]) -> None:
        raise NotImplementedError(f"{self.type} layer has no backward")

    # ------------------------------------------------------------------ #
    # SW26010 timing
    # ------------------------------------------------------------------ #
    def cg_batch(self, batch: int) -> int:
        """Per-core-group share of the mini-batch (Algorithm 1, line 4)."""
        return max(1, -(-batch // self.hw.n_core_groups))

    def sw_forward_cost(self) -> PlanCost:
        """Simulated forward time on one core group (default: free)."""
        return PlanCost()

    def sw_backward_cost(self) -> PlanCost:
        """Simulated backward time on one core group (default: free)."""
        return PlanCost()

    def sw_cost(self) -> LayerCost:
        """Both directions bundled."""
        return LayerCost(self.sw_forward_cost(), self.sw_backward_cost())

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def add_param(
        self,
        name: str,
        array: np.ndarray,
        lr_mult: float = 1.0,
        decay_mult: float = 1.0,
    ) -> Blob:
        """Register a learnable parameter blob initialized from ``array``."""
        blob = Blob(f"{self.name}/{name}", array.shape, dtype=array.dtype)
        blob.data = array
        blob.lr_mult = lr_mult
        blob.decay_mult = decay_mult
        self.params.append(blob)
        return blob

    @staticmethod
    def require_bottoms(bottom: list[Blob], n: int, who: str) -> None:
        """Raise unless exactly ``n`` bottoms were supplied."""
        if len(bottom) != n:
            raise ShapeError(f"{who} expects {n} bottom blob(s), got {len(bottom)}")

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}({self.name!r})"
