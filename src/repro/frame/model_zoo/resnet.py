"""ResNet-50 (He et al.) with bottleneck residual blocks."""

from __future__ import annotations

import numpy as np

from repro.frame.layers import EltwiseLayer
from repro.frame.model_zoo.common import NetBuilder
from repro.frame.net import Net

#: Bottleneck blocks per stage and their (inner, output) channel widths.
RESNET50_STAGES = (
    ("res2", 3, 64, 256, 1),
    ("res3", 4, 128, 512, 2),
    ("res4", 6, 256, 1024, 2),
    ("res5", 3, 512, 2048, 2),
)


def _bottleneck(
    b: NetBuilder, name: str, inner: int, out: int, stride: int, project: bool
) -> None:
    """One bottleneck unit: 1x1 -> 3x3 -> 1x1 with a skip connection."""
    identity = b.cur
    b.conv(f"{name}/conv1", inner, 1, stride=stride, bias=False)
    b.bn(f"{name}/bn1")
    b.relu(f"{name}/relu1")
    b.conv(f"{name}/conv2", inner, 3, pad=1, bias=False)
    b.bn(f"{name}/bn2")
    b.relu(f"{name}/relu2")
    b.conv(f"{name}/conv3", out, 1, bias=False)
    b.bn(f"{name}/bn3")
    main = b.cur
    if project:
        b.conv(f"{name}/proj", out, 1, stride=stride, bias=False, bottom=identity)
        b.bn(f"{name}/proj_bn")
        identity = b.cur
    b.net.add(
        EltwiseLayer(f"{name}/add"), bottoms=[main, identity], tops=[f"{name}/add"]
    )
    b.cur = f"{name}/add"
    b.relu(f"{name}/relu")


def build_resnet50(
    batch_size: int = 32,
    num_classes: int = 1000,
    source=None,
    rng: np.random.Generator | None = None,
    include_accuracy: bool = False,
) -> Net:
    """ResNet-50: stem + stages of [3, 4, 6, 3] bottleneck blocks."""
    b = NetBuilder("resnet50", batch_size, num_classes, (3, 224, 224), source, rng)
    b.conv("conv1", 64, 7, stride=2, pad=3, bias=False)
    b.bn("conv1/bn")
    b.relu("conv1/relu")
    b.pool("pool1", 3, 2, pad=1)
    for stage_name, n_blocks, inner, out, first_stride in RESNET50_STAGES:
        for i in range(n_blocks):
            _bottleneck(
                b,
                f"{stage_name}{chr(ord('a') + i)}",
                inner,
                out,
                stride=first_stride if i == 0 else 1,
                project=(i == 0),
            )
    b.pool("pool5", 1, 1, mode="avg", global_pooling=True)
    logits = b.fc("fc1000", num_classes)
    return b.loss_from(logits, include_accuracy=include_accuracy)
