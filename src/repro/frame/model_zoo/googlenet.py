"""GoogLeNet (Inception v1, Szegedy et al.).

The main branch matches the paper's throughput workload; the two auxiliary
classifiers (after inception 4a and 4d, loss weight 0.3) are available via
``aux_heads=True`` for training-faithful runs — Caffe disables them at
deploy time.
"""

from __future__ import annotations

import numpy as np

from repro.frame.layers import ConcatLayer, SoftmaxWithLossLayer
from repro.frame.model_zoo.common import NetBuilder
from repro.frame.net import Net

#: Inception module channel configs:
#: (1x1, 3x3 reduce, 3x3, 5x5 reduce, 5x5, pool proj)
INCEPTIONS = {
    "3a": (64, 96, 128, 16, 32, 32),
    "3b": (128, 128, 192, 32, 96, 64),
    "4a": (192, 96, 208, 16, 48, 64),
    "4b": (160, 112, 224, 24, 64, 64),
    "4c": (128, 128, 256, 24, 64, 64),
    "4d": (112, 144, 288, 32, 64, 64),
    "4e": (256, 160, 320, 32, 128, 128),
    "5a": (256, 160, 320, 32, 128, 128),
    "5b": (384, 192, 384, 48, 128, 128),
}


def _inception(b: NetBuilder, name: str, cfg: tuple[int, ...]) -> None:
    c1, r3, c3, r5, c5, pp = cfg
    bottom = b.cur
    b.conv(f"{name}/1x1", c1, 1, bottom=bottom)
    b.relu(f"{name}/relu_1x1")
    branch1 = b.cur
    b.conv(f"{name}/3x3_reduce", r3, 1, bottom=bottom)
    b.relu(f"{name}/relu_3x3_reduce")
    b.conv(f"{name}/3x3", c3, 3, pad=1)
    b.relu(f"{name}/relu_3x3")
    branch2 = b.cur
    b.conv(f"{name}/5x5_reduce", r5, 1, bottom=bottom)
    b.relu(f"{name}/relu_5x5_reduce")
    b.conv(f"{name}/5x5", c5, 5, pad=2)
    b.relu(f"{name}/relu_5x5")
    branch3 = b.cur
    b.pool(f"{name}/pool", 3, 1, pad=1, bottom=bottom)
    b.conv(f"{name}/pool_proj", pp, 1)
    b.relu(f"{name}/relu_pool_proj")
    branch4 = b.cur
    b.net.add(
        ConcatLayer(f"{name}/output"),
        bottoms=[branch1, branch2, branch3, branch4],
        tops=[f"{name}/output"],
    )
    b.cur = f"{name}/output"


def _aux_head(b: NetBuilder, name: str, num_classes: int, bottom: str) -> None:
    """One auxiliary classifier: pool5/3 -> 1x1 conv -> fc -> loss*0.3."""
    b.pool(f"{name}/ave_pool", 5, 3, mode="avg", bottom=bottom)
    b.conv(f"{name}/conv", 128, 1)
    b.relu(f"{name}/relu_conv")
    b.fc(f"{name}/fc", 1024)
    b.relu(f"{name}/relu_fc")
    b.dropout(f"{name}/drop", 0.7)
    logits = b.fc(f"{name}/classifier", num_classes)
    loss = SoftmaxWithLossLayer(f"{name}/loss")
    loss.loss_weight = 0.3
    b.net.add(loss, bottoms=[logits, "label"], tops=[f"{name}/loss"])
    b.cur = bottom  # resume the main branch


def build(
    batch_size: int = 128,
    num_classes: int = 1000,
    source=None,
    rng: np.random.Generator | None = None,
    include_accuracy: bool = False,
    aux_heads: bool = False,
) -> Net:
    """GoogLeNet over 224x224 inputs (main branch; aux heads optional)."""
    b = NetBuilder("googlenet", batch_size, num_classes, (3, 224, 224), source, rng)
    b.conv("conv1/7x7_s2", 64, 7, stride=2, pad=3)
    b.relu("conv1/relu_7x7")
    b.pool("pool1/3x3_s2", 3, 2, pad=1)
    b.conv("conv2/3x3_reduce", 64, 1)
    b.relu("conv2/relu_3x3_reduce")
    b.conv("conv2/3x3", 192, 3, pad=1)
    b.relu("conv2/relu_3x3")
    b.pool("pool2/3x3_s2", 3, 2, pad=1)
    _inception(b, "inception_3a", INCEPTIONS["3a"])
    _inception(b, "inception_3b", INCEPTIONS["3b"])
    b.pool("pool3/3x3_s2", 3, 2, pad=1)
    for key in ("4a", "4b", "4c", "4d", "4e"):
        _inception(b, f"inception_{key}", INCEPTIONS[key])
        if aux_heads and key in ("4a", "4d"):
            _aux_head(b, f"loss{1 if key == '4a' else 2}", num_classes, b.cur)
    b.pool("pool4/3x3_s2", 3, 2, pad=1)
    _inception(b, "inception_5a", INCEPTIONS["5a"])
    _inception(b, "inception_5b", INCEPTIONS["5b"])
    b.pool("pool5/global", 1, 1, mode="avg", global_pooling=True)
    b.dropout("pool5/drop", 0.4)
    logits = b.fc("loss3/classifier", num_classes)
    return b.loss_from(logits, include_accuracy=include_accuracy)
