"""Shared building blocks for the model zoo."""

from __future__ import annotations

import numpy as np

from repro.frame.layers import (
    AccuracyLayer,
    BatchNormLayer,
    ConvolutionLayer,
    DataLayer,
    DropoutLayer,
    InnerProductLayer,
    PoolingLayer,
    ReLULayer,
    SoftmaxWithLossLayer,
)
from repro.frame.net import Net
from repro.io.dataset import SyntheticImageNet
from repro.utils.rng import seeded_rng


def default_source(
    num_classes: int, sample_shape: tuple[int, ...], seed: int = 0
) -> SyntheticImageNet:
    """Synthetic ImageNet-shaped source matching a net's input."""
    return SyntheticImageNet(
        num_classes=num_classes, sample_shape=sample_shape, seed=seed
    )


class NetBuilder:
    """Thin fluent helper that tracks the current blob name."""

    def __init__(
        self,
        name: str,
        batch_size: int,
        num_classes: int,
        sample_shape: tuple[int, ...],
        source=None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.net = Net(name)
        self.rng = rng or seeded_rng()
        src = source or default_source(num_classes, sample_shape)
        self.net.add(
            DataLayer("data", src, batch_size), bottoms=[], tops=["data", "label"]
        )
        self.cur = "data"
        self.num_classes = num_classes

    # ------------------------------------------------------------------ #
    def conv(
        self, name: str, num_output: int, k: int, stride: int = 1, pad: int = 0,
        bias: bool = True, groups: int = 1, bottom: str | None = None,
    ) -> str:
        src = bottom or self.cur
        self.net.add(
            ConvolutionLayer(
                name, num_output, k, stride, pad, bias=bias, groups=groups,
                rng=self.rng,
            ),
            bottoms=[src],
            tops=[name],
        )
        self.cur = name
        return name

    def bn(self, name: str, bottom: str | None = None) -> str:
        src = bottom or self.cur
        self.net.add(BatchNormLayer(name), bottoms=[src], tops=[name])
        self.cur = name
        return name

    def relu(self, name: str, bottom: str | None = None) -> str:
        src = bottom or self.cur
        self.net.add(ReLULayer(name), bottoms=[src], tops=[name])
        self.cur = name
        return name

    def pool(
        self, name: str, k: int, stride: int | None = None, pad: int = 0,
        mode: str = "max", global_pooling: bool = False, bottom: str | None = None,
    ) -> str:
        src = bottom or self.cur
        self.net.add(
            PoolingLayer(name, k, stride, pad, mode, global_pooling),
            bottoms=[src],
            tops=[name],
        )
        self.cur = name
        return name

    def fc(self, name: str, num_output: int, bottom: str | None = None) -> str:
        src = bottom or self.cur
        self.net.add(
            InnerProductLayer(name, num_output, rng=self.rng),
            bottoms=[src],
            tops=[name],
        )
        self.cur = name
        return name

    def dropout(self, name: str, ratio: float = 0.5, bottom: str | None = None) -> str:
        src = bottom or self.cur
        self.net.add(DropoutLayer(name, ratio, rng=self.rng), bottoms=[src], tops=[name])
        self.cur = name
        return name

    def head(self, fc_name: str = "fc", include_accuracy: bool = False) -> Net:
        """Final classifier + loss (+ optional accuracy)."""
        logits = self.fc(fc_name, self.num_classes)
        self.net.add(
            SoftmaxWithLossLayer("loss"), bottoms=[logits, "label"], tops=["loss"]
        )
        if include_accuracy:
            self.net.add(
                AccuracyLayer("accuracy"), bottoms=[logits, "label"], tops=["accuracy"]
            )
        return self.net

    def loss_from(self, logits: str, include_accuracy: bool = False) -> Net:
        """Attach loss to an existing logits blob."""
        self.net.add(
            SoftmaxWithLossLayer("loss"), bottoms=[logits, "label"], tops=["loss"]
        )
        if include_accuracy:
            self.net.add(
                AccuracyLayer("accuracy"), bottoms=[logits, "label"], tops=["accuracy"]
            )
        return self.net
