"""Model zoo: the networks evaluated in the paper.

AlexNet (with the paper's BN refinement), VGG-16, VGG-19, ResNet-50 and
GoogLeNet — plus LeNet as a small, fast net for tests and examples. Each
module exposes ``build(batch_size, ...) -> Net``.
"""

from repro.frame.model_zoo import alexnet, googlenet, lenet, resnet, vgg

#: Table III configurations: (builder, batch size used in the paper).
PAPER_NETWORKS = {
    "AlexNet": (alexnet.build, 256),
    "VGG-16": (vgg.build_vgg16, 64),
    "VGG-19": (vgg.build_vgg19, 64),
    "ResNet-50": (resnet.build_resnet50, 32),
    "GoogleNet": (googlenet.build, 128),
}

__all__ = ["alexnet", "googlenet", "lenet", "resnet", "vgg", "PAPER_NETWORKS"]
