"""LeNet-style small CNN — the fast net used by tests and the quickstart.

Input defaults to (1, 28, 28) with 10 classes; tiny enough that a full
functional training run converges in seconds on a laptop.
"""

from __future__ import annotations

import numpy as np

from repro.frame.model_zoo.common import NetBuilder
from repro.frame.net import Net


def build(
    batch_size: int = 16,
    num_classes: int = 10,
    sample_shape: tuple[int, ...] = (1, 28, 28),
    source=None,
    rng: np.random.Generator | None = None,
    include_accuracy: bool = True,
) -> Net:
    """LeNet: conv(20,5) pool conv(50,5) pool fc(500) relu fc(classes)."""
    b = NetBuilder("lenet", batch_size, num_classes, sample_shape, source, rng)
    b.conv("conv1", 20, 5)
    b.pool("pool1", 2, 2)
    b.conv("conv2", 50, 5)
    b.pool("pool2", 2, 2)
    b.fc("ip1", 500)
    b.relu("relu1")
    return b.head("ip2", include_accuracy=include_accuracy)
