"""VGG-16 and VGG-19 (Simonyan & Zisserman)."""

from __future__ import annotations

import numpy as np

from repro.frame.model_zoo.common import NetBuilder
from repro.frame.net import Net

#: Convolutions per stage (stages are separated by 2x2 max pooling).
VGG16_STAGES = (2, 2, 3, 3, 3)
VGG19_STAGES = (2, 2, 4, 4, 4)
STAGE_CHANNELS = (64, 128, 256, 512, 512)


def _build(
    name: str,
    stages: tuple[int, ...],
    batch_size: int,
    num_classes: int,
    source,
    rng: np.random.Generator | None,
    include_accuracy: bool,
) -> Net:
    b = NetBuilder(name, batch_size, num_classes, (3, 224, 224), source, rng)
    for stage, (n_convs, channels) in enumerate(zip(stages, STAGE_CHANNELS), start=1):
        for i in range(1, n_convs + 1):
            b.conv(f"conv{stage}_{i}", channels, 3, pad=1)
            b.relu(f"relu{stage}_{i}")
        b.pool(f"pool{stage}", 2, 2)
    b.fc("fc6", 4096)
    b.relu("relu6")
    b.dropout("drop6")
    b.fc("fc7", 4096)
    b.relu("relu7")
    b.dropout("drop7")
    return b.head("fc8", include_accuracy=include_accuracy)


def build_vgg16(
    batch_size: int = 64,
    num_classes: int = 1000,
    source=None,
    rng: np.random.Generator | None = None,
    include_accuracy: bool = False,
) -> Net:
    """VGG-16: 13 convolutional + 3 fully connected layers."""
    return _build("vgg16", VGG16_STAGES, batch_size, num_classes, source, rng, include_accuracy)


def build_vgg19(
    batch_size: int = 64,
    num_classes: int = 1000,
    source=None,
    rng: np.random.Generator | None = None,
    include_accuracy: bool = False,
) -> Net:
    """VGG-19: 16 convolutional + 3 fully connected layers."""
    return _build("vgg19", VGG19_STAGES, batch_size, num_classes, source, rng, include_accuracy)
