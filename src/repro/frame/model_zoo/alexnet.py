"""AlexNet, in the paper's refined form (LRN replaced by BatchNorm).

"We adopt some refinements to AlexNet without affecting the accuracy by
changing the local response normalization (LRN) to batch normalization
(BN)" — the Fig. 8 layer sequence (conv/bn/relu/pool blocks, then
fc6/fc7/fc8 with dropout). ``variant="lrn"`` builds the original LRN form.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.frame.layers import LRNLayer
from repro.frame.model_zoo.common import NetBuilder
from repro.frame.net import Net


def build(
    batch_size: int = 256,
    num_classes: int = 1000,
    source=None,
    rng: np.random.Generator | None = None,
    include_accuracy: bool = False,
    variant: str = "bn",
) -> Net:
    """AlexNet over 227x227 RGB inputs."""
    if variant not in ("bn", "lrn"):
        raise ShapeError(f"unknown AlexNet variant {variant!r}")
    b = NetBuilder("alexnet", batch_size, num_classes, (3, 227, 227), source, rng)

    def norm(name: str) -> None:
        if variant == "bn":
            b.bn(f"{name}/bn")
        else:
            b.net.add(LRNLayer(f"{name}/lrn"), bottoms=[b.cur], tops=[f"{name}/lrn"])
            b.cur = f"{name}/lrn"

    # The original (LRN) AlexNet splits conv2/4/5 into two groups, a relic
    # of the dual-GPU training; the BN refinement runs ungrouped.
    g = 2 if variant == "lrn" else 1
    b.conv("conv1", 96, 11, stride=4)
    norm("conv1")
    b.relu("relu1")
    b.pool("pool1", 3, 2)
    b.conv("conv2", 256, 5, pad=2, groups=g)
    norm("conv2")
    b.relu("relu2")
    b.pool("pool2", 3, 2)
    b.conv("conv3", 384, 3, pad=1)
    if variant == "bn":
        b.bn("conv3/bn")
    b.relu("relu3")
    b.conv("conv4", 384, 3, pad=1, groups=g)
    if variant == "bn":
        b.bn("conv4/bn")
    b.relu("relu4")
    b.conv("conv5", 256, 3, pad=1, groups=g)
    if variant == "bn":
        b.bn("conv5/bn")
    b.relu("relu5")
    b.pool("pool5", 3, 2)
    b.fc("fc6", 4096)
    b.relu("relu6")
    b.dropout("drop6")
    b.fc("fc7", 4096)
    b.relu("relu7")
    b.dropout("drop7")
    return b.head("fc8", include_accuracy=include_accuracy)
