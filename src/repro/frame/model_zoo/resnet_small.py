"""ResNet-18 and ResNet-34: basic-block variants.

Not evaluated in the paper, but standard companions to ResNet-50 and a
useful smaller workload for the simulator (and they exercise the
basic-block topology: two 3x3 convolutions per residual unit instead of
the bottleneck's 1x1/3x3/1x1).
"""

from __future__ import annotations

import numpy as np

from repro.frame.layers import EltwiseLayer
from repro.frame.model_zoo.common import NetBuilder
from repro.frame.net import Net

#: Basic blocks per stage, by depth.
STAGES = {
    18: (2, 2, 2, 2),
    34: (3, 4, 6, 3),
}
STAGE_WIDTHS = (64, 128, 256, 512)


def _basic_block(b: NetBuilder, name: str, width: int, stride: int, project: bool) -> None:
    """Two 3x3 convolutions with a skip connection."""
    identity = b.cur
    b.conv(f"{name}/conv1", width, 3, stride=stride, pad=1, bias=False)
    b.bn(f"{name}/bn1")
    b.relu(f"{name}/relu1")
    b.conv(f"{name}/conv2", width, 3, pad=1, bias=False)
    b.bn(f"{name}/bn2")
    main = b.cur
    if project:
        b.conv(f"{name}/proj", width, 1, stride=stride, bias=False, bottom=identity)
        b.bn(f"{name}/proj_bn")
        identity = b.cur
    b.net.add(
        EltwiseLayer(f"{name}/add"), bottoms=[main, identity], tops=[f"{name}/add"]
    )
    b.cur = f"{name}/add"
    b.relu(f"{name}/relu")


def _build(
    depth: int,
    batch_size: int,
    num_classes: int,
    source,
    rng: np.random.Generator | None,
    include_accuracy: bool,
) -> Net:
    if depth not in STAGES:
        raise ValueError(f"unsupported depth {depth}; choose from {sorted(STAGES)}")
    b = NetBuilder(f"resnet{depth}", batch_size, num_classes, (3, 224, 224), source, rng)
    b.conv("conv1", 64, 7, stride=2, pad=3, bias=False)
    b.bn("conv1/bn")
    b.relu("conv1/relu")
    b.pool("pool1", 3, 2, pad=1)
    for stage, (n_blocks, width) in enumerate(zip(STAGES[depth], STAGE_WIDTHS), start=2):
        for i in range(n_blocks):
            first = i == 0
            _basic_block(
                b,
                f"res{stage}{chr(ord('a') + i)}",
                width,
                stride=2 if (first and stage > 2) else 1,
                # Stage 2's first block keeps 64 channels (matches pool1),
                # so no projection is needed there.
                project=(first and stage > 2),
            )
    b.pool("pool5", 1, 1, mode="avg", global_pooling=True)
    logits = b.fc(f"fc{num_classes}", num_classes)
    return b.loss_from(logits, include_accuracy=include_accuracy)


def build_resnet18(
    batch_size: int = 32,
    num_classes: int = 1000,
    source=None,
    rng: np.random.Generator | None = None,
    include_accuracy: bool = False,
) -> Net:
    """ResNet-18 (basic blocks, [2, 2, 2, 2])."""
    return _build(18, batch_size, num_classes, source, rng, include_accuracy)


def build_resnet34(
    batch_size: int = 32,
    num_classes: int = 1000,
    source=None,
    rng: np.random.Generator | None = None,
    include_accuracy: bool = False,
) -> Net:
    """ResNet-34 (basic blocks, [3, 4, 6, 3])."""
    return _build(34, batch_size, num_classes, source, rng, include_accuracy)
