"""Caffe prototxt compatibility (the paper: swCaffe keeps "the same
interfaces as Caffe").

Implements the subset of protobuf text format Caffe model definitions use —
``key: value`` scalars, ``block { ... }`` messages, repeated keys — plus
the mapping from Caffe's ``layer { ... }`` schema (``convolution_param``,
``pooling_param``, ...) onto this package's net spec, so genuine Caffe
``.prototxt`` files build and train directly::

    net = net_from_prototxt(open("lenet.prototxt").read(), source=data)

Solver definitions (``solver.prototxt``) are supported too; see
:func:`solver_from_prototxt`.
"""

from __future__ import annotations

import re
from typing import Any

import numpy as np

from repro.errors import ReproError
from repro.frame.net import Net
from repro.frame.netspec import build_from_spec
from repro.frame.solver import SGDSolver
from repro.frame.solvers_ext import (
    AdaGradSolver,
    AdamSolver,
    NesterovSolver,
    RMSPropSolver,
)


class PrototxtError(ReproError):
    """Raised for malformed prototxt input or unsupported constructs."""


# --------------------------------------------------------------------- #
# text-format parser
# --------------------------------------------------------------------- #
_TOKEN = re.compile(
    r"""
    (?P<comment>\#[^\n]*)
  | (?P<brace>[{}])
  | (?P<colon>:)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<value>[^\s:{}\#"]+)
""",
    re.VERBOSE,
)


def _tokenize(text: str) -> list[str]:
    tokens = []
    for m in _TOKEN.finditer(text):
        kind = m.lastgroup
        if kind == "comment":
            continue
        tokens.append(m.group())
    return tokens


def _coerce(raw: str) -> Any:
    if raw.startswith('"'):
        return raw[1:-1].encode().decode("unicode_escape")
    low = raw.lower()
    if low == "true":
        return True
    if low == "false":
        return False
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    return raw  # enum identifier (e.g. MAX, AVE)


def parse_prototxt(text: str) -> dict[str, Any]:
    """Parse protobuf text format into nested dicts.

    Repeated keys become lists (in order of appearance).
    """
    tokens = _tokenize(text)
    pos = 0

    def parse_message(depth: int) -> dict[str, Any]:
        nonlocal pos
        msg: dict[str, Any] = {}
        while pos < len(tokens):
            tok = tokens[pos]
            if tok == "}":
                if depth == 0:
                    raise PrototxtError("unbalanced '}'")
                pos += 1
                return msg
            key = tok
            if key in ("{", ":"):
                raise PrototxtError(f"unexpected token {key!r}")
            pos += 1
            if pos >= len(tokens):
                raise PrototxtError(f"dangling key {key!r}")
            if tokens[pos] == ":":
                pos += 1
                if pos >= len(tokens):
                    raise PrototxtError(f"key {key!r} has no value")
                if tokens[pos] == "{":
                    pos += 1
                    value: Any = parse_message(depth + 1)
                else:
                    value = _coerce(tokens[pos])
                    pos += 1
            elif tokens[pos] == "{":
                pos += 1
                value = parse_message(depth + 1)
            else:
                raise PrototxtError(f"expected ':' or '{{' after {key!r}")
            if key in msg:
                if not isinstance(msg[key], list):
                    msg[key] = [msg[key]]
                msg[key].append(value)
            else:
                msg[key] = value
        if depth != 0:
            raise PrototxtError("unbalanced '{'")
        return msg

    return parse_message(0)


def _as_list(value: Any) -> list:
    if value is None:
        return []
    return value if isinstance(value, list) else [value]


# --------------------------------------------------------------------- #
# layer schema mapping
# --------------------------------------------------------------------- #
def _conv_params(p: dict) -> dict:
    out = {
        "num_output": p["num_output"],
        "kernel_size": p.get("kernel_size", p.get("kernel_h", 3)),
        "stride": p.get("stride", 1),
        "pad": p.get("pad", 0),
        "groups": p.get("group", 1),
        "bias": p.get("bias_term", True),
    }
    filler = p.get("weight_filler", {})
    if isinstance(filler, dict) and filler.get("type") in ("msra", "xavier"):
        out["weight_filler"] = filler["type"]
    return out


def _pool_params(p: dict) -> dict:
    mode = str(p.get("pool", "MAX")).upper()
    return {
        "kernel_size": p.get("kernel_size", 2),
        "stride": p.get("stride"),
        "pad": p.get("pad", 0),
        "mode": {"MAX": "max", "AVE": "avg"}.get(mode, "max"),
        "global_pooling": p.get("global_pooling", False),
    }


#: Caffe layer type -> (spec type, param-block key, param mapper).
_LAYER_MAP: dict[str, tuple[str, str | None, Any]] = {
    "Convolution": ("Convolution", "convolution_param", _conv_params),
    "InnerProduct": (
        "InnerProduct",
        "inner_product_param",
        lambda p: {
            "num_output": p["num_output"],
            "bias": p.get("bias_term", True),
        },
    ),
    "Pooling": ("Pooling", "pooling_param", _pool_params),
    "ReLU": (
        "ReLU",
        "relu_param",
        lambda p: {"negative_slope": p.get("negative_slope", 0.0)},
    ),
    "Sigmoid": ("Sigmoid", None, None),
    "TanH": ("TanH", None, None),
    "ELU": ("ELU", "elu_param", lambda p: {"alpha": p.get("alpha", 1.0)}),
    "BatchNorm": (
        "BatchNorm",
        "batch_norm_param",
        lambda p: {"eps": p.get("eps", 1e-5)},
    ),
    "LRN": (
        "LRN",
        "lrn_param",
        lambda p: {
            "local_size": p.get("local_size", 5),
            "alpha": p.get("alpha", 1e-4),
            "beta": p.get("beta", 0.75),
            "k": p.get("k", 1.0),
        },
    ),
    "Dropout": (
        "Dropout",
        "dropout_param",
        lambda p: {"ratio": p.get("dropout_ratio", 0.5)},
    ),
    "Softmax": ("Softmax", None, None),
    "SoftmaxWithLoss": ("SoftmaxWithLoss", None, None),
    "Accuracy": (
        "Accuracy",
        "accuracy_param",
        lambda p: {"top_k": p.get("top_k", 1)},
    ),
    "Concat": ("Concat", "concat_param", lambda p: {"axis": p.get("axis", 1)}),
    "Eltwise": (
        "Eltwise",
        "eltwise_param",
        lambda p: {
            "operation": {"SUM": "sum", "PROD": "prod", "MAX": "max"}.get(
                str(p.get("operation", "SUM")).upper(), "sum"
            )
        },
    ),
    "Data": ("Data", "data_param", lambda p: {"batch_size": p["batch_size"]}),
    "Flatten": ("Flatten", None, None),
    "Scale": (
        "Scale",
        "scale_param",
        lambda p: {"bias": p.get("bias_term", True)},
    ),
    "EuclideanLoss": ("EuclideanLoss", None, None),
    "Slice": (
        "Slice",
        "slice_param",
        lambda p: {
            "slice_points": [int(s) for s in _as_list(p.get("slice_point", []))],
            "axis": p.get("axis", 1),
        },
    ),
    "Split": ("Split", None, None),
}


def prototxt_to_spec(text: str) -> dict[str, Any]:
    """Convert a Caffe net prototxt into this package's net spec."""
    msg = parse_prototxt(text)
    layers = _as_list(msg.get("layer"))
    if not layers:
        raise PrototxtError("prototxt defines no layers")
    spec_layers = []
    for entry in layers:
        ltype = entry.get("type")
        name = entry.get("name")
        if not ltype or not name:
            raise PrototxtError(f"layer missing name/type: {entry}")
        if ltype not in _LAYER_MAP:
            raise PrototxtError(f"unsupported Caffe layer type {ltype!r}")
        spec_type, param_key, mapper = _LAYER_MAP[ltype]
        params = {}
        if mapper is not None:
            raw = entry.get(param_key, {}) if param_key else {}
            if isinstance(raw, list):
                raw = raw[0]
            params = mapper(raw)
        bottoms = [str(b) for b in _as_list(entry.get("bottom"))]
        tops = [str(t) for t in _as_list(entry.get("top"))] or [name]
        if bottoms and bottoms == tops:
            raise PrototxtError(
                f"layer {name!r} is in-place (bottom == top); in-place layers "
                "are not supported — give the top a distinct name"
            )
        if spec_type == "Split":
            params["n_tops"] = len(tops)
        spec_entry = {
            "type": spec_type,
            "name": str(name),
            "bottoms": bottoms,
            "tops": tops,
            "params": params,
        }
        if "loss_weight" in entry:
            weights = _as_list(entry["loss_weight"])
            spec_entry["loss_weight"] = float(weights[0])
        spec_layers.append(spec_entry)
    return {"name": str(msg.get("name", "net")), "layers": spec_layers}


def net_from_prototxt(
    text: str, source=None, rng: np.random.Generator | None = None
) -> Net:
    """Build a runnable :class:`Net` directly from Caffe prototxt text."""
    return build_from_spec(prototxt_to_spec(text), source=source, rng=rng)


# --------------------------------------------------------------------- #
# solver prototxt
# --------------------------------------------------------------------- #
_SOLVER_TYPES = {
    "SGD": SGDSolver,
    "NESTEROV": NesterovSolver,
    "ADAGRAD": AdaGradSolver,
    "RMSPROP": RMSPropSolver,
    "ADAM": AdamSolver,
}


def solver_from_prototxt(text: str, net: Net) -> SGDSolver:
    """Build a solver from Caffe ``solver.prototxt`` text."""
    msg = parse_prototxt(text)
    type_name = str(msg.get("type", "SGD")).upper()
    if type_name not in _SOLVER_TYPES:
        raise PrototxtError(f"unsupported solver type {type_name!r}")
    cls = _SOLVER_TYPES[type_name]
    kwargs: dict[str, Any] = {
        "base_lr": msg.get("base_lr", 0.01),
        "weight_decay": msg.get("weight_decay", 0.0),
        "lr_policy": str(msg.get("lr_policy", "fixed")),
        "gamma": msg.get("gamma", 0.1),
        "stepsize": msg.get("stepsize", 100000),
        "max_iter": msg.get("max_iter", 100000),
        "power": msg.get("power", 1.0),
    }
    if "stepvalue" in msg:
        kwargs["steps"] = [int(s) for s in _as_list(msg["stepvalue"])]
    momentum = msg.get("momentum", 0.9)
    if cls in (SGDSolver, NesterovSolver):
        kwargs["momentum"] = momentum
    return cls(net, **kwargs)
