"""Point-to-point transfers between simulated ranks.

The collectives in this package are lockstep algorithms; pipeline-parallel
training needs the other MPI primitive family — matched ``send``/``recv``
between two ranks (activations downstream, gradients upstream). A
:class:`P2PTransport` prices those messages on the same fabric/topology
cost model the collectives use (:meth:`~repro.simmpi.comm.SimComm.pair_time`)
and follows the package's data/time split:

* the *data* path is exact — every send deposits a bitwise copy of the
  payload into a (src, dst, tag)-keyed mailbox, and ``recv`` hands back
  exactly those bytes, so pipeline-stage training stays bit-identical to
  a single-rank run;
* the *time* path is accounted — blocking ``send`` advances the
  communicator clock by the priced transfer; nonblocking ``isend`` runs
  the transfer immediately (data exact) while its network window is
  scheduled serially after earlier requests, mirroring
  :class:`~repro.simmpi.nonblocking.IAllreduceQueue`.

Fault hooks ride the existing ``"comm"`` transient site (a flaky link
retries the transfer with identical data, time charged to the clock's
``"fault"`` category), dead ranks raise
:class:`~repro.errors.CollectiveTimeout` like a collective step would, and
``p2p_transfer`` spans carry dep edges so the critical-path profiler sees
activation transfers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CommunicatorError
from repro.faults.injector import active as _faults, charge_transient
from repro.metrics.registry import active as _metrics
from repro.simmpi.comm import CollectiveResult, SimComm
from repro.trace.scaling import active as _scaling
from repro.trace.tracer import Span, active as _tracer


@dataclass
class P2PResult:
    """Outcome accounting of one blocking point-to-point transfer."""

    time_s: float = 0.0
    nbytes: float = 0.0
    src: int = 0
    dst: int = 0
    cross_supernode: bool = False
    #: The transfer's trace span (None when tracing is off) — callers wire
    #: producer/consumer dep edges off it.
    span: Span | None = None


@dataclass
class PendingTransfer:
    """One in-flight (or completed) nonblocking p2p transfer."""

    tag: str
    src: int
    dst: int
    nbytes: float
    #: When the payload became available (the launch instant).
    ready_s: float
    #: When the serial fabric actually began serving it.
    start_s: float
    #: Network occupancy (the blocking transfer's priced duration).
    comm_s: float
    cross_supernode: bool = False
    done: bool = False
    launch_span: Span | None = None
    #: The service window's span, recorded at :meth:`P2PTransport.wait_all`.
    service_span: Span | None = None

    @property
    def end_s(self) -> float:
        return self.start_s + self.comm_s

    def hidden_before(self, barrier_s: float) -> float:
        """Seconds of this transfer's service that precede ``barrier_s``
        (clamped to ``[0, comm_s]``, same rule as the collective queue)."""
        return min(self.comm_s, max(0.0, min(self.end_s, barrier_s) - self.start_s))


class P2PTransport:
    """Matched send/recv between ranks of one communicator.

    Parameters
    ----------
    comm:
        The communicator transfers are priced over (fabric, placement,
        cost model, clock, failed-rank set).
    origin_s:
        Timeline origin for the nonblocking schedule; defaults to the
        communicator clock's current time.
    """

    def __init__(self, comm: SimComm, origin_s: float | None = None) -> None:
        self.comm = comm
        self.origin_s = comm.clock.now if origin_s is None else float(origin_s)
        #: When the serial fabric next frees up for nonblocking transfers.
        self.free_s = self.origin_s
        #: Launched-but-unwaited nonblocking transfers, in launch order.
        self.pending: list[PendingTransfer] = []
        self._mailbox: dict[tuple[int, int, str], list[np.ndarray]] = {}
        #: The previous blocking transfer's span — the fabric serves one
        #: message at a time, so each transfer depends on the last.
        self._prev_span: Span | None = None
        self._last_service: Span | None = None

    # ------------------------------------------------------------------ #
    # blocking
    # ------------------------------------------------------------------ #
    def _check_ranks(self, src: int, dst: int) -> None:
        p = self.comm.p
        for r in (src, dst):
            if not 0 <= r < p:
                raise CommunicatorError(f"rank {r} out of range for p={p}")
        if src == dst:
            raise CommunicatorError(f"p2p transfer needs distinct ranks, got {src}")
        if self.comm.failed_ranks:
            dead = frozenset(r for r in (src, dst) if r in self.comm.failed_ranks)
            if dead:
                self.comm._timeout(dead)

    def _price(self, src: int, dst: int, nbytes: float) -> tuple[float, float]:
        """(final transfer seconds, straggler slowdown seconds)."""
        base = self.comm.pair_time(src, dst, nbytes)
        t = base
        fi = _faults()
        if fi.enabled:
            t *= fi.comm_scale(src, dst)
        slow_s = t - base
        sc = _scaling()
        if sc.enabled:
            t *= sc.factor("p2p")
        return t, slow_s

    def send(self, src: int, dst: int, payload, *, tag: str = "") -> P2PResult:
        """Blocking send of ``payload`` from ``src`` to ``dst``.

        Deposits a bitwise copy into the mailbox for a matching
        :meth:`recv` and advances the communicator clock by the priced
        transfer time. Raises :class:`~repro.errors.CollectiveTimeout`
        if either endpoint is dead.
        """
        self._check_ranks(src, dst)
        arr = np.array(payload, copy=True)
        nbytes = float(arr.nbytes)
        t, slow_s = self._price(src, dst, nbytes)
        cross = self.comm.crosses_supernode(src, dst)
        result = P2PResult(
            time_s=t, nbytes=nbytes, src=src, dst=dst, cross_supernode=cross
        )
        tr = _tracer()
        if tr.enabled:
            span = tr.emit(
                f"send {src}->{dst}" + (f" {tag}" if tag else ""),
                "p2p_transfer",
                track="p2p/fabric",
                start=self.comm.clock.now,
                dur=t,
                args={
                    "src": src,
                    "dst": dst,
                    "bytes": nbytes,
                    "tag": tag,
                    "cross_supernode": cross,
                },
            )
            if self._prev_span is not None:
                tr.edge(self._prev_span, span)
            self._prev_span = span
            result.span = span
        mx = _metrics()
        if mx.enabled:
            mx.count("comm.p2p_sends", 1)
            mx.count("comm.p2p_bytes", nbytes, link="cross" if cross else "intra")
        self.comm.clock.advance(t, category="comm")
        fi = _faults()
        if fi.enabled:
            if slow_s > 0:
                fi.note_slow()
                if mx.enabled:
                    mx.count("faults.slow_s", slow_s)
            # Flaky-link retry: the transfer is repeated with identical
            # data, so results stay bit-exact (the "comm" transient site).
            charge_transient("comm", self.comm.clock, t, track="comm")
        self._mailbox.setdefault((src, dst, tag), []).append(arr)
        return result

    def recv(self, src: int, dst: int, *, tag: str = "") -> np.ndarray:
        """Receive the oldest matching message (FIFO per (src, dst, tag)).

        The simulator executes ranks in dependency order, so the matching
        send has already run; an unmatched recv is a protocol bug and
        raises :class:`~repro.errors.CommunicatorError`.
        """
        box = self._mailbox.get((src, dst, tag))
        if not box:
            raise CommunicatorError(
                f"recv({src}->{dst}, tag={tag!r}) has no matching send"
            )
        return box.pop(0)

    # ------------------------------------------------------------------ #
    # nonblocking
    # ------------------------------------------------------------------ #
    def isend(
        self,
        src: int,
        dst: int,
        payload,
        *,
        ready_s: float | None = None,
        tag: str = "",
    ) -> PendingTransfer:
        """Launch one nonblocking transfer.

        The payload is delivered immediately (data path exact — a matching
        :meth:`recv`/:meth:`irecv` sees the bytes the moment this returns)
        while the network window is scheduled serially after earlier
        nonblocking requests: ``start = max(ready_s, fabric free)``.
        """
        self._check_ranks(src, dst)
        arr = np.array(payload, copy=True)
        nbytes = float(arr.nbytes)
        ready = self.origin_s if ready_s is None else float(ready_s)
        t, slow_s = self._price(src, dst, nbytes)
        req = PendingTransfer(
            tag=tag,
            src=src,
            dst=dst,
            nbytes=nbytes,
            ready_s=ready,
            start_s=max(ready, self.free_s),
            comm_s=t,
            cross_supernode=self.comm.crosses_supernode(src, dst),
        )
        self.free_s = req.end_s
        self.pending.append(req)
        self._mailbox.setdefault((src, dst, tag), []).append(arr)
        self.comm.clock.advance(t, category="comm")
        fi = _faults()
        mx = _metrics()
        if fi.enabled:
            if slow_s > 0:
                fi.note_slow()
                if mx.enabled:
                    mx.count("faults.slow_s", slow_s)
            charge_transient("comm", self.comm.clock, t, track="comm")
        tr = _tracer()
        if tr.enabled:
            req.launch_span = tr.instant_event(
                f"isend {src}->{dst}" + (f" {tag}" if tag else ""),
                "collective_launch",
                track="p2p/launch",
                start=ready,
                args={"src": src, "dst": dst, "bytes": nbytes, "tag": tag,
                      "queued_s": req.start_s - ready},
            )
        if mx.enabled:
            mx.count("comm.p2p_sends", 1)
            mx.count(
                "comm.p2p_bytes",
                nbytes,
                link="cross" if req.cross_supernode else "intra",
            )
        return req

    def irecv(self, src: int, dst: int, *, tag: str = "") -> np.ndarray:
        """Nonblocking-side receive: the matched :meth:`isend` has already
        delivered the bytes, so this is :meth:`recv` by another name —
        completion timing lives on the :class:`PendingTransfer`."""
        return self.recv(src, dst, tag=tag)

    def wait_all(self, *, barrier_s: float | None = None) -> list[PendingTransfer]:
        """Complete every pending nonblocking transfer.

        Emits each transfer's serial-fabric service window as a
        ``p2p_transfer`` span (with its ``ready_s`` release floor and a
        chain edge to the previous window) and splits service into
        hidden/exposed around ``barrier_s`` like the collective queue.
        """
        completed, self.pending = self.pending, []
        tr = _tracer()
        mx = _metrics()
        for req in completed:
            req.done = True
            if tr.enabled:
                args = {
                    "src": req.src,
                    "dst": req.dst,
                    "bytes": req.nbytes,
                    "tag": req.tag,
                    "ready_s": req.ready_s,
                    "cross_supernode": req.cross_supernode,
                }
                if barrier_s is not None:
                    args["hidden_s"] = req.hidden_before(barrier_s)
                    args["exposed_s"] = req.comm_s - args["hidden_s"]
                svc = tr.emit(
                    f"xfer {req.src}->{req.dst}" + (f" {req.tag}" if req.tag else ""),
                    "p2p_transfer",
                    track="p2p/fabric",
                    start=req.start_s,
                    dur=req.comm_s,
                    args=args,
                )
                if req.launch_span is not None:
                    tr.edge(req.launch_span, svc)
                if self._last_service is not None:
                    tr.edge(self._last_service, svc)
                self._last_service = svc
                req.service_span = svc
            if barrier_s is not None and mx.enabled:
                hidden = req.hidden_before(barrier_s)
                mx.count("comm.p2p_hidden_s", hidden)
                mx.count("comm.p2p_exposed_s", req.comm_s - hidden)
        return completed


def p2p_shift(comm: SimComm, buffers: list[np.ndarray]) -> CollectiveResult:
    """Ring shift built from matched p2p sends: rank ``r``'s buffer moves
    to rank ``(r + 1) % p``, in place.

    The conformance registry uses this to fuzz the p2p primitives with
    the same differential machinery as the collectives: each transfer is
    one accounted "step", and the delivered data must equal the rotated
    inputs bit for bit.
    """
    p = comm.p
    result = CollectiveResult()
    if p == 1:
        return result
    transport = P2PTransport(comm)
    for src in range(p):
        res = transport.send(src, (src + 1) % p, buffers[src], tag="shift")
        result.add_step(res.time_s)
        result.alpha_count += 1
        if res.cross_supernode:
            result.bytes_cross += res.nbytes
        else:
            result.bytes_intra += res.nbytes
    received = [transport.recv((dst - 1) % p, dst, tag="shift") for dst in range(p)]
    for dst in range(p):
        buffers[dst][...] = received[dst]
    return result
