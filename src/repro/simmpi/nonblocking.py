"""Nonblocking collective launches scheduled on the simulated clock.

Modern data-parallel stacks hide gradient-allreduce latency by launching
one ``MPI_Iallreduce`` per gradient bucket as soon as the backward pass
finishes the bucket's layers, completing them all before the optimizer
step. :class:`IAllreduceQueue` reproduces that scheduling discipline in
the simulator:

* the *data* path is exact — each launch runs the real simulated
  collective (buffers move through the algorithm, results are bit-exact),
  so bucketed and fused training produce identical gradients;
* the *time* path is a schedule — the fabric serves one collective at a
  time, so a request launched at ``ready_s`` starts at
  ``max(ready_s, previous request's end)`` and occupies the network for
  the collective's simulated duration. Whatever fits before the caller's
  barrier (the end of backward compute) is *hidden*; only the remainder
  lands on the iteration's critical path.

The communicator's clock keeps its existing meaning — total network
occupancy — while the queue tracks where on the timeline each request
ran, which is what the overlap metrics and trace spans report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.metrics.registry import active as _metrics
from repro.simmpi.comm import CollectiveResult, SimComm
from repro.trace.tracer import Span, active as _tracer


@dataclass
class PendingCollective:
    """One in-flight (or completed) nonblocking collective request."""

    tag: str
    #: When the request was launched (its data became available).
    ready_s: float
    #: When the serial fabric actually began serving it.
    start_s: float
    #: Network occupancy (the blocking collective's simulated duration).
    comm_s: float
    result: CollectiveResult = field(default_factory=CollectiveResult)
    #: The per-rank buffers the collective reduced (in place) — the request
    #: owns them until :meth:`IAllreduceQueue.wait_all` hands them back.
    buffers: list[np.ndarray] = field(default_factory=list)
    done: bool = False
    #: The launch instant's trace span (None when tracing is off); the
    #: service window recorded at :meth:`IAllreduceQueue.wait_all` hangs
    #: its causal edge off it.
    launch_span: Span | None = None

    @property
    def end_s(self) -> float:
        return self.start_s + self.comm_s

    def hidden_before(self, barrier_s: float) -> float:
        """Seconds of this request's service that precede ``barrier_s``.

        Clamped to ``[0, comm_s]``: ``end_s - start_s`` can exceed
        ``comm_s`` by one ulp, and a fully-hidden request must report
        exactly zero exposed time.
        """
        return min(self.comm_s, max(0.0, min(self.end_s, barrier_s) - self.start_s))


class IAllreduceQueue:
    """Launches allreduces nonblocking-style over a serial fabric.

    Parameters
    ----------
    comm:
        The communicator every launch runs over.
    collective:
        Blocking allreduce ``fn(comm, buffers, *, average)`` (any member of
        the simulated family).
    origin_s:
        Timeline origin for the schedule; defaults to the communicator
        clock's current time, so per-iteration queues line up with the
        accumulated comm time of earlier iterations.
    """

    def __init__(self, comm: SimComm, collective, origin_s: float | None = None) -> None:
        self.comm = comm
        self._collective = collective
        self.origin_s = comm.clock.now if origin_s is None else float(origin_s)
        #: When the fabric next frees up (monotone across launches).
        self.free_s = self.origin_s
        #: Launched-but-unwaited requests, in launch order.
        self.pending: list[PendingCollective] = []
        #: Last traced service window — the serial fabric chains them.
        self._last_service: Span | None = None

    def iallreduce(
        self,
        buffers: list[np.ndarray],
        *,
        ready_s: float | None = None,
        average: bool = False,
        tag: str = "",
    ) -> PendingCollective:
        """Launch one nonblocking allreduce of ``buffers``.

        ``ready_s`` is the simulated time the buffers became available
        (defaults to the queue origin). The reduction itself executes
        immediately — data is bit-exact the moment this returns — while
        the occupied network window is scheduled serially after any
        earlier request. Raises :class:`~repro.errors.CollectiveTimeout`
        like the blocking collective if a participating rank is dead; in
        that case nothing is enqueued and already-pending requests must be
        discarded by the caller (see :meth:`discard`).
        """
        ready = self.origin_s if ready_s is None else float(ready_s)
        t0 = self.comm.clock.now
        result = self._collective(self.comm, buffers, average=average)
        comm_s = self.comm.clock.now - t0
        req = PendingCollective(
            tag=tag,
            ready_s=ready,
            start_s=max(ready, self.free_s),
            comm_s=comm_s,
            result=result,
            buffers=list(buffers),
        )
        self.free_s = req.end_s
        self.pending.append(req)
        tr = _tracer()
        if tr.enabled:
            req.launch_span = tr.instant_event(
                f"iallreduce {tag}" if tag else "iallreduce",
                "collective_launch",
                track="comm/launch",
                start=ready,
                args={
                    "tag": tag,
                    "bytes": float(buffers[0].nbytes) if buffers else 0.0,
                    "queued_s": req.start_s - ready,
                },
            )
        mx = _metrics()
        if mx.enabled:
            mx.count("comm.bucket_launches", 1)
        return req

    def wait_all(self, *, barrier_s: float | None = None) -> list[PendingCollective]:
        """Complete every pending request (the pre-update synchronization).

        ``barrier_s`` is the simulated time the local backward compute
        finished; service before it counts as *hidden* comm, service after
        it as *exposed*. Returns the completed requests in launch order.
        """
        completed, self.pending = self.pending, []
        tr = _tracer()
        mx = _metrics()
        for req in completed:
            req.done = True
            if tr.enabled:
                svc_args = {"tag": req.tag, "ready_s": req.ready_s}
                if barrier_s is not None:
                    svc_args["hidden_s"] = req.hidden_before(barrier_s)
                    svc_args["exposed_s"] = req.comm_s - svc_args["hidden_s"]
                svc = tr.emit(
                    f"allreduce {req.tag}" if req.tag else "allreduce",
                    "collective_service",
                    track="comm/fabric",
                    start=req.start_s,
                    dur=req.comm_s,
                    args=svc_args,
                )
                if req.launch_span is not None:
                    tr.edge(req.launch_span, svc)
                if self._last_service is not None:
                    # The fabric serves one collective at a time.
                    tr.edge(self._last_service, svc)
                self._last_service = svc
            if barrier_s is None:
                continue
            hidden = req.hidden_before(barrier_s)
            exposed = req.comm_s - hidden
            if mx.enabled:
                mx.count("comm.overlap_hidden_s", hidden)
                mx.count("comm.overlap_exposed_s", exposed)
            if tr.enabled and hidden > 0:
                tr.emit(
                    f"overlap {req.tag}" if req.tag else "overlap",
                    "overlap_window",
                    track="comm/overlap",
                    start=req.start_s,
                    dur=hidden,
                    args={
                        "tag": req.tag,
                        "hidden_s": hidden,
                        "exposed_s": exposed,
                        "barrier_s": barrier_s,
                    },
                )
        return completed

    def discard(self) -> list[PendingCollective]:
        """Drop every pending request without completing it.

        The elastic trainer calls this when a rank crash aborts an
        iteration mid-flight: launched-but-uncompleted bucket allreduces
        must not leak their (possibly partially-reduced) buffers into the
        rebuilt communicator's next iteration. Returns the dropped
        requests for inspection.
        """
        dropped, self.pending = self.pending, []
        return dropped
