"""Rank placement: the logical-to-physical mapping collectives run over.

The paper's key insight is that the *same* recursive halving/doubling
schedule costs very different amounts depending on which physical node each
logical rank occupies. :class:`Placement` is that mapping, kept explicit so
the baseline (adjacent block numbering) and the improved scheme (round-robin
across supernodes) are just two instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import CommunicatorError


@dataclass(frozen=True)
class Placement:
    """Immutable logical-rank -> physical-node mapping.

    Attributes
    ----------
    physical:
        ``physical[logical_rank]`` is the physical node id.
    name:
        Human-readable scheme name ("block", "round-robin", ...).
    """

    physical: tuple[int, ...]
    name: str = "custom"

    def __post_init__(self) -> None:
        if sorted(self.physical) != list(range(len(self.physical))):
            raise CommunicatorError(
                "placement must be a permutation of 0..p-1 physical nodes"
            )

    @classmethod
    def from_sequence(cls, physical: Sequence[int], name: str = "custom") -> "Placement":
        """Build a placement from any integer sequence (validated)."""
        return cls(physical=tuple(int(x) for x in physical), name=name)

    @property
    def p(self) -> int:
        """Number of ranks."""
        return len(self.physical)

    def node_of(self, logical_rank: int) -> int:
        """Physical node hosting ``logical_rank``."""
        if not 0 <= logical_rank < self.p:
            raise CommunicatorError(f"rank {logical_rank} out of range [0, {self.p})")
        return self.physical[logical_rank]

    def inverse(self) -> tuple[int, ...]:
        """``inverse[node] -> logical rank`` mapping."""
        inv = [0] * self.p
        for logical, phys in enumerate(self.physical):
            inv[phys] = logical
        return tuple(inv)
