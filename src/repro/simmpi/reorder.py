"""Logical rank numbering schemes (paper Sec. V-A, Fig. 7).

* :func:`block_placement` — the default MPI numbering: ranks 0..q-1 fill
  supernode 0, q..2q-1 fill supernode 1, and so on. Under recursive
  halving/doubling this sends the *largest* messages across the
  over-subscribed central network (Eqs. 3-4).

* :func:`round_robin_placement` — the paper's improvement: logical rank L
  lives in supernode ``L mod s`` (s = number of supernodes), so steps whose
  logical distance is a multiple of s stay inside a supernode. Since RHD
  step distances are p/2, p/4, ..., 1, only the log(p/q) *smallest-message*
  steps cross supernodes (Eqs. 5-6).
"""

from __future__ import annotations

from repro.errors import CommunicatorError
from repro.simmpi.process import Placement


def _check(p: int, q: int) -> int:
    if p <= 0 or q <= 0:
        raise CommunicatorError("p and q must be positive")
    if p % q != 0:
        raise CommunicatorError(
            f"rank count p={p} must be a multiple of supernode size q={q}"
        )
    return p // q


def block_placement(p: int, q: int) -> Placement:
    """Adjacent numbering: logical rank L -> physical node L.

    Physical node n lives in supernode ``n // q``, so logical ranks are
    packed supernode by supernode.
    """
    _check(p, q)
    return Placement(physical=tuple(range(p)), name="block")


def round_robin_placement(p: int, q: int) -> Placement:
    """Round-robin numbering across supernodes.

    Logical rank L -> physical node ``(L mod s) * q + (L div s)`` where
    ``s = p // q``: logical ranks 0, s, 2s, ... fill supernode 0 in order,
    ranks 1, s+1, ... fill supernode 1, matching the paper's example
    ("nodes numbered 0,4,8,... belong to supernode 0").
    """
    s = _check(p, q)
    physical = tuple((L % s) * q + (L // s) for L in range(p))
    return Placement(physical=physical, name="round-robin")
