"""Simulated communicator: prices messages between logical ranks.

Collectives are lockstep algorithms, so the communicator accounts time per
*step*: all pairs in a step proceed concurrently, and the step lasts as long
as its slowest pair (cross-supernode pairs are slower). Reduction work
(``gamma`` per byte) is added where the algorithm performs it.

The reduction rate depends on where the sum runs (the paper's third
improvement): on the MPE, summation crawls through the 9.9 GB/s copy path;
offloaded to the four CPE clusters it streams at DMA bandwidth.
:func:`reduce_gamma` derives both rates from the hardware model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CollectiveTimeout
from repro.faults.injector import active as _faults, charge_transient
from repro.hw.clock import SimClock
from repro.hw.spec import SW_PARAMS
from repro.topology.cost_model import LinearCostModel
from repro.topology.fabric import TaihuLightFabric
from repro.metrics.registry import active as _metrics
from repro.simmpi.process import Placement
from repro.trace.scaling import active as _scaling
from repro.trace.tracer import Span, active as _tracer


def reduce_gamma(engine: str = "cpe") -> float:
    """Seconds-per-byte cost of the local reduction.

    ``"mpe"`` models the default MPI_Allreduce behaviour (sum on the
    management core: two reads + one write through the 9.9 GB/s path).
    ``"cpe"`` models swCaffe's improvement (sum on the four CPE clusters:
    the same 3x traffic against 4 x 28 GB/s of aggregate DMA bandwidth).
    """
    if engine == "mpe":
        return 3.0 / SW_PARAMS.mpe_copy_bw
    if engine == "cpe":
        return 3.0 / (SW_PARAMS.n_core_groups * SW_PARAMS.dma_peak_bw)
    raise ValueError(f"unknown reduce engine {engine!r} (use 'mpe' or 'cpe')")


@dataclass
class CollectiveResult:
    """Outcome accounting for one collective invocation."""

    time_s: float = 0.0
    steps: int = 0
    alpha_count: int = 0
    bytes_intra: float = 0.0  # per-rank bytes sent on intra-supernode links
    bytes_cross: float = 0.0  # per-rank bytes sent on cross-supernode links
    reduce_bytes: float = 0.0  # per-rank bytes locally reduced
    step_times: list[float] = field(default_factory=list)

    def add_step(self, dt: float) -> None:
        self.time_s += dt
        self.steps += 1
        self.step_times.append(dt)


class SimComm:
    """Communicator over a fabric with an explicit rank placement.

    Parameters
    ----------
    fabric:
        Physical topology (defines supernode boundaries).
    placement:
        Logical-rank -> physical-node mapping.
    cost:
        Linear alpha-beta-gamma model used for message pricing. When
        ``None``, the fabric's size-dependent network curve prices messages
        instead (with cross-supernode oversubscription).
    gamma:
        Local reduction seconds/byte; defaults to the CPE-cluster engine.
    """

    def __init__(
        self,
        fabric: TaihuLightFabric,
        placement: Placement,
        cost: LinearCostModel | None = None,
        gamma: float | None = None,
    ) -> None:
        if placement.p > fabric.n_nodes:
            raise ValueError(
                f"placement has {placement.p} ranks but fabric only "
                f"{fabric.n_nodes} nodes"
            )
        self.fabric = fabric
        self.placement = placement
        self.cost = cost
        if gamma is not None:
            self.gamma = gamma
        elif cost is not None:
            self.gamma = cost.gamma
        else:
            self.gamma = reduce_gamma("cpe")
        self.clock = SimClock()
        #: Logical ranks declared dead: any lockstep step touching one
        #: times out and raises :class:`CollectiveTimeout`. Plain state
        #: (settable by tests and the elastic trainer) so the check costs
        #: one empty-set test when nothing has crashed.
        self.failed_ranks: frozenset[int] = frozenset()
        #: Seconds a step waits on a dead partner before declaring it.
        self.timeout_s: float = 1e-3
        #: Representative span of the previous traced step; each lockstep
        #: round depends on the one before it (critical-path edges).
        self._prev_step_span: Span | None = None

    @property
    def p(self) -> int:
        """Number of ranks."""
        return self.placement.p

    def crosses_supernode(self, rank_a: int, rank_b: int) -> bool:
        """Whether the pair's message crosses a supernode boundary."""
        return not self.fabric.same_supernode(
            self.placement.node_of(rank_a), self.placement.node_of(rank_b)
        )

    def pair_time(self, rank_a: int, rank_b: int, nbytes: float) -> float:
        """Time for one (full-duplex) exchange of ``nbytes`` per direction."""
        cross = self.crosses_supernode(rank_a, rank_b)
        if self.cost is not None:
            return self.cost.ptp_time(nbytes, cross_supernode=cross)
        return self.fabric.ptp_time(
            self.placement.node_of(rank_a), self.placement.node_of(rank_b), nbytes
        )

    def reduce_time(self, nbytes: float) -> float:
        """Time to locally reduce ``nbytes`` of received data on one rank."""
        return self.gamma * float(nbytes)

    def account_step(
        self,
        result: CollectiveResult,
        pairs: list[tuple[int, int, float]],
        *,
        reduce_bytes: float = 0.0,
    ) -> None:
        """Charge one lockstep collective step.

        ``pairs`` lists ``(rank_a, rank_b, nbytes)`` concurrent exchanges;
        the step costs the max pair time plus the (concurrent, per-rank)
        reduction of ``reduce_bytes``. Traffic statistics accumulate the
        per-rank maximum, matching the per-rank cost equations in the paper.
        """
        if not pairs:
            return
        if self.failed_ranks:
            dead = frozenset(
                r for a, b, _ in pairs for r in (a, b) if r in self.failed_ranks
            )
            if dead:
                self._timeout(dead)
        fi = _faults()
        step_time = 0.0
        base_step_time = 0.0
        any_cross = False
        max_bytes = 0.0
        for a, b, nbytes in pairs:
            t = self.pair_time(a, b, nbytes)
            base_step_time = max(base_step_time, t)
            if fi.enabled:
                # Straggler slowdown: the step lasts as long as its
                # slowest (possibly degraded) pair.
                t *= fi.comm_scale(a, b)
            step_time = max(step_time, t)
            cross = self.crosses_supernode(a, b)
            any_cross = any_cross or cross
            max_bytes = max(max_bytes, nbytes)
        slow_s = step_time - base_step_time
        if any_cross:
            result.bytes_cross += max_bytes
        else:
            result.bytes_intra += max_bytes
        result.alpha_count += 1
        if reduce_bytes > 0:
            step_time += self.reduce_time(reduce_bytes)
            result.reduce_bytes += reduce_bytes
        sc = _scaling()
        if sc.enabled:
            # What-if validation: one multiply on the finished step time,
            # the same operation the critical-path projection applies.
            step_time *= sc.factor("collective")
        tr = _tracer()
        if tr.enabled:
            # One lockstep round: every participating rank is busy for the
            # full step on its own collective track. Ranks that sat out the
            # previous round still wait for it (lockstep), so every span
            # depends on the previous step's representative.
            step_idx = result.steps
            prev = self._prev_step_span
            first: Span | None = None
            for a, b, nbytes in pairs:
                for rank, partner in ((a, b), (b, a)):
                    span = tr.emit(
                        f"step{step_idx}", "collective_step",
                        track=f"rank{rank}/collective",
                        start=self.clock.now, dur=step_time,
                        args={
                            "partner": partner,
                            "bytes": nbytes,
                            "cross_supernode": self.crosses_supernode(a, b),
                            "reduce_bytes": reduce_bytes,
                        },
                    )
                    if first is None:
                        first = span
                    if prev is not None:
                        tr.edge(prev, span)
            if first is not None:
                self._prev_step_span = first
        mx = _metrics()
        if mx.enabled:
            mx.count("comm.steps", 1)
            mx.count("comm.bytes", max_bytes, link="cross" if any_cross else "intra")
            if reduce_bytes > 0:
                mx.count("comm.reduce_bytes", reduce_bytes)
        result.add_step(step_time)
        self.clock.advance(step_time, category="comm")
        if fi.enabled:
            if slow_s > 0:
                fi.note_slow()
                if mx.enabled:
                    mx.count("faults.slow_s", slow_s)
            # Flaky-link retry: the whole lockstep step is repeated, time
            # charged to the clock's "fault" category (the re-exchange
            # carries identical data, so results stay bit-exact).
            charge_transient("comm", self.clock, step_time, track="comm")

    def _timeout(self, dead: frozenset[int]) -> None:
        """Wait out the timeout on ``dead`` ranks, then fail the collective."""
        self.clock.advance(self.timeout_s, category="fault")
        tr = _tracer()
        if tr.enabled:
            tr.emit(
                "collective timeout", "fault_retry", track="comm",
                start=self.clock.now - self.timeout_s, dur=self.timeout_s,
                args={"ranks": sorted(dead)},
            )
            tr.instant_event(
                "rank_crash", "fault_inject", track="comm",
                start=self.clock.now, args={"ranks": sorted(dead)},
            )
        mx = _metrics()
        if mx.enabled:
            mx.count("faults.timeouts", 1)
            mx.count("faults.timeout_s", self.timeout_s)
        raise CollectiveTimeout(
            f"collective step timed out on crashed rank(s) {sorted(dead)}",
            ranks=dead,
        )
