"""Simulated MPI for the TaihuLight fabric.

A tiny message-passing model sufficient to reproduce the paper's parameter
synchronization study (Sec. V-A): simulated ranks hold real NumPy buffers,
collectives move the real data (so reductions are verified bit-for-bit) and
charge simulated time from the topology cost models.

The collective family:

* :func:`~repro.simmpi.collectives.ring.ring_allreduce` — the
  bandwidth-optimal ring (rejected by the paper for its ``p * alpha``
  latency term);
* :func:`~repro.simmpi.collectives.binomial.binomial_allreduce` — naive
  reduce + broadcast trees;
* :func:`~repro.simmpi.collectives.rhd.rhd_allreduce` — MPICH's recursive
  halving/doubling (Rabenseifner), the paper's baseline;
* :func:`~repro.simmpi.collectives.topo_aware.topo_aware_allreduce` — the
  paper's contribution: RHD over a round-robin logical-to-physical rank
  renumbering that keeps heavy steps inside supernodes.
"""

from repro.simmpi.process import Placement
from repro.simmpi.comm import SimComm, CollectiveResult
from repro.simmpi.nonblocking import IAllreduceQueue, PendingCollective
from repro.simmpi.p2p import P2PResult, P2PTransport, PendingTransfer, p2p_shift
from repro.simmpi.reorder import block_placement, round_robin_placement
from repro.simmpi.collectives import (
    ring_allreduce,
    binomial_allreduce,
    rhd_allreduce,
    topo_aware_allreduce,
)
from repro.simmpi.collectives.basic import (
    allgather,
    broadcast,
    gather,
    reduce,
    reduce_scatter,
    scatter,
)
from repro.simmpi.collectives.tuned import tuned_allreduce

__all__ = [
    "allgather",
    "broadcast",
    "gather",
    "reduce",
    "reduce_scatter",
    "scatter",
    "tuned_allreduce",
    "Placement",
    "SimComm",
    "CollectiveResult",
    "IAllreduceQueue",
    "PendingCollective",
    "P2PResult",
    "P2PTransport",
    "PendingTransfer",
    "p2p_shift",
    "block_placement",
    "round_robin_placement",
    "ring_allreduce",
    "binomial_allreduce",
    "rhd_allreduce",
    "topo_aware_allreduce",
]
