"""Recursive halving/doubling allreduce (Rabenseifner / MPICH).

The paper's baseline (Sec. V-A): an allgather phase after a reduce-scatter
phase, both log(p)-deep:

* **Reduce-scatter, recursive halving** — step 1 exchanges n/2 bytes with
  the rank a logical distance p/2 away, step 2 exchanges n/4 at distance
  p/4, and so on: traffic *shrinks* as the algorithm proceeds.
* **Allgather, recursive doubling** — the mirror image: distances 1, 2, 4,
  ... with traffic *growing* n/p, 2n/p, ....

Whether a step's partners sit in the same supernode is decided entirely by
the communicator's :class:`~repro.simmpi.process.Placement`; running this
exact schedule over the round-robin placement *is* the paper's improved
algorithm (see :mod:`repro.simmpi.collectives.topo_aware`).

Non-power-of-two rank counts use the standard MPICH fold: the first
``2 * (p - 2^k)`` ranks pre-combine pairwise so a power-of-two subset runs
the core algorithm, and the folded ranks receive the result afterwards.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.registry import active as _metrics
from repro.simmpi.comm import CollectiveResult, SimComm
from repro.simmpi.collectives.reduce_ops import block_offsets, check_buffers, finalize


def _largest_pow2_leq(p: int) -> int:
    k = 1
    while k * 2 <= p:
        k *= 2
    return k


def rhd_allreduce(
    comm: SimComm, buffers: list[np.ndarray], *, average: bool = False
) -> CollectiveResult:
    """In-place recursive halving/doubling allreduce."""
    with _metrics().labelled(collective="rhd"):
        return _rhd_allreduce(comm, buffers, average=average)


def _rhd_allreduce(
    comm: SimComm, buffers: list[np.ndarray], *, average: bool = False
) -> CollectiveResult:
    p = comm.p
    if len(buffers) != p:
        raise ValueError(f"expected {p} buffers, got {len(buffers)}")
    n, itemsize = check_buffers(buffers)
    result = CollectiveResult()
    work = [np.array(b, dtype=np.float64, copy=True).ravel() for b in buffers]
    if p == 1:
        finalize(buffers, work, average)
        return result
    nbytes_full = float(n * itemsize)

    # --- fold down to a power of two -------------------------------------
    k = _largest_pow2_leq(p)
    r = p - k
    if r > 0:
        pairs = [(2 * i, 2 * i + 1, nbytes_full) for i in range(r)]
        for i in range(r):
            work[2 * i] = work[2 * i] + work[2 * i + 1]
        comm.account_step(result, pairs, reduce_bytes=nbytes_full)
        active = [2 * i for i in range(r)] + list(range(2 * r, p))
    else:
        active = list(range(p))

    # --- reduce-scatter: recursive halving --------------------------------
    off = block_offsets(n, k)

    def span_bytes(lo: int, hi: int) -> float:
        return float((off[hi] - off[lo]) * itemsize)

    lo = [0] * k
    hi = [k] * k
    d = k // 2
    while d >= 1:
        pairs = []
        reduces: list[tuple[int, int, int, np.ndarray]] = []  # (v, lo, hi, data)
        max_msg = 0.0
        max_reduce = 0.0
        for v in range(k):
            w = v ^ d
            if w < v:
                continue
            # v and w share [lo, hi); v (bit clear) keeps the lower half.
            assert lo[v] == lo[w] and hi[v] == hi[w]
            mid = (lo[v] + hi[v]) // 2
            send_v = span_bytes(mid, hi[v])  # v's upper half goes to w
            send_w = span_bytes(lo[v], mid)  # w's lower half goes to v
            msg = max(send_v, send_w)
            pairs.append((active[v], active[w], msg))
            max_msg = max(max_msg, msg)
            # Data exchanged, then each side reduces its kept half.
            v_keep = slice(off[lo[v]], off[mid])
            w_keep = slice(off[mid], off[hi[v]])
            reduces.append((v, lo[v], mid, work[active[w]][v_keep].copy()))
            reduces.append((w, mid, hi[v], work[active[v]][w_keep].copy()))
            max_reduce = max(max_reduce, send_v, send_w)
        for v, new_lo, new_hi, data in reduces:
            work[active[v]][off[new_lo] : off[new_hi]] += data
            lo[v], hi[v] = new_lo, new_hi
        comm.account_step(result, pairs, reduce_bytes=max_reduce)
        d //= 2

    # --- allgather: recursive doubling ------------------------------------
    d = 1
    while d < k:
        pairs = []
        copies: list[tuple[int, int, int, np.ndarray]] = []
        for v in range(k):
            w = v ^ d
            if w < v:
                continue
            send_v = span_bytes(lo[v], hi[v])
            send_w = span_bytes(lo[w], hi[w])
            pairs.append((active[v], active[w], max(send_v, send_w)))
            copies.append((v, lo[w], hi[w], work[active[w]][off[lo[w]] : off[hi[w]]].copy()))
            copies.append((w, lo[v], hi[v], work[active[v]][off[lo[v]] : off[hi[v]]].copy()))
        merged: dict[int, tuple[int, int]] = {}
        for v, got_lo, got_hi, data in copies:
            work[active[v]][off[got_lo] : off[got_hi]] = data
            new_lo = min(lo[v], got_lo)
            new_hi = max(hi[v], got_hi)
            merged[v] = (new_lo, new_hi)
        for v, (nlo, nhi) in merged.items():
            lo[v], hi[v] = nlo, nhi
        comm.account_step(result, pairs)
        d *= 2

    # --- unfold ------------------------------------------------------------
    if r > 0:
        pairs = [(2 * i, 2 * i + 1, nbytes_full) for i in range(r)]
        for i in range(r):
            work[2 * i + 1] = work[2 * i].copy()
        comm.account_step(result, pairs)

    finalize(buffers, work, average)
    return result
