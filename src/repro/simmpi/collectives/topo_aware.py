"""swCaffe's topology-aware allreduce (paper Sec. V-A, Fig. 7).

The algorithm *is* recursive halving/doubling — the improvement is purely
in the logical-to-physical rank numbering. Round-robin renumbering across
supernodes makes every step whose logical distance is a multiple of the
supernode count stay inside a supernode, so the heavy early halving steps
(and heavy late doubling steps) ride the full-bandwidth bottom network,
and only the log(p/q) small-message steps cross the over-subscribed
central switch. This reduces the beta2 coefficient from ``p - q`` to
``p/q - 1`` (Eqs. 3/4 -> 5/6).
"""

from __future__ import annotations

import numpy as np

from repro.metrics.registry import active as _metrics
from repro.simmpi.comm import CollectiveResult, SimComm
from repro.simmpi.collectives.rhd import _rhd_allreduce
from repro.simmpi.reorder import round_robin_placement
from repro.topology.fabric import TaihuLightFabric
from repro.topology.cost_model import LinearCostModel


def make_topo_aware_comm(
    fabric: TaihuLightFabric,
    p: int,
    cost: LinearCostModel | None = None,
    gamma: float | None = None,
) -> SimComm:
    """Build a communicator with the round-robin renumbering applied.

    When ``p`` does not span multiple full supernodes (p <= q, or p not a
    multiple of q), the renumbering degenerates gracefully: ranks within a
    single supernode need no reordering, so the effective supernode size is
    clamped to ``p``.
    """
    q = min(fabric.nodes_per_supernode, p)
    if p % q != 0:
        # Partial trailing supernode: fall back to packing by supernode of
        # size gcd so the mapping stays a permutation.
        q = 1
    placement = round_robin_placement(p, q)
    return SimComm(fabric, placement, cost=cost, gamma=gamma)


def topo_aware_allreduce(
    comm: SimComm, buffers: list[np.ndarray], *, average: bool = False
) -> CollectiveResult:
    """RHD allreduce over a round-robin placement.

    If ``comm`` already carries a round-robin placement it is used as-is;
    otherwise a renumbered clone (same fabric, same cost model) is created,
    matching how swCaffe installs its communicator once at startup. The
    clone's simulated time is folded back into ``comm.clock``.
    """
    with _metrics().labelled(collective="topo_aware"):
        if comm.placement.name == "round-robin":
            return _rhd_allreduce(comm, buffers, average=average)
        renumbered = make_topo_aware_comm(
            comm.fabric, comm.p, cost=comm.cost, gamma=comm.gamma
        )
        result = _rhd_allreduce(renumbered, buffers, average=average)
        comm.clock.advance(renumbered.clock.now, category="comm")
        return result
