"""Basic MPI collectives: the building blocks of the allreduce family.

Broadcast, reduce, scatter, gather, allgather and reduce-scatter as
standalone simulated collectives. Rabenseifner's allreduce is literally
``reduce_scatter`` + ``allgather``; exposing the pieces makes the library a
complete simulated-MPI substrate and lets tests cross-validate the fused
algorithms against their compositions.

All functions share the conventions of the allreduce family: ``buffers``
is a per-rank list of NumPy arrays, data actually moves, and simulated
time accrues on the communicator per lockstep step.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CommunicatorError
from repro.simmpi.comm import CollectiveResult, SimComm
from repro.simmpi.collectives.reduce_ops import block_offsets, check_buffers


def broadcast(comm: SimComm, buffers: list[np.ndarray], root: int = 0) -> CollectiveResult:
    """Binomial-tree broadcast of ``buffers[root]`` to every rank."""
    p = comm.p
    _validate(comm, buffers, root)
    n, itemsize = check_buffers(buffers)
    nbytes = float(n * itemsize)
    result = CollectiveResult()
    # Relabel so the root is virtual rank 0.
    actual = lambda v: (v + root) % p
    d = 1
    while d * 2 < p:
        d *= 2
    # Find the highest power of two <= p-1 steps: standard top-down tree.
    have = {0}
    while d >= 1:
        pairs = []
        moves = []
        for v in sorted(have):
            w = v + d
            if w < p and w not in have:
                pairs.append((actual(v), actual(w), nbytes))
                moves.append(w)
        for w in moves:
            np.copyto(buffers[actual(w)], buffers[root])
            have.add(w)
        if pairs:
            comm.account_step(result, pairs)
        d //= 2
    return result


def reduce(
    comm: SimComm, buffers: list[np.ndarray], root: int = 0, *, average: bool = False
) -> CollectiveResult:
    """Binomial-tree reduction into ``buffers[root]`` (others unchanged)."""
    p = comm.p
    _validate(comm, buffers, root)
    n, itemsize = check_buffers(buffers)
    nbytes = float(n * itemsize)
    result = CollectiveResult()
    virtual = lambda r: (r - root) % p
    actual = lambda v: (v + root) % p
    acc = {r: buffers[r].astype(np.float64, copy=True) for r in range(p)}
    d = 1
    while d < p:
        pairs = []
        moves = []
        for v in range(p):
            if v % (2 * d) == d:
                dst = v - d
                pairs.append((actual(v), actual(dst), nbytes))
                moves.append((actual(dst), actual(v)))
        for dst, src in moves:
            acc[dst] = acc[dst] + acc[src]
        if pairs:
            comm.account_step(result, pairs, reduce_bytes=nbytes)
        d *= 2
    out = acc[root] / p if average else acc[root]
    np.copyto(buffers[root], out.astype(buffers[root].dtype, copy=False))
    return result


def scatter(comm: SimComm, sendbuf: np.ndarray, recv: list[np.ndarray], root: int = 0) -> CollectiveResult:
    """Root sends the i-th equal chunk of ``sendbuf`` to rank i.

    Linear scatter (one message per non-root rank), as small MPI
    implementations do; chunk boundaries follow MPI's near-equal split.
    """
    p = comm.p
    if not 0 <= root < p:
        raise CommunicatorError(f"root {root} out of range")
    if len(recv) != p:
        raise CommunicatorError(f"expected {p} recv buffers")
    flat = np.ascontiguousarray(sendbuf).ravel()
    off = block_offsets(flat.size, p)
    result = CollectiveResult()
    for r in range(p):
        chunk = flat[off[r] : off[r + 1]]
        if recv[r].size != chunk.size:
            raise CommunicatorError(
                f"rank {r} recv buffer has {recv[r].size} elements, chunk has {chunk.size}"
            )
        np.copyto(recv[r].reshape(-1), chunk.astype(recv[r].dtype, copy=False))
        if r != root:
            comm.account_step(result, [(root, r, float(chunk.nbytes))])
    return result


def gather(comm: SimComm, send: list[np.ndarray], recvbuf: np.ndarray, root: int = 0) -> CollectiveResult:
    """Rank i's buffer lands in the i-th slot of ``recvbuf`` at the root."""
    p = comm.p
    if not 0 <= root < p:
        raise CommunicatorError(f"root {root} out of range")
    if len(send) != p:
        raise CommunicatorError(f"expected {p} send buffers")
    total = sum(s.size for s in send)
    if recvbuf.size != total:
        raise CommunicatorError(
            f"recvbuf has {recvbuf.size} elements, senders provide {total}"
        )
    result = CollectiveResult()
    flat = recvbuf.reshape(-1)
    pos = 0
    for r in range(p):
        chunk = send[r].reshape(-1)
        flat[pos : pos + chunk.size] = chunk.astype(recvbuf.dtype, copy=False)
        pos += chunk.size
        if r != root:
            comm.account_step(result, [(r, root, float(chunk.nbytes))])
    return result


def allgather(comm: SimComm, buffers: list[np.ndarray], chunks: list[np.ndarray]) -> CollectiveResult:
    """Recursive-doubling allgather: rank i contributes ``chunks[i]``.

    ``buffers[r]`` receives the concatenation of all chunks (equal sizes
    required, power-of-two rank counts use pure doubling; others fall back
    to a ring).
    """
    p = comm.p
    if len(buffers) != p or len(chunks) != p:
        raise CommunicatorError(f"expected {p} buffers and {p} chunks")
    sizes = {c.size for c in chunks}
    if len(sizes) != 1:
        raise CommunicatorError("allgather requires equal chunk sizes")
    size = sizes.pop()
    itemsize = chunks[0].itemsize
    for b in buffers:
        if b.size != size * p:
            raise CommunicatorError("output buffers must hold p chunks")
    result = CollectiveResult()
    # State: each rank holds a set of (owner) chunks, kept contiguous by
    # virtual index.
    held: list[dict[int, np.ndarray]] = [
        {r: chunks[r].reshape(-1).astype(np.float64)} for r in range(p)
    ]
    if p & (p - 1) == 0:
        d = 1
        while d < p:
            pairs = []
            exchanges = []
            for v in range(p):
                w = v ^ d
                if w < v:
                    continue
                bytes_v = sum(c.nbytes for c in held[v].values())
                bytes_w = sum(c.nbytes for c in held[w].values())
                pairs.append((v, w, float(max(bytes_v, bytes_w))))
                exchanges.append((v, w))
            snapshot = [dict(h) for h in held]
            for v, w in exchanges:
                held[v].update(snapshot[w])
                held[w].update(snapshot[v])
            comm.account_step(result, pairs)
            d *= 2
    else:
        # Ring fallback: p-1 steps, each forwarding one chunk.
        for t in range(p - 1):
            pairs = []
            moves = []
            for r in range(p):
                src_chunk = (r - t) % p
                dst = (r + 1) % p
                pairs.append((r, dst, float(size * itemsize)))
                moves.append((dst, src_chunk, held[r][src_chunk]))
            for dst, idx, data in moves:
                held[dst][idx] = data
            comm.account_step(result, pairs)
    for r in range(p):
        out = np.concatenate([held[r][i] for i in range(p)])
        np.copyto(buffers[r].reshape(-1), out.astype(buffers[r].dtype, copy=False))
    return result


def reduce_scatter(comm: SimComm, buffers: list[np.ndarray], outputs: list[np.ndarray]) -> CollectiveResult:
    """Recursive-halving reduce-scatter.

    After the call, ``outputs[r]`` holds the r-th block of the elementwise
    sum of all input buffers. Power-of-two rank counts only (the fused
    allreduce handles the general case via folding).
    """
    p = comm.p
    if p & (p - 1) != 0:
        raise CommunicatorError("reduce_scatter requires a power-of-two rank count")
    if len(buffers) != p or len(outputs) != p:
        raise CommunicatorError(f"expected {p} buffers and {p} outputs")
    n, itemsize = check_buffers(buffers)
    off = block_offsets(n, p)
    for r in range(p):
        if outputs[r].size != off[r + 1] - off[r]:
            raise CommunicatorError(
                f"rank {r} output must hold {off[r + 1] - off[r]} elements"
            )
    result = CollectiveResult()
    work = [b.astype(np.float64, copy=True).ravel() for b in buffers]
    lo = [0] * p
    hi = [p] * p
    d = p // 2
    while d >= 1:
        pairs = []
        reduces = []
        max_reduce = 0.0
        for v in range(p):
            w = v ^ d
            if w < v:
                continue
            mid = (lo[v] + hi[v]) // 2
            send_v = float((off[hi[v]] - off[mid]) * itemsize)
            send_w = float((off[mid] - off[lo[v]]) * itemsize)
            pairs.append((v, w, max(send_v, send_w)))
            reduces.append((v, lo[v], mid, work[w][off[lo[v]] : off[mid]].copy()))
            reduces.append((w, mid, hi[v], work[v][off[mid] : off[hi[v]]].copy()))
            max_reduce = max(max_reduce, send_v, send_w)
        for v, new_lo, new_hi, data in reduces:
            work[v][off[new_lo] : off[new_hi]] += data
            lo[v], hi[v] = new_lo, new_hi
        comm.account_step(result, pairs, reduce_bytes=max_reduce)
        d //= 2
    for r in range(p):
        np.copyto(
            outputs[r].reshape(-1),
            work[r][off[r] : off[r + 1]].astype(outputs[r].dtype, copy=False),
        )
    return result


def _validate(comm: SimComm, buffers: list[np.ndarray], root: int) -> None:
    if len(buffers) != comm.p:
        raise CommunicatorError(f"expected {comm.p} buffers, got {len(buffers)}")
    if not 0 <= root < comm.p:
        raise CommunicatorError(f"root {root} out of range [0, {comm.p})")
