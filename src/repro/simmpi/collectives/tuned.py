"""Size-tuned allreduce dispatch (the MPICH policy the paper builds on).

Thakur et al.'s MPICH — the baseline swCaffe improves — switches allreduce
algorithms by message size: latency-bound small messages use a
recursive-doubling/binomial scheme (few steps, whole vector), large
messages use Rabenseifner's reduce-scatter + allgather (minimum bandwidth
term). swCaffe's contribution composes with either: the round-robin
renumbering applies to whatever schedule runs.

:func:`tuned_allreduce` implements the dispatcher over this package's
executed collectives; the crossover threshold follows the alpha/beta
balance of the communicator's cost model.
"""

from __future__ import annotations

import numpy as np

from repro.simmpi.comm import CollectiveResult, SimComm
from repro.simmpi.collectives.binomial import binomial_allreduce
from repro.simmpi.collectives.rhd import rhd_allreduce

#: Fallback threshold (bytes) when the communicator has no linear cost
#: model to derive one from — MPICH's classic default is 2 KB.
DEFAULT_THRESHOLD = 2048.0


def crossover_bytes(comm: SimComm) -> float:
    """Message size where RHD starts beating the binomial tree.

    Analytically (flat beta, power-of-two p): binomial costs
    ``2 log(p) (alpha + n beta)``; RHD costs
    ``2 log(p) alpha + 2 n beta (p-1)/p``. RHD wins when
    ``n beta (2 log p - 2 (p-1)/p) > 0`` — i.e. for every n when p > 2 —
    *except* that RHD's extra per-step bookkeeping and its reduction term
    matter at tiny n. With the alpha/beta model the practical crossover is
    where the bandwidth saving exceeds one extra latency:
    ``n* = alpha / (beta1 * (2 log p - 2 (p-1)/p))`` (clamped to the
    MPICH-style default when no model is attached).
    """
    if comm.cost is None:
        return DEFAULT_THRESHOLD
    p = comm.p
    if p <= 2:
        return float("inf")  # schedules coincide; prefer the simpler tree
    logp = np.log2(p)
    gain_per_byte = comm.cost.beta1 * (2 * logp - 2 * (p - 1) / p)
    if gain_per_byte <= 0:
        return float("inf")
    return comm.cost.alpha / gain_per_byte


def tuned_allreduce(
    comm: SimComm, buffers: list[np.ndarray], *, average: bool = False
) -> CollectiveResult:
    """Dispatch to binomial (small) or RHD (large) by message size."""
    nbytes = buffers[0].size * buffers[0].itemsize if buffers else 0
    if nbytes <= crossover_bytes(comm):
        return binomial_allreduce(comm, buffers, average=average)
    return rhd_allreduce(comm, buffers, average=average)
