"""Binomial-tree allreduce: reduce to root, then broadcast.

The simplest log-depth scheme. Its latency term (2 log p messages) matches
recursive halving/doubling, but every message carries the *full* vector, so
its bandwidth term is ~log p times worse — useful as a small-message
reference and as a correctness cross-check for the fancier algorithms.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.registry import active as _metrics
from repro.simmpi.comm import CollectiveResult, SimComm
from repro.simmpi.collectives.reduce_ops import check_buffers, finalize


def binomial_allreduce(
    comm: SimComm, buffers: list[np.ndarray], *, average: bool = False
) -> CollectiveResult:
    """In-place binomial-tree allreduce (works for any rank count)."""
    with _metrics().labelled(collective="binomial"):
        return _binomial_allreduce(comm, buffers, average=average)


def _binomial_allreduce(
    comm: SimComm, buffers: list[np.ndarray], *, average: bool = False
) -> CollectiveResult:
    p = comm.p
    if len(buffers) != p:
        raise ValueError(f"expected {p} buffers, got {len(buffers)}")
    n, itemsize = check_buffers(buffers)
    result = CollectiveResult()
    work = [np.array(b, dtype=np.float64, copy=True).ravel() for b in buffers]
    nbytes = float(n * itemsize)

    # Reduce phase: at distance d, ranks r with r % 2d == d send to r - d.
    d = 1
    while d < p:
        pairs = []
        moves: list[tuple[int, np.ndarray]] = []
        for r in range(p):
            if r % (2 * d) == d:
                dst = r - d
                pairs.append((r, dst, nbytes))
                moves.append((dst, work[r]))
        for dst, data in moves:
            work[dst] = work[dst] + data
        if pairs:
            comm.account_step(result, pairs, reduce_bytes=nbytes)
        d *= 2

    # Broadcast phase: mirror of the reduce tree, largest distance first.
    d = 1
    while d * 2 < p:
        d *= 2
    while d >= 1:
        pairs = []
        moves = []
        for r in range(p):
            if r % (2 * d) == 0 and r + d < p:
                pairs.append((r, r + d, nbytes))
                moves.append((r + d, work[r]))
        for dst, data in moves:
            work[dst] = data.copy()
        if pairs:
            comm.account_step(result, pairs)
        d //= 2

    finalize(buffers, work, average)
    return result
