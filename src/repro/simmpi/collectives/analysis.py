"""Closed-form allreduce cost models (paper Eqs. 2-6).

These are the analytic expressions the paper derives with the Thakur et al.
alpha-beta-gamma model; the simulated collectives are property-tested to
match them exactly when run over the same :class:`LinearCostModel`, which is
the strongest evidence the simulation implements the algorithms the paper
analyzes.

All formulas assume ``p`` a power of two and ``q | p`` (clamped to
``q = p`` when the job fits in one supernode, which makes the original and
improved schemes coincide, as they should).
"""

from __future__ import annotations

import math

from repro.topology.cost_model import LinearCostModel


def _check(p: int, q: int) -> int:
    if p < 1 or (p & (p - 1)) != 0:
        raise ValueError(f"p must be a power of two, got {p}")
    q = min(q, p)
    if p % q != 0:
        raise ValueError(f"q={q} must divide p={p}")
    return q


def original_allreduce_cost(nbytes: float, p: int, q: int, model: LinearCostModel) -> float:
    """Eq. 2 with Eqs. 3-4: RHD allreduce under adjacent (block) numbering.

    ``t = 2 log(p) alpha + 2 [(q-1) beta1 + (p-q) beta2] n/p
    + gamma n (p-1)/p``.
    """
    q = _check(p, q)
    n = float(nbytes)
    if p == 1:
        return 0.0
    logp = math.log2(p)
    comm = 2 * ((q - 1) * model.beta1 + (p - q) * model.beta2) * n / p
    return 2 * logp * model.alpha + comm + model.gamma * n * (p - 1) / p


def improved_allreduce_cost(nbytes: float, p: int, q: int, model: LinearCostModel) -> float:
    """Eq. 2 with Eqs. 5-6: RHD allreduce under round-robin numbering.

    ``t = 2 log(p) alpha + 2 [(p - p/q) beta1 + (p/q - 1) beta2] n/p
    + gamma n (p-1)/p``.
    """
    q = _check(p, q)
    n = float(nbytes)
    if p == 1:
        return 0.0
    logp = math.log2(p)
    s = p // q
    comm = 2 * ((p - s) * model.beta1 + (s - 1) * model.beta2) * n / p
    return 2 * logp * model.alpha + comm + model.gamma * n * (p - 1) / p


def stepwise_rhd_cost(
    nbytes: float,
    p: int,
    q: int,
    network,
    gamma: float,
    placement: str = "round-robin",
) -> float:
    """RHD allreduce priced step by step with a size-dependent network curve.

    The linear closed forms above assume one beta per link class; real
    messages shrink geometrically through the halving phase, and the
    achieved bandwidth depends on the message size (Fig. 6). This walks the
    2 log(p) steps, pricing each with ``network.ptp_time(step_bytes,
    oversubscribed=...)`` where oversubscription is decided by the step's
    logical distance and the placement scheme — the pricing used by the
    Fig. 10/11 scaling study, where per-rank chunks are only hundreds of
    kilobytes.

    Parameters
    ----------
    network:
        A :class:`~repro.topology.cost_model.NetworkModel`.
    gamma:
        Local reduction seconds/byte.
    placement:
        ``"round-robin"`` (the paper's scheme: distances that are multiples
        of the supernode count stay local) or ``"block"`` (the MPICH
        default: distances >= q cross supernodes).
    """
    if p < 1 or (p & (p - 1)) != 0:
        raise ValueError(f"p must be a power of two, got {p}")
    if placement not in ("round-robin", "block"):
        raise ValueError(f"unknown placement {placement!r}")
    q = min(q, p)
    if p % q != 0:
        raise ValueError(f"q={q} must divide p={p}")
    if p == 1:
        return 0.0
    n = float(nbytes)
    s = p // q
    total = 0.0
    d = p // 2
    size = n / 2.0
    while d >= 1:
        if placement == "round-robin":
            cross = s > 1 and d % s != 0
        else:
            cross = d >= q
        step = network.ptp_time(size, oversubscribed=cross)
        # Reduce-scatter step also reduces the received half; the mirror
        # allgather step moves the same bytes without reduction.
        total += (step + gamma * size) + step
        d //= 2
        size /= 2.0
    return total


def ring_allreduce_cost(nbytes: float, p: int, q: int, model: LinearCostModel) -> float:
    """Ring allreduce cost under block numbering.

    2(p-1) steps of n/p bytes. A ring laid out over block numbering crosses
    a supernode boundary on ``s = p/q`` of its links; since every step's
    slowest link paces the whole ring, every step pays beta2 whenever the
    ring spans more than one supernode.
    """
    q = _check(p, q)
    n = float(nbytes)
    if p == 1:
        return 0.0
    beta = model.beta2 if p > q else model.beta1
    steps = 2 * (p - 1)
    return (
        steps * model.alpha
        + steps * beta * n / p
        + model.gamma * n * (p - 1) / p
    )
