"""Shared helpers for the collective implementations."""

from __future__ import annotations

import numpy as np

from repro.errors import CommunicatorError


def check_buffers(buffers: list[np.ndarray]) -> tuple[int, int]:
    """Validate an allreduce input: same shape/dtype everywhere.

    Returns ``(n_elements, itemsize)``.
    """
    if not buffers:
        raise CommunicatorError("allreduce requires at least one rank buffer")
    first = buffers[0]
    for i, b in enumerate(buffers[1:], start=1):
        if b.shape != first.shape:
            raise CommunicatorError(
                f"rank {i} buffer shape {b.shape} != rank 0 shape {first.shape}"
            )
        if b.dtype != first.dtype:
            raise CommunicatorError(
                f"rank {i} buffer dtype {b.dtype} != rank 0 dtype {first.dtype}"
            )
    return first.size, first.itemsize


def block_offsets(n: int, k: int) -> np.ndarray:
    """MPI-style near-equal split of ``n`` elements into ``k`` blocks.

    Returns ``k + 1`` offsets; block ``i`` is ``[off[i], off[i+1])``. The
    first ``n % k`` blocks get one extra element, as in MPICH.
    """
    base, extra = divmod(n, k)
    sizes = np.full(k, base, dtype=np.int64)
    sizes[:extra] += 1
    return np.concatenate([[0], np.cumsum(sizes)])


def finalize(
    buffers: list[np.ndarray], reduced: list[np.ndarray], average: bool
) -> None:
    """Write per-rank reduced vectors back into the caller's buffers."""
    p = len(buffers)
    for dst, src in zip(buffers, reduced):
        out = src.reshape(dst.shape)
        if average:
            out = out / p
        np.copyto(dst, out.astype(dst.dtype, copy=False))
