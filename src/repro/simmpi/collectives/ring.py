"""Ring allreduce (Patarasuk & Yuan): bandwidth-optimal, latency-heavy.

The paper's reference point for why rings lose on TaihuLight: 2(p-1) steps
give a ``p * alpha`` latency term, painful on a high-latency network
(Sec. V-A: "the popular ring-based algorithms ... are not our best
candidates").
"""

from __future__ import annotations

import numpy as np

from repro.metrics.registry import active as _metrics
from repro.simmpi.comm import CollectiveResult, SimComm
from repro.simmpi.collectives.reduce_ops import block_offsets, check_buffers, finalize


def ring_allreduce(
    comm: SimComm, buffers: list[np.ndarray], *, average: bool = False
) -> CollectiveResult:
    """In-place ring allreduce across ``comm.p`` ranks.

    Phase 1 (reduce-scatter): p-1 steps; in step ``t`` rank ``r`` sends
    chunk ``(r - t) mod p`` to rank ``r+1`` and reduces the chunk arriving
    from ``r-1``. Phase 2 (allgather): p-1 more steps circulating the
    finished chunks. Every step moves ~n/p bytes per rank.
    """
    with _metrics().labelled(collective="ring"):
        return _ring_allreduce(comm, buffers, average=average)


def _ring_allreduce(
    comm: SimComm, buffers: list[np.ndarray], *, average: bool = False
) -> CollectiveResult:
    p = comm.p
    if len(buffers) != p:
        raise ValueError(f"expected {p} buffers, got {len(buffers)}")
    n, itemsize = check_buffers(buffers)
    result = CollectiveResult()
    work = [np.array(b, dtype=np.float64, copy=True).ravel() for b in buffers]
    if p == 1:
        finalize(buffers, work, average)
        return result
    off = block_offsets(n, p)

    def chunk(rank_owner: int) -> slice:
        return slice(off[rank_owner], off[rank_owner + 1])

    # Reduce-scatter around the ring.
    for t in range(p - 1):
        pairs = []
        moves_rs: list[tuple[int, int, np.ndarray]] = []  # (dst, chunk_id, data)
        for r in range(p):
            send_chunk = (r - t) % p
            nbytes = (off[send_chunk + 1] - off[send_chunk]) * itemsize
            dst = (r + 1) % p
            pairs.append((r, dst, float(nbytes)))
            moves_rs.append((dst, send_chunk, work[r][chunk(send_chunk)].copy()))
        max_chunk_bytes = max(nb for _, _, nb in pairs)
        # All ranks reduce their received chunk concurrently.
        for dst, c, data in moves_rs:
            work[dst][chunk(c)] += data
        comm.account_step(result, pairs, reduce_bytes=max_chunk_bytes)

    # Allgather around the ring: rank r owns finished chunk (r + 1) mod p.
    for t in range(p - 1):
        pairs = []
        moves: list[tuple[int, int, np.ndarray]] = []
        for r in range(p):
            send_chunk = (r + 1 - t) % p
            nbytes = (off[send_chunk + 1] - off[send_chunk]) * itemsize
            dst = (r + 1) % p
            pairs.append((r, dst, float(nbytes)))
            moves.append((dst, send_chunk, work[r][chunk(send_chunk)].copy()))
        for dst, c, data in moves:
            work[dst][chunk(c)] = data
        comm.account_step(result, pairs)

    finalize(buffers, work, average)
    return result
