"""Allreduce algorithm family over the simulated fabric."""

from repro.simmpi.collectives.ring import ring_allreduce
from repro.simmpi.collectives.binomial import binomial_allreduce
from repro.simmpi.collectives.rhd import rhd_allreduce
from repro.simmpi.collectives.topo_aware import topo_aware_allreduce, make_topo_aware_comm
from repro.simmpi.collectives.analysis import (
    original_allreduce_cost,
    improved_allreduce_cost,
    ring_allreduce_cost,
)

__all__ = [
    "ring_allreduce",
    "binomial_allreduce",
    "rhd_allreduce",
    "topo_aware_allreduce",
    "make_topo_aware_comm",
    "original_allreduce_cost",
    "improved_allreduce_cost",
    "ring_allreduce_cost",
]
