"""Conformance registry: how each kernel, collective and layer is checked.

A :class:`KernelSpec` packages everything the differential fuzzer needs to
exercise one kernel plan family: a config sampler biased toward the edge
cases the paper's kernels are known to be sensitive to (odd channels,
stride > kernel, batch 1, channels < 64, non-power-of-two dims), a plan
builder, a runner producing (label, actual, reference) comparisons, and
the hooks the cost-invariant checker uses (minimum DMA payload, a
problem-size doubling rule).

A :class:`CollectiveSpec` does the same for the simulated MPI collectives:
``execute`` runs the algorithm over per-rank buffers, ``reference``
computes the expected per-rank outcome from the pristine inputs.

Registering a spec is all a new kernel or collective needs to do to get
differential + invariant coverage from ``pytest -m conformance``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.kernels.conv_explicit import ExplicitConvPlan
from repro.kernels.conv_fft import FFTConvPlan
from repro.kernels.conv_implicit import (
    MIN_CHANNELS_FORWARD,
    ImplicitConvPlan,
)
from repro.kernels.elementwise import ElementwisePlan
from repro.kernels.gemm import SWGemmPlan, gemm_register_schedule
from repro.kernels.im2col import Col2imPlan, Im2colPlan, conv_out_dim
from repro.kernels.plan import KernelPlan
from repro.kernels.pooling import PoolingPlan
from repro.kernels.transform import TensorTransformPlan
from repro.simmpi.collectives.basic import (
    allgather,
    broadcast,
    gather,
    reduce,
    reduce_scatter,
    scatter,
)
from repro.simmpi.collectives.binomial import binomial_allreduce
from repro.simmpi.collectives.reduce_ops import block_offsets
from repro.simmpi.collectives.rhd import rhd_allreduce
from repro.simmpi.collectives.ring import ring_allreduce
from repro.simmpi.collectives.topo_aware import topo_aware_allreduce
from repro.simmpi.collectives.tuned import tuned_allreduce
from repro.simmpi.comm import CollectiveResult, SimComm
from repro.simmpi.p2p import p2p_shift
from repro.simmpi.reorder import block_placement
from repro.testing import references as ref
from repro.topology.cost_model import LinearCostModel
from repro.topology.fabric import TaihuLightFabric

Comparison = tuple[str, np.ndarray, np.ndarray]


# --------------------------------------------------------------------------- #
# spec types
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class KernelSpec:
    """Conformance description of one kernel plan family."""

    name: str
    #: Draw one fuzz configuration (a plain dict, fully determining shapes).
    sample: Callable[[np.random.Generator], dict[str, Any]]
    #: Instantiate the plan for a configuration.
    build: Callable[[dict[str, Any]], KernelPlan]
    #: Execute plan vs reference; returns labelled (actual, expected) pairs.
    #: ``None`` for cost-only plans (no functional path to compare).
    run: Callable[[KernelPlan, dict[str, Any], np.random.Generator], list[Comparison]] | None
    #: Lower bound on the DMA bytes one invocation must move (operands +
    #: results touched at least once); the invariant checker asserts the
    #: cost model conserves at least this much traffic.
    min_dma_bytes: Callable[[dict[str, Any]], float] | None = None
    #: Produce a strictly-larger configuration (for monotonicity checks).
    scale_up: Callable[[dict[str, Any]], dict[str, Any]] | None = None
    #: Whether simulated *time* must be monotone under ``scale_up`` (flops
    #: and DMA bytes always must). Plans with pipeline-fill penalties that
    #: shrink faster than work grows (see SWGemmPlan docs) set this False.
    time_monotone: bool = True
    #: Numerical tolerance for plan-vs-reference comparisons.
    rtol: float = 1e-9
    atol: float = 1e-9


@dataclass(frozen=True)
class CollectiveSpec:
    """Conformance description of one simulated collective."""

    name: str
    #: Run the collective; gets fresh copies of the per-rank inputs and
    #: must return the per-rank outputs to compare.
    execute: Callable[[SimComm, list[np.ndarray], dict[str, Any]], tuple[list[np.ndarray], CollectiveResult | None]]
    #: Expected per-rank outputs from the pristine inputs.
    reference: Callable[[list[np.ndarray], dict[str, Any]], list[np.ndarray]]
    #: Rank counts the fuzzer may draw (includes non-powers-of-two unless
    #: the algorithm is restricted).
    ranks: tuple[int, ...] = (1, 2, 3, 5, 8, 13, 16)
    #: Reduce modes exercised (the ``average`` flag of the allreduce family).
    reduce_ops: tuple[bool, ...] = (False, True)
    rtol: float = 1e-9
    atol: float = 1e-9


KERNELS: dict[str, KernelSpec] = {}
COLLECTIVES: dict[str, CollectiveSpec] = {}


def register_kernel(spec: KernelSpec) -> KernelSpec:
    """Add (or replace) a kernel spec in the conformance registry."""
    KERNELS[spec.name] = spec
    return spec


def register_collective(spec: CollectiveSpec) -> CollectiveSpec:
    """Add (or replace) a collective spec in the conformance registry."""
    COLLECTIVES[spec.name] = spec
    return spec


def kernel_names() -> list[str]:
    return sorted(KERNELS)


def collective_names() -> list[str]:
    return sorted(COLLECTIVES)


def get_kernel(name: str) -> KernelSpec:
    try:
        return KERNELS[name]
    except KeyError:
        raise KeyError(
            f"{name!r} is not a registered kernel spec "
            f"(known: {', '.join(kernel_names())})"
        ) from None


def get_collective(name: str) -> CollectiveSpec:
    try:
        return COLLECTIVES[name]
    except KeyError:
        raise KeyError(
            f"{name!r} is not a registered collective spec "
            f"(known: {', '.join(collective_names())})"
        ) from None


# --------------------------------------------------------------------------- #
# shared samplers
# --------------------------------------------------------------------------- #
def _choice(rng: np.random.Generator, pool) -> int:
    return int(rng.choice(np.asarray(pool)))


def _conv_geometry(
    rng: np.random.Generator, *, stride_over_kernel: bool = True
) -> dict[str, int]:
    """Sample kernel/stride/pad/image dims with a valid output size.

    Deliberately includes stride > kernel, zero and maximal padding, and
    the smallest legal images so the window-edge paths get fuzzed.
    """
    k = _choice(rng, [1, 2, 3, 5])
    stride = _choice(rng, [1, 2, 3, 4] if stride_over_kernel else [1, 2])
    pad = _choice(rng, [0, 0, 1, 2])
    if pad >= k:  # Caffe forbids pad >= kernel (all-padding windows)
        pad = k - 1
    # Image must produce at least one output pixel: size + 2*pad >= k.
    min_side = max(1, k - 2 * pad)
    extra = _choice(rng, [0, 1, 2, 3])
    side = min_side + stride * _choice(rng, [0, 1, 2]) + extra
    return {"k": k, "stride": stride, "pad": pad, "height": side, "width": side}


def _conv_channels(rng: np.random.Generator, *, minimum: int = 1) -> tuple[int, int]:
    """Channel pairs biased to odd / sub-64 / non-power-of-two counts."""
    pool = [c for c in (1, 2, 3, 5, 7, 13, 16, 31, 63, 64, 65, 96) if c >= minimum]
    return _choice(rng, pool), _choice(rng, pool)


def _conv_sample(rng: np.random.Generator) -> dict[str, Any]:
    geo = _conv_geometry(rng)
    ni, no = _conv_channels(rng)
    return {"batch": _choice(rng, [1, 1, 2, 3]), "ni": ni, "no": no, **geo}


def _implicit_sample(rng: np.random.Generator) -> dict[str, Any]:
    # The implicit micro-kernel refuses channels < 64; fuzz the smallest
    # counts it accepts plus odd/non-power-of-two ones just above the bar.
    geo = _conv_geometry(rng)
    pool = [MIN_CHANNELS_FORWARD, 65, 67, 96, 128]
    return {
        "batch": _choice(rng, [1, 1, 2, 3]),
        "ni": _choice(rng, pool),
        "no": _choice(rng, pool),
        **geo,
    }


def _conv_payload_bytes(cfg: dict[str, Any], dtype_bytes: int = 4) -> float:
    out_h = conv_out_dim(cfg["height"], cfg["k"], cfg["stride"], cfg["pad"])
    out_w = conv_out_dim(cfg["width"], cfg["k"], cfg["stride"], cfg["pad"])
    in_elems = cfg["batch"] * cfg["ni"] * cfg["height"] * cfg["width"]
    out_elems = cfg["batch"] * cfg["no"] * out_h * out_w
    return float((in_elems + out_elems) * dtype_bytes)


def _double_batch(cfg: dict[str, Any]) -> dict[str, Any]:
    return {**cfg, "batch": 2 * cfg["batch"]}


def _conv_inputs(
    cfg: dict[str, Any], rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    x = rng.normal(size=(cfg["batch"], cfg["ni"], cfg["height"], cfg["width"]))
    w = rng.normal(size=(cfg["no"], cfg["ni"], cfg["k"], cfg["k"]))
    b = rng.normal(size=cfg["no"])
    return x, w, b


# --------------------------------------------------------------------------- #
# kernel specs
# --------------------------------------------------------------------------- #
def _gemm_sample(rng: np.random.Generator) -> dict[str, Any]:
    pool = [1, 2, 3, 5, 7, 8, 9, 13, 16, 27, 33, 48, 64]
    return {
        "m": _choice(rng, pool),
        "n": _choice(rng, pool),
        "k": _choice(rng, pool),
        "dtype_bytes": _choice(rng, [4, 8]),
    }


def _gemm_run(
    plan: SWGemmPlan, cfg: dict[str, Any], rng: np.random.Generator
) -> list[Comparison]:
    a = rng.normal(size=(cfg["m"], cfg["k"]))
    b = rng.normal(size=(cfg["k"], cfg["n"]))
    expected = ref.ref_gemm(a, b)
    return [
        ("run", plan.run(a, b), expected),
        ("run_blocked", plan.run_blocked(a, b), expected),
        ("register_schedule", gemm_register_schedule(a, b), expected),
    ]


register_kernel(
    KernelSpec(
        name="gemm",
        sample=_gemm_sample,
        build=lambda cfg: SWGemmPlan(
            cfg["m"], cfg["n"], cfg["k"], dtype_bytes=cfg["dtype_bytes"]
        ),
        run=_gemm_run,
        min_dma_bytes=lambda cfg: float(
            (cfg["m"] * cfg["k"] + cfg["k"] * cfg["n"] + cfg["m"] * cfg["n"])
            * cfg["dtype_bytes"]
        ),
        scale_up=lambda cfg: {
            **cfg,
            "m": 2 * cfg["m"],
            "n": 2 * cfg["n"],
            "k": 2 * cfg["k"],
        },
        # Known artifact: the small-m pipeline-fill penalty shrinks
        # superlinearly, so total time can dip as dims grow (the model's
        # documented behaviour); achieved Gflops stays monotone instead.
        time_monotone=False,
        rtol=1e-9,
        atol=1e-8,
    )
)


def _conv_explicit_run(
    plan: ExplicitConvPlan, cfg: dict[str, Any], rng: np.random.Generator
) -> list[Comparison]:
    x, w, b = _conv_inputs(cfg, rng)
    expected = ref.ref_conv2d(x, w, b, stride=cfg["stride"], pad=cfg["pad"])
    comparisons = [("forward", plan.forward(x, w, b), expected)]
    dy = rng.normal(size=expected.shape)
    dx, dw, db = plan.backward(x, w, dy)
    rdx, rdw, rdb = ref.ref_conv2d_backward(x, w, dy, stride=cfg["stride"], pad=cfg["pad"])
    comparisons += [
        ("backward_dx", dx, rdx),
        ("backward_dw", dw, rdw),
        ("backward_db", db, rdb),
    ]
    return comparisons


register_kernel(
    KernelSpec(
        name="conv_explicit",
        sample=_conv_sample,
        build=lambda cfg: ExplicitConvPlan(
            cfg["batch"], cfg["ni"], cfg["no"], cfg["height"], cfg["width"],
            cfg["k"], cfg["stride"], cfg["pad"],
        ),
        run=_conv_explicit_run,
        min_dma_bytes=_conv_payload_bytes,
        scale_up=_double_batch,
    )
)


def _conv_implicit_run(
    plan: ImplicitConvPlan, cfg: dict[str, Any], rng: np.random.Generator
) -> list[Comparison]:
    x, w, b = _conv_inputs(cfg, rng)
    expected = ref.ref_conv2d(x, w, b, stride=cfg["stride"], pad=cfg["pad"])
    comparisons = [("forward", plan.forward(x, w, b), expected)]
    # The blocked LDM kernel runs in the implicit (R, C, N, B) layout with
    # (K, K, No, Ni) filters and no bias; compare it in that layout.
    x_rcnb = np.transpose(x, (2, 3, 1, 0))
    w_kknc = np.transpose(w, (2, 3, 0, 1))
    blocked = plan.run_blocked_implicit_layout(x_rcnb, w_kknc)
    expected_rcnb = np.transpose(
        ref.ref_conv2d(x, w, None, stride=cfg["stride"], pad=cfg["pad"]),
        (2, 3, 1, 0),
    )
    comparisons.append(("run_blocked_implicit_layout", blocked, expected_rcnb))
    return comparisons


register_kernel(
    KernelSpec(
        name="conv_implicit",
        sample=_implicit_sample,
        build=lambda cfg: ImplicitConvPlan(
            cfg["batch"], cfg["ni"], cfg["no"], cfg["height"], cfg["width"],
            cfg["k"], cfg["stride"], cfg["pad"],
        ),
        run=_conv_implicit_run,
        min_dma_bytes=_conv_payload_bytes,
        # Scale the spatial extent, not the batch: B is the contiguous DMA
        # run of the implicit (R, C, N, B) layout, so doubling it doubles
        # the strided block size and time can legitimately dip deep in the
        # latency-bound regime. Growing H keeps the run length fixed.
        scale_up=lambda cfg: {**cfg, "height": 2 * cfg["height"]},
        rtol=1e-9,
        atol=1e-8,
    )
)


def _fft_sample(rng: np.random.Generator) -> dict[str, Any]:
    cfg = _conv_sample(rng)
    cfg["stride"] = 1  # FFT convolution supports stride 1 only
    return cfg


def _fft_run(
    plan: FFTConvPlan, cfg: dict[str, Any], rng: np.random.Generator
) -> list[Comparison]:
    x, w, b = _conv_inputs(cfg, rng)
    expected = ref.ref_conv2d(x, w, b, stride=1, pad=cfg["pad"])
    return [("forward", plan.forward(x, w, b), expected)]


register_kernel(
    KernelSpec(
        name="conv_fft",
        sample=_fft_sample,
        build=lambda cfg: FFTConvPlan(
            cfg["batch"], cfg["ni"], cfg["no"], cfg["height"], cfg["width"],
            cfg["k"], 1, cfg["pad"],
        ),
        run=_fft_run,
        min_dma_bytes=_conv_payload_bytes,
        scale_up=_double_batch,
        # FFT rounding: exact convolutions recovered from padded spectra.
        rtol=1e-7,
        atol=1e-7,
    )
)


def _pool_sample(rng: np.random.Generator) -> dict[str, Any]:
    geo = _conv_geometry(rng)
    return {
        "batch": _choice(rng, [1, 1, 2, 3]),
        "channels": _choice(rng, [1, 3, 5, 16, 63]),
        "mode": str(rng.choice(["max", "avg"])),
        **geo,
    }


def _pool_run(
    plan: PoolingPlan, cfg: dict[str, Any], rng: np.random.Generator
) -> list[Comparison]:
    x = rng.normal(size=(cfg["batch"], cfg["channels"], cfg["height"], cfg["width"]))
    out, _ = plan.forward(x)
    expected = ref.ref_pool2d(
        x, cfg["k"], stride=cfg["stride"], pad=cfg["pad"], mode=cfg["mode"]
    )
    return [("forward", out, expected)]


register_kernel(
    KernelSpec(
        name="pooling",
        sample=_pool_sample,
        build=lambda cfg: PoolingPlan(
            cfg["batch"], cfg["channels"], cfg["height"], cfg["width"],
            cfg["k"], cfg["stride"], cfg["pad"], cfg["mode"],
        ),
        run=_pool_run,
        min_dma_bytes=lambda cfg: float(
            4 * cfg["batch"] * cfg["channels"] * (
                cfg["height"] * cfg["width"]
                + conv_out_dim(cfg["height"], cfg["k"], cfg["stride"], cfg["pad"])
                * conv_out_dim(cfg["width"], cfg["k"], cfg["stride"], cfg["pad"])
            )
        ),
        scale_up=_double_batch,
    )
)


def _im2col_sample(rng: np.random.Generator) -> dict[str, Any]:
    geo = _conv_geometry(rng)
    return {"channels": _choice(rng, [1, 2, 3, 5, 7, 16]), **geo}


def _im2col_run(
    plan: Im2colPlan, cfg: dict[str, Any], rng: np.random.Generator
) -> list[Comparison]:
    x = rng.normal(size=(cfg["channels"], cfg["height"], cfg["width"]))
    expected = ref.ref_im2col(x, cfg["k"], cfg["stride"], cfg["pad"])
    return [
        ("run", plan.run(x), expected),
        ("run_staged", plan.run_staged(x), expected),
    ]


def _im2col_bytes(cfg: dict[str, Any]) -> float:
    out_h = conv_out_dim(cfg["height"], cfg["k"], cfg["stride"], cfg["pad"])
    out_w = conv_out_dim(cfg["width"], cfg["k"], cfg["stride"], cfg["pad"])
    image = cfg["channels"] * cfg["height"] * cfg["width"]
    matrix = cfg["channels"] * cfg["k"] * cfg["k"] * out_h * out_w
    return float(4 * (image + matrix))


register_kernel(
    KernelSpec(
        name="im2col",
        sample=_im2col_sample,
        build=lambda cfg: Im2colPlan(
            cfg["channels"], cfg["height"], cfg["width"],
            cfg["k"], cfg["stride"], cfg["pad"],
        ),
        run=_im2col_run,
        min_dma_bytes=_im2col_bytes,
        scale_up=lambda cfg: {**cfg, "channels": 2 * cfg["channels"]},
    )
)


def _col2im_run(
    plan: Col2imPlan, cfg: dict[str, Any], rng: np.random.Generator
) -> list[Comparison]:
    # col2im is the adjoint of im2col: <im2col(x), C> == <x, col2im(C)>
    # for every x and C. Verifying the inner products pins the scatter
    # without re-deriving the overlap bookkeeping.
    from repro.kernels.im2col import col2im

    shape = (cfg["channels"], cfg["height"], cfg["width"])
    x = rng.normal(size=shape)
    cols_shape = ref.ref_im2col(x, cfg["k"], cfg["stride"], cfg["pad"]).shape
    c = rng.normal(size=cols_shape)
    lhs = float(np.sum(ref.ref_im2col(x, cfg["k"], cfg["stride"], cfg["pad"]) * c))
    folded = col2im(c, shape, cfg["k"], cfg["stride"], cfg["pad"])
    rhs = float(np.sum(x * folded))
    return [("adjoint_identity", np.array([lhs]), np.array([rhs]))]


register_kernel(
    KernelSpec(
        name="col2im",
        sample=_im2col_sample,
        build=lambda cfg: Col2imPlan(
            cfg["channels"], cfg["height"], cfg["width"],
            cfg["k"], cfg["stride"], cfg["pad"],
        ),
        run=_col2im_run,
        min_dma_bytes=_im2col_bytes,
        scale_up=lambda cfg: {**cfg, "channels": 2 * cfg["channels"]},
        rtol=1e-8,
        atol=1e-8,
    )
)


def _transform_sample(rng: np.random.Generator) -> dict[str, Any]:
    dims = [_choice(rng, [1, 2, 3, 5, 7]) for _ in range(4)]
    return {"shape": tuple(dims), "to_implicit": bool(rng.integers(0, 2))}


def _transform_run(
    plan: TensorTransformPlan, cfg: dict[str, Any], rng: np.random.Generator
) -> list[Comparison]:
    shape = cfg["shape"]
    src_shape = shape if cfg["to_implicit"] else (shape[2], shape[3], shape[1], shape[0])
    x = rng.normal(size=src_shape)
    return [("run", plan.run(x), ref.ref_transform(x, cfg["to_implicit"]))]


register_kernel(
    KernelSpec(
        name="transform",
        sample=_transform_sample,
        build=lambda cfg: TensorTransformPlan(cfg["shape"], cfg["to_implicit"]),
        run=_transform_run,
        min_dma_bytes=lambda cfg: float(
            2 * 4 * int(np.prod(cfg["shape"]))
        ),
        # Scale N: the B and C axes set the strided-run lengths on the two
        # sides of the transposition, so doubling either makes blocks twice
        # as long and the saturating DMA model can price the bigger tensor
        # cheaper. N only multiplies traffic.
        scale_up=lambda cfg: {
            **cfg,
            "shape": (
                cfg["shape"][0],
                2 * cfg["shape"][1],
                cfg["shape"][2],
                cfg["shape"][3],
            ),
        },
    )
)


def _elementwise_sample(rng: np.random.Generator) -> dict[str, Any]:
    return {
        "n_elements": _choice(rng, [1, 17, 100, 4097, 100001]),
        "flops_per_element": float(rng.choice([0.0, 1.0, 5.0])),
        "n_inputs": _choice(rng, [1, 2]),
    }


register_kernel(
    KernelSpec(
        name="elementwise",
        sample=_elementwise_sample,
        build=lambda cfg: ElementwisePlan.for_tensor(
            cfg["n_elements"],
            flops_per_element=cfg["flops_per_element"],
            n_inputs=cfg["n_inputs"],
        ),
        run=None,  # streaming plan: cost model only, no functional kernel
        min_dma_bytes=lambda cfg: float(4 * cfg["n_elements"] * (cfg["n_inputs"] + 1)),
        scale_up=lambda cfg: {**cfg, "n_elements": 2 * cfg["n_elements"]},
    )
)


# --------------------------------------------------------------------------- #
# collective specs
# --------------------------------------------------------------------------- #
#: Cost model used for fuzzed communicators (the paper's Fig. 7 regime).
FUZZ_COST_MODEL = LinearCostModel(alpha=1e-6, beta1=1e-10, beta2=4e-10, gamma=3e-11)


def make_fuzz_comm(p: int, q: int = 4) -> SimComm:
    """Communicator over a TaihuLight fabric with a block placement.

    The supernode size is clamped so any rank count (including primes)
    yields a valid placement, mirroring the test-suite convention.
    """
    fab = TaihuLightFabric(n_nodes=max(p, q), nodes_per_supernode=q)
    qq = min(q, p)
    if p % qq != 0:
        qq = 1
    return SimComm(fab, block_placement(p, qq), cost=FUZZ_COST_MODEL)


def _allreduce_spec(name: str, fn) -> CollectiveSpec:
    def execute(comm, inputs, cfg):
        bufs = [b.copy() for b in inputs]
        result = fn(comm, bufs, average=cfg["average"])
        return bufs, result

    def reference(inputs, cfg):
        return ref.ref_allreduce(inputs, average=cfg["average"])

    return CollectiveSpec(name=name, execute=execute, reference=reference)


for _name, _fn in [
    ("ring_allreduce", ring_allreduce),
    ("binomial_allreduce", binomial_allreduce),
    ("rhd_allreduce", rhd_allreduce),
    ("topo_aware_allreduce", topo_aware_allreduce),
    ("tuned_allreduce", tuned_allreduce),
]:
    register_collective(_allreduce_spec(_name, _fn))


def _broadcast_execute(comm, inputs, cfg):
    bufs = [b.copy() for b in inputs]
    result = broadcast(comm, bufs, root=cfg.get("root", 0))
    return bufs, result


def _broadcast_reference(inputs, cfg):
    return ref.ref_broadcast(inputs, root=cfg.get("root", 0))


register_collective(
    CollectiveSpec(
        name="broadcast",
        execute=_broadcast_execute,
        reference=_broadcast_reference,
        reduce_ops=(False,),
    )
)


def _reduce_execute(comm, inputs, cfg):
    bufs = [b.copy() for b in inputs]
    result = reduce(comm, bufs, root=cfg.get("root", 0), average=cfg["average"])
    return bufs, result


def _reduce_reference(inputs, cfg):
    root = cfg.get("root", 0)
    out = [np.asarray(b, dtype=np.float64).copy() for b in inputs]
    out[root] = ref.ref_reduce(inputs, average=cfg["average"])
    return out


register_collective(
    CollectiveSpec(name="reduce", execute=_reduce_execute, reference=_reduce_reference)
)


def _scatter_execute(comm, inputs, cfg):
    root = cfg.get("root", 0)
    sendbuf = inputs[root].copy()
    off = block_offsets(sendbuf.size, comm.p)
    recv = [np.zeros(off[r + 1] - off[r]) for r in range(comm.p)]
    result = scatter(comm, sendbuf, recv, root=root)
    return recv, result


def _scatter_reference(inputs, cfg):
    root = cfg.get("root", 0)
    flat = np.asarray(inputs[root], dtype=np.float64).ravel()
    off = block_offsets(flat.size, len(inputs))
    return [flat[off[r] : off[r + 1]].copy() for r in range(len(inputs))]


register_collective(
    CollectiveSpec(
        name="scatter",
        execute=_scatter_execute,
        reference=_scatter_reference,
        reduce_ops=(False,),
    )
)


def _gather_execute(comm, inputs, cfg):
    root = cfg.get("root", 0)
    total = sum(b.size for b in inputs)
    recvbuf = np.zeros(total)
    result = gather(comm, [b.copy() for b in inputs], recvbuf, root=root)
    return [recvbuf], result


def _gather_reference(inputs, cfg):
    return [np.concatenate([np.asarray(b, dtype=np.float64).ravel() for b in inputs])]


register_collective(
    CollectiveSpec(
        name="gather",
        execute=_gather_execute,
        reference=_gather_reference,
        reduce_ops=(False,),
    )
)


def _allgather_execute(comm, inputs, cfg):
    chunks = [b.copy() for b in inputs]
    size = inputs[0].size
    bufs = [np.zeros(size * comm.p) for _ in range(comm.p)]
    result = allgather(comm, bufs, chunks)
    return bufs, result


def _allgather_reference(inputs, cfg):
    cat = np.concatenate([np.asarray(b, dtype=np.float64).ravel() for b in inputs])
    return [cat.copy() for _ in inputs]


register_collective(
    CollectiveSpec(
        name="allgather",
        execute=_allgather_execute,
        reference=_allgather_reference,
        reduce_ops=(False,),
    )
)


def _reduce_scatter_execute(comm, inputs, cfg):
    off = block_offsets(inputs[0].size, comm.p)
    outputs = [np.zeros(off[r + 1] - off[r]) for r in range(comm.p)]
    result = reduce_scatter(comm, [b.copy() for b in inputs], outputs)
    return outputs, result


def _reduce_scatter_reference(inputs, cfg):
    total = ref.ref_reduce(inputs)
    off = block_offsets(total.size, len(inputs))
    return [total[off[r] : off[r + 1]].copy() for r in range(len(inputs))]


register_collective(
    CollectiveSpec(
        name="reduce_scatter",
        execute=_reduce_scatter_execute,
        reference=_reduce_scatter_reference,
        ranks=(1, 2, 4, 8, 16),  # recursive halving needs power-of-two ranks
        reduce_ops=(False,),
    )
)


def _p2p_shift_execute(comm, inputs, cfg):
    bufs = [b.copy() for b in inputs]
    result = p2p_shift(comm, bufs)
    return bufs, result


def _p2p_shift_reference(inputs, cfg):
    p = len(inputs)
    return [np.asarray(inputs[(dst - 1) % p], dtype=np.float64).copy() for dst in range(p)]


register_collective(
    CollectiveSpec(
        name="p2p_shift",
        execute=_p2p_shift_execute,
        reference=_p2p_shift_reference,
        reduce_ops=(False,),
    )
)
