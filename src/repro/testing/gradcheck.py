"""Central-difference gradient checking as a library API.

Promoted from ``tests/gradcheck.py`` (which now re-exports from here) and
extended with a layer registry: every differentiable layer registers a
:class:`LayerCase` describing how to build a deterministic instance and
sample inputs, and :func:`check_layer` verifies *all* of its input and
parameter gradients against central differences. The conformance pytest
plugin parametrizes over :func:`registered_layers`, so a new layer gets
gradient coverage by adding one registration, not a hand-written test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.frame.blob import Blob
from repro.frame.layers import (
    BatchNormLayer,
    ConcatLayer,
    ConvolutionLayer,
    ELULayer,
    EltwiseLayer,
    InnerProductLayer,
    LRNLayer,
    LSTMLayer,
    PoolingLayer,
    PowerLayer,
    ReLULayer,
    ScaleLayer,
    SigmoidLayer,
    SoftmaxLayer,
    TanHLayer,
    TensorTransformLayer,
)
from repro.utils.rng import seeded_rng


# --------------------------------------------------------------------------- #
# core helpers (the original tests/gradcheck.py API)
# --------------------------------------------------------------------------- #
def run_layer(layer, inputs: list[np.ndarray]) -> list[Blob]:
    """Set up a layer on fresh blobs and run one forward pass.

    Returns ``[bottom..., top...]`` blobs.
    """
    bottoms = []
    for i, arr in enumerate(inputs):
        b = Blob(f"bottom{i}", arr.shape, dtype=np.float64)
        b.data = arr
        bottoms.append(b)
    n_tops = getattr(layer, "n_tops", 1)
    tops = [Blob(f"top{i}", dtype=np.float64) for i in range(n_tops)]
    layer.setup(bottoms, tops)
    layer.forward(bottoms, tops)
    return bottoms + tops


def layer_loss(layer, inputs: list[np.ndarray], weight: np.ndarray) -> float:
    """Scalar probe: sum(top * weight) after a fresh forward."""
    blobs = run_layer(layer, inputs)
    top = blobs[len(inputs)]
    return float(np.sum(top.data * weight))


def check_input_gradients(
    layer_factory,
    inputs: list[np.ndarray],
    *,
    input_index: int = 0,
    n_samples: int = 6,
    eps: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-7,
    seed: int = 0,
) -> None:
    """Compare analytic bottom diffs against central differences.

    ``layer_factory()`` must build a *fresh, deterministic* layer each call
    (same weights, same dropout mask policy) so finite differences probe
    the same function.
    """
    rng = np.random.default_rng(seed)
    layer = layer_factory()
    blobs = run_layer(layer, inputs)
    bottoms, top = blobs[: len(inputs)], blobs[len(inputs)]
    weight = rng.normal(size=top.shape)
    top.diff = weight
    layer.backward([top] + blobs[len(inputs) + 1 :], bottoms)
    analytic = bottoms[input_index].diff

    x = inputs[input_index]
    flat_indices = rng.choice(x.size, size=min(n_samples, x.size), replace=False)
    for flat in flat_indices:
        idx = np.unravel_index(flat, x.shape)
        xp = [a.copy() for a in inputs]
        xm = [a.copy() for a in inputs]
        xp[input_index][idx] += eps
        xm[input_index][idx] -= eps
        fp = layer_loss(layer_factory(), xp, weight)
        fm = layer_loss(layer_factory(), xm, weight)
        numeric = (fp - fm) / (2 * eps)
        got = analytic[idx]
        assert np.isclose(got, numeric, rtol=rtol, atol=atol), (
            f"input grad mismatch at {idx}: analytic={got}, numeric={numeric}"
        )


def check_param_gradients(
    layer_factory,
    inputs: list[np.ndarray],
    *,
    param_index: int = 0,
    n_samples: int = 6,
    eps: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-7,
    seed: int = 0,
) -> None:
    """Compare analytic parameter diffs against central differences."""
    rng = np.random.default_rng(seed)
    layer = layer_factory()
    blobs = run_layer(layer, inputs)
    bottoms, top = blobs[: len(inputs)], blobs[len(inputs)]
    weight = rng.normal(size=top.shape)
    top.diff = weight
    layer.backward([top] + blobs[len(inputs) + 1 :], bottoms)
    param = layer.params[param_index]
    analytic = param.diff.copy()

    w0 = param.data.copy()
    flat_indices = rng.choice(w0.size, size=min(n_samples, w0.size), replace=False)
    for flat in flat_indices:
        idx = np.unravel_index(flat, w0.shape)

        def probe(delta: float) -> tuple[float, float]:
            """Returns (loss, actually-applied parameter value)."""
            fresh = layer_factory()
            fresh_blobs = run_layer(fresh, inputs)
            fresh.params[param_index].data[idx] += delta
            applied = float(fresh.params[param_index].data[idx])
            fresh.forward(fresh_blobs[: len(inputs)], [fresh_blobs[len(inputs)]])
            return float(np.sum(fresh_blobs[len(inputs)].data * weight)), applied

        fp, wp = probe(eps)
        fm, wm = probe(-eps)
        # Params may be stored in float32; divide by the delta that was
        # actually representable, not the nominal eps.
        numeric = (fp - fm) / (wp - wm)
        got = analytic[idx]
        assert np.isclose(got, numeric, rtol=rtol, atol=atol), (
            f"param grad mismatch at {idx}: analytic={got}, numeric={numeric}"
        )


# --------------------------------------------------------------------------- #
# layer registry
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class LayerCase:
    """Registration describing how to gradient-check one layer."""

    name: str
    #: Build a fresh deterministic layer (same weights every call).
    factory: Callable[[], object]
    #: Sample the bottom arrays from a seeded generator.
    make_inputs: Callable[[np.random.Generator], list[np.ndarray]]
    #: Bottom indices to check (default: all of them).
    input_indices: tuple[int, ...] | None = None
    rtol: float = 1e-4
    atol: float = 1e-7
    eps: float = 1e-6


LAYERS: dict[str, LayerCase] = {}


def register_layer(case: LayerCase) -> LayerCase:
    """Add (or replace) a layer case in the gradcheck registry."""
    LAYERS[case.name] = case
    return case


def registered_layers() -> list[str]:
    return sorted(LAYERS)


def check_layer(case: LayerCase | str, *, seed: int = 0) -> None:
    """Gradient-check every input and every parameter of a registered layer."""
    if isinstance(case, str):
        case = LAYERS[case]
    inputs = case.make_inputs(np.random.default_rng([0xC0FFEE, seed]))
    indices = case.input_indices
    if indices is None:
        indices = tuple(range(len(inputs)))
    for i in indices:
        check_input_gradients(
            case.factory, inputs, input_index=i,
            rtol=case.rtol, atol=case.atol, eps=case.eps, seed=seed,
        )
    probe = case.factory()
    run_layer(probe, inputs)
    for p in range(len(probe.params)):
        check_param_gradients(
            case.factory, inputs, param_index=p,
            rtol=case.rtol, atol=case.atol, eps=case.eps, seed=seed,
        )


# --------------------------------------------------------------------------- #
# built-in registrations (every differentiable layer in the zoo)
# --------------------------------------------------------------------------- #
def _img(rng: np.random.Generator, shape=(2, 3, 6, 6)) -> list[np.ndarray]:
    return [rng.normal(size=shape)]


def _two_distinct(rng: np.random.Generator) -> list[np.ndarray]:
    """Two tensors with a guaranteed elementwise gap (no max-kink ties)."""
    a = rng.normal(size=(3, 4))
    gap = np.where(rng.random(size=a.shape) < 0.5, 0.7, -0.7)
    return [a, a + gap]


register_layer(LayerCase(
    name="convolution",
    factory=lambda: ConvolutionLayer("conv", num_output=4, kernel_size=3, pad=1, rng=seeded_rng(7)),
    make_inputs=_img,
))
register_layer(LayerCase(
    name="convolution_strided",
    factory=lambda: ConvolutionLayer("conv", num_output=3, kernel_size=2, stride=2, rng=seeded_rng(8)),
    make_inputs=lambda rng: _img(rng, (1, 5, 6, 6)),
))
register_layer(LayerCase(
    name="inner_product",
    factory=lambda: InnerProductLayer("ip", num_output=5, rng=seeded_rng(9)),
    make_inputs=lambda rng: [rng.normal(size=(3, 7))],
))
register_layer(LayerCase(
    name="relu",
    factory=lambda: ReLULayer("r", negative_slope=0.2),
    make_inputs=lambda rng: [rng.normal(size=(4, 9)) + 0.05],
))
register_layer(LayerCase(
    name="sigmoid",
    factory=lambda: SigmoidLayer("s"),
    make_inputs=lambda rng: [rng.normal(size=(4, 9))],
))
register_layer(LayerCase(
    name="tanh",
    factory=lambda: TanHLayer("t"),
    make_inputs=lambda rng: [rng.normal(size=(4, 9))],
))
register_layer(LayerCase(
    name="elu",
    factory=lambda: ELULayer("e", alpha=0.8),
    make_inputs=lambda rng: [rng.normal(size=(4, 9)) + 0.05],
))
register_layer(LayerCase(
    name="power",
    factory=lambda: PowerLayer("p", power=2.0, scale=0.5, shift=1.5),
    make_inputs=lambda rng: [np.abs(rng.normal(size=(4, 9))) + 0.5],
))
register_layer(LayerCase(
    name="pooling_max",
    factory=lambda: PoolingLayer("p", 2, 2),
    make_inputs=lambda rng: _img(rng, (2, 2, 6, 6)),
))
register_layer(LayerCase(
    name="pooling_avg",
    factory=lambda: PoolingLayer("p", 3, 2, pad=1, mode="avg"),
    make_inputs=lambda rng: _img(rng, (2, 2, 6, 6)),
))
register_layer(LayerCase(
    name="batch_norm",
    factory=lambda: BatchNormLayer("bn"),
    make_inputs=lambda rng: _img(rng, (4, 3, 4, 4)),
    rtol=1e-3,
))
register_layer(LayerCase(
    name="lrn",
    factory=lambda: LRNLayer("lrn", local_size=3, alpha=2.0, beta=0.75),
    make_inputs=lambda rng: _img(rng, (2, 5, 3, 3)),
    rtol=1e-3,
))
register_layer(LayerCase(
    name="scale",
    factory=lambda: ScaleLayer("sc"),
    make_inputs=lambda rng: _img(rng, (2, 3, 4, 4)),
))
register_layer(LayerCase(
    name="eltwise_sum",
    factory=lambda: EltwiseLayer("e", operation="sum", coeffs=[0.5, -2.0]),
    make_inputs=lambda rng: [rng.normal(size=(3, 4)), rng.normal(size=(3, 4))],
))
register_layer(LayerCase(
    name="eltwise_prod",
    factory=lambda: EltwiseLayer("e", operation="prod"),
    make_inputs=lambda rng: [rng.normal(size=(3, 4)) + 3.0, rng.normal(size=(3, 4)) + 3.0],
))
register_layer(LayerCase(
    name="eltwise_max",
    factory=lambda: EltwiseLayer("e", operation="max"),
    make_inputs=_two_distinct,
))
register_layer(LayerCase(
    name="concat",
    factory=lambda: ConcatLayer("c", axis=1),
    make_inputs=lambda rng: [rng.normal(size=(2, 3, 4, 4)), rng.normal(size=(2, 5, 4, 4))],
))
register_layer(LayerCase(
    name="softmax",
    factory=lambda: SoftmaxLayer("s"),
    make_inputs=lambda rng: [rng.normal(size=(3, 5))],
))
register_layer(LayerCase(
    name="transform",
    factory=lambda: TensorTransformLayer("t"),
    make_inputs=lambda rng: _img(rng, (2, 3, 4, 5)),
))
register_layer(LayerCase(
    name="lstm",
    factory=lambda: LSTMLayer("lstm", num_output=4, rng=seeded_rng(21)),
    make_inputs=lambda rng: [rng.normal(size=(2, 3, 3))],
    rtol=1e-3,
))
