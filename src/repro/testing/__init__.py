"""Differential-correctness conformance layer (the `repro.testing` subsystem).

swCaffe's credibility rests on two claims: every CPE-blocked kernel plan
and topology-aware collective is *numerically equivalent* to a dense
reference, and every simulated cost is *physically sane* (positive,
monotone in problem size, within the 64 KiB LDM budget). This package
turns those claims into reusable machinery instead of ad-hoc per-test
checks:

* :mod:`repro.testing.references` — slow-but-obviously-correct dense
  NumPy implementations of conv/pool/GEMM/softmax and of the collective
  reduction semantics, written with explicit loops so a reviewer can
  verify them by inspection;
* :mod:`repro.testing.registry` — the conformance registry: every kernel
  plan, collective algorithm and differentiable layer registers a spec
  describing how to sample configs, build an instance and compare it
  against its reference;
* :mod:`repro.testing.differential` — the seeded shape/param fuzzer that
  drives plan-vs-reference comparisons and reports max-ulp mismatches
  with a reproducible seed string;
* :mod:`repro.testing.gradcheck` — central-difference gradient checking
  as a library API (promoted from ``tests/gradcheck.py``);
* :mod:`repro.testing.invariants` — cost-model sanity assertions applied
  to every plan the fuzzer generates;
* :mod:`repro.testing.pytest_plugin` — ``@conformance``-marked
  parametrized fixtures so new kernels/collectives/layers get coverage
  by registration rather than by hand-written tests.
"""

from repro.testing.differential import (
    FuzzReport,
    fuzz_collective,
    fuzz_kernel,
    max_ulp_diff,
    parse_seed_string,
    reproduce,
    seed_string,
)
from repro.testing.gradcheck import (
    LayerCase,
    check_input_gradients,
    check_layer,
    check_param_gradients,
    layer_loss,
    register_layer,
    registered_layers,
    run_layer,
)
from repro.testing.invariants import InvariantViolation, check_cost_sane, check_plan
from repro.testing.registry import (
    CollectiveSpec,
    KernelSpec,
    collective_names,
    get_collective,
    get_kernel,
    kernel_names,
    register_collective,
    register_kernel,
)

__all__ = [
    "FuzzReport",
    "fuzz_collective",
    "fuzz_kernel",
    "max_ulp_diff",
    "parse_seed_string",
    "reproduce",
    "seed_string",
    "LayerCase",
    "check_input_gradients",
    "check_layer",
    "check_param_gradients",
    "layer_loss",
    "register_layer",
    "registered_layers",
    "run_layer",
    "InvariantViolation",
    "check_cost_sane",
    "check_plan",
    "CollectiveSpec",
    "KernelSpec",
    "collective_names",
    "get_collective",
    "get_kernel",
    "kernel_names",
    "register_collective",
    "register_kernel",
]
