"""Pytest plugin exposing the conformance registry as parametrized fixtures.

Enable it once per test tree (``pytest_plugins = ["repro.testing.pytest_plugin"]``
in ``conftest.py``). Any test that names one of the fixtures below is
automatically parametrized over the corresponding registry and marked
``conformance``:

* ``kernel_name`` — every registered kernel spec;
* ``collective_name`` — every registered collective spec;
* ``layer_name`` — every registered gradcheck layer case;
* ``fault_seed`` — every chaos replay seed from
  :func:`repro.faults.plan.conformance_seeds` (all fault profiles), so
  faulted collectives ride the same ``pytest -m conformance`` selection.

``pytest -m conformance`` selects exactly the registry-driven tests. The
default fuzz budget (:data:`FAST_CONFIGS` seeded configurations per spec)
keeps tier-1 runtime bounded; ``--conformance-full`` raises it to
:data:`FULL_CONFIGS` for nightly/CI deep runs. The active budget is
exposed through the ``conformance_configs`` fixture.
"""

from __future__ import annotations

import pytest

from repro.testing import gradcheck as _gradcheck
from repro.testing import registry as _registry

#: Seeded configs per spec in the default (tier-1) run.
FAST_CONFIGS = 25
#: Seeded configs per spec under ``--conformance-full``.
FULL_CONFIGS = 100


def pytest_addoption(parser: pytest.Parser) -> None:
    group = parser.getgroup("conformance")
    group.addoption(
        "--conformance-full",
        action="store_true",
        default=False,
        help=(
            "fuzz the full budget of seeded configs per kernel/collective "
            f"({FULL_CONFIGS} instead of {FAST_CONFIGS})"
        ),
    )


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "conformance: registry-driven differential/invariant/gradient conformance tests",
    )


def pytest_collection_modifyitems(config: pytest.Config, items: list) -> None:
    fixtures = {
        "kernel_name",
        "collective_name",
        "layer_name",
        "fault_seed",
        "conformance_configs",
    }
    for item in items:
        if fixtures & set(getattr(item, "fixturenames", ())):
            item.add_marker(pytest.mark.conformance)


def pytest_generate_tests(metafunc: pytest.Metafunc) -> None:
    if "kernel_name" in metafunc.fixturenames:
        metafunc.parametrize("kernel_name", _registry.kernel_names())
    if "collective_name" in metafunc.fixturenames:
        metafunc.parametrize("collective_name", _registry.collective_names())
    if "layer_name" in metafunc.fixturenames:
        metafunc.parametrize("layer_name", _gradcheck.registered_layers())
    if "fault_seed" in metafunc.fixturenames:
        from repro.faults.plan import conformance_seeds

        metafunc.parametrize("fault_seed", conformance_seeds())


@pytest.fixture
def conformance_configs(request: pytest.FixtureRequest) -> int:
    """Number of seeded fuzz configs each spec must pass in this run."""
    if request.config.getoption("--conformance-full"):
        return FULL_CONFIGS
    return FAST_CONFIGS
