"""Cost-model sanity invariants, asserted on every fuzzer-generated plan.

The simulated figures are only as trustworthy as the cost model's basic
physics, so every plan the differential fuzzer builds is also checked for:

* **positivity** — simulated time is strictly positive and finite, with no
  negative component; flops/DMA bytes are non-negative;
* **overlap consistency** — total time is at least the slowest component
  stream (the dual-pipeline overlap rule can hide, never create, time);
* **DMA conservation** — the priced traffic covers at least the operand
  and result payloads the kernel must touch;
* **monotonicity** — doubling the problem size never reduces flops or DMA
  traffic, and (except for plans with documented pipeline-fill artifacts)
  never reduces simulated time;
* **LDM budget** — blocked execution paths never allocate more scratchpad
  than one CPE's 64 KiB (enforced by running them against the
  :class:`~repro.hw.ldm.LDMAllocator`, which raises on overflow, and by
  auditing the high-water mark afterwards).
"""

from __future__ import annotations

import math
from typing import Any

from repro.kernels.gemm import SWGemmPlan
from repro.kernels.plan import KernelPlan, PlanCost


class InvariantViolation(AssertionError):
    """A cost-model sanity check failed."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise InvariantViolation(message)


def check_cost_sane(cost: PlanCost, label: str = "plan") -> None:
    """Positivity/finiteness/overlap checks on one simulated cost."""
    for name in ("compute_s", "dma_s", "rlc_s", "overhead_s", "flops", "dma_bytes"):
        value = getattr(cost, name)
        _require(math.isfinite(value), f"{label}: {name} is not finite ({value})")
        _require(value >= 0.0, f"{label}: {name} is negative ({value})")
    _require(cost.total_s > 0.0, f"{label}: total simulated time must be > 0")
    floor = max(cost.compute_s, cost.dma_s, cost.rlc_s)
    _require(
        cost.total_s >= floor - 1e-18,
        f"{label}: total {cost.total_s} below slowest component {floor} "
        "(overlap cannot create time)",
    )


def check_dma_conserved(cost: PlanCost, min_bytes: float, label: str = "plan") -> None:
    """The priced DMA traffic must cover the operand/result payloads."""
    _require(
        cost.dma_bytes >= min_bytes * (1.0 - 1e-9),
        f"{label}: cost prices {cost.dma_bytes:.0f} DMA bytes but the "
        f"kernel must move at least {min_bytes:.0f} (payload not conserved)",
    )


def check_monotone(
    small: PlanCost, big: PlanCost, *, time_monotone: bool = True, label: str = "plan"
) -> None:
    """Doubling the problem must not shrink work, traffic, or (usually) time."""
    _require(
        big.flops >= small.flops,
        f"{label}: flops decreased when scaling up ({small.flops} -> {big.flops})",
    )
    _require(
        big.dma_bytes >= small.dma_bytes * (1.0 - 1e-9),
        f"{label}: DMA bytes decreased when scaling up "
        f"({small.dma_bytes} -> {big.dma_bytes})",
    )
    if time_monotone:
        _require(
            big.total_s >= small.total_s * (1.0 - 1e-9),
            f"{label}: simulated time decreased when scaling up "
            f"({small.total_s} -> {big.total_s})",
        )
    else:
        # Even with fill artifacts the *rate* must be monotone: more work
        # never runs at a lower achieved Gflop/s (the paper's Table II trend).
        if small.flops > 0 and big.flops > small.flops:
            _require(
                big.gflops >= small.gflops * 0.999,
                f"{label}: achieved rate decreased when scaling up "
                f"({small.gflops} -> {big.gflops} Gflop/s)",
            )


def check_ldm_budget(plan: KernelPlan, label: str = "plan") -> None:
    """Static LDM audits + the post-run high-water mark.

    The blocked functional paths allocate through the LDM allocator, which
    raises on overflow; this check additionally audits the recorded
    high-water mark (catching buffers freed before the overflow would hit)
    and, for GEMM, re-validates the chosen blocking against the budget.
    """
    ldm = plan.core_group.cpes[0].ldm
    _require(
        ldm.high_water <= ldm.capacity,
        f"{label}: LDM high-water {ldm.high_water} B exceeds the "
        f"{ldm.capacity} B scratchpad",
    )
    if isinstance(plan, SWGemmPlan):
        blk = plan.blocking
        _require(
            plan._ldm_fit(blk.mb, blk.nb, blk.kb),
            f"{label}: chosen GEMM blocking {blk} does not fit in LDM",
        )


def check_plan(
    spec: Any,
    config: dict[str, Any],
    plan: KernelPlan,
) -> None:
    """Run the full invariant battery for one fuzzed plan.

    ``spec`` is a :class:`repro.testing.registry.KernelSpec`; the import is
    deferred to keep this module registry-agnostic (the mutation smoke
    tests feed it hand-built specs).
    """
    label = f"{spec.name}{config}"
    cost = plan.cost()
    check_cost_sane(cost, label)
    if spec.min_dma_bytes is not None:
        check_dma_conserved(cost, spec.min_dma_bytes(config), label)
    if spec.scale_up is not None:
        big_config = spec.scale_up(config)
        big_cost = spec.build(big_config).cost()
        check_monotone(
            cost, big_cost, time_monotone=spec.time_monotone, label=label
        )
    check_ldm_budget(plan, label)


def check_collective_result(result: Any, p: int, label: str = "collective") -> None:
    """Sanity on a :class:`CollectiveResult`: non-negative, finite, priced."""
    if result is None:
        return
    _require(math.isfinite(result.time_s), f"{label}: simulated time not finite")
    _require(result.time_s >= 0.0, f"{label}: negative simulated time")
    _require(result.steps >= 0, f"{label}: negative step count")
    _require(
        len(result.step_times) == result.steps,
        f"{label}: step log length {len(result.step_times)} != steps {result.steps}",
    )
    if p > 1 and result.steps > 0:
        _require(
            result.time_s > 0.0,
            f"{label}: {result.steps} communication steps priced at zero time",
        )
