"""Slow-but-obviously-correct dense references for the conformance layer.

Every function here trades speed for inspectability: explicit Python loops
over the mathematical definition, float64 accumulation, no layout tricks.
The differential fuzzer compares each optimized kernel plan and collective
algorithm against these, so the references deliberately share *no code*
with the implementations they check (``repro.kernels`` lowers to GEMM and
blocked DMA schedules; these walk the textbook formulas).
"""

from __future__ import annotations

import numpy as np


# --------------------------------------------------------------------------- #
# dense linear algebra
# --------------------------------------------------------------------------- #
def ref_gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """C[i, j] = sum_k A[i, k] * B[k, j], row by row in float64."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    m, k = a.shape
    k2, n = b.shape
    assert k == k2, f"GEMM shape mismatch: {a.shape} @ {b.shape}"
    c = np.zeros((m, n), dtype=np.float64)
    for i in range(m):
        for j in range(n):
            c[i, j] = float(np.dot(a[i, :], b[:, j]))
    return c


def ref_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Shift-stabilized softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


# --------------------------------------------------------------------------- #
# convolution / pooling
# --------------------------------------------------------------------------- #
def _pad_input(x: np.ndarray, pad: int, value: float = 0.0) -> np.ndarray:
    if pad == 0:
        return x
    return np.pad(
        x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), constant_values=value
    )


def ref_conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Cross-correlation (Caffe convention) by direct window sums.

    ``x`` is (B, Ni, H, W), ``weight`` (No, Ni, K, K); output (B, No, Ho, Wo).
    """
    x = np.asarray(x, dtype=np.float64)
    weight = np.asarray(weight, dtype=np.float64)
    batch, ni, h, w = x.shape
    no, ni2, k, k2 = weight.shape
    assert ni == ni2 and k == k2
    xp = _pad_input(x, pad)
    out_h = (h + 2 * pad - k) // stride + 1
    out_w = (w + 2 * pad - k) // stride + 1
    out = np.zeros((batch, no, out_h, out_w), dtype=np.float64)
    for b in range(batch):
        for o in range(no):
            for oh in range(out_h):
                for ow in range(out_w):
                    window = xp[
                        b, :, oh * stride : oh * stride + k, ow * stride : ow * stride + k
                    ]
                    out[b, o, oh, ow] = float(np.sum(window * weight[o]))
    if bias is not None:
        out += np.asarray(bias, dtype=np.float64).reshape(1, no, 1, 1)
    return out


def ref_conv2d_backward(
    x: np.ndarray,
    weight: np.ndarray,
    dy: np.ndarray,
    stride: int = 1,
    pad: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients of :func:`ref_conv2d` by direct accumulation.

    Returns ``(dx, dw, db)``: each output pixel's gradient is scattered
    back into the input window and the filter that produced it.
    """
    x = np.asarray(x, dtype=np.float64)
    weight = np.asarray(weight, dtype=np.float64)
    dy = np.asarray(dy, dtype=np.float64)
    batch, ni, h, w = x.shape
    no, _, k, _ = weight.shape
    _, _, out_h, out_w = dy.shape
    xp = _pad_input(x, pad)
    dxp = np.zeros_like(xp)
    dw = np.zeros_like(weight)
    for b in range(batch):
        for o in range(no):
            for oh in range(out_h):
                for ow in range(out_w):
                    g = dy[b, o, oh, ow]
                    hi, wi = oh * stride, ow * stride
                    dxp[b, :, hi : hi + k, wi : wi + k] += g * weight[o]
                    dw[o] += g * xp[b, :, hi : hi + k, wi : wi + k]
    dx = dxp[:, :, pad : pad + h, pad : pad + w] if pad else dxp
    db = dy.sum(axis=(0, 2, 3))
    return np.ascontiguousarray(dx), dw, db


def ref_pool2d(
    x: np.ndarray, k: int, stride: int | None = None, pad: int = 0, mode: str = "max"
) -> np.ndarray:
    """Max/average pooling by direct window reduction."""
    assert mode in ("max", "avg")
    x = np.asarray(x, dtype=np.float64)
    stride = k if stride is None else stride
    batch, c, h, w = x.shape
    pad_val = -np.inf if mode == "max" else 0.0
    xp = _pad_input(x, pad, value=pad_val)
    out_h = (h + 2 * pad - k) // stride + 1
    out_w = (w + 2 * pad - k) // stride + 1
    out = np.zeros((batch, c, out_h, out_w), dtype=np.float64)
    for b in range(batch):
        for ch in range(c):
            for oh in range(out_h):
                for ow in range(out_w):
                    window = xp[
                        b, ch, oh * stride : oh * stride + k, ow * stride : ow * stride + k
                    ]
                    out[b, ch, oh, ow] = (
                        float(np.max(window)) if mode == "max" else float(np.mean(window))
                    )
    return out


def ref_im2col(x: np.ndarray, k: int, stride: int = 1, pad: int = 0) -> np.ndarray:
    """Column matrix (Ni*K*K, Ho*Wo) built one patch at a time.

    ``x`` is a single image (Ni, H, W); the row ordering matches Caffe's
    (channel-major, then kernel row, then kernel column).
    """
    x = np.asarray(x, dtype=np.float64)
    ni, h, w = x.shape
    xp = (
        np.pad(x, ((0, 0), (pad, pad), (pad, pad))) if pad else x
    )
    out_h = (h + 2 * pad - k) // stride + 1
    out_w = (w + 2 * pad - k) // stride + 1
    cols = np.zeros((ni * k * k, out_h * out_w), dtype=np.float64)
    col = 0
    for oh in range(out_h):
        for ow in range(out_w):
            patch = xp[:, oh * stride : oh * stride + k, ow * stride : ow * stride + k]
            cols[:, col] = patch.reshape(-1)
            col += 1
    return cols


def ref_transform(x: np.ndarray, to_implicit: bool) -> np.ndarray:
    """Explicit (B, N, R, C) <-> implicit (R, C, N, B) relayout, index by index."""
    x = np.asarray(x)
    if to_implicit:
        b, n, r, c = x.shape
        out = np.zeros((r, c, n, b), dtype=x.dtype)
        for bi in range(b):
            for ni in range(n):
                for ri in range(r):
                    out[ri, :, ni, bi] = x[bi, ni, ri, :]
        return out
    r, c, n, b = x.shape
    out = np.zeros((b, n, r, c), dtype=x.dtype)
    for bi in range(b):
        for ni in range(n):
            for ri in range(r):
                out[bi, ni, ri, :] = x[ri, :, ni, bi]
    return out


# --------------------------------------------------------------------------- #
# collective semantics
# --------------------------------------------------------------------------- #
def ref_reduce(buffers: list[np.ndarray], average: bool = False) -> np.ndarray:
    """Elementwise sum (or mean) of all rank buffers, in float64."""
    acc = np.zeros_like(np.asarray(buffers[0], dtype=np.float64))
    for b in buffers:
        acc = acc + np.asarray(b, dtype=np.float64)
    if average:
        acc = acc / len(buffers)
    return acc


def ref_allreduce(buffers: list[np.ndarray], average: bool = False) -> list[np.ndarray]:
    """Every rank ends with the same reduced vector."""
    reduced = ref_reduce(buffers, average=average)
    return [reduced.copy() for _ in buffers]


def ref_broadcast(buffers: list[np.ndarray], root: int = 0) -> list[np.ndarray]:
    """Every rank ends with the root's buffer."""
    src = np.asarray(buffers[root], dtype=np.float64)
    return [src.copy() for _ in buffers]
