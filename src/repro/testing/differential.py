"""Seeded differential fuzzer: plan-vs-reference with reproducible seeds.

Every fuzzed configuration is addressed by a *seed string* of the form
``"<spec>:<base_seed_hex>:<index>"`` (e.g. ``"conv_implicit:0x5caffe:17"``).
The string fully determines the sampled configuration and all random
inputs, so any failure reported by CI can be replayed locally with
:func:`reproduce`.

For each configuration the fuzzer:

1. samples a config from the spec's edge-case-biased sampler;
2. builds the plan and runs the cost-invariant battery
   (:func:`repro.testing.invariants.check_plan`);
3. executes the plan's functional path(s) against the dense reference and
   records the maximum ulp / absolute mismatch.

A configuration *passes* when every comparison is within the spec's
tolerance and every invariant holds; otherwise the report carries the
failing label and the seed string to reproduce it.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.testing import registry
from repro.testing.invariants import InvariantViolation, check_collective_result, check_plan

#: Default fuzz namespace (the package-wide deterministic seed).
BASE_SEED = 0x5CAFFE


# --------------------------------------------------------------------------- #
# seed strings
# --------------------------------------------------------------------------- #
def seed_string(name: str, index: int, base_seed: int = BASE_SEED) -> str:
    """Canonical reproducible address of one fuzz configuration."""
    return f"{name}:{base_seed:#x}:{index}"


def parse_seed_string(s: str) -> tuple[str, int, int]:
    """Invert :func:`seed_string` -> ``(name, base_seed, index)``."""
    try:
        name, base_hex, index = s.rsplit(":", 2)
        return name, int(base_hex, 16), int(index)
    except ValueError as exc:
        raise ValueError(
            f"malformed seed string {s!r} (expected '<spec>:<hex>:<index>')"
        ) from exc


def config_rng(name: str, index: int, base_seed: int = BASE_SEED) -> np.random.Generator:
    """Deterministic generator for one (spec, index) pair.

    The spec name is folded in via CRC32 so two specs at the same index
    never share a stream.
    """
    tag = zlib.crc32(name.encode("utf-8"))
    return np.random.default_rng([base_seed, tag, index])


# --------------------------------------------------------------------------- #
# reports
# --------------------------------------------------------------------------- #
def max_ulp_diff(a: np.ndarray, b: np.ndarray) -> float:
    """Largest elementwise distance in units-in-the-last-place (float64)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        return float("inf")
    if a.size == 0:
        return 0.0
    scale = np.spacing(np.maximum(np.abs(a), np.abs(b)))
    scale = np.maximum(scale, np.finfo(np.float64).tiny)
    return float(np.max(np.abs(a - b) / scale))


@dataclass
class FuzzReport:
    """Outcome of one fuzzed configuration."""

    spec: str
    index: int
    seed: str
    config: dict[str, Any]
    ok: bool = True
    max_ulp: float = 0.0
    max_abs: float = 0.0
    failures: list[str] = field(default_factory=list)

    def __str__(self) -> str:
        status = "ok" if self.ok else "FAIL"
        head = f"[{status}] {self.seed} {self.config} ulp={self.max_ulp:.3g}"
        if self.failures:
            head += "\n  " + "\n  ".join(self.failures)
        return head


def summarize(reports: list[FuzzReport]) -> str:
    """One-line digest plus every failing seed string (for CI logs)."""
    bad = [r for r in reports if not r.ok]
    head = f"{len(reports) - len(bad)}/{len(reports)} configs ok"
    if bad:
        head += "; reproduce failures with repro.testing.reproduce(seed):\n"
        head += "\n".join(str(r) for r in bad)
    return head


# --------------------------------------------------------------------------- #
# kernel fuzzing
# --------------------------------------------------------------------------- #
def run_kernel_case(
    spec: registry.KernelSpec, index: int, base_seed: int = BASE_SEED
) -> FuzzReport:
    """Fuzz one configuration of one kernel spec (invariants + differential)."""
    rng = config_rng(spec.name, index, base_seed)
    config = spec.sample(rng)
    report = FuzzReport(
        spec=spec.name,
        index=index,
        seed=seed_string(spec.name, index, base_seed),
        config=config,
    )
    try:
        plan = spec.build(config)
    except Exception as exc:  # an edge-case config the plan must accept
        report.ok = False
        report.failures.append(f"build raised {type(exc).__name__}: {exc}")
        return report

    try:
        check_plan(spec, config, plan)
    except InvariantViolation as exc:
        report.ok = False
        report.failures.append(f"invariant: {exc}")

    if spec.run is not None:
        try:
            comparisons = spec.run(plan, config, rng)
        except Exception as exc:
            report.ok = False
            report.failures.append(f"execution raised {type(exc).__name__}: {exc}")
            return report
        for label, actual, expected in comparisons:
            actual = np.asarray(actual, dtype=np.float64)
            expected = np.asarray(expected, dtype=np.float64)
            if actual.shape != expected.shape:
                report.ok = False
                report.failures.append(
                    f"{label}: shape {actual.shape} != reference {expected.shape}"
                )
                continue
            ulp = max_ulp_diff(actual, expected)
            abs_err = float(np.max(np.abs(actual - expected))) if actual.size else 0.0
            report.max_ulp = max(report.max_ulp, ulp)
            report.max_abs = max(report.max_abs, abs_err)
            if not np.allclose(actual, expected, rtol=spec.rtol, atol=spec.atol):
                report.ok = False
                report.failures.append(
                    f"{label}: max |err| {abs_err:.3g} ({ulp:.3g} ulp) exceeds "
                    f"rtol={spec.rtol} atol={spec.atol}"
                )
    return report


def fuzz_kernel(
    name: str, n_configs: int = 25, base_seed: int = BASE_SEED
) -> list[FuzzReport]:
    """Fuzz ``n_configs`` seeded configurations of a registered kernel."""
    spec = registry.get_kernel(name)
    return [run_kernel_case(spec, i, base_seed) for i in range(n_configs)]


# --------------------------------------------------------------------------- #
# collective fuzzing
# --------------------------------------------------------------------------- #
def _collective_config(
    spec: registry.CollectiveSpec, rng: np.random.Generator
) -> dict[str, Any]:
    p = int(rng.choice(np.asarray(spec.ranks)))
    n = int(rng.choice(np.asarray([1, 3, 17, 64, 255, 1024])))
    average = bool(rng.choice(np.asarray(spec.reduce_ops)))
    root = int(rng.integers(0, p))
    return {"p": p, "n": n, "average": average, "root": root}


def run_collective_case(
    spec: registry.CollectiveSpec, index: int, base_seed: int = BASE_SEED
) -> FuzzReport:
    """Fuzz one configuration of one collective spec."""
    rng = config_rng(spec.name, index, base_seed)
    config = _collective_config(spec, rng)
    report = FuzzReport(
        spec=spec.name,
        index=index,
        seed=seed_string(spec.name, index, base_seed),
        config=config,
    )
    p, n = config["p"], config["n"]
    inputs = [rng.normal(size=n) for _ in range(p)]
    comm = registry.make_fuzz_comm(p)
    try:
        outputs, result = spec.execute(comm, inputs, config)
    except Exception as exc:
        report.ok = False
        report.failures.append(f"execution raised {type(exc).__name__}: {exc}")
        return report
    try:
        check_collective_result(result, p, label=spec.name)
    except InvariantViolation as exc:
        report.ok = False
        report.failures.append(f"invariant: {exc}")
    expected = spec.reference(inputs, config)
    if len(outputs) != len(expected):
        report.ok = False
        report.failures.append(
            f"rank count mismatch: {len(outputs)} outputs vs {len(expected)} expected"
        )
        return report
    for rank, (actual, want) in enumerate(zip(outputs, expected)):
        actual = np.asarray(actual, dtype=np.float64).ravel()
        want = np.asarray(want, dtype=np.float64).ravel()
        if actual.shape != want.shape:
            report.ok = False
            report.failures.append(
                f"rank {rank}: shape {actual.shape} != reference {want.shape}"
            )
            continue
        ulp = max_ulp_diff(actual, want)
        report.max_ulp = max(report.max_ulp, ulp)
        if actual.size:
            report.max_abs = max(report.max_abs, float(np.max(np.abs(actual - want))))
        if not np.allclose(actual, want, rtol=spec.rtol, atol=spec.atol):
            report.ok = False
            report.failures.append(
                f"rank {rank}: result diverges from dense reference "
                f"(max {report.max_abs:.3g}, {ulp:.3g} ulp)"
            )
    return report


def fuzz_collective(
    name: str, n_configs: int = 25, base_seed: int = BASE_SEED
) -> list[FuzzReport]:
    """Fuzz ``n_configs`` seeded configurations of a registered collective."""
    spec = registry.get_collective(name)
    return [run_collective_case(spec, i, base_seed) for i in range(n_configs)]


# --------------------------------------------------------------------------- #
# reproduction
# --------------------------------------------------------------------------- #
def reproduce(seed: str) -> FuzzReport:
    """Re-run the exact configuration a seed string addresses."""
    name, base_seed, index = parse_seed_string(seed)
    if name in registry.KERNELS:
        return run_kernel_case(registry.get_kernel(name), index, base_seed)
    if name in registry.COLLECTIVES:
        return run_collective_case(registry.get_collective(name), index, base_seed)
    raise KeyError(
        f"{name!r} is not a registered kernel or collective "
        f"(kernels: {registry.kernel_names()}; collectives: {registry.collective_names()})"
    )
