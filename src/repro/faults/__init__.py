"""Seeded fault injection and elastic recovery for the simulated machine.

The subsystem has four parts:

* :mod:`repro.faults.plan` — :class:`FaultPlan`: a seeded, replayable
  schedule of typed faults (seed-string spec ``"<profile>:<hex>:<index>"``);
* :mod:`repro.faults.injector` — the ambient, zero-overhead-when-disabled
  delivery plane hooked into ``repro.hw`` and ``repro.simmpi``;
* :mod:`repro.faults.recovery` — shrink / renumber / rewind helpers used
  by the elastic trainer after a rank crash;
* :mod:`repro.faults.session` — ``run_chaos``: a full faulted training run
  plus its fault-free reference, backing ``python -m repro chaos``.

Only ``plan`` and ``injector`` are imported here: the hook sites inside
``repro.hw``/``repro.simmpi`` import this package, so pulling in
``recovery``/``session`` (which import those layers back) would cycle.
See ``docs/robustness.md``.
"""

from repro.faults.injector import (
    NULL_INJECTOR,
    FaultInjector,
    NullInjector,
    active,
    charge_transient,
    injecting,
    install,
    suspended,
)
from repro.faults.plan import (
    BASE_SEED,
    PROFILES,
    SITE_KINDS,
    TRANSIENT_SITES,
    FaultPlan,
    conformance_seeds,
    parse_seed_string,
    seed_string,
    zero_plan,
)

__all__ = [
    "BASE_SEED",
    "PROFILES",
    "SITE_KINDS",
    "TRANSIENT_SITES",
    "FaultPlan",
    "FaultInjector",
    "NullInjector",
    "NULL_INJECTOR",
    "active",
    "charge_transient",
    "conformance_seeds",
    "injecting",
    "install",
    "parse_seed_string",
    "seed_string",
    "suspended",
    "zero_plan",
]
