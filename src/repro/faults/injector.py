"""The fault injector: ambient delivery of a plan's faults into the hooks.

Mirrors the design of :mod:`repro.trace.tracer` and
:mod:`repro.metrics.registry`: injection is ambient and **off by default**.
:func:`active` returns a shared :class:`NullInjector` whose ``enabled``
attribute is False, so every instrumentation site costs one function call
and one attribute check when disabled and never perturbs simulated-time
arithmetic (pinned by ``tests/test_faults_chaos.py``). Enable with
:func:`injecting`::

    from repro.faults import FaultPlan, injecting

    plan = FaultPlan.from_seed("chaos:0x5caffe:0", ranks=4, iterations=8)
    with injecting(plan) as fi:
        trainer.step(8)
    print(fi.injected, fi.retries)

Hook sites live in :mod:`repro.hw.dma` / :mod:`repro.hw.rlc` (transient
corruption + retry-with-backoff on the :class:`~repro.hw.clock.SimClock`),
:mod:`repro.hw.mesh_sim` (bus bandwidth degradation), and
:mod:`repro.simmpi.comm` (straggler slowdown, flaky-link step retries,
crash timeouts). The shared :func:`charge_transient` helper keeps the
DMA/RLC/comm sites identical: decide, emit trace spans, feed the
``faults.*`` counters, charge the clock.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from contextlib import contextmanager
from typing import Iterator, Sequence

from repro.faults.plan import SITE_KINDS, FaultPlan
from repro.metrics.registry import active as _metrics
from repro.trace.tracer import active as _tracer


class FaultInjector:
    """Delivers one :class:`FaultPlan`'s faults, keeping replayable counts.

    Per-site invocation counters make transient decisions reproducible:
    the ``n``-th DMA transfer of a run faults iff the plan says invocation
    ``n`` faults, independent of what any other site did in between.
    """

    #: Instrumentation sites check this before doing any work.
    enabled: bool = True

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._site_calls: dict[str, int] = defaultdict(int)
        #: Faults delivered so far, by kind (dma_corrupt, rank_crash, ...).
        self.injected: Counter[str] = Counter()
        #: Total transient retries performed.
        self.retries: int = 0
        #: Communicator rebuilds performed by elastic recovery.
        self.rank_rebuilds: int = 0
        #: Iteration cursor (set by the trainer via :meth:`begin_iteration`).
        self.iteration: int = 0
        #: Logical-rank -> external-rank map for straggler lookup after a
        #: shrink (identity by default).
        self._rank_map: tuple[int, ...] | None = None

    # ------------------------------------------------------------------ #
    # transient faults
    # ------------------------------------------------------------------ #
    def transient(self, site: str, base_s: float) -> tuple[int, float]:
        """Decide the next invocation of ``site``: ``(retries, extra_seconds)``.

        Advances the site's invocation counter; ``extra_seconds`` accounts
        each retry at the operation's own duration plus exponential backoff.
        """
        n = self._site_calls[site]
        self._site_calls[site] = n + 1
        k = self.plan.transient_faults(site, n)
        if k == 0:
            return 0, 0.0
        self.injected[SITE_KINDS[site]] += k
        self.retries += k
        return k, self.plan.retry_overhead_s(base_s, k)

    # ------------------------------------------------------------------ #
    # degradations
    # ------------------------------------------------------------------ #
    def mesh_degrade(self) -> float:
        """Bandwidth-cut multiplier (>= 1) for a mesh-bus schedule."""
        factor = self.plan.mesh_factor
        if factor > 1.0:
            self.injected["mesh_degrade"] += 1
        return factor

    def comm_scale(self, rank_a: int, rank_b: int) -> float:
        """Straggler slowdown of one pairwise exchange (max of both ends)."""
        a, b = self._external(rank_a), self._external(rank_b)
        return max(self.plan.straggler_factor(a), self.plan.straggler_factor(b))

    # ------------------------------------------------------------------ #
    # crashes / elastic recovery
    # ------------------------------------------------------------------ #
    def begin_iteration(self, iteration: int) -> None:
        """Move the crash-schedule cursor to ``iteration``."""
        self.iteration = int(iteration)

    def failed_ranks(self) -> frozenset[int]:
        """External ids of all ranks dead at the current iteration."""
        return self.plan.crashed_by(self.iteration)

    def set_rank_map(self, external_ids: Sequence[int] | None) -> None:
        """Map logical ranks to external ids after an elastic shrink."""
        self._rank_map = None if external_ids is None else tuple(external_ids)

    def _external(self, logical_rank: int) -> int:
        if self._rank_map is None or not 0 <= logical_rank < len(self._rank_map):
            return logical_rank
        return self._rank_map[logical_rank]

    def note_slow(self) -> None:
        """Record one collective step stretched by a straggler."""
        self.injected["straggler"] += 1

    def note_crash(self, ranks: frozenset[int]) -> None:
        """Record delivered rank crashes (called by the timeout site)."""
        self.injected["rank_crash"] += len(ranks)

    def note_rebuild(self) -> None:
        """Record one elastic communicator rebuild."""
        self.rank_rebuilds += 1


class NullInjector(FaultInjector):
    """The disabled injector: deciding anything is an instrumentation bug.

    Hook sites guard with ``if fi.enabled:``, so with the null injector
    installed the per-call cost is one function call and one attribute
    check — and no simulated-time arithmetic ever depends on it.
    """

    enabled = False

    def __init__(self) -> None:  # no plan to hold
        pass

    def _bug(self) -> RuntimeError:
        return RuntimeError(
            "NullInjector consulted; guard fault hooks with `if injector.enabled`"
        )

    def transient(self, site: str, base_s: float) -> tuple[int, float]:
        raise self._bug()

    def mesh_degrade(self) -> float:
        raise self._bug()

    def comm_scale(self, rank_a: int, rank_b: int) -> float:
        raise self._bug()

    def failed_ranks(self) -> frozenset[int]:
        raise self._bug()


#: Shared disabled injector; identity-compared by tests.
NULL_INJECTOR = NullInjector()

_active: FaultInjector = NULL_INJECTOR


def active() -> FaultInjector:
    """The ambient injector (the shared :data:`NULL_INJECTOR` when disabled)."""
    return _active


def install(injector: FaultInjector) -> FaultInjector:
    """Make ``injector`` ambient; returns the previously installed one."""
    global _active
    previous = _active
    _active = injector
    return previous


@contextmanager
def injecting(plan_or_injector: FaultPlan | FaultInjector) -> Iterator[FaultInjector]:
    """Enable fault injection for the block; yields the injector."""
    fi = (
        plan_or_injector
        if isinstance(plan_or_injector, FaultInjector)
        else FaultInjector(plan_or_injector)
    )
    previous = install(fi)
    try:
        yield fi
    finally:
        install(previous)


@contextmanager
def suspended() -> Iterator[None]:
    """Temporarily disable injection (e.g. around reference computations)."""
    previous = install(NULL_INJECTOR)
    try:
        yield
    finally:
        install(previous)


# --------------------------------------------------------------------------- #
# the shared transient hook
# --------------------------------------------------------------------------- #
def charge_transient(site: str, clock, base_s: float, *, track: str) -> int:
    """Hook helper for DMA/RLC/comm sites: inject, observe, charge, retry.

    No-op (beyond the enabled check) when injection is disabled. When the
    plan faults this invocation: emits a ``fault_inject`` instant plus a
    ``fault_retry`` span on ``track``, feeds the ``faults.*`` counters, and
    advances ``clock`` by the retry overhead under the ``"fault"`` category.
    Returns the number of retries injected.
    """
    fi = active()
    if not fi.enabled:
        return 0
    k, extra = fi.transient(site, base_s)
    if k == 0:
        return 0
    kind = SITE_KINDS[site]
    tr = _tracer()
    if tr.enabled:
        tr.instant_event(
            kind, "fault_inject", track=track, start=clock.now, args={"retries": k}
        )
        tr.emit(
            f"{kind} retry", "fault_retry", track=track,
            start=clock.now, dur=extra, args={"retries": k, "base_s": base_s},
        )
    mx = _metrics()
    if mx.enabled:
        mx.count("faults.injected", k, kind=kind)
        mx.count("faults.retries", k)
        mx.count("faults.retry_s", extra)
    clock.advance(extra, category="fault")
    return k


def transient_delay(site: str, base_s: float, *, track: str, at_s: float) -> float:
    """Clock-less sibling of :func:`charge_transient` for event-driven hosts.

    The serving engine (:mod:`repro.serve.engine`) keeps its own event time
    instead of a :class:`~repro.hw.clock.SimClock`, so this variant returns
    the retry overhead in seconds for the caller to add to its timeline —
    same decision, same trace spans (pinned at ``at_s``), same ``faults.*``
    counters. Returns 0.0 when injection is disabled or the invocation
    succeeds first try.
    """
    fi = active()
    if not fi.enabled:
        return 0.0
    k, extra = fi.transient(site, base_s)
    if k == 0:
        return 0.0
    kind = SITE_KINDS[site]
    tr = _tracer()
    if tr.enabled:
        tr.instant_event(
            kind, "fault_inject", track=track, start=at_s, args={"retries": k}
        )
        tr.emit(
            f"{kind} retry", "fault_retry", track=track,
            start=at_s, dur=extra, args={"retries": k, "base_s": base_s},
        )
    mx = _metrics()
    if mx.enabled:
        mx.count("faults.injected", k, kind=kind)
        mx.count("faults.retries", k)
        mx.count("faults.retry_s", extra)
    return extra
