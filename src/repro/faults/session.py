"""Chaos sessions: one faulted training run plus its fault-free reference.

:func:`run_chaos` is the programmatic core of ``python -m repro chaos``: it
trains a net data-parallel under a seeded :class:`~repro.faults.plan.FaultPlan`
(elastic recovery enabled), then — unless ``verify=False`` — replays the
recorded recovery schedule in a fault-free reference run and checks the
final weights match bit-for-bit, which is the subsystem's acceptance
criterion (also pinned by ``tests/test_faults_chaos.py``).
"""

from __future__ import annotations

import tempfile
from collections import Counter
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.faults.injector import FaultInjector, injecting
from repro.faults.plan import FaultPlan
from repro.metrics.registry import MetricsRegistry, collecting
from repro.parallel.trainer import DistributedTrainer
from repro.trace.tracer import Tracer, tracing
from repro.utils.units import format_time


@dataclass
class ChaosReport:
    """Outcome of one chaos session."""

    seed: str
    plan: FaultPlan
    ranks: int
    iterations: int
    surviving_ranks: int = 0
    injected: Counter = field(default_factory=Counter)
    retries: int = 0
    rank_rebuilds: int = 0
    timeouts: int = 0
    fault_time_s: float = 0.0
    total_time_s: float = 0.0
    losses: list[float] = field(default_factory=list)
    recoveries: list[tuple[int, tuple[int, ...]]] = field(default_factory=list)
    #: ``None`` when verification was skipped.
    weights_match: bool | None = None

    def render(self) -> str:
        lines = [
            f"chaos run: seed {self.seed!r} ({self.plan.describe()})",
            f"  {self.iterations} iteration(s), {self.ranks} -> "
            f"{self.surviving_ranks} rank(s)",
        ]
        if self.injected:
            mix = ", ".join(f"{k} x{n}" for k, n in sorted(self.injected.items()))
            lines.append(f"  faults injected: {mix}")
        else:
            lines.append("  faults injected: none")
        lines.append(
            f"  retries {self.retries}, timeouts {self.timeouts}, "
            f"rank rebuilds {self.rank_rebuilds}"
        )
        lines.append(
            f"  simulated comm time {format_time(self.total_time_s)} "
            f"({format_time(self.fault_time_s)} lost to faults)"
        )
        for resume, survivors in self.recoveries:
            lines.append(
                f"  recovery: rolled back to iteration {resume}, "
                f"survivors {list(survivors)}"
            )
        if self.losses:
            lines.append(f"  loss {self.losses[0]:.4f} -> {self.losses[-1]:.4f}")
        if self.weights_match is not None:
            verdict = "bit-identical" if self.weights_match else "DIVERGED"
            lines.append(f"  vs fault-free reference: weights {verdict}")
        return "\n".join(lines)


def _replay_reference(
    net_factory: Callable,
    *,
    ranks: int,
    iterations: int,
    algorithm: str,
    nodes_per_supernode: int,
    recoveries: list[tuple[int, tuple[int, ...]]],
) -> DistributedTrainer:
    """A fault-free run at the recovered run's effective schedule.

    Replays each recorded recovery as a plain elastic shrink: full roster
    up to the resume iteration, survivors after — no faults, no rollback.
    """
    ref = DistributedTrainer(
        net_factory,
        ranks,
        algorithm=algorithm,
        nodes_per_supernode=nodes_per_supernode,
    )
    done = 0
    for resume, survivors in recoveries:
        if resume > done:
            ref.step(resume - done)
            done = resume
        ref.shrink_to(list(survivors))
    if iterations > done:
        ref.step(iterations - done)
    return ref


def run_chaos(
    net_factory: Callable,
    *,
    ranks: int,
    iterations: int,
    seed: str,
    algorithm: str = "rhd",
    nodes_per_supernode: int = 4,
    snapshot_every: int = 2,
    snapshot_dir: str | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    verify: bool = True,
) -> ChaosReport:
    """Train under a seeded fault plan; optionally verify bitwise recovery.

    ``net_factory`` takes a rank and returns an identically-initialized net
    (the :class:`DistributedTrainer` contract). Snapshots land in
    ``snapshot_dir`` (a fresh temporary directory by default).
    """
    plan = FaultPlan.from_seed(seed, ranks=ranks, iterations=iterations)
    if snapshot_dir is None:
        snapshot_dir = tempfile.mkdtemp(prefix="repro-chaos-")
    trainer = DistributedTrainer(
        net_factory,
        ranks,
        algorithm=algorithm,
        nodes_per_supernode=nodes_per_supernode,
        snapshot_prefix=f"{snapshot_dir}/chaos",
        snapshot_every=snapshot_every,
    )
    fi = FaultInjector(plan)
    mx = metrics if metrics is not None else MetricsRegistry()
    trace_ctx = tracing(tracer) if tracer is not None else nullcontext()
    with collecting(mx), trace_ctx, injecting(fi):
        stats = trainer.step(iterations)
    report = ChaosReport(
        seed=seed,
        plan=plan,
        ranks=ranks,
        iterations=iterations,
        surviving_ranks=trainer.n_workers,
        injected=Counter(fi.injected),
        retries=fi.retries,
        rank_rebuilds=fi.rank_rebuilds,
        timeouts=int(mx.value("faults.timeouts")),
        fault_time_s=(
            mx.value("faults.retry_s")
            + mx.value("faults.slow_s")
            + mx.value("faults.timeout_s")
        ),
        total_time_s=stats.comm_time_s,
        losses=list(stats.losses),
        recoveries=list(trainer.recoveries),
    )
    if verify:
        ref = _replay_reference(
            net_factory,
            ranks=ranks,
            iterations=iterations,
            algorithm=algorithm,
            nodes_per_supernode=nodes_per_supernode,
            recoveries=trainer.recoveries,
        )
        report.weights_match = bool(
            np.array_equal(
                trainer.packers[0].pack_data(), ref.packers[0].pack_data()
            )
        )
    return report
