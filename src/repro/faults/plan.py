"""Fault plans: seeded, replayable schedules of typed faults.

A :class:`FaultPlan` is the deterministic "what goes wrong" side of the
fault-injection plane. It is constructed from a *seed string* with the
same replay spec as the :mod:`repro.testing` fuzzer seeds —
``"<profile>:<base_seed_hex>:<index>"``, e.g. ``"chaos:0x5caffe:3"`` — so
any chaos failure reported by CI can be replayed locally bit-for-bit.

The fault taxonomy (see ``docs/robustness.md``):

* ``dma_corrupt`` — a DMA transfer is corrupted in flight; detected by the
  engine and retried with backoff (transient, data survives);
* ``rlc_fail`` — a register-bus message is lost and re-sent (transient);
* ``link_retry`` — a collective's lockstep exchange hits a flaky network
  link and repeats the step (transient);
* ``mesh_degrade`` — the CPE mesh's register buses run at a fraction of
  their bandwidth for the whole run (degradation, no retries);
* ``straggler`` — a rank's network exchanges are slowed by a constant
  factor (degradation);
* ``rank_crash`` — a rank dies at a scheduled iteration; collectives that
  include it time out and the elastic trainer shrinks around it.

Transient faults are decided *statelessly*: invocation ``n`` of a site
faults iff a CRC32-derived uniform of ``(seed, site, n)`` falls below the
plan's rate, so replaying a workload replays the exact same faults with no
shared RNG stream to keep in sync.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

#: Default chaos namespace (shared with the conformance fuzzer's seeds).
BASE_SEED = 0x5CAFFE

#: The fault-mix profiles a seed string may name.
PROFILES = ("transient", "degrade", "crash", "chaos")

#: Transient-fault call sites (first field of the stateless decision).
TRANSIENT_SITES = ("dma", "rlc", "comm")

#: Site -> fault kind, as reported in metrics labels and trace span names.
SITE_KINDS = {"dma": "dma_corrupt", "rlc": "rlc_fail", "comm": "link_retry"}


def seed_string(profile: str, index: int, base_seed: int = BASE_SEED) -> str:
    """Canonical replayable address of one fault schedule."""
    return f"{profile}:{base_seed:#x}:{index}"


def parse_seed_string(s: str) -> tuple[str, int, int]:
    """Invert :func:`seed_string` -> ``(profile, base_seed, index)``."""
    try:
        profile, base_hex, index = s.rsplit(":", 2)
        return profile, int(base_hex, 16), int(index)
    except ValueError as exc:
        raise ValueError(
            f"malformed fault seed {s!r} (expected '<profile>:<hex>:<index>')"
        ) from exc


def _hash_uniform(*parts: object) -> float:
    """Deterministic uniform in [0, 1) from a tuple of hashable parts."""
    tag = zlib.crc32("|".join(str(p) for p in parts).encode("utf-8"))
    return tag / 2**32


@dataclass(frozen=True)
class FaultPlan:
    """One seeded fault schedule over a ``ranks`` x ``iterations`` workload.

    Immutable and cheap to share: the ambient
    :class:`~repro.faults.injector.FaultInjector` holds one plan and asks
    it pointwise questions (does invocation ``n`` of site ``s`` fault? who
    is crashed by iteration ``t``?).
    """

    seed: str
    profile: str
    ranks: int
    iterations: int
    #: Per-invocation transient fault rates by site (0 disables a site).
    dma_rate: float = 0.0
    rlc_rate: float = 0.0
    comm_rate: float = 0.0
    #: Bandwidth-cut multiplier on mesh bus transfer times (1.0 = intact).
    mesh_factor: float = 1.0
    #: Logical rank -> slowdown factor (>= 1) on its network exchanges.
    stragglers: Mapping[int, float] = field(default_factory=dict)
    #: Scheduled ``(iteration, rank)`` crashes.
    crashes: tuple[tuple[int, int], ...] = ()
    #: Retry policy for transient faults.
    max_retries: int = 4
    backoff_base_s: float = 1e-6
    #: Time a collective waits before declaring a dead partner crashed.
    timeout_s: float = 1e-3

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_seed(cls, seed: str, *, ranks: int, iterations: int = 1) -> "FaultPlan":
        """Build the plan a seed string addresses for a given workload size."""
        profile, base_seed, index = parse_seed_string(seed)
        if profile not in PROFILES:
            raise ValueError(
                f"unknown fault profile {profile!r} (choose from {PROFILES})"
            )
        if ranks < 1 or iterations < 1:
            raise ValueError("ranks and iterations must be >= 1")
        rng = np.random.default_rng(
            [base_seed, zlib.crc32(profile.encode("utf-8")), index]
        )
        kwargs: dict = {}
        if profile in ("transient", "chaos"):
            kwargs["dma_rate"] = float(rng.uniform(0.05, 0.35))
            kwargs["rlc_rate"] = float(rng.uniform(0.05, 0.35))
            kwargs["comm_rate"] = float(rng.uniform(0.02, 0.20))
        if profile in ("degrade", "chaos"):
            kwargs["mesh_factor"] = float(rng.uniform(1.5, 4.0))
            n_slow = int(rng.integers(1, max(2, ranks // 2 + 1)))
            slow_ranks = rng.choice(ranks, size=min(n_slow, ranks), replace=False)
            kwargs["stragglers"] = {
                int(r): float(rng.uniform(1.5, 5.0)) for r in slow_ranks
            }
        if profile in ("crash", "chaos") and ranks > 1:
            # One crash, never at iteration 0 (there is always a pre-crash
            # snapshot) and never leaving zero survivors.
            it = int(rng.integers(1, iterations)) if iterations > 1 else 1
            rank = int(rng.integers(0, ranks))
            kwargs["crashes"] = ((it, rank),)
            if profile == "crash":
                kwargs["comm_rate"] = float(rng.uniform(0.0, 0.10))
        return cls(
            seed=seed, profile=profile, ranks=ranks, iterations=iterations, **kwargs
        )

    # ------------------------------------------------------------------ #
    # pointwise queries
    # ------------------------------------------------------------------ #
    def _rate(self, site: str) -> float:
        if site == "dma":
            return self.dma_rate
        if site == "rlc":
            return self.rlc_rate
        if site == "comm":
            return self.comm_rate
        raise ValueError(f"unknown transient site {site!r} (use {TRANSIENT_SITES})")

    def transient_faults(self, site: str, invocation: int) -> int:
        """Consecutive corruptions hitting invocation ``invocation`` of ``site``.

        0 means the invocation succeeds first try; ``k`` means ``k`` retries
        are needed. Deterministic in ``(seed, site, invocation)`` alone.
        """
        rate = self._rate(site)
        if rate <= 0.0:
            return 0
        u = _hash_uniform(self.seed, site, invocation)
        k, threshold = 0, rate
        while u < threshold and k < self.max_retries:
            k += 1
            threshold *= rate
        return k

    def retry_delay_s(self, attempt: int) -> float:
        """Exponential backoff before retry ``attempt`` (0-based)."""
        return self.backoff_base_s * 2.0**attempt

    def retry_overhead_s(self, base_s: float, n_retries: int) -> float:
        """Total extra seconds for re-running a ``base_s`` operation ``n`` times."""
        return sum(base_s + self.retry_delay_s(a) for a in range(n_retries))

    def straggler_factor(self, rank: int) -> float:
        """Slowdown multiplier (>= 1) of one rank's network exchanges."""
        return max(1.0, float(self.stragglers.get(rank, 1.0)))

    def crashes_at(self, iteration: int) -> frozenset[int]:
        """Ranks that die exactly at ``iteration``."""
        return frozenset(r for it, r in self.crashes if it == iteration)

    def crashed_by(self, iteration: int) -> frozenset[int]:
        """All ranks dead at or before ``iteration`` (crashes are permanent)."""
        return frozenset(r for it, r in self.crashes if it <= iteration)

    @property
    def has_faults(self) -> bool:
        """Whether this plan can perturb anything at all."""
        return bool(
            self.dma_rate > 0
            or self.rlc_rate > 0
            or self.comm_rate > 0
            or self.mesh_factor > 1.0
            or any(f > 1.0 for f in self.stragglers.values())
            or self.crashes
        )

    def describe(self) -> str:
        """One-line human summary (used by the chaos CLI report)."""
        parts = [f"profile={self.profile}"]
        if self.dma_rate:
            parts.append(f"dma_rate={self.dma_rate:.2f}")
        if self.rlc_rate:
            parts.append(f"rlc_rate={self.rlc_rate:.2f}")
        if self.comm_rate:
            parts.append(f"comm_rate={self.comm_rate:.2f}")
        if self.mesh_factor > 1.0:
            parts.append(f"mesh_factor={self.mesh_factor:.2f}")
        if self.stragglers:
            parts.append(
                "stragglers={%s}"
                % ", ".join(f"{r}: {f:.1f}x" for r, f in sorted(self.stragglers.items()))
            )
        if self.crashes:
            parts.append(
                "crashes=[%s]"
                % ", ".join(f"rank {r} @ iter {it}" for it, r in self.crashes)
            )
        return " ".join(parts)


def zero_plan(ranks: int = 1, iterations: int = 1) -> FaultPlan:
    """An enabled-but-empty plan: every rate 0, no crashes.

    Running under an injector holding this plan must be byte-identical to
    running with injection disabled (pinned by the chaos inertness tests).
    """
    return FaultPlan(
        seed="none", profile="transient", ranks=ranks, iterations=iterations
    )


def conformance_seeds(n_per_profile: int = 2, base_seed: int = BASE_SEED) -> list[str]:
    """The fault seeds ``pytest -m conformance`` replays (all profiles)."""
    return [
        seed_string(profile, i, base_seed)
        for profile in PROFILES
        for i in range(n_per_profile)
    ]
