"""Elastic-recovery building blocks: shrink, renumber, rewind.

When a rank crash surfaces as a :class:`~repro.errors.CollectiveTimeout`,
the elastic trainer (``repro.parallel.trainer``) recovers in three moves,
each of which lives here so the mutation tests can break them one at a
time:

1. :func:`survivor_indices` — drop the dead ranks from the active roster;
2. :func:`rebuild_comm` — build a fresh communicator for the survivors,
   re-deriving the RHD round-robin renumbering for the shrunken placement;
3. :func:`rewind_net_sources` — rewind every replica's data source to the
   resume iteration so the post-recovery batch schedule is bit-identical
   to an uninterrupted run at the surviving scale.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.simmpi.comm import SimComm
from repro.simmpi.reorder import block_placement, round_robin_placement
from repro.topology.fabric import TaihuLightFabric


def survivor_indices(active: Sequence[int], dead: Iterable[int]) -> list[int]:
    """The external rank ids still alive, in their original order.

    ``active`` lists the external ids currently participating (logical rank
    ``i`` is ``active[i]``); ``dead`` gives external ids declared crashed.
    """
    lost = set(dead)
    return [r for r in active if r not in lost]


def rebuild_comm(p: int, nodes_per_supernode: int = 4) -> SimComm:
    """A fresh communicator renumbered for ``p`` surviving ranks.

    Re-derives the paper's round-robin renumbering for the shrunken rank
    count when it still tiles the supernodes evenly; otherwise falls back
    to the trivial one-node-per-supernode placement (where block and
    round-robin coincide). The clock starts at zero — recovery downtime is
    accounted by the caller, not smuggled into the new communicator.
    """
    if p <= 0:
        raise ValueError("cannot rebuild a communicator for zero survivors")
    q = nodes_per_supernode if p % nodes_per_supernode == 0 else 1
    fabric = TaihuLightFabric(
        n_nodes=max(p, nodes_per_supernode), nodes_per_supernode=nodes_per_supernode
    )
    if q > 1:
        placement = round_robin_placement(p, q)
    else:
        placement = block_placement(p, 1)
    return SimComm(fabric, placement)


def rewind_net_sources(net, iteration: int) -> int:
    """Rewind a replica's data sources to the start of ``iteration``.

    Duck-types data layers: any layer with a ``source`` exposing
    ``seek(n_batches, batch_size)`` is rewound so its next batch is the one
    iteration ``iteration`` would consume in an uninterrupted run. Returns
    the number of sources rewound; stateless sources are left alone.
    """
    rewound = 0
    for layer in net.layers:
        source = getattr(layer, "source", None)
        seek = getattr(source, "seek", None)
        if seek is None:
            continue
        seek(int(iteration), int(getattr(layer, "batch_size")))
        rewound += 1
    return rewound
