"""Link-level contention model for the two-level TaihuLight network.

The cost models above assume cross-supernode traffic runs at 1/4 rate.
This module derives that factor instead of assuming it: each supernode's
uplink into the central switching network is provisioned with a quarter of
the aggregate node bandwidth (Sec. II-B: the central network "is designed
to use only a quarter of the potential bandwidth"), the supernode-local
network is non-blocking, and routes are static destination-based. Given a
set of concurrent flows, the model computes each flow's slowdown from the
most congested link on its path.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.topology.cost_model import OVERSUBSCRIPTION
from repro.topology.fabric import TaihuLightFabric


@dataclass(frozen=True)
class Flow:
    """One concurrent point-to-point transfer."""

    src: int
    dst: int
    nbytes: float


class ContentionModel:
    """Per-flow slowdowns under static destination-based routing.

    Links modeled per supernode: a non-blocking local crossbar (one full-
    rate port per node) plus an uplink and a downlink into the central
    switch, each with capacity ``q / OVERSUBSCRIPTION`` full-rate streams.
    A flow's rate is the full node rate divided by its path's worst
    contention factor.
    """

    def __init__(self, fabric: TaihuLightFabric) -> None:
        self.fabric = fabric
        self.uplink_capacity = fabric.nodes_per_supernode / OVERSUBSCRIPTION

    def slowdowns(self, flows: list[Flow]) -> list[float]:
        """Contention factor (>= 1) for each flow, in order."""
        for f in flows:
            self.fabric._check(f.src)
            self.fabric._check(f.dst)
        # Node ports: each node's NIC serializes its own flows.
        src_load = Counter(f.src for f in flows)
        dst_load = Counter(f.dst for f in flows)
        # Supernode uplinks/downlinks carry only cross traffic.
        up_load: Counter = Counter()
        down_load: Counter = Counter()
        for f in flows:
            if not self.fabric.same_supernode(f.src, f.dst):
                up_load[self.fabric.supernode_of(f.src)] += 1
                down_load[self.fabric.supernode_of(f.dst)] += 1
        out = []
        for f in flows:
            factor = float(max(src_load[f.src], dst_load[f.dst]))
            if not self.fabric.same_supernode(f.src, f.dst):
                s_up = self.fabric.supernode_of(f.src)
                s_down = self.fabric.supernode_of(f.dst)
                factor = max(
                    factor,
                    up_load[s_up] / self.uplink_capacity,
                    down_load[s_down] / self.uplink_capacity,
                )
            out.append(max(factor, 1.0))
        return out

    def step_time(self, flows: list[Flow]) -> float:
        """Duration of one lockstep phase: the slowest flow finishes last.

        Each flow's base time is its bytes at the full link curve; the
        contention factor divides its achieved bandwidth.
        """
        if not flows:
            return 0.0
        times = []
        for f, slow in zip(flows, self.slowdowns(flows)):
            base = self.fabric.network.ptp_time(f.nbytes)
            alpha = self.fabric.network.alpha
            times.append(alpha + (base - alpha) * slow)
        return max(times)

    def derived_oversubscription(self) -> float:
        """The cross-supernode slowdown when every node sends across —
        the situation the paper's beta2 models. Must equal 4."""
        q = self.fabric.nodes_per_supernode
        if self.fabric.n_supernodes < 2:
            raise ValueError("need at least two supernodes")
        flows = [Flow(src=i, dst=q + i, nbytes=1.0) for i in range(q)]
        return max(self.slowdowns(flows))
