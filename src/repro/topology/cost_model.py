"""Communication cost models for the TaihuLight network.

Two granularities are provided:

* :class:`LinearCostModel` — the textbook alpha-beta-gamma model the paper
  adopts from Thakur, Rabenseifner & Gropp for its allreduce analysis
  (Eqs. 2-6): message time = ``alpha + beta * n``; local reduction costs
  ``gamma`` per byte. Intra-supernode traffic pays ``beta1``; traffic across
  over-subscribed supernode boundaries pays ``beta2 = 4 * beta1`` (the
  central switching network is provisioned at 1/4 bandwidth).

* :class:`NetworkModel` — a size-dependent curve (saturating bandwidth plus
  fixed startup latency) calibrated to the measured P2P behaviour in Fig. 6,
  used for realistic end-to-end message pricing and for regenerating the
  figure itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import GB, US


#: Over-subscription factor of the central switching network (Sec. II-B:
#: "designed to use only a quarter of the potential bandwidth").
OVERSUBSCRIPTION = 4.0


@dataclass(frozen=True)
class LinearCostModel:
    """Alpha-beta-gamma model (Thakur et al.) for collective analysis.

    Attributes
    ----------
    alpha:
        Per-message startup latency in seconds.
    beta1:
        Transfer seconds per byte inside one supernode.
    beta2:
        Transfer seconds per byte across over-subscribed supernode links
        (``~ 4 * beta1`` on TaihuLight).
    gamma:
        Local reduction seconds per byte (depends on whether the sum runs
        on the MPE or on the CPE clusters; see :mod:`repro.parallel.packing`).
    """

    alpha: float
    beta1: float
    beta2: float
    gamma: float

    def ptp_time(self, nbytes: float, *, cross_supernode: bool = False) -> float:
        """Time to send one ``nbytes`` message point-to-point."""
        beta = self.beta2 if cross_supernode else self.beta1
        return self.alpha + beta * float(nbytes)

    def reduce_time(self, nbytes: float) -> float:
        """Time to locally reduce ``nbytes`` of received data."""
        return self.gamma * float(nbytes)


@dataclass(frozen=True)
class NetworkModel:
    """Size-dependent P2P model: startup latency + saturating bandwidth.

    ``bandwidth(n) = peak * n / (n + n_half)`` and
    ``time(n) = alpha + n / bandwidth(n)``. The ``n_half`` knee controls how
    quickly the curve ramps; the Sunway network ramps more slowly than
    Infiniband FDR, which is exactly the paper's observation that SW latency
    exceeds IB latency for messages larger than ~2 KB while peak bandwidth
    is higher.
    """

    name: str
    alpha: float
    peak_bw_uni: float
    peak_bw_bi: float
    n_half: float

    def bandwidth(self, nbytes: float, *, bidirectional: bool = False, oversubscribed: bool = False) -> float:
        """Achieved bandwidth in bytes/s for an ``nbytes`` message."""
        n = float(nbytes)
        if n <= 0:
            return 0.0
        peak = self.peak_bw_bi if bidirectional else self.peak_bw_uni
        if oversubscribed:
            peak /= OVERSUBSCRIPTION
        return peak * n / (n + self.n_half)

    def ptp_time(self, nbytes: float, *, oversubscribed: bool = False) -> float:
        """End-to-end time (the "latency" curve of Fig. 6) for one message."""
        n = float(nbytes)
        if n <= 0:
            return self.alpha
        return self.alpha + n / self.bandwidth(n, oversubscribed=oversubscribed)

    def effective_beta(self, nbytes: float, *, oversubscribed: bool = False) -> float:
        """Per-byte transfer time at a given message size (for Eqs. 2-6)."""
        return 1.0 / self.bandwidth(max(float(nbytes), 1.0), oversubscribed=oversubscribed)

    def to_linear(self, nbytes: float, gamma: float) -> LinearCostModel:
        """Freeze this curve at one message size into a linear model."""
        beta1 = self.effective_beta(nbytes)
        return LinearCostModel(
            alpha=self.alpha, beta1=beta1, beta2=beta1 * OVERSUBSCRIPTION, gamma=gamma
        )


#: The Sunway TaihuLight network, calibrated to Sec. II-B / Fig. 6:
#: theoretical 16 GB/s per link, ~12 GB/s achieved with MPI for very large
#: messages, microsecond startup latency, and a slow bandwidth ramp — the
#: measured latency curve sits above Infiniband FDR's for every message
#: larger than ~2 KB even though the Sunway link peaks higher.
SW_NETWORK = NetworkModel(
    name="Sunway",
    alpha=1.0 * US,
    peak_bw_uni=12 * GB,
    peak_bw_bi=20 * GB,
    n_half=1.75e6,
)

#: Effective network curve for *collective* operations at scale, used by
#: the Fig. 10/11 scaling study. MPI collectives on TaihuLight achieve far
#: less than the P2P link peak (the paper's own Fig. 6 latency panel shows
#: ~0.6 GB/s effective at 2 MB messages), and the paper's measured
#: communication fractions at 1024 nodes (Fig. 11: AlexNet ~1.1 s, ResNet-50
#: ~0.69 s per 232.6 / 97.7 MB allreduce) pin the effective per-link
#: collective bandwidth at ~0.65 GB/s with a multi-megabyte half-saturation
#: knee and ~1 ms of software overhead per collective step. See
#: EXPERIMENTS.md ("Fig. 10/11 calibration") for the derivation.
SW_COLLECTIVE_NETWORK = NetworkModel(
    name="Sunway-collective",
    alpha=1.0e-3,
    peak_bw_uni=0.651 * GB,
    peak_bw_bi=1.1 * GB,
    n_half=7.4e6,
)

#: Default linear model for allreduce analysis at large message sizes:
#: beta1 from the 12 GB/s achieved bandwidth, beta2 four times that, gamma
#: for an MPE-side reduction (the baseline the paper improves on).
SW_LINEAR = LinearCostModel(
    alpha=1.0 * US,
    beta1=1.0 / (12 * GB),
    beta2=OVERSUBSCRIPTION / (12 * GB),
    gamma=1.0 / (3.3 * GB),
)
