"""TaihuLight interconnect model.

The Sunway TaihuLight network is two-level (paper Sec. II-B): supernodes of
256 nodes with full intra-supernode bandwidth at the bottom, and a central
switching network between supernodes provisioned at only a quarter of full
bandwidth at the top. MPI point-to-point traffic reaches ~12 GB/s with
microsecond-level latency inside a supernode, and about 1/4 of that when the
central network is over-subscribed (Fig. 6).

This subpackage provides:

* :class:`~repro.topology.cost_model.LinearCostModel` — the alpha-beta-gamma
  model of Thakur et al. the paper uses for Eqs. 2-6;
* :class:`~repro.topology.cost_model.NetworkModel` — a size-dependent
  bandwidth/latency curve calibrated against Fig. 6;
* :class:`~repro.topology.fabric.TaihuLightFabric` — node/supernode layout
  and pairwise message pricing;
* :mod:`~repro.topology.infiniband` — the Infiniband FDR reference curve
  plotted alongside the Sunway network in Fig. 6.
"""

from repro.topology.cost_model import (
    LinearCostModel,
    NetworkModel,
    SW_NETWORK,
    SW_LINEAR,
    SW_COLLECTIVE_NETWORK,
)
from repro.topology.fabric import TaihuLightFabric
from repro.topology.infiniband import INFINIBAND_FDR
from repro.topology.node import ComputeNode
from repro.topology.routing import ContentionModel, Flow
from repro.topology.supernode import Supernode

__all__ = [
    "LinearCostModel",
    "NetworkModel",
    "SW_NETWORK",
    "SW_LINEAR",
    "SW_COLLECTIVE_NETWORK",
    "TaihuLightFabric",
    "INFINIBAND_FDR",
    "ComputeNode",
    "ContentionModel",
    "Flow",
    "Supernode",
]
