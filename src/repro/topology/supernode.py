"""Supernode grouping: 256 nodes on a fully provisioned local network."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.topology.node import ComputeNode

#: Nodes per supernode on TaihuLight (Sec. II-B).
NODES_PER_SUPERNODE = 256


@dataclass
class Supernode:
    """A group of nodes sharing the high-bandwidth bottom-level network."""

    supernode_id: int
    nodes: list[ComputeNode] = field(default_factory=list)

    def add_node(self, node: ComputeNode) -> None:
        """Attach a node; its supernode_id must match."""
        if node.supernode_id != self.supernode_id:
            raise ValueError(
                f"node {node.node_id} belongs to supernode {node.supernode_id}, "
                f"not {self.supernode_id}"
            )
        self.nodes.append(node)

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: ComputeNode) -> bool:
        return node.supernode_id == self.supernode_id
