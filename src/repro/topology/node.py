"""A TaihuLight compute node: one SW26010 processor plus one NIC.

Each node has a single FDR network port (the reason the paper rejects the
parameter-server scheme: one port cannot absorb gradients from thousands of
workers simultaneously).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.clock import SimClock
from repro.hw.processor import SW26010


@dataclass
class ComputeNode:
    """One node of the TaihuLight system."""

    node_id: int
    supernode_id: int
    clock: SimClock = field(default_factory=SimClock)

    def __post_init__(self) -> None:
        if self.node_id < 0 or self.supernode_id < 0:
            raise ValueError("node and supernode ids must be non-negative")
        self._processor: SW26010 | None = None

    @property
    def processor(self) -> SW26010:
        """The node's SW26010 processor (created lazily; it is heavyweight)."""
        if self._processor is None:
            self._processor = SW26010(clock=self.clock)
        return self._processor

    def __repr__(self) -> str:
        return f"ComputeNode(node_id={self.node_id}, supernode_id={self.supernode_id})"
