"""Infiniband FDR reference network model (Fig. 6 comparison curve).

FDR 4x links run at 56 Gbps signalling = 54.3 Gbps data rate ~ 6.8 GB/s.
Fig. 6 shows IB reaching its peak quickly (low ``n_half``) with sub-
microsecond startup latency, so IB beats the Sunway network on mid-size
messages even though the Sunway link peaks higher.
"""

from repro.topology.cost_model import NetworkModel
from repro.utils.units import GB, US

#: Infiniband FDR curve used as the comparison baseline in Fig. 6.
INFINIBAND_FDR = NetworkModel(
    name="Infiniband FDR",
    alpha=0.7 * US,
    peak_bw_uni=6.8 * GB,
    peak_bw_bi=12.5 * GB,
    n_half=8 * 1024.0,
)
