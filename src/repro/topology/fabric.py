"""The TaihuLight fabric: node layout and pairwise message pricing.

The fabric knows which physical node lives in which supernode and prices a
message between any two nodes: intra-supernode messages get full bandwidth,
inter-supernode messages cross the central switching network, which is
provisioned at 1/4 bandwidth and therefore over-subscribed whenever many
pairs cross simultaneously (the situation the paper's allreduce avoids).
"""

from __future__ import annotations

from repro.topology.cost_model import NetworkModel, SW_NETWORK
from repro.topology.node import ComputeNode
from repro.topology.supernode import NODES_PER_SUPERNODE, Supernode


class TaihuLightFabric:
    """Node/supernode layout plus message pricing.

    Parameters
    ----------
    n_nodes:
        Number of nodes in the allocation (the full machine has 40,960).
    nodes_per_supernode:
        Supernode size (256 on TaihuLight).
    network:
        P2P curve used to price messages; defaults to the calibrated
        Sunway model.
    """

    def __init__(
        self,
        n_nodes: int,
        nodes_per_supernode: int = NODES_PER_SUPERNODE,
        network: NetworkModel | None = None,
    ) -> None:
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        if nodes_per_supernode <= 0:
            raise ValueError("nodes_per_supernode must be positive")
        self.n_nodes = int(n_nodes)
        self.nodes_per_supernode = int(nodes_per_supernode)
        self.network = network or SW_NETWORK
        self.nodes = [
            ComputeNode(node_id=i, supernode_id=i // self.nodes_per_supernode)
            for i in range(self.n_nodes)
        ]
        self.supernodes: list[Supernode] = []
        for node in self.nodes:
            while node.supernode_id >= len(self.supernodes):
                self.supernodes.append(Supernode(supernode_id=len(self.supernodes)))
            self.supernodes[node.supernode_id].add_node(node)

    @property
    def n_supernodes(self) -> int:
        """Number of (possibly partial) supernodes in the allocation."""
        return len(self.supernodes)

    def supernode_of(self, node_id: int) -> int:
        """Supernode index of a physical node."""
        self._check(node_id)
        return node_id // self.nodes_per_supernode

    def same_supernode(self, a: int, b: int) -> bool:
        """Whether two physical nodes share a supernode."""
        return self.supernode_of(a) == self.supernode_of(b)

    def ptp_time(self, src: int, dst: int, nbytes: float, *, oversubscribed: bool | None = None) -> float:
        """Price one message between physical nodes.

        ``oversubscribed`` defaults to "the pair crosses supernodes": the
        conservative assumption that cross-supernode traffic in a dense
        collective step contends for the quarter-provisioned central
        network, which is how the paper models its Fig. 7 costs.
        """
        self._check(src)
        self._check(dst)
        if src == dst:
            return 0.0
        cross = not self.same_supernode(src, dst)
        over = cross if oversubscribed is None else oversubscribed
        return self.network.ptp_time(nbytes, oversubscribed=over)

    def _check(self, node_id: int) -> None:
        if not 0 <= node_id < self.n_nodes:
            raise ValueError(f"node {node_id} outside fabric of {self.n_nodes} nodes")
