"""Pipeline/hybrid iteration timing model, priced like the DP model.

Weak-scaling frame (the same one :class:`~repro.parallel.ssgd.
SSGDIterationModel` uses for figs. 10/11): at ``n`` nodes the global
batch is ``n * b``, where ``b`` is the per-node sub-batch the stage plan
was costed at. A pipeline group of ``S`` stages therefore streams
``S * b`` samples per iteration per replica, split into ``M``
microbatches — so each stage op costs ``stage_cost * S / M`` and each
boundary transfer moves ``cut_bytes * S / M`` (compute and activations
both scale linearly with batch in the per-layer cost model).

What each mode pays per iteration:

* **data-parallel** (the reference, priced by ``SSGDIterationModel``):
  full local compute plus a full-model allreduce across all ``n`` nodes;
* **pipeline** (``replicas=1``, ``S = n``): the walked schedule's
  makespan — compute plus fill/drain bubble plus boundary-activation
  transfers (kilobytes–megabytes, not the model) — and *no* gradient
  allreduce at all;
* **hybrid** (``S * R = n``): the same makespan, plus per-stage-group
  allreduces of only that stage's parameters across its ``R`` replicas.
  Stage groups are disjoint node sets, so their allreduces run
  concurrently and the iteration pays the slowest one.

Both allreduce and point-to-point pricing come from
:mod:`repro.parallel.comm_cost` — the identical helpers the fig10/fig11
pins gate — so the modes cannot drift onto different cost curves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.parallel.comm_cost import allreduce_cost, ptp_cost
from repro.parallel.threads import MultiCGRunner
from repro.pipeline.partition import StagePlan
from repro.pipeline.schedule import PipelineTimeline, simulate_pipeline
from repro.topology.cost_model import NetworkModel, SW_COLLECTIVE_NETWORK
from repro.topology.supernode import NODES_PER_SUPERNODE


@dataclass(frozen=True)
class PipelineBreakdown:
    """Where one pipeline/hybrid iteration's time goes."""

    #: Makespan of the walked microbatch schedule (compute + bubbles +
    #: exposed activation transfers).
    pipeline_s: float
    #: Idle share of the stage×time area for this iteration.
    bubble_frac: float
    #: *Exposed* per-stage-group gradient allreduce (0 for pure pipeline):
    #: each group's sync launches when its stage's last backward op ends,
    #: so service fitting inside the pipeline drain is hidden — the same
    #: hidden/exposed discipline the DP model's overlap schedule uses.
    allreduce_s: float
    #: Allreduce service hidden behind the drain of other stages.
    allreduce_hidden_s: float
    #: SGD update of the slowest stage's parameter shard.
    update_s: float
    #: Makespan stretch attributable to boundary transfers (makespan
    #: minus the free-transfer makespan) plus the gradient allreduce —
    #: the iteration's total exposed communication.
    exposed_comm_s: float

    @property
    def total_s(self) -> float:
        return self.pipeline_s + self.allreduce_s + self.update_s

    @property
    def comm_fraction(self) -> float:
        """Exposed-communication share of the iteration (the hybrid-vs-DP
        acceptance quantity)."""
        t = self.total_s
        return self.exposed_comm_s / t if t > 0 else 0.0


@dataclass
class PipelineIterationModel:
    """Prices pipeline/hybrid iterations for one stage plan.

    Parameters
    ----------
    plan:
        The stage partition (costed at per-node sub-batch ``b``).
    n_microbatches:
        Microbatches per iteration (``M``).
    schedule:
        ``"1f1b"`` or ``"fill_drain"``.
    replicas:
        Data-parallel replicas per stage (``R``); ``R = 1`` is pure
        pipeline, ``R > 1`` is hybrid. Total nodes = ``S * R``.
    cross_supernode:
        Price boundary transfers at the oversubscribed cross-supernode
        rate (pipelines up to 256 nodes fit one supernode, so the
        default is the intra rate).
    bucket_mb:
        Hybrid gradient sync granularity: each stage group's allreduce
        is split into size-bounded buckets that become ready across the
        stage's backward window and are served serially per group — the
        PR-5 overlap discipline applied within stage groups. ``None``
        (default) is the fused path: one launch per stage when its last
        backward op ends.
    """

    plan: StagePlan
    n_microbatches: int
    schedule: str = "1f1b"
    replicas: int = 1
    bucket_mb: float | None = None
    nodes_per_supernode: int = NODES_PER_SUPERNODE
    network: NetworkModel = field(default_factory=lambda: SW_COLLECTIVE_NETWORK)
    placement: str = "round-robin"
    reduce_engine: str = "cpe"
    cross_supernode: bool = False
    runner: MultiCGRunner = field(default_factory=MultiCGRunner)

    def __post_init__(self) -> None:
        if self.n_microbatches < 1:
            raise ValueError("n_microbatches must be >= 1")
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")

    @property
    def n_stages(self) -> int:
        return self.plan.n_stages

    @property
    def n_nodes(self) -> int:
        return self.n_stages * self.replicas

    @property
    def microbatch_scale(self) -> float:
        """Per-microbatch cost multiplier on the plan's stage costs.

        Each replica streams ``S * b`` samples in ``M`` microbatches, so
        one microbatch is ``S / M`` of the plan's costing batch —
        independent of ``R`` (more replicas shrink the per-replica batch
        exactly as they shrink the per-microbatch share).
        """
        return self.n_stages / self.n_microbatches

    def xfer_times(self) -> tuple[list[float], list[float]]:
        """Per-boundary (forward, backward) transfer seconds for one
        microbatch. Activations flow down, their gradients (same shapes,
        same bytes) flow back up."""
        scale = self.microbatch_scale
        fwd = [
            ptp_cost(
                nbytes * scale,
                network=self.network,
                cross_supernode=self.cross_supernode,
            )
            for nbytes in self.plan.cut_bytes
        ]
        return fwd, list(fwd)

    def timeline(self, *, with_comm: bool = True) -> PipelineTimeline:
        """Walk one iteration's schedule (``with_comm=False`` idealizes
        free transfers — the baseline for exposed-comm accounting)."""
        scale = self.microbatch_scale
        fwd_x, bwd_x = self.xfer_times() if with_comm else (None, None)
        return simulate_pipeline(
            [t * scale for t in self.plan.stage_fwd_s],
            [t * scale for t in self.plan.stage_bwd_s],
            n_microbatches=self.n_microbatches,
            schedule=self.schedule,
            fwd_xfer_s=fwd_x,
            bwd_xfer_s=bwd_x,
            xfer_bytes=[b * scale for b in self.plan.cut_bytes],
        )

    def stage_allreduce_times(self) -> tuple[float, ...]:
        """Per-stage-group parameter allreduce seconds (all 0 when
        ``R = 1``). Groups are disjoint node sets, so they synchronize
        concurrently; each allreduces only its own stage's parameters
        across ``R`` ranks."""
        if self.replicas <= 1:
            return tuple(0.0 for _ in self.plan.stage_param_bytes)
        return tuple(
            allreduce_cost(
                nbytes,
                self.replicas,
                nodes_per_supernode=self.nodes_per_supernode,
                network=self.network,
                reduce_engine=self.reduce_engine,
                placement=self.placement,
            )
            for nbytes in self.plan.stage_param_bytes
        )

    def allreduce_time(self) -> float:
        """Slowest stage group's parameter allreduce (0 when ``R = 1``)."""
        return max(self.stage_allreduce_times())

    def update_time(self) -> float:
        """SGD update of the largest stage shard (5x parameter traffic,
        as in the DP model — but each node only owns its stage)."""
        bw = self.runner.params.dma_peak_bw
        return 5.0 * max(self.plan.stage_param_bytes) / bw

    def _sync_schedule(self, timeline: PipelineTimeline) -> tuple[float, float]:
        """Hybrid gradient sync scheduled against the pipeline drain.

        Stage ``s``'s group allreduce buckets become ready across its
        backward window (gradients accumulate microbatch by microbatch;
        the last bucket needs the last backward op) and are served
        serially on the group's fabric, ``start = max(ready, free)`` —
        the DP model's overlap discipline within each stage group.
        Service before the makespan is hidden behind the still-running
        stages; only the spill extends the iteration. Returns
        ``(max spill across groups, total hidden seconds)``.
        """
        if self.replicas <= 1:
            return 0.0, 0.0
        makespan = timeline.makespan_s
        spill = 0.0
        hidden = 0.0
        for s in range(self.plan.n_stages):
            nbytes = self.plan.stage_param_bytes[s]
            if nbytes <= 0:
                continue
            ends = sorted(
                op.end_s
                for op in timeline.ops
                if op.stage == s and op.kind == "B"
            )
            if self.bucket_mb is None:
                k = 1
            else:
                k = max(1, math.ceil(nbytes / (self.bucket_mb * 1e6)))
            window = ends[-1] - ends[0]
            per_bucket = allreduce_cost(
                nbytes / k,
                self.replicas,
                nodes_per_supernode=self.nodes_per_supernode,
                network=self.network,
                reduce_engine=self.reduce_engine,
                placement=self.placement,
            )
            free = 0.0
            for i in range(k):
                ready = ends[0] + window * (i + 1) / k
                start = max(ready, free)
                free = start + per_bucket
                hidden += min(
                    per_bucket, max(0.0, min(free, makespan) - start)
                )
            spill = max(spill, max(0.0, free - makespan))
        return spill, hidden

    def breakdown(self) -> PipelineBreakdown:
        timeline = self.timeline(with_comm=True)
        ideal = self.timeline(with_comm=False)
        exposed_xfer = max(0.0, timeline.makespan_s - ideal.makespan_s)
        exposed_ar, hidden_ar = self._sync_schedule(timeline)
        return PipelineBreakdown(
            pipeline_s=timeline.makespan_s,
            bubble_frac=timeline.bubble_frac,
            allreduce_s=exposed_ar,
            allreduce_hidden_s=hidden_ar,
            update_s=self.update_time(),
            exposed_comm_s=exposed_xfer + exposed_ar,
        )

    def iteration_time(self) -> float:
        return self.breakdown().total_s

    def comm_fraction(self) -> float:
        return self.breakdown().comm_fraction
