"""Pipeline/hybrid model parallelism on the simulated cluster.

swCaffe's data-parallel scaling (figs. 10/11) goes communication-bound at
large node counts: the gradient allreduce payload is the full model, and
PR-5's bucketed overlap only hides part of it. Pipeline parallelism
attacks the remainder by splitting the net into stages that exchange
*boundary activations* (kilobytes to megabytes) instead of full gradients
(hundreds of megabytes), at the price of fill/drain bubbles.

The subsystem follows the package's data/time split:

* :mod:`repro.pipeline.partition` — balanced contiguous stage splits
  from the per-layer cost model (greedy baseline + DP-optimal);
* :mod:`repro.pipeline.schedule` — microbatch schedules (GPipe
  fill-drain and 1F1B) as a deterministic event walk, with bubble
  accounting and trace emission the critical-path profiler validates
  bitwise;
* :mod:`repro.pipeline.model` — the iteration timing model (pipeline and
  hybrid stage×replica modes), sharing allreduce pricing with the
  data-parallel model via :mod:`repro.parallel.comm_cost`;
* :mod:`repro.pipeline.trainer` — the executable trainer: stage-sliced
  forward/backward with boundary tensors moved through the priced
  :class:`~repro.simmpi.p2p.P2PTransport`, gradient accumulation
  bit-identical to a single-rank :class:`~repro.frame.solver.SGDSolver`
  at the same effective batch.
"""

from repro.pipeline.partition import StagePlan, partition_dp, partition_greedy, plan_stages
from repro.pipeline.schedule import (
    PipelineTimeline,
    emit_pipeline_trace,
    simulate_pipeline,
    stage_orders,
)
from repro.pipeline.model import PipelineIterationModel
from repro.pipeline.trainer import PipelineTrainer

__all__ = [
    "StagePlan",
    "partition_dp",
    "partition_greedy",
    "plan_stages",
    "PipelineTimeline",
    "emit_pipeline_trace",
    "simulate_pipeline",
    "stage_orders",
    "PipelineIterationModel",
    "PipelineTrainer",
]
