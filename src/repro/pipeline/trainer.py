"""Executable pipeline/hybrid trainer over the simulated cluster.

The defining invariant (mirroring :class:`~repro.parallel.trainer.
DistributedTrainer`'s "replicas equal single-process training"): pipeline
training is *bit-identical* to single-rank gradient accumulation. One
iteration streams ``M`` microbatches through the stages and updates with
the averaged gradient — exactly ``SGDSolver(iter_size=M)``'s semantics —
and because every layer op runs in the same order with the same operands,
the resulting weights match that reference to the last bit (pinned by
``tests/test_pipeline_trainer.py`` for LeNet/AlexNet/VGG).

The stages execute on one shared net per replica — the simulator's
standard collapse of distributed state — but the boundary tensors really
do travel: after a stage's forward slice, every cut blob's activation is
pushed through the priced :class:`~repro.simmpi.p2p.P2PTransport` to the
next stage and the blob's array is *replaced* by the transported copy
(likewise for gradients flowing back). The transport is therefore
load-bearing — a lossy link corrupts training, which the mutation test
pins — while staying bit-exact, so the identity above survives.

Hybrid mode runs ``R`` replica pipelines on disjoint shards and averages
each stage's parameter gradients across its replica group with a real
simulated allreduce (disjoint groups, payload = that stage's parameters
only — the point of hybrid parallelism: the full-model allreduce of pure
data parallelism never happens).

Time is accounted separately from data, as everywhere in the package:
each iteration walks the microbatch schedule
(:func:`~repro.pipeline.schedule.simulate_pipeline`) with the plan's
stage costs and the fabric's transfer prices, records the makespan, and
emits the pipeline trace spans the critical-path profiler validates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.frame.net import Net
from repro.frame.solver import SGDSolver
from repro.metrics.registry import active as _metrics
from repro.parallel.packing import GradientPacker
from repro.pipeline.partition import StagePlan, plan_stages
from repro.pipeline.schedule import emit_pipeline_trace, simulate_pipeline
from repro.simmpi.collectives import topo_aware_allreduce
from repro.simmpi.comm import SimComm
from repro.simmpi.nonblocking import IAllreduceQueue
from repro.simmpi.p2p import P2PTransport
from repro.simmpi.reorder import block_placement
from repro.topology.fabric import TaihuLightFabric
from repro.trace.tracer import active as _tracer


@dataclass
class PipelineStats:
    """Per-iteration records of a pipeline training run."""

    losses: list[float] = field(default_factory=list)
    #: Walked-schedule makespans, one per iteration.
    pipeline_time_s: float = 0.0
    #: Network occupancy: boundary transfers + hybrid allreduces.
    comm_time_s: float = 0.0
    #: Realized bubble fraction per iteration.
    bubble_fracs: list[float] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        return len(self.losses)


class PipelineTrainer:
    """Pipeline-parallel (optionally hybrid) synchronous SGD.

    Parameters
    ----------
    net_factory:
        Builds one identically-initialized net per replica (must be
        deterministic per rank, like the data-parallel trainer's).
    n_stages:
        Pipeline depth ``S``; the net is partitioned by
        :func:`~repro.pipeline.partition.plan_stages`.
    n_microbatches:
        Microbatches per iteration ``M``; each is one full forward/
        backward pass of the net's batch, so the effective batch is
        ``M * batch_size`` (Caffe's ``iter_size`` semantics).
    schedule:
        ``"1f1b"`` or ``"fill_drain"`` — *timing only*: both run every
        microbatch once each way, so the accumulated gradient (and the
        trained weights) are schedule-independent by construction.
    replicas:
        Data-parallel replicas per stage (hybrid mode when > 1).
    method:
        Partitioner (``"dp"`` or ``"greedy"``).
    """

    def __init__(
        self,
        net_factory: Callable[[int], Net],
        n_stages: int,
        *,
        n_microbatches: int = 1,
        schedule: str = "1f1b",
        replicas: int = 1,
        method: str = "dp",
        device: str = "sw26010",
        nodes_per_supernode: int = 4,
        base_lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        if n_microbatches < 1:
            raise ValueError("n_microbatches must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.n_microbatches = int(n_microbatches)
        self.schedule = schedule
        self.replicas = int(replicas)
        self.nets = [net_factory(rank) for rank in range(replicas)]
        self.solvers = [
            SGDSolver(
                net,
                base_lr=base_lr,
                momentum=momentum,
                weight_decay=weight_decay,
                iter_size=n_microbatches,
            )
            for net in self.nets
        ]
        self.plan: StagePlan = plan_stages(
            self.nets[0], n_stages, method=method, device=device
        )
        n_nodes = self.plan.n_stages * replicas
        fabric = TaihuLightFabric(
            n_nodes=max(n_nodes, nodes_per_supernode),
            nodes_per_supernode=nodes_per_supernode,
        )
        self.comm = SimComm(fabric, block_placement(n_nodes, 1))
        self.transport = P2PTransport(self.comm)
        #: Per-replica, per-stage gradient packers (hybrid sync payloads);
        #: ``None`` for stages owning no learnable parameters.
        self._stage_packers: list[list[GradientPacker | None]] = [
            [
                GradientPacker(params) if params else None
                for s in range(self.plan.n_stages)
                for params in [
                    [
                        p
                        for i in self.plan.layer_range(s)
                        for p in net.layers[i].params
                    ]
                ]
            ]
            for net in self.nets
        ]
        if replicas > 1:
            group_fabric = TaihuLightFabric(
                n_nodes=max(replicas, nodes_per_supernode),
                nodes_per_supernode=nodes_per_supernode,
            )
            self.group_comm: SimComm | None = SimComm(
                group_fabric, block_placement(replicas, 1)
            )
        else:
            self.group_comm = None
        #: Running simulated time; each iteration's walked schedule is
        #: appended here so trace spans never overlap across iterations.
        self._origin_s = 0.0

    # ------------------------------------------------------------------ #
    @property
    def n_stages(self) -> int:
        return self.plan.n_stages

    @property
    def n_nodes(self) -> int:
        return self.n_stages * self.replicas

    def _rank(self, stage: int, replica: int) -> int:
        """Node of (stage, replica): replicas own contiguous stage runs."""
        return replica * self.n_stages + stage

    # ------------------------------------------------------------------ #
    # data path (bit-identical to SGDSolver(iter_size=M))
    # ------------------------------------------------------------------ #
    def _staged_forward(self, net: Net, replica: int) -> float:
        """One microbatch's forward, stage by stage.

        Layer ops run in exactly :meth:`Net.forward`'s order; between
        stage slices every cut blob's activation crosses the priced
        transport and the blob array is replaced by the received copy.
        """
        loss_sum = 0.0
        for s in range(self.n_stages):
            for i in self.plan.layer_range(s):
                layer = net.layers[i]
                bottom, top = net._io(layer)
                layer.forward(bottom, top)
                if getattr(layer, "is_loss", False):
                    loss_sum += layer.loss_weight * float(top[0].data[0])
            if s < self.n_stages - 1:
                src, dst = self._rank(s, replica), self._rank(s + 1, replica)
                for name in self.plan.cut_blobs[s]:
                    blob = net.blobs[name]
                    self.transport.send(src, dst, blob.data, tag=f"fwd:{name}")
                    blob.data = self.transport.recv(src, dst, tag=f"fwd:{name}")
        return loss_sum

    def _staged_backward(self, net: Net, replica: int) -> None:
        """One microbatch's backward, stage by stage in reverse.

        Mirrors :meth:`Net.backward` exactly (diff reset, loss seeding,
        reverse layer order — parameter diffs accumulate); cut-blob
        gradients cross the transport back up between stage slices.
        """
        for blob in net.blobs.values():
            blob.zero_diff()
        for layer in net.layers:
            if getattr(layer, "is_loss", False):
                top_blob = net.blobs[net._tops[layer.name][0]]
                top_blob.diff = np.full(
                    top_blob.shape, layer.loss_weight, dtype=top_blob.dtype
                )
        for s in range(self.n_stages - 1, -1, -1):
            for i in reversed(self.plan.layer_range(s)):
                layer = net.layers[i]
                bottom, top = net._io(layer)
                layer.backward(top, bottom)
            if s > 0:
                src, dst = self._rank(s, replica), self._rank(s - 1, replica)
                for name in self.plan.cut_blobs[s - 1]:
                    blob = net.blobs[name]
                    self.transport.send(src, dst, blob.diff, tag=f"bwd:{name}")
                    blob.diff = self.transport.recv(src, dst, tag=f"bwd:{name}")

    def _sync_replicas(self, stats: PipelineStats, timeline) -> None:
        """Hybrid gradient sync: one nonblocking allreduce per stage group.

        Each group averages only its stage's parameter diffs across the
        ``R`` replicas — a real simulated collective, so the averaged
        gradients are bit-exact. The launches ride the PR-5
        :class:`~repro.simmpi.nonblocking.IAllreduceQueue`: stage ``s``'s
        request becomes ready when its last backward op ends on the
        walked timeline, and service fitting before the makespan (other
        stages are still draining) is hidden comm.
        """
        assert self.group_comm is not None
        t0 = self.group_comm.clock.now
        stage_last = [0.0] * self.n_stages
        for op in timeline.ops:
            if op.kind == "B":
                stage_last[op.stage] = max(stage_last[op.stage], op.end_s)
        queue = IAllreduceQueue(
            self.group_comm, topo_aware_allreduce, origin_s=self._origin_s
        )
        synced: list[int] = []
        for s in range(self.n_stages):
            if self._stage_packers[0][s] is None:
                continue  # stage owns no learnable params
            buffers = [
                self._stage_packers[r][s].pack_diffs()
                for r in range(self.replicas)
            ]
            queue.iallreduce(
                buffers,
                ready_s=self._origin_s + stage_last[s],
                average=True,
                tag=f"stage{s}",
            )
            synced.append(s)
        requests = queue.wait_all(
            barrier_s=self._origin_s + timeline.makespan_s
        )
        for s, req in zip(synced, requests):
            for r in range(self.replicas):
                self._stage_packers[r][s].unpack_diffs(req.buffers[r])
        stats.comm_time_s += self.group_comm.clock.now - t0

    # ------------------------------------------------------------------ #
    # time path
    # ------------------------------------------------------------------ #
    def _make_timeline(self):
        """Walk one iteration's microbatch schedule (time path only)."""
        xfer_s = [
            self.comm.pair_time(self._rank(s, 0), self._rank(s + 1, 0), nbytes)
            for s, nbytes in enumerate(self.plan.cut_bytes)
        ]
        return simulate_pipeline(
            list(self.plan.stage_fwd_s),
            list(self.plan.stage_bwd_s),
            n_microbatches=self.n_microbatches,
            schedule=self.schedule,
            fwd_xfer_s=xfer_s,
            bwd_xfer_s=xfer_s,
            xfer_bytes=list(self.plan.cut_bytes),
        )

    def _record(self, timeline, stats: PipelineStats) -> None:
        """Emit one walked iteration's trace/metrics and advance time."""
        tr = _tracer()
        if tr.enabled:
            emit_pipeline_trace(tr, timeline, origin_s=self._origin_s)
        mx = _metrics()
        if mx.enabled:
            mx.gauge("pipeline.stage_imbalance", self.plan.stage_imbalance)
        self._origin_s += timeline.makespan_s
        stats.pipeline_time_s += timeline.makespan_s
        stats.bubble_fracs.append(timeline.bubble_frac)

    # ------------------------------------------------------------------ #
    def step(self, n_iters: int = 1) -> PipelineStats:
        """Run ``n_iters`` pipelined iterations (forward/backward ``M``
        microbatches per replica, hybrid sync, identical updates)."""
        stats = PipelineStats()
        for _ in range(n_iters):
            timeline = self._make_timeline()
            comm_t0 = self.comm.clock.now
            iter_losses = []
            for replica, (net, solver) in enumerate(
                zip(self.nets, self.solvers)
            ):
                net.zero_param_diffs()
                loss_sum = 0.0
                for _m in range(self.n_microbatches):
                    loss_sum += self._staged_forward(net, replica)
                    self._staged_backward(net, replica)
                if self.n_microbatches > 1:
                    for p in net.params:
                        p.diff = p.diff / self.n_microbatches
                iter_losses.append(loss_sum / self.n_microbatches)
            if self.replicas > 1:
                self._sync_replicas(stats, timeline)
            for solver in self.solvers:
                solver.apply_update(solver.learning_rate())
                solver.iter += 1
            stats.comm_time_s += self.comm.clock.now - comm_t0
            stats.losses.append(float(np.mean(iter_losses)))
            self._record(timeline, stats)
        return stats
