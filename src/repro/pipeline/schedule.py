"""Microbatch schedules: GPipe fill-drain and 1F1B, walked exactly.

A pipeline iteration is a set of ops — ``F(s, m)`` / ``B(s, m)`` for each
stage ``s`` and microbatch ``m`` — plus the boundary transfers between
them. Each *schedule* fixes a per-stage op order; the simulator then
walks the ops deterministically:

* a stage executes its ops strictly in schedule order, one at a time
  (``start = max(stage free, dependencies done)``);
* ``F(s, m)`` needs the forward boundary transfer of microbatch ``m``
  from stage ``s - 1``; ``B(s, m)`` needs the backward transfer from
  stage ``s + 1`` (and, on the last stage, its own ``F(s, m)``);
* each boundary link is full-duplex but serial per direction: a transfer
  starts at ``max(link free, producer end)``.

That walk *is* the schedule — no numerical fitting, no averaging — so
emitting its ops as spans with dep edges mirroring exactly the three
rules above lets the critical-path profiler's identity schedule reproduce
the recorded end-to-end time bitwise (the same contract the rest of the
tracer's instrumentation sites honor).

Bubble accounting: with perfectly balanced stages and free transfers,
both schedules idle each stage for ``(S - 1) / (M + S - 1)`` of the
iteration (the classic GPipe bubble fraction); the simulator reports the
realized value, which the ``pipeline.bubble_frac`` metric and the
``pipeline_bubble`` decoration spans expose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.metrics.registry import active as _metrics
from repro.trace.scaling import active as _scaling
from repro.trace.tracer import Tracer

SCHEDULES = ("fill_drain", "1f1b")


@dataclass(frozen=True)
class OpRecord:
    """One executed stage op (forward or backward of one microbatch)."""

    kind: str  # "F" | "B"
    stage: int
    microbatch: int
    start_s: float
    dur_s: float

    @property
    def end_s(self) -> float:
        return self.start_s + self.dur_s


@dataclass(frozen=True)
class XferRecord:
    """One boundary transfer (activations down, gradients up)."""

    kind: str  # "fwd" | "bwd"
    src: int
    dst: int
    microbatch: int
    start_s: float
    dur_s: float
    ready_s: float
    nbytes: float

    @property
    def end_s(self) -> float:
        return self.start_s + self.dur_s


@dataclass(frozen=True)
class PipelineTimeline:
    """The walked schedule of one pipeline iteration."""

    schedule: str
    n_stages: int
    n_microbatches: int
    ops: tuple[OpRecord, ...]
    xfers: tuple[XferRecord, ...]

    @property
    def makespan_s(self) -> float:
        return max(
            [op.end_s for op in self.ops] + [x.end_s for x in self.xfers],
            default=0.0,
        )

    @property
    def stage_busy_s(self) -> tuple[float, ...]:
        busy = [0.0] * self.n_stages
        for op in self.ops:
            busy[op.stage] += op.dur_s
        return tuple(busy)

    @property
    def bubble_frac(self) -> float:
        """Idle share of the stage×time area: ``1 - busy / (S * T)``."""
        t = self.makespan_s
        if t <= 0:
            return 0.0
        return 1.0 - sum(self.stage_busy_s) / (self.n_stages * t)

    def stage_gaps(self, stage: int) -> list[tuple[float, float]]:
        """Idle ``(start, dur)`` windows of one stage within the makespan."""
        ops = sorted(
            (op for op in self.ops if op.stage == stage), key=lambda o: o.start_s
        )
        gaps: list[tuple[float, float]] = []
        cursor = 0.0
        for op in ops:
            if op.start_s > cursor:
                gaps.append((cursor, op.start_s - cursor))
            cursor = max(cursor, op.end_s)
        end = self.makespan_s
        if end > cursor:
            gaps.append((cursor, end - cursor))
        return gaps


def stage_orders(
    schedule: str, n_stages: int, n_microbatches: int
) -> list[list[tuple[str, int]]]:
    """Per-stage op order ``[(kind, microbatch), ...]`` for a schedule.

    ``fill_drain`` (GPipe): all forwards in microbatch order, then all
    backwards in *reverse* order (the last microbatch's activations are
    freshest). ``1f1b`` (PipeDream-flush): stage ``s`` warms up with
    ``min(S - 1 - s, M)`` forwards, alternates one-forward-one-backward
    through the steady state, and drains the remaining backwards in FIFO
    order. Both run every microbatch exactly once each way, so the data
    path (and the accumulated gradient) is schedule-independent.
    """
    if schedule not in SCHEDULES:
        raise ValueError(f"unknown schedule {schedule!r}; use {SCHEDULES}")
    if n_stages < 1:
        raise ValueError("n_stages must be >= 1")
    if n_microbatches < 1:
        raise ValueError("n_microbatches must be >= 1")
    S, M = n_stages, n_microbatches
    orders: list[list[tuple[str, int]]] = []
    for s in range(S):
        ops: list[tuple[str, int]] = []
        if schedule == "fill_drain":
            ops.extend(("F", m) for m in range(M))
            ops.extend(("B", m) for m in reversed(range(M)))
        else:  # 1f1b
            warm = min(S - 1 - s, M)
            ops.extend(("F", m) for m in range(warm))
            for i in range(M - warm):
                ops.append(("F", warm + i))
                ops.append(("B", i))
            ops.extend(("B", i) for i in range(M - warm, M))
        orders.append(ops)
    return orders


def simulate_pipeline(
    stage_fwd_s: list[float],
    stage_bwd_s: list[float],
    *,
    n_microbatches: int,
    schedule: str = "1f1b",
    fwd_xfer_s: list[float] | None = None,
    bwd_xfer_s: list[float] | None = None,
    xfer_bytes: list[float] | None = None,
) -> PipelineTimeline:
    """Walk one pipeline iteration deterministically.

    ``stage_fwd_s[s]`` / ``stage_bwd_s[s]`` are stage ``s``'s per-microbatch
    compute times; ``fwd_xfer_s[i]`` / ``bwd_xfer_s[i]`` the transfer times
    across boundary ``i`` (default 0 — the free-transfer idealization the
    bubble-math unit tests pin). Under an ambient
    :class:`~repro.trace.scaling.CostScaling`, stage ops scale with the
    ``"stage"`` factor and transfers with ``"p2p"`` — the same operations
    the critical-path projection applies, so what-if validation holds
    bitwise.
    """
    S = len(stage_fwd_s)
    if len(stage_bwd_s) != S:
        raise ValueError("stage_fwd_s and stage_bwd_s must have equal length")
    M = n_microbatches
    orders = stage_orders(schedule, S, M)
    fwd_x = list(fwd_xfer_s) if fwd_xfer_s is not None else [0.0] * (S - 1)
    bwd_x = list(bwd_xfer_s) if bwd_xfer_s is not None else [0.0] * (S - 1)
    nbytes = list(xfer_bytes) if xfer_bytes is not None else [0.0] * (S - 1)
    if len(fwd_x) != S - 1 or len(bwd_x) != S - 1 or len(nbytes) != S - 1:
        raise ValueError(f"boundary arrays must have length {S - 1}")
    sc = _scaling()
    if sc.enabled:
        stage_fwd_s = [t * sc.factor("stage") for t in stage_fwd_s]
        stage_bwd_s = [t * sc.factor("stage") for t in stage_bwd_s]
        fwd_x = [t * sc.factor("p2p") for t in fwd_x]
        bwd_x = [t * sc.factor("p2p") for t in bwd_x]

    # Walk state: per-stage op pointer and free time, per-link (direction)
    # free time, completed op end times, scheduled transfers.
    pointer = [0] * S
    stage_free = [0.0] * S
    link_free = {("fwd", i): 0.0 for i in range(S - 1)}
    link_free.update({("bwd", i): 0.0 for i in range(S - 1)})
    op_end: dict[tuple[str, int, int], float] = {}
    xfer_end: dict[tuple[str, int, int], float] = {}
    ops: list[OpRecord] = []
    xfers: list[XferRecord] = []

    def _schedule_xfer(kind: str, boundary: int, m: int, ready: float) -> None:
        dur = (fwd_x if kind == "fwd" else bwd_x)[boundary]
        start = max(link_free[(kind, boundary)], ready)
        link_free[(kind, boundary)] = start + dur
        src, dst = (boundary, boundary + 1) if kind == "fwd" else (boundary + 1, boundary)
        xfers.append(
            XferRecord(
                kind=kind,
                src=src,
                dst=dst,
                microbatch=m,
                start_s=start,
                dur_s=dur,
                ready_s=ready,
                nbytes=nbytes[boundary],
            )
        )
        xfer_end[(kind, boundary, m)] = start + dur

    total = sum(len(o) for o in orders)
    done = 0
    while done < total:
        progressed = False
        for s in range(S):
            while pointer[s] < len(orders[s]):
                kind, m = orders[s][pointer[s]]
                if kind == "F":
                    dep = 0.0 if s == 0 else xfer_end.get(("fwd", s - 1, m))
                else:
                    if s == S - 1:
                        dep = op_end.get(("F", s, m))
                    else:
                        dep = xfer_end.get(("bwd", s, m))
                if dep is None:
                    break  # dependency not produced yet; try other stages
                dur = (stage_fwd_s if kind == "F" else stage_bwd_s)[s]
                start = max(stage_free[s], dep)
                end = start + dur
                ops.append(
                    OpRecord(kind=kind, stage=s, microbatch=m, start_s=start, dur_s=dur)
                )
                op_end[(kind, s, m)] = end
                stage_free[s] = end
                pointer[s] += 1
                done += 1
                progressed = True
                if kind == "F" and s < S - 1:
                    _schedule_xfer("fwd", s, m, end)
                if kind == "B" and s > 0:
                    _schedule_xfer("bwd", s - 1, m, end)
        if not progressed:
            raise RuntimeError(
                f"pipeline schedule deadlocked at {done}/{total} ops "
                f"(schedule={schedule!r}, S={S}, M={M})"
            )
    timeline = PipelineTimeline(
        schedule=schedule,
        n_stages=S,
        n_microbatches=M,
        ops=tuple(sorted(ops, key=lambda o: (o.stage, o.start_s))),
        xfers=tuple(sorted(xfers, key=lambda x: (x.kind, x.src, x.start_s))),
    )
    mx = _metrics()
    if mx.enabled:
        mx.gauge("pipeline.bubble_frac", timeline.bubble_frac)
        mx.gauge("pipeline.makespan_s", timeline.makespan_s)
    return timeline


def emit_pipeline_trace(
    tracer: Tracer, timeline: PipelineTimeline, *, origin_s: float = 0.0
) -> None:
    """Emit one walked iteration as spans with critical-path dep edges.

    Tracks: ``pipeline/stage<s>`` for compute ops (``stage_fwd`` /
    ``stage_bwd``), ``pipeline/link<i>-<i+1>/{fwd,bwd}`` for boundary
    transfers (``activation_xfer``, each carrying its ``ready_s`` release
    floor), plus ``pipeline_bubble`` decoration spans over each stage's
    idle gaps. Dep edges mirror the simulator's three waiting rules —
    same-track emission order covers the serial-stage and serial-link
    rules, explicit edges carry the cross-track producer/consumer ones —
    so the identity critical-path schedule reproduces every recorded end
    time exactly (pinned by ``tests/test_pipeline_trace.py``).

    ``origin_s`` shifts the whole iteration on the trace timeline — the
    trainer passes its running simulated time so consecutive iterations
    don't overlap on the shared tracks.
    """
    if not tracer.enabled:
        return
    op_spans = {}
    xfer_spans = {}
    for op in sorted(timeline.ops, key=lambda o: (o.stage, o.start_s)):
        cat = "stage_fwd" if op.kind == "F" else "stage_bwd"
        span = tracer.emit(
            f"{op.kind}{op.microbatch}",
            cat,
            track=f"pipeline/stage{op.stage}",
            start=origin_s + op.start_s,
            dur=op.dur_s,
            args={"stage": op.stage, "microbatch": op.microbatch},
        )
        op_spans[(op.kind, op.stage, op.microbatch)] = span
    for x in sorted(timeline.xfers, key=lambda x: (x.kind, x.src, x.start_s)):
        boundary = min(x.src, x.dst)
        span = tracer.emit(
            f"{'act' if x.kind == 'fwd' else 'grad'} m{x.microbatch} "
            f"{x.src}->{x.dst}",
            "activation_xfer",
            track=f"pipeline/link{boundary}-{boundary + 1}/{x.kind}",
            start=origin_s + x.start_s,
            dur=x.dur_s,
            args={
                "microbatch": x.microbatch,
                "bytes": x.nbytes,
                "ready_s": origin_s + x.ready_s,
                "src": x.src,
                "dst": x.dst,
            },
        )
        xfer_spans[(x.kind, boundary, x.microbatch)] = span
        producer = op_spans.get(("F" if x.kind == "fwd" else "B", x.src, x.microbatch))
        if producer is not None:
            tracer.edge(producer, span)
    S = timeline.n_stages
    for op in timeline.ops:
        key = (op.kind, op.stage, op.microbatch)
        if op.kind == "F" and op.stage > 0:
            tracer.edge(xfer_spans[("fwd", op.stage - 1, op.microbatch)], op_spans[key])
        elif op.kind == "B":
            if op.stage == S - 1:
                tracer.edge(op_spans[("F", op.stage, op.microbatch)], op_spans[key])
            else:
                tracer.edge(xfer_spans[("bwd", op.stage, op.microbatch)], op_spans[key])
    for s in range(S):
        for start, dur in timeline.stage_gaps(s):
            tracer.emit(
                "bubble",
                "pipeline_bubble",
                track=f"pipeline/stage{s}",
                start=origin_s + start,
                dur=dur,
                args={"stage": s},
            )
