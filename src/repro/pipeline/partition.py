"""Stage partitioning: split a net into S balanced contiguous stages.

A pipeline stage is a contiguous run of layers (the layer list is already
topologically ordered, so contiguous splits are always executable). The
partitioners minimize the *bottleneck* stage cost — the pipeline's steady
state runs at the speed of its slowest stage, so max-stage-cost is the
quantity that bounds throughput:

* :func:`partition_greedy` — the obvious baseline: walk the layers,
  cutting whenever the running stage reaches the ideal ``total / S``
  share. Fast, but can be arbitrarily unlucky around one huge layer.
* :func:`partition_dp` — exact: the classic linear-partition dynamic
  program over prefix sums, ``O(L^2 * S)``, minimizing the maximum stage
  cost (ties broken toward earlier cuts, so results are deterministic).

:func:`plan_stages` runs either on a real :class:`~repro.frame.net.Net`
(costs from :func:`~repro.perf.layer_cost.net_layer_timings`) and derives
the *cut sets*: for each boundary, the blobs produced before it and
consumed at-or-after it — exactly the tensors a pipeline must transfer
downstream (and whose gradients flow back). A blob consumed several
stages later (e.g. the label, produced by the data layer and consumed by
the loss) appears in every intermediate cut: it is relayed stage to
stage, as a real pipeline would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.frame.net import Net
from repro.perf.layer_cost import net_layer_timings


@dataclass(frozen=True)
class StagePlan:
    """One partition of a net into pipeline stages.

    ``boundaries`` has ``S + 1`` entries: stage ``s`` owns layers
    ``[boundaries[s], boundaries[s + 1])``. ``cut_blobs[i]`` names the
    blobs crossing boundary ``i`` (between stages ``i`` and ``i + 1``),
    and ``cut_bytes[i]`` their total payload.
    """

    net_name: str
    boundaries: tuple[int, ...]
    stage_fwd_s: tuple[float, ...]
    stage_bwd_s: tuple[float, ...]
    cut_blobs: tuple[tuple[str, ...], ...]
    cut_bytes: tuple[float, ...]
    #: Per-stage learnable-parameter bytes (the hybrid mode's per-group
    #: allreduce payloads).
    stage_param_bytes: tuple[float, ...]
    method: str = "dp"

    @property
    def n_stages(self) -> int:
        return len(self.boundaries) - 1

    @property
    def stage_cost_s(self) -> tuple[float, ...]:
        """Per-stage forward+backward seconds (the balance objective)."""
        return tuple(f + b for f, b in zip(self.stage_fwd_s, self.stage_bwd_s))

    @property
    def bottleneck_s(self) -> float:
        return max(self.stage_cost_s)

    @property
    def stage_imbalance(self) -> float:
        """``max / mean - 1``: 0 for a perfectly balanced split."""
        costs = self.stage_cost_s
        mean = sum(costs) / len(costs)
        if mean <= 0:
            return 0.0
        return max(costs) / mean - 1.0

    def stage_of_layer(self, index: int) -> int:
        """The stage owning layer ``index``."""
        for s in range(self.n_stages):
            if self.boundaries[s] <= index < self.boundaries[s + 1]:
                return s
        raise IndexError(f"layer index {index} outside {self.boundaries}")

    def layer_range(self, stage: int) -> range:
        """Layer indices of one stage."""
        return range(self.boundaries[stage], self.boundaries[stage + 1])


def _validate(costs: list[float], n_stages: int) -> None:
    if n_stages < 1:
        raise ValueError(f"n_stages must be >= 1, got {n_stages}")
    if n_stages > len(costs):
        raise ValueError(
            f"cannot split {len(costs)} layers into {n_stages} stages "
            "(every stage needs at least one layer)"
        )


def partition_greedy(costs: list[float], n_stages: int) -> tuple[int, ...]:
    """Greedy baseline: cut when the running stage reaches ``total / S``.

    Later stages are guaranteed at least one layer each (the cut point is
    clamped so the tail never starves), but the bottleneck can overshoot
    the optimum when a single layer dominates.
    """
    _validate(costs, n_stages)
    total = float(sum(costs))
    target = total / n_stages
    bounds = [0]
    acc = 0.0
    i = 0
    n = len(costs)
    for s in range(n_stages - 1):
        # Leave enough layers for the remaining stages.
        last_allowed = n - (n_stages - 1 - s)
        acc = 0.0
        while i < last_allowed:
            acc += costs[i]
            i += 1
            if acc >= target:
                break
        bounds.append(i)
    bounds.append(n)
    return tuple(bounds)


def partition_dp(costs: list[float], n_stages: int) -> tuple[int, ...]:
    """Exact linear partition: minimize the maximum stage cost.

    ``dp[s][j]`` = best bottleneck splitting the first ``j`` layers into
    ``s`` stages; reconstruction prefers the earliest feasible cut so the
    result is deterministic.
    """
    _validate(costs, n_stages)
    n = len(costs)
    prefix = [0.0]
    for c in costs:
        prefix.append(prefix[-1] + float(c))

    def seg(i: int, j: int) -> float:
        return prefix[j] - prefix[i]

    inf = float("inf")
    dp = [[inf] * (n + 1) for _ in range(n_stages + 1)]
    cut = [[0] * (n + 1) for _ in range(n_stages + 1)]
    dp[0][0] = 0.0
    for s in range(1, n_stages + 1):
        for j in range(s, n + 1):
            best, best_k = inf, s - 1
            for k in range(s - 1, j):
                cand = max(dp[s - 1][k], seg(k, j))
                if cand < best:
                    best, best_k = cand, k
            dp[s][j] = best
            cut[s][j] = best_k
    bounds = [n]
    j = n
    for s in range(n_stages, 0, -1):
        j = cut[s][j]
        bounds.append(j)
    bounds.reverse()
    return tuple(bounds)


PARTITIONERS = {"dp": partition_dp, "greedy": partition_greedy}


def boundary_blobs(net: Net, split: int) -> tuple[str, ...]:
    """Blobs produced by layers before ``split`` and consumed at/after it.

    This is the complete set of tensors a pipeline cut at ``split`` must
    move downstream: every bottom a later layer reads that an earlier
    layer produced is in it, by construction — there is no other way data
    crosses the cut (tops are never overwritten, so no aliasing).
    """
    if not 0 < split < len(net.layers):
        raise ValueError(
            f"split must be inside the layer list (0 < split < "
            f"{len(net.layers)}), got {split}"
        )
    produced: set[str] = set()
    for layer in net.layers[:split]:
        produced.update(net._tops[layer.name])
    crossing: set[str] = set()
    for layer in net.layers[split:]:
        crossing.update(b for b in net._bottoms[layer.name] if b in produced)
    return tuple(sorted(crossing))


def _blob_bytes(net: Net, name: str) -> float:
    blob = net.blobs[name]
    return float(blob.count * np.dtype(blob.dtype).itemsize)


def plan_stages(
    net: Net,
    n_stages: int,
    *,
    method: str = "dp",
    device: str = "sw26010",
) -> StagePlan:
    """Partition ``net`` into ``n_stages`` balanced stages.

    Costs come from the per-layer device model (forward + backward);
    boundary cut sets and payload bytes come from the blob graph (shapes
    are known at construction time, so no forward pass is needed).
    """
    try:
        partitioner = PARTITIONERS[method]
    except KeyError:
        raise ValueError(f"unknown method {method!r}; use {sorted(PARTITIONERS)}")
    timings = net_layer_timings(net, device)
    costs = [t.total_s for t in timings]
    bounds = partitioner(costs, n_stages)
    stage_fwd = tuple(
        sum(timings[i].forward_s for i in range(bounds[s], bounds[s + 1]))
        for s in range(n_stages)
    )
    stage_bwd = tuple(
        sum(timings[i].backward_s for i in range(bounds[s], bounds[s + 1]))
        for s in range(n_stages)
    )
    cut_blobs = tuple(
        boundary_blobs(net, bounds[s + 1]) for s in range(n_stages - 1)
    )
    cut_bytes = tuple(
        sum(_blob_bytes(net, name) for name in blobs) for blobs in cut_blobs
    )
    stage_param_bytes = tuple(
        float(
            sum(
                p.count * np.dtype(p.dtype).itemsize
                for i in range(bounds[s], bounds[s + 1])
                for p in net.layers[i].params
            )
        )
        for s in range(n_stages)
    )
    return StagePlan(
        net_name=net.name,
        boundaries=bounds,
        stage_fwd_s=stage_fwd,
        stage_bwd_s=stage_bwd,
        cut_blobs=cut_blobs,
        cut_bytes=cut_bytes,
        stage_param_bytes=stage_param_bytes,
        method=method,
    )
