"""swCaffe reproduction: simulated parallel DNN training on Sunway TaihuLight.

This package reproduces *swCaffe: A Parallel Framework for Accelerating
Deep Learning Applications on Sunway TaihuLight* (Fang, Li et al., CLUSTER
2018) as a pure-Python system. It contains:

* :mod:`repro.hw` — an architectural model of the SW26010 many-core
  processor (core groups, CPE mesh, LDM, DMA, register communication);
* :mod:`repro.topology` — the TaihuLight two-level interconnect and its
  alpha-beta-gamma communication cost model;
* :mod:`repro.simmpi` — a simulated MPI with the paper's allreduce family,
  including the topology-aware round-robin-renumbered algorithm;
* :mod:`repro.kernels` — SW26010 execution plans for GEMM, explicit and
  implicit convolution, pooling and layout transforms, each with a
  functional NumPy implementation and a simulated-time cost model;
* :mod:`repro.frame` — a Caffe-compatible framework core (Blob, Layer,
  Net, Solver) plus a model zoo (AlexNet, VGG-16/19, ResNet-50, GoogLeNet);
* :mod:`repro.parallel` — the 4-core-group threading model and the
  distributed synchronous-SGD trainer (Algorithm 1);
* :mod:`repro.io` — the striped disk-array parallel I/O model and a
  synthetic ImageNet dataset;
* :mod:`repro.perf` — roofline baselines for the K40m GPU and host CPU;
* :mod:`repro.harness` — one module per paper table/figure, regenerating
  the reported rows/series.

Quickstart::

    from repro.frame.model_zoo import lenet
    from repro.frame.solver import SGDSolver

    net = lenet.build(batch_size=16)
    solver = SGDSolver(net, base_lr=0.01)
    stats = solver.step(10)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
