"""Pooling kernel plan (Sec. IV-D).

Pooling is pure memory movement with a trivial max/avg reduction, so the
SW26010 implementation is all about DMA strategy (Principle 3): each CPE
handles several K-row strips of the image when they fit in LDM, otherwise
falls back to strided column loads — which this plan prices accordingly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PlanError, ShapeError
from repro.kernels.im2col import conv_out_dim
from repro.kernels.plan import KernelPlan, PlanCost
from repro.hw.spec import SW26010Params


class PoolingPlan(KernelPlan):
    """Max/average pooling on one core group."""

    name = "pooling"

    def __init__(
        self,
        batch: int,
        channels: int,
        height: int,
        width: int,
        k: int,
        stride: int | None = None,
        pad: int = 0,
        mode: str = "max",
        dtype_bytes: int = 4,
        params: SW26010Params | None = None,
    ) -> None:
        super().__init__(params)
        if min(batch, channels, height, width, k) <= 0:
            raise PlanError("pooling dims must be positive")
        if mode not in ("max", "avg"):
            raise PlanError(f"pooling mode must be 'max' or 'avg', got {mode!r}")
        self.batch = int(batch)
        self.channels = int(channels)
        self.height = int(height)
        self.width = int(width)
        self.k = int(k)
        self.stride = int(stride if stride is not None else k)
        self.pad = int(pad)
        self.mode = mode
        self.dtype_bytes = int(dtype_bytes)
        self.out_h = conv_out_dim(height, self.k, self.stride, pad)
        self.out_w = conv_out_dim(width, self.k, self.stride, pad)

    # ------------------------------------------------------------------ #
    # cost model
    # ------------------------------------------------------------------ #
    def _rows_fit_ldm(self) -> bool:
        """Whether K whole image rows fit in one CPE's LDM."""
        return self.k * self.width * self.dtype_bytes <= self.params.ldm_bytes // 2

    def cost(self) -> PlanCost:
        """Read the input once, write the output once; compare/accumulate."""
        in_bytes = float(
            self.batch * self.channels * self.height * self.width * self.dtype_bytes
        )
        out_bytes = float(
            self.batch * self.channels * self.out_h * self.out_w * self.dtype_bytes
        )
        if self._rows_fit_ldm():
            # Whole rows stream contiguously.
            block = self.width * self.dtype_bytes
        else:
            # Column-block fallback: strided access with short runs.
            block = max(
                64, (self.params.ldm_bytes // (2 * self.k * self.dtype_bytes))
            ) * self.dtype_bytes // 8
        dma_s = self._cg.dma.bulk_time(in_bytes, block_bytes=block) + self._cg.dma.bulk_time(
            out_bytes, block_bytes=self.out_w * self.dtype_bytes
        )
        flops = float(self.batch * self.channels * self.out_h * self.out_w * self.k * self.k)
        compute_s = flops / (self._cg.peak_flops * 0.25)
        return PlanCost(
            compute_s=compute_s,
            dma_s=dma_s,
            flops=flops,
            dma_bytes=in_bytes + out_bytes,
        )

    # ------------------------------------------------------------------ #
    # functional
    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Pool (B, C, H, W) -> (B, C, Ho, Wo).

        Returns ``(output, argmax)`` where ``argmax`` holds the flat window
        index of each selected element (used by max-pooling backward; for
        average pooling it is an empty array).
        """
        if x.shape != (self.batch, self.channels, self.height, self.width):
            raise ShapeError(
                f"input shape {x.shape} != "
                f"{(self.batch, self.channels, self.height, self.width)}"
            )
        pad_val = -np.inf if self.mode == "max" else 0.0
        xp = (
            np.pad(
                x,
                ((0, 0), (0, 0), (self.pad, self.pad), (self.pad, self.pad)),
                constant_values=pad_val,
            )
            if self.pad
            else x
        )
        s = self.stride
        windows = np.lib.stride_tricks.sliding_window_view(xp, (self.k, self.k), axis=(2, 3))
        windows = windows[:, :, ::s, ::s, :, :]
        windows = windows[:, :, : self.out_h, : self.out_w]
        flat = windows.reshape(*windows.shape[:4], self.k * self.k)
        if self.mode == "max":
            arg = flat.argmax(axis=-1)
            out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
            return np.ascontiguousarray(out), arg
        out = flat.mean(axis=-1)
        return np.ascontiguousarray(out), np.empty(0, dtype=np.int64)

    def backward(self, x: np.ndarray, dy: np.ndarray, argmax: np.ndarray) -> np.ndarray:
        """Scatter output gradients back through the pooling windows."""
        if dy.shape != (self.batch, self.channels, self.out_h, self.out_w):
            raise ShapeError(
                f"dy shape {dy.shape} != "
                f"{(self.batch, self.channels, self.out_h, self.out_w)}"
            )
        hp = self.height + 2 * self.pad
        wp = self.width + 2 * self.pad
        dxp = np.zeros((self.batch, self.channels, hp, wp), dtype=dy.dtype)
        s = self.stride
        if self.mode == "max":
            ki = argmax // self.k
            kj = argmax % self.k
            b_idx, c_idx, oh_idx, ow_idx = np.indices(dy.shape)
            rows = oh_idx * s + ki
            cols = ow_idx * s + kj
            np.add.at(dxp, (b_idx, c_idx, rows, cols), dy)
        else:
            share = dy / (self.k * self.k)
            for i in range(self.k):
                for j in range(self.k):
                    dxp[:, :, i : i + s * self.out_h : s, j : j + s * self.out_w : s] += share
        if self.pad:
            return np.ascontiguousarray(
                dxp[:, :, self.pad : self.pad + self.height, self.pad : self.pad + self.width]
            )
        return dxp
