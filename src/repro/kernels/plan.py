"""Kernel plan base types.

A :class:`KernelPlan` is the unit swCaffe schedules on a core group: it
knows its shapes, its LDM blocking, how many FLOPs and DMA bytes it moves,
and therefore how long it takes on the modeled hardware. Subclasses provide
the functional NumPy execution.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.hw.core_group import CoreGroup
from repro.hw.spec import SW26010Params, SW_PARAMS
from repro.metrics.registry import active as _metrics
from repro.trace.tracer import active as _tracer, emit_cost_spans


#: Work-saturation knee for convolution kernel invocations, in FLOPs.
#: A CPE-cluster kernel needs substantial work per invocation to amortize
#: LDM warm-up, pipeline fill and blocking fringe; invocations carrying
#: fewer than a few hundred MFLOPs (ResNet-50 / GoogLeNet layers at small
#: per-CG batches) run at a fraction ``w / (w + knee)`` of their steady-
#: state efficiency. Calibrated against Table III: both nets sustain only
#: ~2.2-2.4% of peak there while VGG (16x more work per invocation at the
#: same batch budget) sustains ~10%.
WORK_SATURATION_FLOPS = 0.6e9


def work_saturation(flops: float) -> float:
    """Efficiency fraction retained by an invocation of ``flops`` work.

    Floored at 2% so toy-scale kernels (unit tests, LeNet examples) degrade
    to a fixed overhead regime instead of diverging; the networks the paper
    evaluates never reach the floor.
    """
    if flops <= 0:
        return 1.0
    return max(flops / (flops + WORK_SATURATION_FLOPS), 0.02)


@dataclass(frozen=True)
class PlanCost:
    """Simulated time breakdown of one plan invocation on one core group."""

    compute_s: float = 0.0
    dma_s: float = 0.0
    rlc_s: float = 0.0
    overhead_s: float = 0.0
    flops: float = 0.0
    dma_bytes: float = 0.0

    @property
    def total_s(self) -> float:
        """End-to-end seconds with the dual-pipeline overlap rule.

        Compute and DMA overlap on the two CPE issue pipelines; RLC is
        modeled as pipelined under compute (the GEMM inner loop), so the
        bound is the slowest of the three plus fixed overheads.
        """
        return max(self.compute_s, self.dma_s, self.rlc_s) + self.overhead_s

    @property
    def serial_s(self) -> float:
        """Pessimistic no-overlap time (used by naive-port comparisons)."""
        return self.compute_s + self.dma_s + self.rlc_s + self.overhead_s

    @property
    def gflops(self) -> float:
        """Achieved GFlop/s at the overlapped time."""
        t = self.total_s
        return self.flops / t / 1e9 if t > 0 else 0.0

    def __add__(self, other: "PlanCost") -> "PlanCost":
        """Sequential composition: each phase keeps its internal overlap."""
        return combine_sequential([self, other])


def combine_sequential(costs: list[PlanCost]) -> PlanCost:
    """Combine phases that run one after another.

    Each phase keeps its own internal compute/DMA overlap; the total is the
    sum of per-phase totals. The returned object reports component sums for
    reporting and encodes the exact total via ``overhead_s``.
    """
    compute = sum(c.compute_s for c in costs)
    dma = sum(c.dma_s for c in costs)
    rlc = sum(c.rlc_s for c in costs)
    flops = sum(c.flops for c in costs)
    dbytes = sum(c.dma_bytes for c in costs)
    total = sum(c.total_s for c in costs)
    overhead = total - max(compute, dma, rlc)
    # A sequence of phases can never be faster than any single component
    # stream, so the correction is non-negative up to float rounding.
    overhead = max(overhead, 0.0)
    return PlanCost(
        compute_s=compute,
        dma_s=dma,
        rlc_s=rlc,
        overhead_s=overhead,
        flops=flops,
        dma_bytes=dbytes,
    )


class KernelPlan(abc.ABC):
    """Base class for SW26010 kernel plans.

    Parameters
    ----------
    params:
        SW26010 model constants (defaults to the calibrated set).
    """

    #: Human-readable plan name used by the autotuner and harness tables.
    name: str = "plan"

    def __init__(self, params: SW26010Params | None = None) -> None:
        self.params = params or SW_PARAMS
        self._cg = CoreGroup(params=self.params)

    @property
    def core_group(self) -> CoreGroup:
        """The core group the plan prices against."""
        return self._cg

    @abc.abstractmethod
    def cost(self) -> PlanCost:
        """Simulated time for one invocation on one core group."""

    def traced_cost(self, label: str | None = None) -> PlanCost:
        """Price one invocation and emit its breakdown as trace spans.

        When tracing is enabled (see :mod:`repro.trace`), the invocation
        appears as a ``plan_cost`` span on the ``plan`` track with its
        compute/DMA/RLC components as child spans on the resource tracks;
        with tracing disabled this is exactly :meth:`cost`.
        """
        cost = self.cost()
        tr = _tracer()
        if tr.enabled:
            emit_cost_spans(tr, label or self.name, cost, cat="plan_cost", track="plan")
        mx = _metrics()
        if mx.enabled:
            from repro.metrics.roofline import classify_cost

            verdict = classify_cost(cost, self.params)
            mx.count("plan.invocations", 1, plan=self.name, bound=verdict.bound)
            mx.count("plan.flops", cost.flops)
            mx.count("plan.dma_bytes", cost.dma_bytes)
        return cost

    def time_s(self) -> float:
        """Convenience: total simulated seconds."""
        return self.cost().total_s
