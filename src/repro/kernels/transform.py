"""Tensor layout transformation plan (Sec. IV-C).

swCaffe gathers implicit-GEMM convolution layers together and inserts a
transformation layer at the boundary: it transposes 4D tensors between the
explicit/default layout (B, N, R, C) and the implicit layout (R, C, N, B).
The operation is pure irregular data movement, implemented on the CPE
cluster with strided DMA loads and SIMD shuffle stores — priced here with
short-block strided transfers on both sides.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PlanError, ShapeError
from repro.kernels.plan import KernelPlan, PlanCost
from repro.hw.spec import SW26010Params

#: Explicit/default Caffe layout.
LAYOUT_BNRC = (0, 1, 2, 3)
#: Implicit-plan layout: (R, C, N, B) expressed as axes of (B, N, R, C).
LAYOUT_RCNB = (2, 3, 1, 0)


class TensorTransformPlan(KernelPlan):
    """4D tensor transposition between the explicit and implicit layouts."""

    name = "transform"

    def __init__(
        self,
        shape: tuple[int, int, int, int],
        to_implicit: bool = True,
        dtype_bytes: int = 4,
        params: SW26010Params | None = None,
    ) -> None:
        super().__init__(params)
        if len(shape) != 4 or min(shape) <= 0:
            raise PlanError(f"transform needs a positive 4D shape, got {shape}")
        self.shape = tuple(int(s) for s in shape)
        self.to_implicit = bool(to_implicit)
        self.dtype_bytes = int(dtype_bytes)

    @property
    def nbytes(self) -> float:
        """Tensor payload in bytes."""
        n = 1
        for s in self.shape:
            n *= s
        return float(n * self.dtype_bytes)

    def cost(self) -> PlanCost:
        """Read once strided, write once strided.

        The innermost contiguous run after transposition is the last axis
        of the source layout on one side and the batch/width axis on the
        other; both are short, so this kernel runs at the strided-DMA
        bandwidth of Fig. 2's right panels.
        """
        if self.to_implicit:
            read_run = self.shape[3] * self.dtype_bytes  # C (width) runs
            write_run = self.shape[0] * self.dtype_bytes  # B runs
        else:
            read_run = self.shape[0] * self.dtype_bytes
            write_run = self.shape[3] * self.dtype_bytes
        dma_s = self._cg.dma.bulk_time(
            self.nbytes, block_bytes=max(32, read_run)
        ) + self._cg.dma.bulk_time(self.nbytes, block_bytes=max(32, write_run))
        # SIMD shuffles to re-pack vectors: ~1 op per element.
        elems = self.nbytes / self.dtype_bytes
        compute_s = elems / (self._cg.peak_flops * 0.25)
        return PlanCost(
            compute_s=compute_s, dma_s=dma_s, dma_bytes=2 * self.nbytes, flops=elems
        )

    def run(self, x: np.ndarray) -> np.ndarray:
        """Apply the transposition functionally."""
        if x.ndim != 4:
            raise ShapeError(f"transform expects a 4D tensor, got {x.shape}")
        if self.to_implicit:
            if x.shape != self.shape:
                raise ShapeError(f"input shape {x.shape} != plan shape {self.shape}")
            return np.ascontiguousarray(np.transpose(x, LAYOUT_RCNB))
        # Inverse direction: input is (R, C, N, B) for plan shape (B, N, R, C).
        expected = tuple(self.shape[a] for a in LAYOUT_RCNB)
        if x.shape != expected:
            raise ShapeError(f"input shape {x.shape} != implicit shape {expected}")
        return np.ascontiguousarray(np.transpose(x, (3, 2, 0, 1)))
