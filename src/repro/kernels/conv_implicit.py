"""Implicit-GEMM convolution plan (Sec. IV-B2, from swDNN [4]).

Instead of materializing the im2col matrix, the implicit scheme blocks the
convolution over image width and input/output channels so filter and image
tiles are reused directly from LDM, with the register-communication GEMM
micro-kernel running on (Ni-block x No-block) panels. This removes the
im2col/col2im traffic entirely — the dominant cost of the explicit plan —
but its SIMD/RLC micro-kernel vectorizes over channels, so it *requires*
reasonably large channel counts:

* forward needs ``Ni >= 64 and No >= 64`` (the paper: "when the input and
  output filter channel numbers are smaller than 64, performance ... would
  largely degrade"; with Ni=3 it cannot run at all);
* both backward directions need ``min(Ni, No) >= 128`` (Table II's missing
  implicit entries for conv1_2 and conv2_1 backward).

Data layout is (R, C, N, B) with filters (K, K, No, Ni); the
tensor-transformation layer (Sec. IV-C) converts at the boundaries.

Padding is handled by coordinate mapping, not a physical pad (the paper's
padding optimization), so no extra traffic is charged for it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PlanError, ShapeError
from repro.kernels.im2col import conv_out_dim
from repro.kernels.plan import KernelPlan, PlanCost, work_saturation
from repro.hw.spec import SW26010Params

#: Minimum channels for the implicit micro-kernel to run at all (forward).
MIN_CHANNELS_FORWARD = 64
#: Minimum channels for the backward micro-kernels.
MIN_CHANNELS_BACKWARD = 128


class ImplicitConvPlan(KernelPlan):
    """Direct (im2col-free) convolution on one core group.

    Same constructor signature as
    :class:`~repro.kernels.conv_explicit.ExplicitConvPlan` so the autotuner
    can instantiate both interchangeably.
    """

    name = "implicit"

    #: Peak fraction the implicit micro-kernel reaches with saturated
    #: channel and batch blocking (calibrated to Table II's ~400+ Gflops
    #: plateau at batch 128).
    peak_efficiency = 0.59
    #: Channel count at which the micro-kernel reaches half its peak
    #: efficiency (Hill curve on the geometric-mean channel count).
    channel_half = 85.0
    #: The implicit (R, C, N, B) layout vectorizes its innermost loads over
    #: the batch axis; small per-CG batches starve the SIMD lanes (the
    #: reason ResNet-50 at sub-mini-batch 32, i.e. 8 images per CG, runs
    #: far below VGG's efficiency in Table III).
    batch_half = 56.0
    #: Efficiency multipliers for the backward directions (Table II shows
    #: weight-gradient slightly faster, input-gradient slightly slower).
    weight_grad_factor = 1.15
    input_grad_factor = 0.95

    def __init__(
        self,
        batch: int,
        ni: int,
        no: int,
        height: int,
        width: int,
        k: int,
        stride: int = 1,
        pad: int = 0,
        dtype_bytes: int = 4,
        params: SW26010Params | None = None,
    ) -> None:
        super().__init__(params)
        if min(batch, ni, no, height, width, k, stride) <= 0:
            raise PlanError("conv dims must be positive")
        self.batch = int(batch)
        self.ni = int(ni)
        self.no = int(no)
        self.height = int(height)
        self.width = int(width)
        self.k = int(k)
        self.stride = int(stride)
        self.pad = int(pad)
        self.dtype_bytes = int(dtype_bytes)
        self.out_h = conv_out_dim(height, k, stride, pad)
        self.out_w = conv_out_dim(width, k, stride, pad)
        if not self.supports_forward(ni, no):
            raise PlanError(
                f"implicit plan needs Ni,No >= {MIN_CHANNELS_FORWARD} "
                f"(got Ni={ni}, No={no}); use the explicit plan"
            )

    # ------------------------------------------------------------------ #
    # availability rules
    # ------------------------------------------------------------------ #
    @staticmethod
    def supports_forward(ni: int, no: int) -> bool:
        """Whether the forward micro-kernel exists for these channels."""
        return ni >= MIN_CHANNELS_FORWARD and no >= MIN_CHANNELS_FORWARD

    @staticmethod
    def supports_backward(ni: int, no: int) -> bool:
        """Whether the backward micro-kernels exist for these channels."""
        return min(ni, no) >= MIN_CHANNELS_BACKWARD

    # ------------------------------------------------------------------ #
    # cost model
    # ------------------------------------------------------------------ #
    @property
    def flops(self) -> float:
        """MACs x2 for the whole invocation."""
        return (
            2.0
            * self.batch
            * self.no
            * self.ni
            * self.k
            * self.k
            * self.out_h
            * self.out_w
        )

    def _efficiency(self) -> float:
        """Hill curve in the geometric-mean channel count.

        Matches the Table II trend: ~110 Gflops at 64 channels rising to a
        ~400 Gflops plateau at 512 channels.
        """
        c = float(np.sqrt(self.ni * self.no))
        h2 = self.channel_half**2
        f_channel = c * c / (c * c + h2)
        f_batch = self.batch / (self.batch + self.batch_half)
        return self.peak_efficiency * f_channel * f_batch

    def _traffic_bytes(self) -> float:
        """DRAM traffic: input re-read per output-channel block, output
        written once, filters re-read per width block."""
        no_block = min(self.no, 128)
        w_block = max(1, min(self.out_w, 64))
        in_bytes = (
            self.batch * self.ni * self.height * self.width * self.dtype_bytes
        ) * np.ceil(self.no / no_block)
        out_bytes = self.batch * self.no * self.out_h * self.out_w * self.dtype_bytes
        filt_bytes = (
            self.no * self.ni * self.k * self.k * self.dtype_bytes
        ) * np.ceil(self.out_w / w_block) * self.batch
        return float(in_bytes + out_bytes + filt_bytes)

    def _direction_cost(self, eff_factor: float) -> PlanCost:
        flops = self.flops
        eff = self._efficiency() * eff_factor * work_saturation(flops)
        compute_s = flops / (self._cg.peak_flops * eff)
        dma_bytes = self._traffic_bytes()
        # Implicit blocks read rows of the (R, C, N, B) layout: contiguous
        # runs of the batch dimension.
        block = max(64, self.batch * self.dtype_bytes)
        dma_s = self._cg.dma.bulk_time(dma_bytes, block_bytes=block)
        return PlanCost(
            compute_s=compute_s, dma_s=dma_s, flops=flops, dma_bytes=dma_bytes
        )

    def cost_forward(self) -> PlanCost:
        """Forward pass cost."""
        return self._direction_cost(1.0)

    def cost_backward_weight(self) -> PlanCost:
        """Weight-gradient cost; raises if channels are too small."""
        if not self.supports_backward(self.ni, self.no):
            raise PlanError(
                f"implicit weight-gradient needs min(Ni,No) >= "
                f"{MIN_CHANNELS_BACKWARD} (got Ni={self.ni}, No={self.no})"
            )
        return self._direction_cost(self.weight_grad_factor)

    def cost_backward_input(self) -> PlanCost:
        """Input-gradient cost; raises if channels are too small."""
        if not self.supports_backward(self.ni, self.no):
            raise PlanError(
                f"implicit input-gradient needs min(Ni,No) >= "
                f"{MIN_CHANNELS_BACKWARD} (got Ni={self.ni}, No={self.no})"
            )
        return self._direction_cost(self.input_grad_factor)

    def cost(self) -> PlanCost:
        """Forward cost (the autotuner prices directions separately)."""
        return self.cost_forward()

    # ------------------------------------------------------------------ #
    # functional (numerically identical to the explicit plan)
    # ------------------------------------------------------------------ #
    def run_blocked_implicit_layout(
        self, x_rcnb: np.ndarray, weight_kknc: np.ndarray
    ) -> np.ndarray:
        """Execute the blocked direct convolution in the implicit layout.

        Input is ``(R, C, Ni, B)`` and filters ``(K, K, No, Ni)`` — the
        layouts the tensor-transformation layer produces (Sec. IV-C).
        Output is ``(Ro, Co, No, B)``. Blocks over output channels and
        image width stream through the DMA engine (charging the clock),
        with padding handled by coordinate mapping rather than a physical
        pad, exactly as the plan's padding optimization describes.
        """
        r, c, ni, bsz = x_rcnb.shape
        if (r, c, ni, bsz) != (self.height, self.width, self.ni, self.batch):
            raise ShapeError(
                f"input {x_rcnb.shape} != "
                f"{(self.height, self.width, self.ni, self.batch)}"
            )
        if weight_kknc.shape != (self.k, self.k, self.no, self.ni):
            raise ShapeError(
                f"filters {weight_kknc.shape} != "
                f"{(self.k, self.k, self.no, self.ni)}"
            )
        out = np.zeros(
            (self.out_h, self.out_w, self.no, self.batch), dtype=x_rcnb.dtype
        )
        dma = self._cg.dma
        no_block = min(self.no, 128)
        w_block = max(1, min(self.out_w, 64))
        s, p = self.stride, self.pad
        for no0 in range(0, self.no, no_block):
            no1 = min(no0 + no_block, self.no)
            w_tile = dma.get(weight_kknc[:, :, no0:no1, :])
            for ow0 in range(0, self.out_w, w_block):
                ow1 = min(ow0 + w_block, self.out_w)
                # Input columns feeding this output-width block.
                ic0 = ow0 * s - p
                ic1 = (ow1 - 1) * s + self.k - p
                lo, hi = max(ic0, 0), min(ic1, self.width)
                x_tile = dma.get(
                    x_rcnb[:, lo:hi],
                    block_bytes=self.batch * self.dtype_bytes,
                )
                acc = np.zeros(
                    (self.out_h, ow1 - ow0, no1 - no0, self.batch), dtype=np.float64
                )
                for ki in range(self.k):
                    for kj in range(self.k):
                        for ow in range(ow0, ow1):
                            icol = ow * s + kj - p
                            if not 0 <= icol < self.width:
                                continue  # coordinate-mapped padding
                            col = x_tile[:, icol - lo]  # (R, Ni, B)
                            # Rows of the input feeding each output row.
                            rows = np.arange(self.out_h) * s + ki - p
                            valid = (rows >= 0) & (rows < self.height)
                            contrib = np.einsum(
                                "rib,oi->rob",
                                col[rows[valid]],
                                w_tile[ki, kj],
                                optimize=True,
                            )
                            acc[valid, ow - ow0] += contrib
                dma.put(
                    acc.astype(out.dtype, copy=False),
                    out[:, ow0:ow1, no0:no1, :],
                    block_bytes=self.batch * self.dtype_bytes,
                )
        return out

    def forward(
        self, x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None
    ) -> np.ndarray:
        """Direct convolution forward (B, Ni, H, W) -> (B, No, Ho, Wo).

        Implemented as a K*K sum of strided slices — the same arithmetic as
        the blocked LDM kernel, without materializing im2col columns.
        """
        if x.shape != (self.batch, self.ni, self.height, self.width):
            raise ShapeError(
                f"input shape {x.shape} != "
                f"{(self.batch, self.ni, self.height, self.width)}"
            )
        xp = (
            np.pad(x, ((0, 0), (0, 0), (self.pad, self.pad), (self.pad, self.pad)))
            if self.pad
            else x
        )
        out = np.zeros((self.batch, self.no, self.out_h, self.out_w), dtype=x.dtype)
        s = self.stride
        for i in range(self.k):
            for j in range(self.k):
                patch = xp[:, :, i : i + s * self.out_h : s, j : j + s * self.out_w : s]
                # (B, Ni, Ho, Wo) x (No, Ni) contraction over Ni.
                out += np.einsum(
                    "bchw,oc->bohw", patch, weight[:, :, i, j], optimize=True
                )
        if bias is not None:
            out += bias.reshape(1, self.no, 1, 1)
        return out
