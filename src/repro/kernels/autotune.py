"""Convolution plan autotuning (Sec. VI-A).

"For layers [that] can be implemented with two methods, swCaffe can run
first two iterations to determine the best strategy used for remaining
iterations." The autotuner reproduces that: it prices (or, in a live net,
times) each direction of each candidate plan once per layer configuration
and caches the winner.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanError
from repro.kernels.conv_explicit import ExplicitConvPlan
from repro.kernels.conv_implicit import ImplicitConvPlan
from repro.kernels.plan import PlanCost
from repro.hw.spec import SW26010Params

#: Directions a convolution layer needs plans for.
DIRECTIONS = ("forward", "backward_weight", "backward_input")


@dataclass(frozen=True)
class ConvConfig:
    """Hashable convolution layer configuration (the autotuner cache key)."""

    batch: int
    ni: int
    no: int
    height: int
    width: int
    k: int
    stride: int = 1
    pad: int = 0
    dtype_bytes: int = 4


@dataclass(frozen=True)
class PlanChoice:
    """Winner for one (config, direction)."""

    plan_name: str
    cost: PlanCost
    alternatives: tuple[tuple[str, float], ...]  # (name, total_s) of all candidates


def _direction_cost(plan, direction: str) -> PlanCost:
    return getattr(plan, f"cost_{direction}")()


def select_conv_plan(
    config: ConvConfig, direction: str, params: SW26010Params | None = None
) -> PlanChoice:
    """Price every available plan for one direction and keep the winner."""
    if direction not in DIRECTIONS:
        raise ValueError(f"direction must be one of {DIRECTIONS}, got {direction!r}")
    candidates = []
    explicit = ExplicitConvPlan(
        config.batch, config.ni, config.no, config.height, config.width,
        config.k, config.stride, config.pad, config.dtype_bytes, params,
    )
    candidates.append(explicit)
    try:
        implicit = ImplicitConvPlan(
            config.batch, config.ni, config.no, config.height, config.width,
            config.k, config.stride, config.pad, config.dtype_bytes, params,
        )
        candidates.append(implicit)
    except PlanError:
        pass

    results: list[tuple[str, PlanCost]] = []
    for plan in candidates:
        try:
            results.append((plan.name, _direction_cost(plan, direction)))
        except PlanError:
            continue
    if not results:
        raise PlanError(f"no plan available for {config} / {direction}")
    winner = min(results, key=lambda nc: nc[1].total_s)
    return PlanChoice(
        plan_name=winner[0],
        cost=winner[1],
        alternatives=tuple((n, c.total_s) for n, c in results),
    )


def serving_batch_sweep(
    config: ConvConfig,
    batches: tuple[int, ...],
    *,
    direction: str = "forward",
    params: SW26010Params | None = None,
) -> list[tuple[int, PlanChoice]]:
    """Plan choice for one conv shape across serving batch sizes.

    A training autotune prices one fixed mini-batch; a serving engine sees
    every batch the dynamic batcher forms, and the explicit-vs-implicit
    winner can flip with the batch (the implicit plan's (R, C, N, B) layout
    gains efficiency with B, and availability itself is batch-gated).
    Returns ``[(batch, choice)]`` with ``config`` re-keyed per batch —
    the data behind ``python -m repro serve --explain-plans``.
    """
    out: list[tuple[int, PlanChoice]] = []
    for b in batches:
        if b < 1:
            raise ValueError(f"serving batches must be >= 1, got {b}")
        cfg = ConvConfig(
            batch=b, ni=config.ni, no=config.no,
            height=config.height, width=config.width,
            k=config.k, stride=config.stride, pad=config.pad,
            dtype_bytes=config.dtype_bytes,
        )
        out.append((b, select_conv_plan(cfg, direction, params)))
    return out


class PlanAutotuner:
    """Caches plan choices per (config, direction), like swCaffe's
    first-two-iterations probe."""

    def __init__(self, params: SW26010Params | None = None) -> None:
        self.params = params
        self._cache: dict[tuple[ConvConfig, str], PlanChoice] = {}
        self.probe_count = 0

    def choose(self, config: ConvConfig, direction: str) -> PlanChoice:
        """Return the cached winner, probing once on a cache miss."""
        key = (config, direction)
        if key not in self._cache:
            self._cache[key] = select_conv_plan(config, direction, self.params)
            self.probe_count += 1
        return self._cache[key]

    def clear(self) -> None:
        """Forget all decisions (e.g. after a hardware-model change)."""
        self._cache.clear()
        self.probe_count = 0
