"""im2col / col2im transformations and their DMA plans (Sec. IV-B1, Fig. 4).

The explicit GEMM lowering of convolution: ``im2col`` unrolls a
(Ni, Ri, Ci) image into a (Ni*K*K, Ro*Co) matrix so convolution becomes
GEMM with the (No, Ni*K*K) filter matrix; ``col2im`` scatters the matrix
back (with overlap accumulation) for the backward pass.

On SW26010 both are pure data-movement kernels with irregular access, so
the paper implements them with per-CPE DMA: each CPE reads whole input rows
into LDM (contiguous, length Ci), applies padding, and writes K*K shifted
copies back (strided, block length ~Co). The plans below price exactly that
pattern against the Fig. 2 DMA model.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PlanError, ShapeError
from repro.kernels.plan import KernelPlan, PlanCost
from repro.hw.spec import SW26010Params


def conv_out_dim(size: int, k: int, stride: int, pad: int) -> int:
    """Output spatial size of a convolution/pooling window sweep."""
    out = (size + 2 * pad - k) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"non-positive conv output dim for size={size}, k={k}, "
            f"stride={stride}, pad={pad}"
        )
    return out


def im2col(x: np.ndarray, k: int, stride: int = 1, pad: int = 0) -> np.ndarray:
    """Unroll one multi-channel image into the GEMM operand matrix.

    Parameters
    ----------
    x:
        Input of shape ``(C, H, W)``.
    k:
        Square filter size.
    stride, pad:
        Convolution stride and zero padding.

    Returns
    -------
    Matrix of shape ``(C * k * k, Ho * Wo)`` where row ``c*k*k + i*k + j``
    holds the input pixel at offset ``(i, j)`` inside each window (the
    Caffe layout).
    """
    if x.ndim != 3:
        raise ShapeError(f"im2col expects (C, H, W), got {x.shape}")
    c, h, w = x.shape
    ho = conv_out_dim(h, k, stride, pad)
    wo = conv_out_dim(w, k, stride, pad)
    xp = np.pad(x, ((0, 0), (pad, pad), (pad, pad))) if pad else x
    windows = np.lib.stride_tricks.sliding_window_view(xp, (k, k), axis=(1, 2))
    # windows: (C, H', W', k, k); subsample by stride, then reorder to
    # (C, k, k, Ho, Wo).
    windows = windows[:, ::stride, ::stride, :, :]
    cols = windows.transpose(0, 3, 4, 1, 2).reshape(c * k * k, ho * wo)
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray,
    shape: tuple[int, int, int],
    k: int,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Inverse of :func:`im2col` with overlap accumulation.

    Entries that came from the same input pixel (overlapping windows) are
    summed — the adjoint operation needed by convolution backward.
    """
    c, h, w = shape
    ho = conv_out_dim(h, k, stride, pad)
    wo = conv_out_dim(w, k, stride, pad)
    if cols.shape != (c * k * k, ho * wo):
        raise ShapeError(
            f"col2im input {cols.shape} does not match expected "
            f"({c * k * k}, {ho * wo})"
        )
    xp = np.zeros((c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    blocks = cols.reshape(c, k, k, ho, wo)
    for i in range(k):
        for j in range(k):
            xp[:, i : i + stride * ho : stride, j : j + stride * wo : stride] += blocks[
                :, i, j
            ]
    if pad:
        return np.ascontiguousarray(xp[:, pad : pad + h, pad : pad + w])
    return xp


class _TransformPlanBase(KernelPlan):
    """Shared cost logic of the im2col/col2im DMA plans."""

    def __init__(
        self,
        channels: int,
        height: int,
        width: int,
        k: int,
        stride: int = 1,
        pad: int = 0,
        dtype_bytes: int = 4,
        params: SW26010Params | None = None,
    ) -> None:
        super().__init__(params)
        if min(channels, height, width, k, stride) <= 0:
            raise PlanError("im2col/col2im dims must be positive")
        self.channels = int(channels)
        self.height = int(height)
        self.width = int(width)
        self.k = int(k)
        self.stride = int(stride)
        self.pad = int(pad)
        self.dtype_bytes = int(dtype_bytes)
        self.out_h = conv_out_dim(height, k, stride, pad)
        self.out_w = conv_out_dim(width, k, stride, pad)

    @property
    def image_bytes(self) -> float:
        """Bytes of the (C, H, W) tensor."""
        return float(self.channels * self.height * self.width * self.dtype_bytes)

    @property
    def matrix_bytes(self) -> float:
        """Bytes of the unrolled (C*K*K, Ho*Wo) matrix."""
        return float(
            self.channels * self.k * self.k * self.out_h * self.out_w * self.dtype_bytes
        )

    def _movement_cost(self) -> PlanCost:
        """Price: image side moves in whole rows, matrix side in ~Wo blocks."""
        row_block = self.width * self.dtype_bytes
        line_block = self.out_w * self.dtype_bytes
        image_s = self._cg.dma.bulk_time(self.image_bytes, block_bytes=row_block)
        matrix_s = self._cg.dma.bulk_time(self.matrix_bytes, block_bytes=line_block)
        total_bytes = self.image_bytes + self.matrix_bytes
        return PlanCost(dma_s=image_s + matrix_s, dma_bytes=total_bytes)


class Im2colPlan(_TransformPlanBase):
    """DMA plan for the forward unroll (read rows, write K*K lines)."""

    name = "im2col"

    def cost(self) -> PlanCost:
        return self._movement_cost()

    def run(self, x: np.ndarray) -> np.ndarray:
        """Functional im2col for a single image."""
        return im2col(x, self.k, self.stride, self.pad)

    def run_staged(self, x: np.ndarray) -> np.ndarray:
        """Execute the Fig. 4 per-row DMA schedule against the model.

        Each CPE reads one input row into its LDM buffer (DMA get), applies
        padding, and writes the K*K shifted line segments back (strided DMA
        put) — exactly the paper's plan. Numerically identical to
        :func:`im2col`; charges the core group's clock and enforces the
        LDM row-buffer budget. Used by fidelity tests.
        """
        if x.shape != (self.channels, self.height, self.width):
            raise ShapeError(
                f"input {x.shape} != ({self.channels}, {self.height}, {self.width})"
            )
        k, s, p = self.k, self.stride, self.pad
        out = np.zeros(
            (self.channels * k * k, self.out_h * self.out_w), dtype=x.dtype
        )
        dma = self._cg.dma
        ldm = self._cg.cpes[0].ldm
        padded_w = self.width + 2 * p
        row_buf_bytes = padded_w * self.dtype_bytes
        ldm.require("im2col/row", row_buf_bytes)
        try:
            # Rows are distributed over the 64 CPEs; we execute them
            # sequentially but charge concurrent 64-CPE transfers per wave.
            for c in range(self.channels):
                for r in range(self.height):
                    row = dma.get(x[c, r], n_cpes=64, block_bytes=row_buf_bytes)
                    padded = np.zeros(padded_w, dtype=x.dtype)
                    padded[p : p + self.width] = row
                    # This input row lands in output rows (c, ki, kj) at the
                    # window positions whose ki-th row is r.
                    for ki in range(k):
                        oy, rem = divmod(r + p - ki, s)
                        if rem or not (0 <= oy < self.out_h):
                            continue
                        for kj in range(k):
                            cols = padded[kj : kj + s * self.out_w : s]
                            dst_row = (c * k + ki) * k + kj
                            dst = out[dst_row, oy * self.out_w : (oy + 1) * self.out_w]
                            dma.put(
                                cols, dst, n_cpes=64,
                                block_bytes=self.out_w * self.dtype_bytes,
                            )
        finally:
            ldm.free_buffer("im2col/row")
        return out


class Col2imPlan(_TransformPlanBase):
    """DMA plan for the backward scatter (read lines, accumulate rows)."""

    name = "col2im"

    def cost(self) -> PlanCost:
        move = self._movement_cost()
        # Overlap accumulation: one add per matrix element.
        flops = float(self.channels * self.k * self.k * self.out_h * self.out_w)
        compute_s = flops / (self._cg.peak_flops * 0.25)
        return PlanCost(
            compute_s=compute_s,
            dma_s=move.dma_s,
            dma_bytes=move.dma_bytes,
            flops=flops,
        )

    def run(self, cols: np.ndarray) -> np.ndarray:
        """Functional col2im for a single image."""
        return col2im(
            cols,
            (self.channels, self.height, self.width),
            self.k,
            self.stride,
            self.pad,
        )
