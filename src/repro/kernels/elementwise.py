"""Elementwise / bandwidth-bound kernel plan.

ReLU, batch-norm, dropout, bias, softmax, scale — on SW26010 these layers
are dominated by DMA streaming (the paper's Fig. 8/9 observation that
"bandwidth-bounded layers ... still have a significant amount of time on
SW26010" while a GPU hides them in its 288 GB/s device memory). One plan
covers them all: it streams ``reads + writes`` bytes through LDM and
retires ``flops`` on the way.
"""

from __future__ import annotations

from repro.errors import PlanError
from repro.kernels.plan import KernelPlan, PlanCost
from repro.hw.spec import SW26010Params


class ElementwisePlan(KernelPlan):
    """Streaming kernel: y = f(x, ...) with per-element work.

    Parameters
    ----------
    read_bytes, write_bytes:
        DRAM traffic of each direction.
    flops:
        Arithmetic per invocation (ReLU ~1/elem, BN ~5/elem, ...).
    compute_efficiency:
        Fraction of CPE-cluster peak the per-element math sustains
        (elementwise chains rarely exceed ~25%: no FMA balance, short
        dependency chains).
    """

    name = "elementwise"

    def __init__(
        self,
        read_bytes: float,
        write_bytes: float,
        flops: float = 0.0,
        compute_efficiency: float = 0.25,
        params: SW26010Params | None = None,
    ) -> None:
        super().__init__(params)
        if read_bytes < 0 or write_bytes < 0 or flops < 0:
            raise PlanError("traffic and flops must be non-negative")
        if not 0 < compute_efficiency <= 1.0:
            raise PlanError("compute_efficiency must be in (0, 1]")
        self.read_bytes = float(read_bytes)
        self.write_bytes = float(write_bytes)
        self.flops = float(flops)
        self.compute_efficiency = float(compute_efficiency)

    @classmethod
    def for_tensor(
        cls,
        n_elements: int,
        *,
        flops_per_element: float = 1.0,
        n_inputs: int = 1,
        n_outputs: int = 1,
        dtype_bytes: int = 4,
        compute_efficiency: float = 0.25,
        params: SW26010Params | None = None,
    ) -> "ElementwisePlan":
        """Convenience constructor from element counts."""
        nbytes = float(n_elements * dtype_bytes)
        return cls(
            read_bytes=n_inputs * nbytes,
            write_bytes=n_outputs * nbytes,
            flops=flops_per_element * n_elements,
            compute_efficiency=compute_efficiency,
            params=params,
        )

    def cost(self) -> PlanCost:
        total = self.read_bytes + self.write_bytes
        dma_s = self._cg.dma.bulk_time(total) if total > 0 else 0.0
        compute_s = (
            self.flops / (self._cg.peak_flops * self.compute_efficiency)
            if self.flops
            else 0.0
        )
        return PlanCost(
            compute_s=compute_s, dma_s=dma_s, flops=self.flops, dma_bytes=total
        )
