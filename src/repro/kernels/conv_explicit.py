"""Explicit-GEMM convolution plan (Sec. IV-B1).

The original Caffe lowering, re-tuned for SW26010: per image, ``im2col``
unrolls the input, a register-communication GEMM multiplies the filter
matrix against it, and (backward) ``col2im`` folds gradients back. This is
the only plan available when channel counts are too small for the implicit
scheme (e.g. VGG's conv1_1 with Ni=3), and it wins when the unrolled GEMM
gets large well-shaped operands (large images *and* large channels).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PlanError, ShapeError
from repro.kernels.gemm import SWGemmPlan
from repro.kernels.im2col import Col2imPlan, Im2colPlan, conv_out_dim, im2col, col2im
from repro.kernels.plan import KernelPlan, PlanCost, combine_sequential, work_saturation
from repro.hw.spec import SW26010Params


class ExplicitConvPlan(KernelPlan):
    """im2col + GEMM convolution on one core group.

    Parameters
    ----------
    batch:
        Images processed per invocation (the per-core-group share).
    ni, no:
        Input/output channel counts.
    height, width:
        Input spatial dims.
    k, stride, pad:
        Square filter size, stride, zero padding.
    """

    name = "explicit"

    #: Extra cost factor of the input-gradient direction: col2im's
    #: overlap accumulation is read-modify-write over K*K shifted copies,
    #: and the (K2Ni x HoWo) = W^T dY GEMM runs with a transposed operand.
    #: Table II shows explicit in-diff consistently ~2x the forward time.
    input_grad_penalty = 2.0

    #: Per-image kernel invocation overhead: the explicit plan loops the
    #: batch, and each image pays an athread spawn + LDM/plan setup on the
    #: CPE cluster. Negligible for VGG-sized layers, but it compounds for
    #: networks made of many small convolutions over small feature maps
    #: (ResNet-50, GoogLeNet) — part of why Table III shows them at ~0.2x
    #: of the GPU while VGG reaches ~0.45x.
    spawn_overhead_s = 3.5e-4

    def __init__(
        self,
        batch: int,
        ni: int,
        no: int,
        height: int,
        width: int,
        k: int,
        stride: int = 1,
        pad: int = 0,
        dtype_bytes: int = 4,
        params: SW26010Params | None = None,
    ) -> None:
        super().__init__(params)
        if min(batch, ni, no, height, width, k, stride) <= 0:
            raise PlanError("conv dims must be positive")
        self.batch = int(batch)
        self.ni = int(ni)
        self.no = int(no)
        self.height = int(height)
        self.width = int(width)
        self.k = int(k)
        self.stride = int(stride)
        self.pad = int(pad)
        self.dtype_bytes = int(dtype_bytes)
        self.out_h = conv_out_dim(height, k, stride, pad)
        self.out_w = conv_out_dim(width, k, stride, pad)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    @property
    def is_1x1(self) -> bool:
        """1x1/stride-1 convolutions skip im2col entirely (Caffe fast path)."""
        return self.k == 1 and self.stride == 1 and self.pad == 0

    @property
    def gemm_k(self) -> int:
        """Contraction dim of the lowered GEMM (K*K*Ni)."""
        return self.k * self.k * self.ni

    @property
    def spatial(self) -> int:
        """Output pixels per image (the GEMM n dimension)."""
        return self.out_h * self.out_w

    def _im2col_plan(self) -> Im2colPlan:
        return Im2colPlan(
            self.ni, self.height, self.width, self.k, self.stride, self.pad,
            self.dtype_bytes, self.params,
        )

    def _col2im_plan(self) -> Col2imPlan:
        return Col2imPlan(
            self.ni, self.height, self.width, self.k, self.stride, self.pad,
            self.dtype_bytes, self.params,
        )

    # ------------------------------------------------------------------ #
    # costs
    # ------------------------------------------------------------------ #
    def _spawn_cost(self) -> PlanCost:
        """Per-image athread spawn/setup overhead for the whole batch."""
        return PlanCost(overhead_s=self.batch * self.spawn_overhead_s)

    @staticmethod
    def _saturate(cost: PlanCost) -> PlanCost:
        """Apply the small-invocation work-saturation penalty to compute."""
        f = work_saturation(cost.flops)
        return PlanCost(
            compute_s=cost.compute_s / f,
            dma_s=cost.dma_s,
            rlc_s=cost.rlc_s,
            overhead_s=cost.overhead_s,
            flops=cost.flops,
            dma_bytes=cost.dma_bytes,
        )

    def cost_forward(self) -> PlanCost:
        """Forward: per image, im2col then (No x K2Ni) @ (K2Ni x HoWo)."""
        gemm = SWGemmPlan(
            self.no, self.spatial, self.gemm_k, self.dtype_bytes, self.params
        )
        phases = [gemm.cost()]
        if not self.is_1x1:
            phases.insert(0, self._im2col_plan().cost())
        per_image = combine_sequential(phases)
        total = combine_sequential([per_image] * self.batch) + self._spawn_cost()
        return self._saturate(total)

    def cost_backward_weight(self) -> PlanCost:
        """dW: per image, im2col (recomputed) then dY @ cols^T."""
        gemm = SWGemmPlan(
            self.no, self.gemm_k, self.spatial, self.dtype_bytes, self.params
        )
        phases = [gemm.cost()]
        if not self.is_1x1:
            phases.insert(0, self._im2col_plan().cost())
        per_image = combine_sequential(phases)
        total = combine_sequential([per_image] * self.batch) + self._spawn_cost()
        return self._saturate(total)

    def cost_backward_input(self) -> PlanCost:
        """dX: per image, W^T @ dY then col2im."""
        gemm = SWGemmPlan(
            self.gemm_k, self.spatial, self.no, self.dtype_bytes, self.params
        )
        phases = [gemm.cost()]
        if not self.is_1x1:
            phases.append(self._col2im_plan().cost())
        per_image = combine_sequential(phases)
        total = self._saturate(
            combine_sequential([per_image] * self.batch) + self._spawn_cost()
        )
        return PlanCost(
            compute_s=total.compute_s * self.input_grad_penalty,
            dma_s=total.dma_s * self.input_grad_penalty,
            rlc_s=total.rlc_s * self.input_grad_penalty,
            overhead_s=total.overhead_s * self.input_grad_penalty,
            flops=total.flops,
            dma_bytes=total.dma_bytes,
        )

    def cost(self) -> PlanCost:
        """Forward cost (the autotuner prices directions separately)."""
        return self.cost_forward()

    # ------------------------------------------------------------------ #
    # functional
    # ------------------------------------------------------------------ #
    def _check_input(self, x: np.ndarray) -> None:
        expected = (self.batch, self.ni, self.height, self.width)
        if x.shape != expected:
            raise ShapeError(f"input shape {x.shape} != {expected}")

    def forward(
        self, x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None
    ) -> np.ndarray:
        """Convolution forward: returns (B, No, Ho, Wo)."""
        self._check_input(x)
        if weight.shape != (self.no, self.ni, self.k, self.k):
            raise ShapeError(
                f"weight shape {weight.shape} != "
                f"{(self.no, self.ni, self.k, self.k)}"
            )
        w_mat = weight.reshape(self.no, self.gemm_k)
        out = np.empty((self.batch, self.no, self.out_h, self.out_w), dtype=x.dtype)
        for b in range(self.batch):
            cols = im2col(x[b], self.k, self.stride, self.pad)
            y = w_mat @ cols
            out[b] = y.reshape(self.no, self.out_h, self.out_w)
        if bias is not None:
            out += bias.reshape(1, self.no, 1, 1)
        return out

    def backward(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        dy: np.ndarray,
        *,
        need_input_grad: bool = True,
    ) -> tuple[np.ndarray | None, np.ndarray, np.ndarray]:
        """Convolution backward: returns (dx, dw, db)."""
        self._check_input(x)
        if dy.shape != (self.batch, self.no, self.out_h, self.out_w):
            raise ShapeError(
                f"dy shape {dy.shape} != "
                f"{(self.batch, self.no, self.out_h, self.out_w)}"
            )
        w_mat = weight.reshape(self.no, self.gemm_k)
        dw = np.zeros_like(w_mat)
        dx = np.zeros_like(x) if need_input_grad else None
        for b in range(self.batch):
            cols = im2col(x[b], self.k, self.stride, self.pad)
            dy_mat = dy[b].reshape(self.no, self.spatial)
            dw += dy_mat @ cols.T
            if need_input_grad:
                dcols = w_mat.T @ dy_mat
                dx[b] = col2im(
                    dcols,
                    (self.ni, self.height, self.width),
                    self.k,
                    self.stride,
                    self.pad,
                )
        db = dy.sum(axis=(0, 2, 3))
        return dx, dw.reshape(weight.shape), db
