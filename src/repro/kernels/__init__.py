"""SW26010 kernel execution plans (paper Sec. III-IV).

Each plan couples a *functional* NumPy implementation with a *temporal*
cost model derived from the :mod:`repro.hw` architecture simulator. The
plan family mirrors swCaffe's kernel zoo:

* :class:`~repro.kernels.gemm.SWGemmPlan` — blocked GEMM using the 8-step
  row/column register-communication schedule (Sec. IV-A, Fig. 3);
* :class:`~repro.kernels.conv_explicit.ExplicitConvPlan` — im2col/col2im +
  GEMM, the original Caffe lowering with DMA-optimized transforms (Fig. 4);
* :class:`~repro.kernels.conv_implicit.ImplicitConvPlan` — the swDNN-style
  direct convolution blocked on width/channels, which degrades (and is
  refused) for small channel counts;
* :class:`~repro.kernels.pooling.PoolingPlan` — DMA-strategy pooling;
* :class:`~repro.kernels.transform.TensorTransformPlan` — the layout
  transposition layer between explicit (B,N,R,C) and implicit (R,C,N,B)
  data layouts (Sec. IV-C);
* :func:`~repro.kernels.autotune.select_conv_plan` — the "run the first
  two iterations, keep the winner" strategy (Sec. VI-A).
"""

from repro.kernels.plan import KernelPlan, PlanCost
from repro.kernels.gemm import SWGemmPlan, gemm_register_schedule
from repro.kernels.im2col import im2col, col2im, Im2colPlan, Col2imPlan
from repro.kernels.conv_explicit import ExplicitConvPlan
from repro.kernels.conv_implicit import ImplicitConvPlan
from repro.kernels.conv_fft import FFTConvPlan
from repro.kernels.pooling import PoolingPlan
from repro.kernels.transform import TensorTransformPlan
from repro.kernels.elementwise import ElementwisePlan
from repro.kernels.autotune import PlanAutotuner, select_conv_plan

__all__ = [
    "KernelPlan",
    "PlanCost",
    "SWGemmPlan",
    "gemm_register_schedule",
    "im2col",
    "col2im",
    "Im2colPlan",
    "Col2imPlan",
    "ExplicitConvPlan",
    "ImplicitConvPlan",
    "FFTConvPlan",
    "PoolingPlan",
    "TensorTransformPlan",
    "ElementwisePlan",
    "PlanAutotuner",
    "select_conv_plan",
]
