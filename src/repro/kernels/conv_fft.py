"""Frequency-domain convolution plan — the road *not* taken (Sec. IV-B).

The paper notes that GPU stacks use both time-domain (GEMM) and
frequency-domain (FFT) convolution, and chooses time-domain for SW26010
"because GEMM operations can be perfectly optimized on CPE cluster with
the register-level communication". This plan implements the alternative so
the choice can be evaluated rather than asserted:

* functionally: exact convolution via FFT (circular convolution on padded
  images, cropped back — numerically identical to the direct kernels);
* temporally: an SW26010 cost model for the three phases (forward
  transforms, pointwise complex multiply-accumulate, inverse transform).
  FFT butterflies are bandwidth-hungry (O(N log N) passes of low
  arithmetic intensity) and their working sets (complex, image-sized)
  blow the 64 KiB LDM, forcing spill traffic — which is why the autotuner
  never picks this plan for the paper's layer shapes (see
  ``tests/test_conv_fft.py``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PlanError, ShapeError
from repro.kernels.im2col import conv_out_dim
from repro.kernels.plan import KernelPlan, PlanCost


class FFTConvPlan(KernelPlan):
    """FFT-based convolution on one core group.

    Same constructor signature as the other conv plans. Only stride 1 is
    supported (the standard limitation of FFT convolution).
    """

    name = "fft"

    #: Sustained fraction of peak for butterfly stages: very low on
    #: SW26010 — no FMA balance, bit-reversed strided access (violating
    #: Principle 3's 256 B block rule), complex shuffles, and no
    #: single-precision register communication.
    butterfly_efficiency = 0.05
    #: Sustained fraction of peak for the pointwise phase: per-frequency
    #: (B x Ni) @ (Ni x No) micro-GEMMs whose contraction dim is only Ni
    #: *per frequency* — the small-k regime of the main GEMM model, with
    #: no register-communication reuse across frequencies.
    pointwise_efficiency = 0.12

    def __init__(
        self,
        batch: int,
        ni: int,
        no: int,
        height: int,
        width: int,
        k: int,
        stride: int = 1,
        pad: int = 0,
        dtype_bytes: int = 4,
        params=None,
    ) -> None:
        super().__init__(params)
        if stride != 1:
            raise PlanError("FFT convolution supports stride 1 only")
        if min(batch, ni, no, height, width, k) <= 0:
            raise PlanError("conv dims must be positive")
        self.batch = int(batch)
        self.ni = int(ni)
        self.no = int(no)
        self.height = int(height)
        self.width = int(width)
        self.k = int(k)
        self.stride = 1
        self.pad = int(pad)
        self.dtype_bytes = int(dtype_bytes)
        self.out_h = conv_out_dim(height, k, 1, pad)
        self.out_w = conv_out_dim(width, k, 1, pad)
        # FFT size: next power of two covering image + kernel - 1.
        need = max(self.height + 2 * self.pad, self.width + 2 * self.pad) + k - 1
        size = 1
        while size < need:
            size *= 2
        self.fft_size = size

    # ------------------------------------------------------------------ #
    # cost model
    # ------------------------------------------------------------------ #
    def cost_forward(self) -> PlanCost:
        """Three phases: FFT(inputs + filters), pointwise MAC, inverse FFT."""
        s = self.fft_size
        s2 = float(s * s)
        log_s2 = 2.0 * np.log2(s)
        # Transforms: batch*Ni input images + No*Ni filters + batch*No outputs.
        n_transforms = self.batch * self.ni + self.no * self.ni + self.batch * self.no
        butterfly_flops = 5.0 * s2 * log_s2 * n_transforms
        # Pointwise: complex MAC over Ni for each (batch, No) spectrum.
        pointwise_flops = 8.0 * s2 * self.batch * self.no * self.ni
        flops = butterfly_flops + pointwise_flops
        compute_s = butterfly_flops / (
            self._cg.peak_flops * self.butterfly_efficiency
        ) + pointwise_flops / (self._cg.peak_flops * self.pointwise_efficiency)
        # Spectra are complex (2x) and padded to the FFT grid; each
        # butterfly pass streams the working set when it exceeds LDM.
        spectrum_bytes = 2.0 * s2 * self.dtype_bytes
        per_cpe_ws = spectrum_bytes / self.params.n_cpes_per_cg
        passes = log_s2 if per_cpe_ws > self.params.ldm_bytes / 2 else 1.0
        dma_bytes = n_transforms * spectrum_bytes * passes + (
            self.batch * self.no * self.ni / 64.0  # accumulation re-reads
        ) * spectrum_bytes
        dma_s = self._cg.dma.bulk_time(dma_bytes, block_bytes=s * self.dtype_bytes)
        return PlanCost(
            compute_s=compute_s, dma_s=dma_s, flops=flops, dma_bytes=dma_bytes
        )

    def cost(self) -> PlanCost:
        return self.cost_forward()

    # ------------------------------------------------------------------ #
    # functional
    # ------------------------------------------------------------------ #
    def forward(
        self, x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None
    ) -> np.ndarray:
        """Exact convolution via 2D FFT (cross-correlation, Caffe-style)."""
        if x.shape != (self.batch, self.ni, self.height, self.width):
            raise ShapeError(
                f"input {x.shape} != {(self.batch, self.ni, self.height, self.width)}"
            )
        if weight.shape != (self.no, self.ni, self.k, self.k):
            raise ShapeError(
                f"weight {weight.shape} != {(self.no, self.ni, self.k, self.k)}"
            )
        p = self.pad
        xp = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p))) if p else x
        s = self.fft_size
        # Cross-correlation = convolution with the flipped kernel.
        xf = np.fft.rfft2(xp, s=(s, s))
        wf = np.fft.rfft2(weight[:, :, ::-1, ::-1], s=(s, s))
        # (B, 1, Ni, ...) * (1, No, Ni, ...) summed over Ni.
        yf = np.einsum("bihw,oihw->bohw", xf, wf, optimize=True)
        full = np.fft.irfft2(yf, s=(s, s))
        k = self.k
        out = full[:, :, k - 1 : k - 1 + self.out_h, k - 1 : k - 1 + self.out_w]
        out = np.ascontiguousarray(out).astype(x.dtype, copy=False)
        if bias is not None:
            out = out + bias.reshape(1, self.no, 1, 1).astype(x.dtype)
        return out
