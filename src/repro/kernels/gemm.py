"""Blocked GEMM with the 8-step register-communication schedule (Sec. IV-A).

The algorithm: matrices A (m x k), B (k x n), C (m x n) are tiled over the
8x8 CPE mesh; CPE(i, j) owns tiles A(i, :), B(:, j) and computes C(i, j).
At time step t, CPE(i, t) column-broadcasts A(i, t) and CPE(t, j)
row-broadcasts B(t, j); every CPE accumulates ``C(i,j) += A(i,t) @ B(t,j)``.
Eight steps complete the product with each operand fetched from memory to
LDM exactly once — the highest possible flop-to-byte ratio.

Matrices too large for LDM are processed in outer blocks (Principle 3:
blocks are chosen as large as LDM allows so DMA runs at full bandwidth).

Because the SW26010 instruction set has no single-precision register
communication, single-precision GEMMs pay an inline float<->double
conversion, modeled as a compute-efficiency tax.

Two functional paths exist:

* :meth:`SWGemmPlan.run` — fast NumPy ``A @ B`` (used by the framework);
* :func:`gemm_register_schedule` — a literal execution of the 8x8 schedule
  (tile broadcasts and per-step accumulation), property-tested equal to
  ``A @ B``, which pins the schedule's correctness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import PlanError
from repro.kernels.plan import KernelPlan, PlanCost
from repro.hw.spec import SW26010Params


def gemm_register_schedule(a: np.ndarray, b: np.ndarray, mesh: int = 8) -> np.ndarray:
    """Execute C = A @ B via the literal mesh broadcast schedule.

    Pads each dimension up to a multiple of ``mesh``, runs the ``mesh``
    time steps of row/column broadcasts, and returns the unpadded product.
    This is the *semantic* reference for the register-communication GEMM.
    """
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise PlanError(f"GEMM shape mismatch: {a.shape} @ {b.shape}")
    m, k = a.shape
    _, n = b.shape

    def pad_to(x: int) -> int:
        return mesh * math.ceil(x / mesh)

    mp, kp, np_ = pad_to(m), pad_to(k), pad_to(n)
    ap = np.zeros((mp, kp), dtype=np.float64)
    bp = np.zeros((kp, np_), dtype=np.float64)
    ap[:m, :k] = a
    bp[:k, :n] = b
    mt, kt, nt = mp // mesh, kp // mesh, np_ // mesh

    # c_tiles[i][j] is the C tile resident on CPE(i, j).
    c_tiles = [[np.zeros((mt, nt)) for _ in range(mesh)] for _ in range(mesh)]
    for t in range(mesh):
        # Column broadcast: CPE(i, t) sends A(i, t) down its column.
        a_col = [ap[i * mt : (i + 1) * mt, t * kt : (t + 1) * kt] for i in range(mesh)]
        # Row broadcast: CPE(t, j) sends B(t, j) along its row.
        b_row = [bp[t * kt : (t + 1) * kt, j * nt : (j + 1) * nt] for j in range(mesh)]
        for i in range(mesh):
            for j in range(mesh):
                c_tiles[i][j] += a_col[i] @ b_row[j]

    c = np.empty((mp, np_))
    for i in range(mesh):
        for j in range(mesh):
            c[i * mt : (i + 1) * mt, j * nt : (j + 1) * nt] = c_tiles[i][j]
    return c[:m, :n].astype(np.result_type(a, b), copy=False)


@dataclass(frozen=True)
class GemmBlocking:
    """Outer blocking of a large GEMM into LDM-resident panels."""

    mb: int
    nb: int
    kb: int

    @property
    def flop_per_byte(self) -> float:
        """Arithmetic intensity of one block at 4-byte elements."""
        traffic = 4.0 * (self.mb * self.kb + self.kb * self.nb + self.mb * self.nb)
        return 2.0 * self.mb * self.nb * self.kb / traffic


#: Memoized blocking choices. Scoring candidates with the full cost model
#: makes one choice ~700 cost evaluations; layer shapes repeat heavily
#: (every conv in a net maps to a handful of GEMM shapes), so the search
#: runs once per distinct (params, m, n, k, dtype) tuple per process.
_BLOCKING_CACHE: dict[tuple, GemmBlocking] = {}
_BLOCKING_CACHE_MAX = 65536


class SWGemmPlan(KernelPlan):
    """Cost/function plan for ``C += A @ B`` on one core group.

    Parameters
    ----------
    m, n, k:
        GEMM dimensions.
    dtype_bytes:
        Element size in memory (4 = single precision, the Caffe default).
    """

    name = "swgemm"

    #: Fraction of peak the double-pipeline FMA kernel sustains with full
    #: tiles (register blocking, dual issue) — calibrated against the best
    #: sustained DGEMM results on SW26010 (Jiang et al., ICPP'17 report
    #: >85% of peak for large square matrices; the swCaffe layer kernels
    #: run shorter and irregular shapes, so the library sustains less).
    base_efficiency = 0.82

    #: Extra compute tax for single-precision data: float->double widening
    #: before RLC and narrowing after, done inline with SIMD shuffles.
    single_precision_tax = 0.18

    def __init__(
        self,
        m: int,
        n: int,
        k: int,
        dtype_bytes: int = 4,
        params: SW26010Params | None = None,
    ) -> None:
        super().__init__(params)
        if min(m, n, k) <= 0:
            raise PlanError(f"GEMM dims must be positive, got {(m, n, k)}")
        self.m, self.n, self.k = int(m), int(n), int(k)
        self.dtype_bytes = int(dtype_bytes)
        self.blocking = self._choose_blocking()

    # ------------------------------------------------------------------ #
    # blocking
    # ------------------------------------------------------------------ #
    def _ldm_fit(self, mb: int, nb: int, kb: int) -> bool:
        """Whether per-CPE tiles of a candidate block fit in LDM.

        Tiles live in LDM in double precision (RLC granularity), double
        buffered on the A/B panels so DMA overlaps compute.
        """
        mesh = self.params.cpe_rows
        per_cpe = 8.0 * (
            2 * (mb / mesh) * (kb / mesh)  # A tile, double buffered
            + 2 * (kb / mesh) * (nb / mesh)  # B tile, double buffered
            + (mb / mesh) * (nb / mesh)  # C accumulator
        )
        reserve = 4 * 1024  # stack, control blocks
        return per_cpe <= self.params.ldm_bytes - reserve

    def _choose_blocking(self) -> GemmBlocking:
        """Pick the LDM-resident blocking with the lowest modeled time.

        Candidates are scored with the full cost model rather than raw
        arithmetic intensity: intensity alone prefers the largest block
        even when it leaves a ragged fringe (e.g. m=498 split 384+114),
        which the efficiency model then prices far below a slightly
        smaller block that divides the problem evenly. Ties break toward
        higher intensity, keeping the historical choice for shapes the
        model prices identically.
        """
        key = (self.params, self.m, self.n, self.k, self.dtype_bytes)
        cached = _BLOCKING_CACHE.get(key)
        if cached is not None:
            return cached
        mesh = self.params.cpe_rows
        candidates = [mesh * x for x in (1, 2, 4, 8, 16, 24, 32, 48, 64)]

        def clamp(dim: int) -> list[int]:
            # Blocks stay within one mesh row of the dim: the library does
            # not pad a dim far beyond its extent, and the calibrated
            # small-shape collapse (Table II / Fig. 8) depends on that.
            opts = [c for c in candidates if c < dim + mesh]
            return opts or [mesh]

        best: tuple[float, float, GemmBlocking] | None = None
        for mb in clamp(self.m):
            for nb in clamp(self.n):
                for kb in clamp(self.k):
                    if not self._ldm_fit(mb, nb, kb):
                        continue
                    blk = GemmBlocking(mb, nb, kb)
                    score = (self._cost_for(blk).total_s, -blk.flop_per_byte)
                    if best is None or score < best[:2]:
                        best = (*score, blk)
        if best is None:
            raise PlanError("no LDM-feasible GEMM blocking found")
        if len(_BLOCKING_CACHE) >= _BLOCKING_CACHE_MAX:
            _BLOCKING_CACHE.clear()
        _BLOCKING_CACHE[key] = best[2]
        return best[2]

    # ------------------------------------------------------------------ #
    # cost model
    # ------------------------------------------------------------------ #
    def _compute_efficiency(self, blk: GemmBlocking | None = None) -> float:
        """Sustained fraction of CPE-cluster peak for this shape.

        Per-CPE tile dims drive pipeline/SIMD fill. Calibrated against the
        paper's Table II operating points:

        * the m dimension (rows per CPE row) is the critical one — the
          paper states GEMM only becomes compute-bound for m > 160, i.e.
          mt = m/8 > 20; a steep power law reproduces the measured collapse
          at m = 64 (conv1_2: ~60-110 Gflops) while large-m layers sustain
          >400 Gflops;
        * short contraction dims (conv1_1's K*K*Ni = 27) waste the 8-step
          register-communication pipeline — a quadratic Hill curve hits the
          measured 5.3 Gflops;
        * the n dimension only needs to fill the SIMD lanes.

        Known artifact: because the small-m penalty shrinks superlinearly
        as m grows, *total* time can dip slightly when m crosses out of the
        starved regime at fixed n, k. Achieved Gflops stays monotone (see
        ``tests/test_cost_properties.py``), which is the invariant the
        paper's measurements support.
        """
        mesh = self.params.cpe_rows
        blk = blk or self.blocking
        mt = max(1.0, blk.mb / mesh)
        nt = max(1.0, blk.nb / mesh)
        kt = max(1.0, blk.kb / mesh)
        f_m = min(1.0, (mt / 32.0) ** 1.6)
        f_n = nt / (nt + 2.0)
        f_k = kt * kt / (kt * kt + 37.0)
        fill = f_m * f_n * f_k
        # Fringe blocks: the last block in each dim is partially full.
        util = (
            (self.m / (math.ceil(self.m / blk.mb) * blk.mb))
            * (self.n / (math.ceil(self.n / blk.nb) * blk.nb))
            * (self.k / (math.ceil(self.k / blk.kb) * blk.kb))
        )
        eff = self.base_efficiency * fill * util
        if self.dtype_bytes < 8:
            eff *= 1.0 - self.single_precision_tax
        return max(eff, 1e-3)

    def traffic_bytes(self, blk: GemmBlocking | None = None) -> float:
        """Total DRAM traffic of the blocked GEMM.

        A panels are re-read once per column-block sweep, B panels once per
        row-block sweep, C read+written once.
        """
        blk = blk or self.blocking
        m_blocks = math.ceil(self.m / blk.mb)
        n_blocks = math.ceil(self.n / blk.nb)
        a_bytes = n_blocks * self.m * self.k * self.dtype_bytes
        b_bytes = m_blocks * self.k * self.n * self.dtype_bytes
        c_bytes = 2 * self.m * self.n * self.dtype_bytes
        return float(a_bytes + b_bytes + c_bytes)

    def rlc_bytes(self, blk: GemmBlocking | None = None) -> float:
        """Register-communication traffic (tiles are broadcast in doubles)."""
        blk = blk or self.blocking
        m_blocks = math.ceil(self.m / blk.mb)
        n_blocks = math.ceil(self.n / blk.nb)
        k_blocks = math.ceil(self.k / blk.kb)
        per_block = 8.0 * (blk.mb * blk.kb + blk.kb * blk.nb)
        return m_blocks * n_blocks * k_blocks * per_block

    def cost(self) -> PlanCost:
        """Simulated time for the full blocked GEMM on one core group."""
        return self._cost_for(self.blocking)

    def _cost_for(self, blk: GemmBlocking) -> PlanCost:
        """Cost under a candidate blocking (also the chooser's objective)."""
        flops = 2.0 * self.m * self.n * self.k
        eff = self._compute_efficiency(blk)
        compute_s = flops / (self._cg.peak_flops * eff)
        dma_bytes = self.traffic_bytes(blk)
        # DMA rows of each panel are contiguous runs of kb/nb elements.
        row_bytes = min(blk.kb, blk.nb) * self.dtype_bytes
        dma_s = self._cg.dma.bulk_time(dma_bytes, block_bytes=row_bytes)
        rlc_s = self._cg.rlc.broadcast_time(self.rlc_bytes(blk))
        n_outer = (
            math.ceil(self.m / blk.mb)
            * math.ceil(self.n / blk.nb)
            * math.ceil(self.k / blk.kb)
        )
        overhead_s = n_outer * self.params.dma_latency_s
        return PlanCost(
            compute_s=compute_s,
            dma_s=dma_s,
            rlc_s=rlc_s,
            overhead_s=overhead_s,
            flops=flops,
            dma_bytes=dma_bytes,
        )

    # ------------------------------------------------------------------ #
    # functional
    # ------------------------------------------------------------------ #
    def run_blocked(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Execute the full blocked schedule against the hardware model.

        Panels of A/B stream through the core group's DMA engine (charging
        its clock), the per-CPE LDM budget is *enforced* for every resident
        tile set, and each LDM-resident block product runs the literal
        8-step register-communication schedule. Numerically identical to
        ``A @ B``; used by fidelity tests to pin that the cost model and
        the functional semantics describe the same algorithm.
        """
        if a.shape != (self.m, self.k) or b.shape != (self.k, self.n):
            raise PlanError(
                f"operand shapes {a.shape} @ {b.shape} do not match plan "
                f"({self.m}x{self.k} @ {self.k}x{self.n})"
            )
        blk = self.blocking
        mesh = self.params.cpe_rows
        c = np.zeros((self.m, self.n), dtype=np.float64)
        # One representative CPE's LDM stands in for the whole mesh (tiles
        # are the same size everywhere).
        ldm = self._cg.cpes[0].ldm
        dma = self._cg.dma
        for i0 in range(0, self.m, blk.mb):
            i1 = min(i0 + blk.mb, self.m)
            for j0 in range(0, self.n, blk.nb):
                j1 = min(j0 + blk.nb, self.n)
                acc = np.zeros((i1 - i0, j1 - j0), dtype=np.float64)
                for k0 in range(0, self.k, blk.kb):
                    k1 = min(k0 + blk.kb, self.k)
                    # Reserve the per-CPE tile set (double-buffered A/B).
                    a_tile = 8 * 2 * -(-(i1 - i0) // mesh) * -(-(k1 - k0) // mesh)
                    b_tile = 8 * 2 * -(-(k1 - k0) // mesh) * -(-(j1 - j0) // mesh)
                    c_tile = 8 * -(-(i1 - i0) // mesh) * -(-(j1 - j0) // mesh)
                    ldm.alloc("gemm/a", a_tile)
                    ldm.alloc("gemm/b", b_tile)
                    ldm.alloc("gemm/c", c_tile)
                    try:
                        a_panel = dma.get(
                            a[i0:i1, k0:k1],
                            block_bytes=(k1 - k0) * self.dtype_bytes,
                        )
                        b_panel = dma.get(
                            b[k0:k1, j0:j1],
                            block_bytes=(j1 - j0) * self.dtype_bytes,
                        )
                        acc += gemm_register_schedule(
                            a_panel.astype(np.float64),
                            b_panel.astype(np.float64),
                            mesh=mesh,
                        )
                    finally:
                        ldm.free_buffer("gemm/a")
                        ldm.free_buffer("gemm/b")
                        ldm.free_buffer("gemm/c")
                dma.put(acc, c[i0:i1, j0:j1])
        return c.astype(np.result_type(a, b), copy=False)

    def run(self, a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None) -> np.ndarray:
        """Compute ``C (+)= A @ B`` (fast NumPy path, same semantics)."""
        if a.shape != (self.m, self.k) or b.shape != (self.k, self.n):
            raise PlanError(
                f"operand shapes {a.shape} @ {b.shape} do not match plan "
                f"({self.m}x{self.k} @ {self.k}x{self.n})"
            )
        prod = a @ b
        if c is None:
            return prod
        if c.shape != (self.m, self.n):
            raise PlanError(f"C shape {c.shape} != ({self.m}, {self.n})")
        c += prod
        return c
