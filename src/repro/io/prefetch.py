"""Prefetch pipeline: the per-worker I/O thread (Sec. V-B).

Each worker runs an I/O thread that fetches the *next* mini-batch while the
current one is computed. Per steady-state iteration, the exposed I/O time
is therefore ``max(0, read_time - compute_time)``; without prefetching the
two serialize.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.io.disk import DiskArrayModel, StripingPolicy


@dataclass
class PrefetchPipeline:
    """Steady-state overlap model of I/O and compute."""

    disk: DiskArrayModel
    policy: StripingPolicy
    enabled: bool = True

    def read_time(self, n_processes: int, bytes_per_process: float) -> float:
        """Raw mini-batch read time under the pipeline's striping policy."""
        return self.disk.read_time(n_processes, bytes_per_process, self.policy)

    def iteration_io_time(
        self, n_processes: int, bytes_per_process: float, compute_time: float
    ) -> float:
        """Exposed (non-overlapped) I/O time of one training iteration."""
        if compute_time < 0:
            raise ValueError("compute_time must be non-negative")
        t_read = self.read_time(n_processes, bytes_per_process)
        if not self.enabled:
            return t_read
        return max(0.0, t_read - compute_time)

    def is_io_bound(
        self, n_processes: int, bytes_per_process: float, compute_time: float
    ) -> bool:
        """Whether reading outpaces compute at this scale."""
        return self.iteration_io_time(n_processes, bytes_per_process, compute_time) > 0
