"""Synthetic ImageNet-shaped dataset.

We have no ImageNet; the experiments need (a) correctly *shaped and sized*
records for throughput/I/O modeling and (b) *learnable* content so the
framework's end-to-end training can be validated. Each class gets a fixed
random prototype pattern; samples are the prototype plus noise, so even a
small model separates classes within a few hundred iterations.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import seeded_rng
from repro.utils.units import KB


class SyntheticImageNet:
    """Deterministic label-correlated image source.

    Parameters
    ----------
    num_classes:
        Label cardinality (1000 for ImageNet).
    sample_shape:
        Per-sample tensor shape, e.g. ``(3, 224, 224)``.
    noise:
        Standard deviation of the additive noise around each class
        prototype; larger = harder problem.
    record_bytes:
        On-disk size of one record, used by the I/O model. The paper's
        numbers imply ~750 KB/record (a 256-sample mini-batch is ~192 MB).
    seed:
        RNG seed; two sources with the same seed replay identically.
    """

    def __init__(
        self,
        num_classes: int = 1000,
        sample_shape: tuple[int, ...] = (3, 224, 224),
        noise: float = 0.5,
        record_bytes: float = 750 * KB,
        seed: int = 0,
    ) -> None:
        if num_classes <= 1:
            raise ValueError("need at least two classes")
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self.num_classes = int(num_classes)
        self.sample_shape = tuple(int(s) for s in sample_shape)
        self.noise = float(noise)
        self.record_bytes = float(record_bytes)
        self.seed = seed
        self._rng = seeded_rng(seed)
        self._proto_rng = seeded_rng(hash(("prototypes", seed)) & 0x7FFFFFFF)
        self._prototypes: dict[int, np.ndarray] = {}

    def prototype(self, label: int) -> np.ndarray:
        """The fixed pattern of one class (generated on first use)."""
        if not 0 <= label < self.num_classes:
            raise ValueError(f"label {label} outside [0, {self.num_classes})")
        if label not in self._prototypes:
            rng = np.random.default_rng([self.seed, label])
            self._prototypes[label] = rng.normal(
                0.0, 1.0, size=self.sample_shape
            ).astype(np.float32)
        return self._prototypes[label]

    def next_batch(self, batch_size: int) -> tuple[np.ndarray, np.ndarray]:
        """Random sampling of one mini-batch (paper Sec. V-B: each worker
        prefetches via random sampling)."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        labels = self._rng.integers(0, self.num_classes, size=batch_size)
        images = np.empty((batch_size, *self.sample_shape), dtype=np.float32)
        for i, lab in enumerate(labels):
            images[i] = self.prototype(int(lab))
        if self.noise:
            images += self._rng.normal(0.0, self.noise, size=images.shape).astype(
                np.float32
            )
        return images, labels.astype(np.int64)

    def seek(self, n_batches: int, batch_size: int) -> None:
        """Rewind the sample stream to just after ``n_batches`` draws.

        The RNG restarts from the seed and replays the exact draw pattern of
        ``n_batches`` batches of ``batch_size``, so the next
        :meth:`next_batch` returns what batch ``n_batches`` of a fresh run
        would — the data-source half of elastic recovery
        (:func:`repro.faults.recovery.rewind_net_sources`).
        """
        if n_batches < 0 or batch_size <= 0:
            raise ValueError("need n_batches >= 0 and batch_size > 0")
        self._rng = seeded_rng(self.seed)
        for _ in range(n_batches):
            self._rng.integers(0, self.num_classes, size=batch_size)
            if self.noise:
                self._rng.normal(
                    0.0, self.noise, size=(batch_size, *self.sample_shape)
                )

    def batch_bytes(self, batch_size: int) -> float:
        """On-disk size of one mini-batch (for the I/O model)."""
        return batch_size * self.record_bytes
