"""On-disk record files: a functional stand-in for Caffe's LMDB path.

swCaffe's data layer reads serialized image records from the shared
filesystem. This module provides a minimal fixed-record binary format —
a magic/header block followed by ``(label, image)`` records of uniform
shape — plus a writer, a random-sampling reader, and a file-backed data
source pluggable into :class:`~repro.frame.layers.data.DataLayer`.

Format (little-endian):

* 16-byte header: magic ``b"SWRECORD"``, ``uint32`` record count,
  ``uint32`` ndim;
* ``ndim x uint32`` sample shape;
* records: ``int64`` label + ``float32 x prod(shape)`` image, densely
  packed — so record ``i`` sits at a computable offset and random
  sampling is a seek, exactly the access pattern the striping model
  prices.
"""

from __future__ import annotations

import os
import struct

import numpy as np

from repro.errors import ReproError
from repro.utils.rng import seeded_rng

MAGIC = b"SWRECORD"
_HEADER = struct.Struct("<8sII")


class RecordFormatError(ReproError):
    """Raised for malformed record files."""


class RecordWriter:
    """Sequentially writes uniform ``(label, image)`` records.

    Use as a context manager::

        with RecordWriter(path, sample_shape=(3, 32, 32)) as w:
            w.write(label, image)
    """

    def __init__(self, path: str, sample_shape: tuple[int, ...]) -> None:
        self.path = path
        self.sample_shape = tuple(int(s) for s in sample_shape)
        if not self.sample_shape or any(s <= 0 for s in self.sample_shape):
            raise RecordFormatError(f"bad sample shape {sample_shape}")
        self._fh = open(path, "wb")
        self._count = 0
        # Header is rewritten with the final count on close.
        self._write_header()

    def _write_header(self) -> None:
        self._fh.seek(0)
        self._fh.write(_HEADER.pack(MAGIC, self._count, len(self.sample_shape)))
        self._fh.write(
            struct.pack(f"<{len(self.sample_shape)}I", *self.sample_shape)
        )

    def write(self, label: int, image: np.ndarray) -> None:
        """Append one record."""
        if image.shape != self.sample_shape:
            raise RecordFormatError(
                f"image shape {image.shape} != file shape {self.sample_shape}"
            )
        self._fh.write(struct.pack("<q", int(label)))
        self._fh.write(np.ascontiguousarray(image, dtype=np.float32).tobytes())
        self._count += 1

    def close(self) -> None:
        """Finalize the header and close."""
        if not self._fh.closed:
            self._write_header()
            self._fh.close()

    def __enter__(self) -> "RecordWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class RecordReader:
    """Random-access reader over a record file."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "rb")
        header = self._fh.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise RecordFormatError(f"{path!r}: truncated header")
        magic, count, ndim = _HEADER.unpack(header)
        if magic != MAGIC:
            raise RecordFormatError(f"{path!r}: bad magic {magic!r}")
        shape_bytes = self._fh.read(4 * ndim)
        if len(shape_bytes) != 4 * ndim:
            raise RecordFormatError(f"{path!r}: truncated shape block")
        self.sample_shape = struct.unpack(f"<{ndim}I", shape_bytes)
        self.count = count
        self._sample_elems = int(np.prod(self.sample_shape))
        self._record_bytes = 8 + 4 * self._sample_elems
        self._data_start = _HEADER.size + 4 * ndim
        expected = self._data_start + self.count * self._record_bytes
        actual = os.path.getsize(path)
        if actual < expected:
            raise RecordFormatError(
                f"{path!r}: file has {actual} bytes, header promises {expected}"
            )

    @property
    def record_bytes(self) -> int:
        """On-disk size of one record (feeds the disk-array model)."""
        return self._record_bytes

    def read(self, index: int) -> tuple[int, np.ndarray]:
        """Read record ``index`` (a seek + one contiguous read)."""
        if not 0 <= index < self.count:
            raise IndexError(f"record {index} outside [0, {self.count})")
        self._fh.seek(self._data_start + index * self._record_bytes)
        raw = self._fh.read(self._record_bytes)
        (label,) = struct.unpack_from("<q", raw, 0)
        image = np.frombuffer(raw, dtype=np.float32, count=self._sample_elems, offset=8)
        return int(label), image.reshape(self.sample_shape).copy()

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "RecordReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class FileBackedSource:
    """Data source reading random records from a record file.

    Drop-in for :class:`~repro.io.dataset.SyntheticImageNet` in
    :class:`~repro.frame.layers.data.DataLayer` — this one actually hits
    the filesystem, matching the paper's prefetch-by-random-sampling
    behaviour (Sec. V-B).
    """

    def __init__(self, path: str, seed: int = 0) -> None:
        self.reader = RecordReader(path)
        self.sample_shape = tuple(self.reader.sample_shape)
        self._rng = seeded_rng(seed)

    def next_batch(self, batch_size: int) -> tuple[np.ndarray, np.ndarray]:
        """Random sampling with replacement (the paper's access pattern)."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        idx = self._rng.integers(0, self.reader.count, size=batch_size)
        images = np.empty((batch_size, *self.sample_shape), dtype=np.float32)
        labels = np.empty(batch_size, dtype=np.int64)
        for i, j in enumerate(idx):
            labels[i], images[i] = self.reader.read(int(j))
        return images, labels

    def batch_bytes(self, batch_size: int) -> float:
        """On-disk payload of one mini-batch."""
        return float(batch_size * self.reader.record_bytes)


def write_synthetic_records(
    path: str,
    n_records: int,
    num_classes: int,
    sample_shape: tuple[int, ...],
    noise: float = 0.3,
    seed: int = 0,
) -> None:
    """Materialize a synthetic dataset to disk (for examples/tests)."""
    from repro.io.dataset import SyntheticImageNet

    src = SyntheticImageNet(
        num_classes=num_classes, sample_shape=sample_shape, noise=noise, seed=seed
    )
    with RecordWriter(path, sample_shape) as writer:
        images, labels = src.next_batch(n_records)
        for img, lab in zip(images, labels):
            writer.write(int(lab), img)
