"""Parallel I/O subsystem (paper Sec. V-B).

TaihuLight's shared filesystem distributes a file over disk arrays. The
default *single-split* policy puts one file on one array, so concurrent
readers saturate that array and per-process bandwidth collapses. swCaffe
raises the stripe count to 32 with 256 MB stripes so a mini-batch read
(~192 MB for 256 ImageNet samples) touches at most two arrays and load
spreads evenly.

* :class:`~repro.io.disk.DiskArrayModel` prices batch reads under both
  policies;
* :class:`~repro.io.dataset.SyntheticImageNet` is the deterministic
  ImageNet-shaped data source (images correlated with labels so small
  models can actually learn from it);
* :class:`~repro.io.prefetch.PrefetchPipeline` models the per-worker I/O
  thread that overlaps reading with compute.
"""

from repro.io.disk import DiskArrayModel, StripingPolicy
from repro.io.dataset import SyntheticImageNet
from repro.io.prefetch import PrefetchPipeline

__all__ = [
    "DiskArrayModel",
    "StripingPolicy",
    "SyntheticImageNet",
    "PrefetchPipeline",
]
