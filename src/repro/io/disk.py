"""Disk-array striping model for the TaihuLight shared filesystem."""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import GB, MB


@dataclass(frozen=True)
class StripingPolicy:
    """How a dataset file is laid out over disk arrays.

    ``single-split`` (the system default) places the whole file on one
    array; swCaffe's improved policy stripes it round-robin over
    ``n_stripes`` arrays in ``stripe_bytes`` blocks (32 x 256 MB in the
    paper).
    """

    n_stripes: int
    stripe_bytes: float

    @classmethod
    def single_split(cls) -> "StripingPolicy":
        """The default single-array layout."""
        return cls(n_stripes=1, stripe_bytes=float("inf"))

    @classmethod
    def swcaffe(cls) -> "StripingPolicy":
        """The paper's tuned layout: 32 stripes of 256 MB."""
        return cls(n_stripes=32, stripe_bytes=256 * MB)


class DiskArrayModel:
    """Prices concurrent mini-batch reads against a striped array set.

    Parameters
    ----------
    n_arrays:
        Disk arrays available in the filesystem.
    array_bandwidth:
        Sustained read bandwidth of one array (bytes/s).
    link_bandwidth:
        Per-process network-to-filesystem ceiling (bytes/s).
    """

    def __init__(
        self,
        n_arrays: int = 32,
        array_bandwidth: float = 2.0 * GB,
        link_bandwidth: float = 2.5 * GB,
    ) -> None:
        if n_arrays <= 0 or array_bandwidth <= 0 or link_bandwidth <= 0:
            raise ValueError("disk model parameters must be positive")
        self.n_arrays = int(n_arrays)
        self.array_bandwidth = float(array_bandwidth)
        self.link_bandwidth = float(link_bandwidth)

    def arrays_touched_per_process(self, policy: StripingPolicy, bytes_per_process: float) -> int:
        """How many arrays one process's contiguous read spans.

        A contiguous read of ``b`` bytes crosses at most
        ``b / stripe_bytes + 1`` stripe boundaries (paper: a 192 MB batch on
        256 MB stripes touches at most two arrays).
        """
        if policy.stripe_bytes == float("inf"):
            return 1
        spans = int(bytes_per_process // policy.stripe_bytes) + 1
        return min(spans, min(policy.n_stripes, self.n_arrays))

    def read_time(
        self,
        n_processes: int,
        bytes_per_process: float,
        policy: StripingPolicy | None = None,
    ) -> float:
        """Seconds until every process has its mini-batch.

        Each process reads a random contiguous range (random sampling of a
        shard). The busiest array paces the read: under single-split every
        process hits the same array; under round-robin striping the load
        spreads over ``min(n_stripes, n_arrays)`` arrays, each serving about
        ``n_processes * spans / arrays`` readers.
        """
        if n_processes <= 0 or bytes_per_process < 0:
            raise ValueError("need positive process count and non-negative bytes")
        if bytes_per_process == 0:
            return 0.0
        policy = policy or StripingPolicy.swcaffe()
        arrays = min(policy.n_stripes, self.n_arrays)
        spans = self.arrays_touched_per_process(policy, bytes_per_process)
        # Total demand spread over the active arrays; ceil'd to whole
        # processes because a reader cannot split below its span count.
        readers_per_array = -(-n_processes * spans // arrays)
        per_array_load = readers_per_array * (bytes_per_process / spans)
        array_time = per_array_load / self.array_bandwidth
        link_time = bytes_per_process / self.link_bandwidth
        return max(array_time, link_time)

    def aggregate_bandwidth(
        self,
        n_processes: int,
        bytes_per_process: float,
        policy: StripingPolicy | None = None,
    ) -> float:
        """Achieved filesystem bandwidth for the whole read."""
        t = self.read_time(n_processes, bytes_per_process, policy)
        if t == 0:
            return 0.0
        return n_processes * bytes_per_process / t
