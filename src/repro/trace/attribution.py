"""Bottleneck attribution over a trace.

Generalizes :class:`~repro.utils.profiler.NetProfiler`: instead of
re-pricing a net's layers, it answers the same question — *which resource
bounds the time?* — from whatever a trace actually recorded, so the answer
covers collectives, mesh schedules and solver phases as well as layer
costs, and splits per rank.

Resource busy-time comes from the leaf span categories (``cpe_compute``,
``dma_transfer``, ``rlc_exchange``, ``collective_step``); container spans
(``layer_*``, ``solver_iter``, ``plan_cost``) are reported as structure,
not double-counted as busy time.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.trace.tracer import Span, Tracer
from repro.utils.tables import Table
from repro.utils.units import format_time

#: Leaf categories whose durations are resource busy time.
RESOURCE_CATEGORIES = (
    "cpe_compute",
    "dma_transfer",
    "rlc_exchange",
    "collective_step",
)

#: Container categories (structure only).
CONTAINER_CATEGORIES = ("layer_fwd", "layer_bwd", "solver_iter", "plan_cost")


@dataclass
class GroupAttribution:
    """One top-level group's (usually one rank's) resource accounting."""

    group: str
    busy_s: dict[str, float] = field(default_factory=dict)
    span_end_s: float = 0.0
    n_spans: int = 0

    @property
    def bottleneck(self) -> str:
        """The resource category with the most busy time."""
        if not self.busy_s:
            return "-"
        return max(self.busy_s, key=lambda k: self.busy_s[k])

    def share(self, cat: str) -> float:
        """A resource's fraction of the group's wall (track-span) time."""
        if self.span_end_s <= 0:
            return 0.0
        return self.busy_s.get(cat, 0.0) / self.span_end_s


@dataclass
class AttributionReport:
    """Whole-trace attribution: per-group plus aggregate."""

    groups: list[GroupAttribution]
    total_end_s: float

    def overall_bottleneck(self) -> str:
        totals: dict[str, float] = defaultdict(float)
        for g in self.groups:
            for cat, t in g.busy_s.items():
                totals[cat] += t
        return max(totals, key=lambda k: totals[k]) if totals else "-"


def attribute(tracer: Tracer | list[Span]) -> AttributionReport:
    """Aggregate resource busy time per top-level track group."""
    spans = tracer.spans if isinstance(tracer, Tracer) else list(tracer)
    groups: dict[str, GroupAttribution] = {}
    total_end = 0.0
    for s in spans:
        head = s.track.split("/", 1)[0]
        g = groups.setdefault(head, GroupAttribution(group=head))
        g.n_spans += 1
        g.span_end_s = max(g.span_end_s, s.end_s)
        total_end = max(total_end, s.end_s)
        if s.cat in RESOURCE_CATEGORIES and not s.instant:
            g.busy_s[s.cat] = g.busy_s.get(s.cat, 0.0) + s.dur_s
    ordered = [groups[k] for k in sorted(groups)]
    return AttributionReport(groups=ordered, total_end_s=total_end)


def render_attribution(report: AttributionReport | Tracer | list[Span]) -> str:
    """The bottleneck-attribution table for a trace."""
    if not isinstance(report, AttributionReport):
        report = attribute(report)
    table = Table(
        headers=["group", "end", "compute", "dma", "rlc", "collective", "bottleneck"],
        title="trace attribution (simulated busy time per resource)",
    )
    for g in report.groups:
        table.add_row(
            g.group,
            format_time(g.span_end_s),
            f"{format_time(g.busy_s.get('cpe_compute', 0.0))} ({100 * g.share('cpe_compute'):.0f}%)",
            f"{format_time(g.busy_s.get('dma_transfer', 0.0))} ({100 * g.share('dma_transfer'):.0f}%)",
            f"{format_time(g.busy_s.get('rlc_exchange', 0.0))} ({100 * g.share('rlc_exchange'):.0f}%)",
            f"{format_time(g.busy_s.get('collective_step', 0.0))} ({100 * g.share('collective_step'):.0f}%)",
            g.bottleneck,
        )
    footer = (
        f"trace end: {format_time(report.total_end_s)} | overall bottleneck: "
        f"{report.overall_bottleneck()}"
    )
    return table.render() + "\n" + footer
