"""Chrome trace-event JSON export (Perfetto-loadable).

Renders a :class:`~repro.trace.tracer.Tracer` as the JSON object format of
the Trace Event specification: complete ``"X"`` events for spans, ``"i"``
instant events, and ``"M"`` metadata naming processes and threads. Load the
file at https://ui.perfetto.dev (or ``chrome://tracing``).

Track mapping: the first ``/``-segment of a track becomes the *process*
(one per simulated rank, or ``mesh``/``node`` for single-node traces), the
remainder the *thread* (one per resource: ``cpe``, ``dma``, ``rlc``,
``collective``, ...), so a 4-rank trace renders as four process groups each
with its resource swimlanes.

:func:`validate_chrome` is the self-check the golden-file test runs — a
minimal structural validator of the format this module promises to emit.
"""

from __future__ import annotations

import json
from typing import Any

from repro.trace.tracer import Span, Tracer

#: Preferred top-to-bottom thread ordering inside one process.
_THREAD_ORDER = (
    "solver",
    "layers",
    "plan",
    "cpe",
    "dma",
    "rlc",
    "ldm",
    "collective",
)


def _split_track(track: str) -> tuple[str, str]:
    """``rank0/dma`` -> (process ``rank0``, thread ``dma``)."""
    head, sep, rest = track.partition("/")
    return (head, rest) if sep else (head, head)


def _thread_sort_index(thread: str) -> int:
    leaf = thread.rsplit("/", 1)[-1]
    try:
        return _THREAD_ORDER.index(leaf)
    except ValueError:
        return len(_THREAD_ORDER)


def to_chrome(tracer: Tracer | list[Span]) -> dict[str, Any]:
    """Build the Chrome trace-event JSON object for a tracer's spans.

    Explicit ``dep`` edges recorded by :meth:`Tracer.edge` export as flow
    events (``"s"``/``"f"`` pairs), which Perfetto renders as arrows from
    the source span's end to the destination span's start. ``member``
    edges are containment, not ordering, and are not exported.
    """
    if isinstance(tracer, Tracer):
        spans = tracer.spans
        dep_edges = [(s, d) for s, d, kind in tracer.edges if kind == "dep"]
    else:
        spans = list(tracer)
        dep_edges = []
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    events: list[dict[str, Any]] = []
    meta: list[dict[str, Any]] = []
    locations: dict[int, tuple[int, int]] = {}

    for span in spans:
        process, thread = _split_track(span.track)
        if process not in pids:
            pids[process] = len(pids) + 1
            meta.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pids[process],
                    "tid": 0,
                    "args": {"name": process},
                }
            )
        key = (process, thread)
        if key not in tids:
            tids[key] = len(tids) + 1
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pids[process],
                    "tid": tids[key],
                    "args": {"name": thread},
                }
            )
            meta.append(
                {
                    "name": "thread_sort_index",
                    "ph": "M",
                    "pid": pids[process],
                    "tid": tids[key],
                    "args": {"sort_index": _thread_sort_index(thread)},
                }
            )
        event: dict[str, Any] = {
            "name": span.name,
            "cat": span.cat,
            "ph": "i" if span.instant else "X",
            # The format's timestamps are microseconds.
            "ts": span.start_s * 1e6,
            "pid": pids[process],
            "tid": tids[key],
        }
        if span.instant:
            event["s"] = "t"  # thread-scoped instant
        else:
            event["dur"] = span.dur_s * 1e6
        if span.args:
            event["args"] = dict(span.args)
        events.append(event)
        locations[id(span)] = (pids[process], tids[key])

    flow_id = 0
    for src, dst in dep_edges:
        src_loc = locations.get(id(src))
        dst_loc = locations.get(id(dst))
        if src_loc is None or dst_loc is None:
            continue  # edge references a span from another tracer
        flow_id += 1
        events.append(
            {
                "name": "dep",
                "cat": "critpath",
                "ph": "s",
                "id": flow_id,
                "ts": src.end_s * 1e6,
                "pid": src_loc[0],
                "tid": src_loc[1],
            }
        )
        events.append(
            {
                "name": "dep",
                "cat": "critpath",
                "ph": "f",
                "bp": "e",  # bind to the enclosing slice
                "id": flow_id,
                "ts": dst.start_s * 1e6,
                "pid": dst_loc[0],
                "tid": dst_loc[1],
            }
        )

    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ns",
        "otherData": {"producer": "repro.trace (simulated SW26010 time)"},
    }


def write_chrome_json(tracer: Tracer | list[Span], path: str) -> str:
    """Serialize :func:`to_chrome` to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome(tracer), fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def validate_chrome(obj: Any) -> list[str]:
    """Structural checks of the Chrome trace-event JSON object format.

    Returns a list of problem descriptions (empty = valid). Checks the
    invariants Perfetto's importer relies on: a ``traceEvents`` list whose
    entries carry ``name``/``ph``/``ts``/``pid``/``tid``, non-negative
    durations on complete events, and named processes/threads for every
    (pid, tid) that appears.
    """
    errors: list[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be a JSON object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    named_pids: set[int] = set()
    named_tids: set[tuple[int, int]] = set()
    used_pids: set[int] = set()
    used_tids: set[tuple[int, int]] = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"event {i}: not an object")
            continue
        for field in ("name", "ph", "pid", "tid"):
            if field not in ev:
                errors.append(f"event {i}: missing {field!r}")
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") == "process_name":
                named_pids.add(ev.get("pid"))
            elif ev.get("name") == "thread_name":
                named_tids.add((ev.get("pid"), ev.get("tid")))
            continue
        if ph not in ("X", "i", "B", "E", "C", "s", "f"):
            errors.append(f"event {i}: unknown phase {ph!r}")
            continue
        if ph in ("s", "f") and "id" not in ev:
            errors.append(f"event {i}: flow event without id")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"event {i}: bad ts {ts!r}")
        if ph == "C":
            # Counter events attach to a process track, not a thread; they
            # carry their sample values in args and need no thread_name.
            if not isinstance(ev.get("args"), dict):
                errors.append(f"event {i}: counter event without args")
            used_pids.add(ev.get("pid"))
            continue
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"event {i}: complete event with bad dur {dur!r}")
        used_pids.add(ev.get("pid"))
        used_tids.add((ev.get("pid"), ev.get("tid")))
    for pid in sorted(used_pids - named_pids):
        errors.append(f"pid {pid} has events but no process_name metadata")
    for pid, tid in sorted(used_tids - named_tids):
        errors.append(f"(pid {pid}, tid {tid}) has events but no thread_name metadata")
    try:
        json.dumps(obj)
    except (TypeError, ValueError) as exc:
        errors.append(f"not JSON-serializable: {exc}")
    return errors
