"""What-if projection: scale a resource, re-walk the graph, verify by re-simulating.

Coz-style causal profilers answer "what would speeding X up buy me?" by
perturbing a running program and extrapolating. Our clock is simulated, so
we can do better on both sides of that trade:

* the **projection** is a deterministic re-walk of the critical-path graph
  (:mod:`repro.trace.critpath`) with the chosen factors applied to each
  span's resource class — no sampling noise;
* the **validation** re-runs the actual simulator with the same factors
  installed at the cost-model sites (:mod:`repro.trace.scaling`) and
  compares end-to-end times. On the serial-fabric schedule the two walks
  perform the same float operations in the same order, so they agree
  *bitwise* for a single iteration and to ~1e-12 relative across many
  (``tests/test_whatif.py`` pins both); where discrete decisions shift
  (serving batch formation), the error is reported, not hidden.

Surface: ``python -m repro whatif <net> --ranks N --scale dma=0.5
[--validate --json]`` and the ``--whatif`` flags on the fig10/serving
harnesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.trace.critpath import (
    CritGraph,
    CritPathReport,
    build_graph,
    critical_path,
    schedule,
)
from repro.trace.scaling import SCALE_CLASSES, CostScaling, scaling
from repro.trace.tracer import Span, Tracer

#: Relative tolerance for declaring a validation run consistent. The
#: serial-fabric schedule is exact (0.0 observed error for one iteration);
#: multi-iteration folds may differ in the last bits of accumulation.
REL_TOL = 1e-9


def parse_scales(items: Iterable[str]) -> dict[str, float]:
    """Parse ``class=factor`` CLI arguments into a factor mapping.

    Classes are validated against :data:`~repro.trace.scaling.SCALE_CLASSES`
    (plus ``layer:<name>``); factors must parse as floats > 0.
    """
    factors: dict[str, float] = {}
    for item in items:
        name, sep, value = item.partition("=")
        name = name.strip()
        if not sep or not name:
            raise ValueError(
                f"--scale expects class=factor (e.g. dma=0.5), got {item!r}"
            )
        try:
            factors[name] = float(value)
        except ValueError:
            raise ValueError(
                f"--scale {item!r}: factor must be a number, got {value!r}"
            ) from None
    CostScaling(factors)  # validates class names and positivity
    return factors


@dataclass(frozen=True)
class WhatIfProjection:
    """A graph re-walk under what-if factors."""

    factors: dict[str, float]
    baseline_s: float
    projected_s: float
    #: Critical path of the *projected* schedule — what bounds the new time.
    report: CritPathReport

    @property
    def speedup(self) -> float:
        """Baseline over projected (> 1 means the change helps)."""
        if self.projected_s <= 0.0:
            return float("inf") if self.baseline_s > 0 else 1.0
        return self.baseline_s / self.projected_s


@dataclass(frozen=True)
class WhatIfValidation:
    """Projection vs a re-simulation with the same factors installed."""

    projected_s: float
    simulated_s: float

    @property
    def abs_error_s(self) -> float:
        return abs(self.projected_s - self.simulated_s)

    @property
    def rel_error(self) -> float:
        scale = max(abs(self.simulated_s), abs(self.projected_s))
        if scale == 0.0:
            return 0.0
        return self.abs_error_s / scale

    @property
    def ok(self) -> bool:
        return self.rel_error <= REL_TOL


def project(
    trace: Tracer | list[Span] | CritGraph, factors: Mapping[str, float]
) -> WhatIfProjection:
    """Project a trace's end-to-end time under scaled resource costs.

    Works on any trace the critical-path graph understands (training
    sessions, serving runs, fault replays). The baseline is the identity
    re-walk of the same graph — bitwise equal to the recorded end time on
    well-formed traces, so ``speedup`` compares like with like.
    """
    graph = trace if isinstance(trace, CritGraph) else build_graph(trace)
    baseline = schedule(graph).end_to_end_s
    factors = dict(factors)
    report = critical_path(graph, factors)
    return WhatIfProjection(
        factors=factors,
        baseline_s=baseline,
        projected_s=report.end_to_end_s,
        report=report,
    )


@dataclass(frozen=True)
class WhatIfResult:
    """One full what-if study of a training step."""

    model: str
    ranks: int
    iterations: int
    projection: WhatIfProjection
    validation: WhatIfValidation | None

    def to_json(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "schema": "repro-whatif/1",
            "model": self.model,
            "ranks": self.ranks,
            "iterations": self.iterations,
            "factors": {
                k: self.projection.factors[k]
                for k in sorted(self.projection.factors)
            },
            "baseline_s": self.projection.baseline_s,
            "projected_s": self.projection.projected_s,
            "speedup": self.projection.speedup,
            "critpath": self.projection.report.to_json(),
        }
        if self.validation is not None:
            out["validation"] = {
                "simulated_s": self.validation.simulated_s,
                "abs_error_s": self.validation.abs_error_s,
                "rel_error": self.validation.rel_error,
                "ok": self.validation.ok,
            }
        return out


def whatif_training(
    net,
    factors: Mapping[str, float],
    *,
    ranks: int = 4,
    iterations: int = 1,
    scheme: str = "improved",
    nodes_per_supernode: int | None = None,
    validate: bool = False,
) -> WhatIfResult:
    """Project (and optionally validate) a training-step what-if.

    Traces the baseline step, projects the scaled schedule over its
    graph, and — with ``validate=True`` — re-runs the identical session
    under :func:`~repro.trace.scaling.scaling` so the simulator itself
    prices the scaled scenario.
    """
    from repro.trace.session import trace_training_step

    kwargs = dict(
        ranks=ranks,
        iterations=iterations,
        scheme=scheme,
        nodes_per_supernode=nodes_per_supernode,
    )
    tr, summary = trace_training_step(net, **kwargs)
    projection = project(tr, factors)
    validation = None
    if validate:
        with scaling(CostScaling(dict(factors))):
            tr_scaled, _ = trace_training_step(net, **kwargs)
        validation = WhatIfValidation(
            projected_s=projection.projected_s,
            simulated_s=tr_scaled.end_time(),
        )
    return WhatIfResult(
        model=summary.model,
        ranks=ranks,
        iterations=iterations,
        projection=projection,
        validation=validation,
    )


def render_whatif(result: WhatIfResult) -> str:
    """Terminal summary of a what-if study."""
    from repro.utils.tables import Table
    from repro.utils.units import format_time

    proj = result.projection
    table = Table(
        headers=["quantity", "value"],
        title=(
            f"what-if: {result.model}, {result.ranks} ranks — "
            + ", ".join(f"{k}={v:g}" for k, v in sorted(proj.factors.items()))
        ),
    )
    table.add_row("baseline end-to-end", format_time(proj.baseline_s))
    table.add_row("projected end-to-end", format_time(proj.projected_s))
    table.add_row("speedup", f"{proj.speedup:.3f}x")
    if result.validation is not None:
        v = result.validation
        table.add_row("simulated end-to-end", format_time(v.simulated_s))
        table.add_row(
            "projection error",
            f"{v.abs_error_s:.3e} s ({v.rel_error:.3e} rel, "
            f"{'OK' if v.ok else 'MISMATCH'})",
        )
    lines = [table.render()]
    bound = sorted(proj.report.by_resource.items(), key=lambda kv: -kv[1])
    if bound:
        lines.append(
            "projected critical path: "
            + ", ".join(f"{res} {format_time(t)}" for res, t in bound)
        )
    return "\n".join(lines)
