"""Event-trace observability for the simulated swCaffe stack.

``repro.trace`` records *what the simulator spent its simulated time on* as
typed spans — DMA transfers, register-bus exchanges, CPE compute, LDM
allocations, collective steps, layer passes, solver iterations — collected
from instrumentation hooks in ``repro.hw``, ``repro.kernels``,
``repro.simmpi`` and ``repro.frame``. Tracing is off by default (a no-op
null tracer) and never changes simulated-time results.

Typical use::

    from repro import trace

    with trace.tracing() as tr:
        solver.step(3)                      # or any traced workload
    trace.write_chrome_json(tr, "trace.json")   # open in ui.perfetto.dev
    print(trace.render_attribution(tr))         # bottleneck summary
    print(trace.render_timeline(tr))            # terminal timeline

or, end to end from the CLI::

    python -m repro trace vgg16 --ranks 4 --out trace.json

See ``docs/observability.md`` for the span taxonomy and the Perfetto
workflow.
"""

from repro.trace.tracer import (
    NULL_TRACER,
    NullTracer,
    SPAN_CATEGORIES,
    Span,
    Tracer,
    active,
    emit_cost_spans,
    install,
    suspended,
    tracing,
)
from repro.trace.export import to_chrome, validate_chrome, write_chrome_json
from repro.trace.timeline import render_timeline
from repro.trace.attribution import (
    AttributionReport,
    GroupAttribution,
    attribute,
    render_attribution,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "SPAN_CATEGORIES",
    "Span",
    "Tracer",
    "active",
    "emit_cost_spans",
    "install",
    "suspended",
    "tracing",
    "to_chrome",
    "validate_chrome",
    "write_chrome_json",
    "render_timeline",
    "AttributionReport",
    "GroupAttribution",
    "attribute",
    "render_attribution",
]

# ``repro.trace.session`` pulls in the simmpi/topology stack; it is loaded
# lazily so hardware-model modules can import this package for their
# instrumentation hooks without creating an import cycle.
_SESSION_EXPORTS = (
    "SessionSummary",
    "replay_rhd",
    "trace_net_iteration",
    "trace_training_step",
)
__all__ += list(_SESSION_EXPORTS)


def __getattr__(name: str):
    if name in _SESSION_EXPORTS or name == "session":
        import importlib

        session = importlib.import_module("repro.trace.session")
        if name == "session":
            return session
        return getattr(session, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
