"""Event-trace observability for the simulated swCaffe stack.

``repro.trace`` records *what the simulator spent its simulated time on* as
typed spans — DMA transfers, register-bus exchanges, CPE compute, LDM
allocations, collective steps, layer passes, solver iterations — collected
from instrumentation hooks in ``repro.hw``, ``repro.kernels``,
``repro.simmpi`` and ``repro.frame``. Tracing is off by default (a no-op
null tracer) and never changes simulated-time results.

Typical use::

    from repro import trace

    with trace.tracing() as tr:
        solver.step(3)                      # or any traced workload
    trace.write_chrome_json(tr, "trace.json")   # open in ui.perfetto.dev
    print(trace.render_attribution(tr))         # bottleneck summary
    print(trace.render_timeline(tr))            # terminal timeline

or, end to end from the CLI::

    python -m repro trace vgg16 --ranks 4 --out trace.json

See ``docs/observability.md`` for the span taxonomy and the Perfetto
workflow.
"""

from repro.trace.tracer import (
    EDGE_KINDS,
    NULL_TRACER,
    NullTracer,
    SPAN_CATEGORIES,
    Span,
    Tracer,
    active,
    emit_cost_spans,
    install,
    suspended,
    tracing,
)
from repro.trace.scaling import (
    NULL_SCALING,
    CostScaling,
    NullCostScaling,
    SCALE_CLASSES,
    scaling,
)
from repro.trace.export import to_chrome, validate_chrome, write_chrome_json
from repro.trace.timeline import render_timeline
from repro.trace.attribution import (
    AttributionReport,
    GroupAttribution,
    attribute,
    render_attribution,
)

__all__ = [
    "EDGE_KINDS",
    "NULL_TRACER",
    "NullTracer",
    "SPAN_CATEGORIES",
    "Span",
    "Tracer",
    "active",
    "emit_cost_spans",
    "install",
    "suspended",
    "tracing",
    "NULL_SCALING",
    "CostScaling",
    "NullCostScaling",
    "SCALE_CLASSES",
    "scaling",
    "to_chrome",
    "validate_chrome",
    "write_chrome_json",
    "render_timeline",
    "AttributionReport",
    "GroupAttribution",
    "attribute",
    "render_attribution",
]

# ``repro.trace.session`` pulls in the simmpi/topology stack; it is loaded
# lazily so hardware-model modules can import this package for their
# instrumentation hooks without creating an import cycle. The critical-path
# and what-if modules are lazy for the same reason (whatif re-simulates).
_SESSION_EXPORTS = (
    "SessionSummary",
    "replay_rhd",
    "trace_net_iteration",
    "trace_training_step",
)
_CRITPATH_EXPORTS = (
    "CritGraph",
    "CritNode",
    "CritPathReport",
    "build_graph",
    "critical_path",
    "path_spans",
    "render_critpath",
)
_WHATIF_EXPORTS = (
    "WhatIfProjection",
    "WhatIfResult",
    "WhatIfValidation",
    "parse_scales",
    "project",
    "render_whatif",
    "whatif_training",
)
__all__ += list(_SESSION_EXPORTS) + list(_CRITPATH_EXPORTS) + list(_WHATIF_EXPORTS)

_LAZY_MODULES = {
    **{name: "repro.trace.session" for name in _SESSION_EXPORTS},
    **{name: "repro.trace.critpath" for name in _CRITPATH_EXPORTS},
    **{name: "repro.trace.whatif" for name in _WHATIF_EXPORTS},
}


def __getattr__(name: str):
    import importlib

    if name in ("session", "critpath", "whatif"):
        return importlib.import_module(f"repro.trace.{name}")
    module = _LAZY_MODULES.get(name)
    if module is not None:
        return getattr(importlib.import_module(module), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
