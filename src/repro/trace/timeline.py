"""Per-iteration text timeline: a trace rendered for the terminal.

The Perfetto export is the rich view; this renderer answers the quick
question — "where did this simulated iteration's time go?" — without
leaving the shell. Spans are grouped by track, listed chronologically with
start/duration, and indented one step per level of containment within the
track (a layer span contains nothing on its own track, but a
reduce-scatter step nests visually under its collective parent when both
share a track).
"""

from __future__ import annotations

from typing import Iterable

from repro.trace.tracer import Span, Tracer
from repro.utils.units import format_time


def _format_args(span: Span, max_len: int = 48) -> str:
    if not span.args:
        return ""
    body = ", ".join(f"{k}={v}" for k, v in span.args.items())
    if len(body) > max_len:
        body = body[: max_len - 3] + "..."
    return f"  {{{body}}}"


def render_timeline(
    tracer: Tracer | list[Span],
    *,
    max_spans_per_track: int = 40,
    show_args: bool = True,
    highlight: Iterable[Span] | None = None,
) -> str:
    """Render the trace as grouped, chronological text.

    Long tracks are truncated to ``max_spans_per_track`` entries with an
    elision marker (traces of full nets run to thousands of spans; the
    text view is for orientation, not completeness).

    ``highlight`` marks the given spans (matched by identity — e.g.
    :func:`~repro.trace.critpath.path_spans`) with a leading ``*``, the
    critical-path view of the timeline.
    """
    spans = tracer.spans if isinstance(tracer, Tracer) else list(tracer)
    if not spans:
        return "(empty trace)"
    marked = {id(s) for s in highlight} if highlight is not None else set()
    by_track: dict[str, list[Span]] = {}
    for s in spans:
        by_track.setdefault(s.track, []).append(s)
    lines: list[str] = []
    for track in sorted(by_track):
        track_spans = sorted(by_track[track], key=lambda s: (s.start_s, -s.dur_s))
        lines.append(f"== {track} ({len(track_spans)} spans) ==")
        shown = track_spans[:max_spans_per_track]
        # Containment-based indentation within the track: a stack of open
        # (start, end) intervals the current span falls inside.
        open_spans: list[tuple[float, float]] = []
        for s in shown:
            while open_spans and s.start_s >= open_spans[-1][1] - 1e-15:
                open_spans.pop()
            if (
                open_spans
                and not s.instant
                and s.start_s == open_spans[-1][0]
                and s.end_s == open_spans[-1][1]
            ):
                # Identical interval: a concurrent duplicate (lockstep
                # partners, mirrored resources), not containment — render
                # as a sibling, not a child.
                open_spans.pop()
            indent = "  " * len(open_spans)
            if not s.instant and s.dur_s > 0:
                # Zero-duration spans contain nothing; keeping them off the
                # stack stops followers at the same instant from nesting.
                open_spans.append((s.start_s, s.end_s))
            stamp = f"[{format_time(s.start_s):>9} +{format_time(s.dur_s):>9}]"
            if s.instant:
                stamp = f"[{format_time(s.start_s):>9}  (instant)]"
            args = _format_args(s) if show_args else ""
            mark = "* " if id(s) in marked else "  "
            lines.append(f"{mark}{stamp} {indent}{s.name} <{s.cat}>{args}")
        hidden = len(track_spans) - len(shown)
        if hidden > 0:
            lines.append(f"  ... {hidden} more spans")
    return "\n".join(lines)
