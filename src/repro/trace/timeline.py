"""Per-iteration text timeline: a trace rendered for the terminal.

The Perfetto export is the rich view; this renderer answers the quick
question — "where did this simulated iteration's time go?" — without
leaving the shell. Spans are grouped by track, listed chronologically with
start/duration, and indented one step per level of containment within the
track (a layer span contains nothing on its own track, but a
reduce-scatter step nests visually under its collective parent when both
share a track).
"""

from __future__ import annotations

from repro.trace.tracer import Span, Tracer
from repro.utils.units import format_time


def _format_args(span: Span, max_len: int = 48) -> str:
    if not span.args:
        return ""
    body = ", ".join(f"{k}={v}" for k, v in span.args.items())
    if len(body) > max_len:
        body = body[: max_len - 3] + "..."
    return f"  {{{body}}}"


def render_timeline(
    tracer: Tracer | list[Span],
    *,
    max_spans_per_track: int = 40,
    show_args: bool = True,
) -> str:
    """Render the trace as grouped, chronological text.

    Long tracks are truncated to ``max_spans_per_track`` entries with an
    elision marker (traces of full nets run to thousands of spans; the
    text view is for orientation, not completeness).
    """
    spans = tracer.spans if isinstance(tracer, Tracer) else list(tracer)
    if not spans:
        return "(empty trace)"
    by_track: dict[str, list[Span]] = {}
    for s in spans:
        by_track.setdefault(s.track, []).append(s)
    lines: list[str] = []
    for track in sorted(by_track):
        track_spans = sorted(by_track[track], key=lambda s: (s.start_s, -s.dur_s))
        lines.append(f"== {track} ({len(track_spans)} spans) ==")
        shown = track_spans[:max_spans_per_track]
        open_ends: list[float] = []
        for s in shown:
            # Containment-based indentation within the track.
            while open_ends and s.start_s >= open_ends[-1] - 1e-15:
                open_ends.pop()
            indent = "  " * len(open_ends)
            if not s.instant:
                open_ends.append(s.end_s)
            stamp = f"[{format_time(s.start_s):>9} +{format_time(s.dur_s):>9}]"
            if s.instant:
                stamp = f"[{format_time(s.start_s):>9}  (instant)]"
            args = _format_args(s) if show_args else ""
            lines.append(f"  {stamp} {indent}{s.name} <{s.cat}>{args}")
        hidden = len(track_spans) - len(shown)
        if hidden > 0:
            lines.append(f"  ... {hidden} more spans")
    return "\n".join(lines)
