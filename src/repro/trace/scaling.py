"""Ambient what-if cost scaling for validation re-simulation.

The what-if engine (:mod:`repro.trace.whatif`) projects a scaled scenario
by re-walking the trace's dependency graph. Its *validation mode* re-runs
the actual simulator with the same factors applied at the cost-model
sites; this module is the ambient channel those sites consult, mirroring
the tracer/metrics/fault patterns (a shared null object when disabled,
``if sc.enabled`` guards, a context manager to install a real scaling).

Scale classes match the critical-path resource classes:

``cpe`` / ``dma`` / ``rlc``
    The three components of every :class:`~repro.kernels.plan.PlanCost`.
``overhead``
    A plan's fixed per-invocation overhead seconds.
``collective``
    One lockstep collective step (wire time plus local reduction).
``batch``
    A serving batch's forward compute.
``layer:<name>``
    Multiplies every component of one named layer on top of the class
    factors.

The arithmetic here is deliberately the *same operations in the same
order* as the projection in :mod:`repro.trace.critpath`, so on the
serial-fabric schedule the projected end-to-end time equals the
re-simulated one bit for bit (pinned by ``tests/test_whatif.py``).
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager
from typing import Any, Iterator, Mapping

#: The resource classes a what-if factor may target (besides ``layer:*``).
SCALE_CLASSES = ("cpe", "dma", "rlc", "overhead", "collective", "batch", "p2p", "stage")


class CostScaling:
    """An installed set of what-if factors; missing classes default to 1.

    Factors must be finite and > 0 — a zero factor would erase spans the
    projection still schedules, making validation meaningless.
    """

    enabled: bool = True

    def __init__(self, factors: Mapping[str, float]) -> None:
        for cls, f in factors.items():
            if not (cls in SCALE_CLASSES or cls.startswith("layer:")):
                raise ValueError(
                    f"unknown scale class {cls!r} "
                    f"(choose from {SCALE_CLASSES} or 'layer:<name>')"
                )
            if not (float(f) > 0.0):
                raise ValueError(f"scale factor for {cls!r} must be > 0, got {f!r}")
        self.factors = {cls: float(f) for cls, f in factors.items()}

    def factor(self, cls: str) -> float:
        """The multiplier for one scale class (1.0 when unset)."""
        return self.factors.get(cls, 1.0)

    def layer_factor(self, layer_name: str) -> float:
        """The extra multiplier for one named layer (1.0 when unset)."""
        return self.factors.get(f"layer:{layer_name}", 1.0)

    def scale_plan_cost(self, cost: Any, layer_name: str | None = None) -> Any:
        """A copy of a :class:`~repro.kernels.plan.PlanCost` with the
        component fields scaled (``total_s`` re-derives from them, so the
        dual-pipeline rule is re-applied to the scaled components)."""
        lf = self.layer_factor(layer_name) if layer_name else 1.0
        return dataclasses.replace(
            cost,
            compute_s=cost.compute_s * (self.factor("cpe") * lf),
            dma_s=cost.dma_s * (self.factor("dma") * lf),
            rlc_s=cost.rlc_s * (self.factor("rlc") * lf),
            overhead_s=cost.overhead_s * (self.factor("overhead") * lf),
        )

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v:g}" for k, v in sorted(self.factors.items()))
        return f"CostScaling({body})"


class NullCostScaling(CostScaling):
    """The disabled scaling: every factor is exactly 1 and nothing pays."""

    enabled = False

    def __init__(self) -> None:
        self.factors = {}


#: Shared disabled scaling; cost sites guard with ``if sc.enabled``.
NULL_SCALING = NullCostScaling()

_active: CostScaling = NULL_SCALING


def active() -> CostScaling:
    """The ambient scaling (the shared :data:`NULL_SCALING` when disabled)."""
    return _active


def install(sc: CostScaling) -> CostScaling:
    """Make ``sc`` ambient; returns the previously installed one."""
    global _active
    previous = _active
    _active = sc
    return previous


@contextmanager
def scaling(sc: CostScaling) -> Iterator[CostScaling]:
    """Apply what-if factors to every instrumented cost site in the block."""
    previous = install(sc)
    try:
        yield sc
    finally:
        install(previous)
