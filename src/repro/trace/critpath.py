"""Critical-path profiler over the span stream.

Aggregate attribution (:mod:`repro.trace.attribution`, the roofline) says
how much time each resource consumed *in total*; this module says whether
that time actually bounded the end-to-end result. It builds a dependency
graph over a trace session's typed spans — explicit causal edges recorded
by :meth:`~repro.trace.tracer.Tracer.edge` at the instrumentation sites,
plus inferred same-track ordering — walks the longest path to the
terminal span, and attributes critical-path time by resource class and by
layer, with slack for everything off the path.

The same graph supports *projection*: scale any resource class (or one
layer) by a factor and re-walk the schedule to a new end-to-end time.
:mod:`repro.trace.whatif` wraps that into the ``python -m repro whatif``
command with a validation mode that re-runs the simulator under
:mod:`repro.trace.scaling` and pins projection == simulation.

Graph model
-----------
* **Leaf spans** (``cpe_compute``, ``dma_transfer``, ``rlc_exchange``,
  ``collective_step``, ``collective_service``, ``batch_compute``,
  ``fault_retry``) carry resource time and scale with their class factor.
* **Container spans** (``layer_fwd``, ``layer_bwd``, ``plan_cost``) derive
  their duration from their member components by the dual-pipeline rule
  (``max(members) + overhead``), so scaling one component re-evaluates the
  ``max`` — a DMA-bound layer does not speed up when compute shrinks.
* **Instants** (arrivals, launches) are zero-duration nodes anchored at
  their recorded time: external events a what-if cannot move.
* Summary spans (``solver_iter``, ``overlap_window``, ``batch_dispatch``,
  ``request_shed``) decorate the trace but are not scheduled.

A node starts at ``max(release floor, latest predecessor end)``; the
floor is the recorded start for anchored nodes and the ``ready_s`` arg
for serially-served windows (batches, nonblocking collectives).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.errors import CritPathError
from repro.metrics.registry import active as _metrics
from repro.trace.tracer import Span, Tracer

#: Leaf span category -> what-if resource class.
RESOURCE_CLASS = {
    "cpe_compute": "cpe",
    "dma_transfer": "dma",
    "rlc_exchange": "rlc",
    "collective_step": "collective",
    "collective_service": "collective",
    "batch_compute": "batch",
    "fault_retry": "fault",
    "p2p_transfer": "p2p",
    "activation_xfer": "p2p",
    "stage_fwd": "stage",
    "stage_bwd": "stage",
}

#: Containers whose duration derives from member components + overhead.
CONTAINER_CATS = ("layer_fwd", "layer_bwd", "plan_cost")

#: Decoration-only categories: never scheduled as graph nodes.
EXCLUDED_CATS = (
    "solver_iter",
    "overlap_window",
    "batch_dispatch",
    "request_shed",
    "pipeline_bubble",
)

#: Tolerance for inferring same-track ordering from recorded geometry.
_CHAIN_EPS = 1e-12


def _layer_of(span: Span) -> str | None:
    """The layer name a ``layer_fwd``/``layer_bwd`` container belongs to."""
    if span.cat not in ("layer_fwd", "layer_bwd"):
        return None
    name, sep, suffix = span.name.rpartition(" ")
    return name if sep and suffix in ("fwd", "bwd") else span.name


@dataclass
class CritNode:
    """One scheduled span in the dependency graph."""

    span: Span
    index: int
    #: "leaf" | "container" | "marker" (zero-duration anchor/instant).
    kind: str
    resource: str | None = None
    layer: str | None = None
    #: Earliest allowed start independent of predecessors (None: roots
    #: fall back to the recorded start, non-roots to their predecessors).
    floor_s: float | None = None
    preds: list[int] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    #: Member component node indices (containers only).
    members: list[int] = field(default_factory=list)


@dataclass
class CritGraph:
    """The full dependency graph of one trace."""

    nodes: list[CritNode]
    #: Scheduled (dep + inferred-chain) edges as (src, dst) node indices.
    edges: list[tuple[int, int]]
    #: Member spans (by node index) — priced inside containers, not scheduled.
    member_nodes: set[int]

    @property
    def n_scheduled(self) -> int:
        return len(self.nodes) - len(self.member_nodes)


def build_graph(tracer: Tracer | list[Span]) -> CritGraph:
    """Build the dependency graph of a trace.

    Accepts a :class:`Tracer` (explicit edges included) or a bare span
    list (same-track inference only).
    """
    if isinstance(tracer, Tracer):
        spans = tracer.spans
        raw_edges = tracer.edges
    else:
        spans = list(tracer)
        raw_edges = []

    nodes: list[CritNode] = []
    by_span: dict[int, int] = {}
    for span in spans:
        if span.cat in EXCLUDED_CATS:
            continue
        if span.cat in CONTAINER_CATS:
            kind = "container"
        elif span.instant:
            kind = "marker"
        else:
            kind = "leaf"
        node = CritNode(
            span=span,
            index=len(nodes),
            kind=kind,
            resource=RESOURCE_CLASS.get(span.cat),
            layer=_layer_of(span),
        )
        if kind == "marker":
            node.floor_s = span.start_s
        elif span.args and "ready_s" in span.args:
            node.floor_s = float(span.args["ready_s"])
        by_span[id(span)] = node.index
        nodes.append(node)

    member_nodes: set[int] = set()
    dep_edges: set[tuple[int, int]] = set()
    for src, dst, kind in raw_edges:
        si = by_span.get(id(src))
        di = by_span.get(id(dst))
        if si is None or di is None or si == di:
            continue
        if kind == "member":
            nodes[di].members.append(si)
            member_nodes.add(si)
        else:
            dep_edges.add((si, di))

    # Same-track ordering: non-member interval spans emitted on one track
    # chain when the next one starts at/after the previous end (clock- and
    # cursor-driven emission are both monotone per track; spans that
    # overlap are concurrent and stay unchained).
    last_on_track: dict[str, int] = {}
    for node in nodes:
        if node.index in member_nodes or node.kind == "marker":
            continue
        track = node.span.track
        prev = last_on_track.get(track)
        if prev is not None:
            prev_span = nodes[prev].span
            if node.span.start_s >= prev_span.end_s - _CHAIN_EPS:
                dep_edges.add((prev, node.index))
        # ``>=``: a zero-duration span ending exactly where its predecessor
        # did must still become the chain head, or the next span would
        # bypass it (and any explicit dependency riding on it).
        if prev is None or node.span.end_s >= nodes[prev].span.end_s:
            last_on_track[track] = node.index
    # Members recorded before their container may have chained; drop any
    # edge touching a member node (they are priced, not scheduled).
    edges = sorted(
        (s, d)
        for s, d in dep_edges
        if s not in member_nodes and d not in member_nodes
    )
    for s, d in edges:
        nodes[d].preds.append(s)
        nodes[s].succs.append(d)
    return CritGraph(nodes=nodes, edges=edges, member_nodes=member_nodes)


# --------------------------------------------------------------------------- #
# scheduling / projection
# --------------------------------------------------------------------------- #
def _factor(factors: Mapping[str, float] | None, cls: str) -> float:
    if not factors:
        return 1.0
    return factors.get(cls, 1.0)


def effective_duration(
    graph: CritGraph, node: CritNode, factors: Mapping[str, float] | None
) -> float:
    """A node's duration under what-if ``factors`` (identity when None).

    Mirrors, operation for operation, what the simulator recomputes under
    :class:`~repro.trace.scaling.CostScaling` — containers re-apply the
    dual-pipeline ``max(members) + overhead`` rule to scaled components.
    """
    span = node.span
    if node.kind == "marker":
        return 0.0
    if node.kind == "container":
        lf = _factor(factors, f"layer:{node.layer}") if node.layer else 1.0
        bound = 0.0
        for mi in node.members:
            m = graph.nodes[mi]
            d = m.span.dur_s * (_factor(factors, m.resource or "") * lf)
            if d > bound:
                bound = d
        overhead = 0.0
        if span.args and "overhead_s" in span.args:
            overhead = float(span.args["overhead_s"])
        return bound + overhead * (_factor(factors, "overhead") * lf)
    if node.resource is not None:
        return span.dur_s * _factor(factors, node.resource)
    return span.dur_s


@dataclass
class ScheduleResult:
    """Projected start/end times for every node, in node-index order."""

    start_s: list[float]
    end_s: list[float]
    dur_s: list[float]
    order: list[int]  # topological order over scheduled nodes

    @property
    def end_to_end_s(self) -> float:
        return max(self.end_s, default=0.0)


def schedule(
    graph: CritGraph, factors: Mapping[str, float] | None = None
) -> ScheduleResult:
    """Walk the graph forward: ``start = max(floor, latest pred end)``."""
    n = len(graph.nodes)
    start = [0.0] * n
    end = [0.0] * n
    dur = [0.0] * n
    indegree = [0] * n
    for node in graph.nodes:
        indegree[node.index] = len(node.preds)
    ready = [
        i
        for i in range(n)
        if indegree[i] == 0 and i not in graph.member_nodes
    ]
    order: list[int] = []
    head = 0
    while head < len(ready):
        i = ready[head]
        head += 1
        order.append(i)
        node = graph.nodes[i]
        d = effective_duration(graph, node, factors)
        release = node.floor_s
        if release is None:
            release = node.span.start_s if not node.preds else 0.0
        s = release
        for p in node.preds:
            if end[p] > s:
                s = end[p]
        start[i], dur[i] = s, d
        end[i] = s + d
        for j in node.succs:
            indegree[j] -= 1
            if indegree[j] == 0:
                ready.append(j)
    if len(order) != graph.n_scheduled:
        raise CritPathError(
            f"dependency graph has a cycle: scheduled {len(order)} of "
            f"{graph.n_scheduled} nodes"
        )
    return ScheduleResult(start_s=start, end_s=end, dur_s=dur, order=order)


# --------------------------------------------------------------------------- #
# critical path extraction
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PathEntry:
    """One span on the critical path."""

    name: str
    cat: str
    track: str
    start_s: float
    dur_s: float
    resource: str | None
    layer: str | None


@dataclass
class CritPathReport:
    """Critical-path attribution of one trace."""

    end_to_end_s: float
    terminal: str
    terminal_track: str
    path: list[PathEntry]
    #: Critical-path time by resource class (containers attribute their
    #: binding component; fixed overheads land under "overhead").
    by_resource: dict[str, float]
    #: Critical-path time by layer (layer containers only).
    by_layer: dict[str, float]
    #: Exposed collective seconds on the path — the ``exposed_s`` portion
    #: of on-path collective windows (full duration when untagged, e.g.
    #: the fused allreduce whose steps all start after the barrier).
    collective_exposed_s: float
    #: (name, track, slack_s) for the largest-slack off-path spans.
    top_slack: list[tuple[str, str, float]]
    n_nodes: int
    n_edges: int
    #: Contiguous path segments grouped by phase (compute / collective /
    #: serve), in path order — one compute+collective pair per solver
    #: iteration on training traces.
    segments: list[dict[str, Any]]

    def to_json(self) -> dict[str, Any]:
        """Machine-readable report (schema ``repro-critpath/1``)."""
        return {
            "schema": "repro-critpath/1",
            "end_to_end_s": self.end_to_end_s,
            "terminal": self.terminal,
            "terminal_track": self.terminal_track,
            "n_nodes": self.n_nodes,
            "n_edges": self.n_edges,
            "by_resource": {k: self.by_resource[k] for k in sorted(self.by_resource)},
            "by_layer": {k: self.by_layer[k] for k in sorted(self.by_layer)},
            "collective_exposed_s": self.collective_exposed_s,
            "segments": self.segments,
            "top_slack": [
                {"name": n, "track": t, "slack_s": s} for n, t, s in self.top_slack
            ],
            "path": [
                {
                    "name": e.name,
                    "cat": e.cat,
                    "track": e.track,
                    "start_s": e.start_s,
                    "dur_s": e.dur_s,
                    "resource": e.resource,
                }
                for e in self.path
            ],
        }

    def write_json(self, path: str) -> str:
        """Serialize :meth:`to_json` to ``path``; returns the path."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        return path


def _phase_of(entry: PathEntry) -> str:
    if entry.resource == "collective":
        return "collective"
    if entry.track.split("/", 1)[0] == "serve" or entry.resource == "batch":
        return "serve"
    if entry.cat in ("layer_fwd", "layer_bwd") or entry.resource in (
        "cpe", "dma", "rlc"
    ):
        return "compute"
    return "other"


def extract_path(
    graph: CritGraph, sched: ScheduleResult
) -> tuple[list[int], int]:
    """Walk binding predecessors back from the terminal node.

    Returns (path node indices in time order, terminal index). The walk
    stops where a node is bound by its own release floor rather than a
    predecessor — the path's source event.
    """
    scheduled = [i for i in sched.order]
    if not scheduled:
        return [], -1
    terminal = max(scheduled, key=lambda i: (sched.end_s[i], i))
    path = [terminal]
    node = terminal
    while True:
        preds = graph.nodes[node].preds
        if not preds:
            break
        binding = max(preds, key=lambda p: (sched.end_s[p], -p))
        if sched.end_s[binding] < sched.start_s[node]:
            break  # release-bound: the path starts here
        node = binding
        path.append(node)
    path.reverse()
    return path, terminal


def critical_path(
    tracer: Tracer | list[Span] | CritGraph,
    factors: Mapping[str, float] | None = None,
    *,
    top_slack: int = 5,
) -> CritPathReport:
    """The critical-path report of a trace (optionally under what-if factors)."""
    graph = tracer if isinstance(tracer, CritGraph) else build_graph(tracer)
    sched = schedule(graph, factors)
    path_idx, terminal = extract_path(graph, sched)

    by_resource: dict[str, float] = {}
    by_layer: dict[str, float] = {}
    exposed = 0.0
    entries: list[PathEntry] = []
    for i in path_idx:
        node = graph.nodes[i]
        span = node.span
        dur = sched.dur_s[i]
        entries.append(
            PathEntry(
                name=span.name,
                cat=span.cat,
                track=span.track,
                start_s=sched.start_s[i],
                dur_s=dur,
                resource=node.resource,
                layer=node.layer,
            )
        )
        if node.kind == "container":
            lf = _factor(factors, f"layer:{node.layer}") if node.layer else 1.0
            bound, bound_res = 0.0, None
            for mi in node.members:
                m = graph.nodes[mi]
                d = m.span.dur_s * (_factor(factors, m.resource or "") * lf)
                if d > bound:
                    bound, bound_res = d, m.resource
            if bound_res is not None:
                by_resource[bound_res] = by_resource.get(bound_res, 0.0) + bound
            overhead = dur - bound
            if overhead > 0:
                by_resource["overhead"] = by_resource.get("overhead", 0.0) + overhead
            if node.layer:
                by_layer[node.layer] = by_layer.get(node.layer, 0.0) + dur
        elif node.resource is not None:
            by_resource[node.resource] = by_resource.get(node.resource, 0.0) + dur
        if node.resource == "collective":
            if span.args and "exposed_s" in span.args:
                exposed += float(span.args["exposed_s"])
            else:
                exposed += dur

    # Slack: classic CPM late-finish backward pass over the projection.
    end_to_end = sched.end_to_end_s
    n = len(graph.nodes)
    late = [end_to_end] * n
    for i in reversed(sched.order):
        node = graph.nodes[i]
        if node.succs:
            late[i] = min(late[j] - sched.dur_s[j] for j in node.succs)
    on_path = set(path_idx)
    slack_rows = sorted(
        (
            (late[i] - sched.end_s[i], i)
            for i in sched.order
            if i not in on_path and not graph.nodes[i].span.instant
        ),
        key=lambda t: (-t[0], t[1]),
    )
    slack = [
        (graph.nodes[i].span.name, graph.nodes[i].span.track, s)
        for s, i in slack_rows[:top_slack]
    ]

    segments: list[dict[str, Any]] = []
    for e in entries:
        phase = _phase_of(e)
        if segments and segments[-1]["phase"] == phase:
            segments[-1]["dur_s"] += e.dur_s
            segments[-1]["spans"] += 1
        else:
            segments.append({"phase": phase, "dur_s": e.dur_s, "spans": 1})

    report = CritPathReport(
        end_to_end_s=end_to_end,
        terminal=graph.nodes[terminal].span.name if terminal >= 0 else "",
        terminal_track=graph.nodes[terminal].span.track if terminal >= 0 else "",
        path=entries,
        by_resource=by_resource,
        by_layer=by_layer,
        collective_exposed_s=exposed,
        top_slack=slack,
        n_nodes=graph.n_scheduled,
        n_edges=len(graph.edges),
        segments=segments,
    )
    mx = _metrics()
    if mx.enabled:
        mx.count("trace.critpath.nodes", report.n_nodes)
        mx.count("trace.critpath.edges", report.n_edges)
        mx.gauge("trace.critpath.end_to_end_s", report.end_to_end_s)
        for res, t in sorted(report.by_resource.items()):
            mx.count("trace.critpath.on_path_s", t, resource=res)
    return report


def path_spans(
    tracer: Tracer | list[Span] | CritGraph,
    factors: Mapping[str, float] | None = None,
) -> list[Span]:
    """The on-path spans themselves (for timeline highlighting)."""
    graph = tracer if isinstance(tracer, CritGraph) else build_graph(tracer)
    sched = schedule(graph, factors)
    path_idx, _ = extract_path(graph, sched)
    return [graph.nodes[i].span for i in path_idx]


def request_completions(
    graph: CritGraph, sched: ScheduleResult
) -> dict[int, float]:
    """Per-served-request completion times under a schedule.

    A request completes when the batch it joined finishes; the request's
    longest path is arrival -> batch formation -> serial engine wait ->
    batch compute, all encoded in the graph's edges. Keyed by ``rid``.
    """
    out: dict[int, float] = {}
    for node in graph.nodes:
        span = node.span
        if span.cat != "request_queued" or not span.args:
            continue
        rid = span.args.get("rid")
        if rid is None:
            continue
        for j in node.succs:
            if graph.nodes[j].span.cat == "batch_compute":
                out[int(rid)] = sched.end_s[j]
                break
    return out


# --------------------------------------------------------------------------- #
# rendering
# --------------------------------------------------------------------------- #
def render_critpath(report: CritPathReport | Tracer | list[Span]) -> str:
    """The terminal critical-path section (``python -m repro trace``)."""
    from repro.utils.tables import Table
    from repro.utils.units import format_time

    if not isinstance(report, CritPathReport):
        report = critical_path(report)
    total = report.end_to_end_s
    table = Table(
        headers=["resource", "on critical path", "share"],
        title="critical path (time that bounded the end-to-end result)",
    )
    for res in sorted(report.by_resource, key=lambda r: -report.by_resource[r]):
        t = report.by_resource[res]
        share = 100.0 * t / total if total > 0 else 0.0
        table.add_row(res, format_time(t), f"{share:.0f}%")
    lines = [table.render()]
    lines.append(
        f"end-to-end: {format_time(total)} | terminal: {report.terminal!r} "
        f"on {report.terminal_track} | {len(report.path)} spans on path "
        f"({report.n_nodes} nodes, {report.n_edges} edges)"
    )
    if report.collective_exposed_s > 0:
        lines.append(
            f"exposed collective on path: {format_time(report.collective_exposed_s)}"
        )
    if report.by_layer:
        top = sorted(report.by_layer.items(), key=lambda kv: -kv[1])[:5]
        lines.append(
            "top layers on path: "
            + ", ".join(f"{name} {format_time(t)}" for name, t in top)
        )
    if report.top_slack:
        name, track, s = report.top_slack[0]
        lines.append(
            f"largest slack off path: {name!r} on {track} "
            f"(could grow {format_time(s)} for free)"
        )
    return "\n".join(lines)
