"""Trace sessions: end-to-end timelines of a simulated training step.

Ties the tracer to the workload the CLI exposes (``python -m repro trace
<model> --ranks N``): every rank runs one data-parallel training iteration
(identical compute, Algorithm 1's node-local half priced by the layer
plans), then the ranks synchronize gradients with the recursive
halving/doubling allreduce over the TaihuLight fabric, placed after the
compute phase on the shared timeline.

The collective is traced through :func:`replay_rhd` — a schedule-accurate
*accounting replay* of :func:`~repro.simmpi.collectives.rhd.rhd_allreduce`
that walks the identical step/pair/byte structure through
``SimComm.account_step`` without materializing the gradient buffers (a
VGG-16 payload is 0.5 GB per rank; the replay prices it in microseconds).
``tests/test_trace_integration.py`` pins replay-vs-executed equality.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simmpi.collectives.reduce_ops import block_offsets
from repro.simmpi.comm import CollectiveResult, SimComm
from repro.simmpi.reorder import block_placement, round_robin_placement
from repro.topology.fabric import TaihuLightFabric
from repro.trace.scaling import active as _scaling
from repro.trace.tracer import Span, Tracer, active, emit_cost_spans, suspended, tracing


def _largest_pow2_leq(p: int) -> int:
    k = 1
    while k * 2 <= p:
        k *= 2
    return k


def replay_rhd(comm: SimComm, nbytes: float, *, itemsize: int = 4) -> CollectiveResult:
    """Accounting-only recursive halving/doubling allreduce.

    Charges ``comm`` with exactly the steps, pairs and byte counts that
    :func:`~repro.simmpi.collectives.rhd.rhd_allreduce` charges for a
    payload of ``nbytes`` (``nbytes / itemsize`` elements), including the
    non-power-of-two fold/unfold and MPICH's near-equal block splits — but
    moves no data, so arbitrarily large gradients trace cheaply.
    """
    p = comm.p
    n = max(1, int(round(float(nbytes) / itemsize)))
    result = CollectiveResult()
    if p == 1:
        return result
    nbytes_full = float(n * itemsize)

    # --- fold down to a power of two -------------------------------------
    k = _largest_pow2_leq(p)
    r = p - k
    if r > 0:
        pairs = [(2 * i, 2 * i + 1, nbytes_full) for i in range(r)]
        comm.account_step(result, pairs, reduce_bytes=nbytes_full)
        active_ranks = [2 * i for i in range(r)] + list(range(2 * r, p))
    else:
        active_ranks = list(range(p))

    off = block_offsets(n, k)

    def span_bytes(lo_blk: int, hi_blk: int) -> float:
        return float((off[hi_blk] - off[lo_blk]) * itemsize)

    # --- reduce-scatter: recursive halving --------------------------------
    lo = [0] * k
    hi = [k] * k
    d = k // 2
    while d >= 1:
        pairs = []
        max_reduce = 0.0
        for v in range(k):
            w = v ^ d
            if w < v:
                continue
            mid = (lo[v] + hi[v]) // 2
            send_v = span_bytes(mid, hi[v])
            send_w = span_bytes(lo[v], mid)
            pairs.append((active_ranks[v], active_ranks[w], max(send_v, send_w)))
            max_reduce = max(max_reduce, send_v, send_w)
            lo[v], hi[v] = lo[v], mid
            lo[w], hi[w] = mid, hi[w]
        comm.account_step(result, pairs, reduce_bytes=max_reduce)
        d //= 2

    # --- allgather: recursive doubling ------------------------------------
    d = 1
    while d < k:
        pairs = []
        merged: dict[int, tuple[int, int]] = {}
        for v in range(k):
            w = v ^ d
            if w < v:
                continue
            send_v = span_bytes(lo[v], hi[v])
            send_w = span_bytes(lo[w], hi[w])
            pairs.append((active_ranks[v], active_ranks[w], max(send_v, send_w)))
            span = (min(lo[v], lo[w]), max(hi[v], hi[w]))
            merged[v] = span
            merged[w] = span
        for v, (nlo, nhi) in merged.items():
            lo[v], hi[v] = nlo, nhi
        comm.account_step(result, pairs)
        d *= 2

    # --- unfold ------------------------------------------------------------
    if r > 0:
        pairs = [(2 * i, 2 * i + 1, nbytes_full) for i in range(r)]
        comm.account_step(result, pairs)
    return result


def trace_net_iteration(net, tracer: Tracer | None = None) -> float:
    """Emit one simulated training iteration of ``net`` as spans.

    Under the tracer's current track context: ``layer_fwd`` spans in layer
    order, ``layer_bwd`` spans in reverse order (each with compute/DMA/RLC
    component children on the resource tracks), and one ``solver_iter``
    span covering the sweep. Returns the iteration's simulated seconds.

    Layer costs are computed with ambient tracing *suspended* so the plan
    search inside the cost hooks does not spam the trace with candidate
    LDM-allocation events.
    """
    tr = tracer if tracer is not None else active()
    if not tr.enabled:
        return float(net.sw_iteration_time())
    start = tr.cursor("layers")
    with suspended():
        costs = [(layer, layer.sw_cost()) for layer in net.layers]
    sc = _scaling()
    if sc.enabled:
        # What-if validation: scale each layer's component costs exactly
        # as the projection does, then let total_s re-derive the
        # dual-pipeline bound from the scaled components.
        costs = [
            (
                layer,
                cost.__class__(
                    sc.scale_plan_cost(cost.forward, layer.name),
                    sc.scale_plan_cost(cost.backward, layer.name),
                ),
            )
            for layer, cost in costs
        ]
    prev = None
    for layer, cost in costs:
        parent = emit_cost_spans(
            tr, f"{layer.name} fwd", cost.forward,
            cat="layer_fwd", args={"layer_type": layer.type},
        )
        if parent is not None:
            if prev is not None:
                tr.edge(prev, parent)
            prev = parent
    for layer, cost in reversed(costs):
        parent = emit_cost_spans(
            tr, f"{layer.name} bwd", cost.backward,
            cat="layer_bwd", args={"layer_type": layer.type},
        )
        if parent is not None:
            if prev is not None:
                tr.edge(prev, parent)
            prev = parent
    dur = tr.cursor("layers") - start
    tr.emit(
        f"{net.name} iteration",
        "solver_iter",
        track="solver",
        dur=dur,
        args={"layers": len(net.layers)},
    )
    return dur


@dataclass(frozen=True)
class SessionSummary:
    """What one traced training step simulated."""

    model: str
    ranks: int
    iterations: int
    compute_s: float
    allreduce_s: float
    allreduce_steps: int
    payload_bytes: float
    scheme: str

    @property
    def total_s(self) -> float:
        return self.compute_s + self.allreduce_s


def trace_training_step(
    net,
    *,
    ranks: int = 4,
    iterations: int = 1,
    tracer: Tracer | None = None,
    scheme: str = "improved",
    nodes_per_supernode: int | None = None,
) -> tuple[Tracer, SessionSummary]:
    """Trace ``iterations`` data-parallel training steps of ``net``.

    Every rank gets an identical compute timeline (tracks
    ``rank<r>/{solver,layers,cpe,dma,rlc}``); each iteration's gradient
    allreduce follows on ``rank<r>/collective``, priced over a TaihuLight
    fabric with ``round-robin`` (``scheme="improved"``) or ``block``
    (``scheme="original"``) rank placement.
    """
    if ranks < 1:
        raise ValueError("ranks must be >= 1")
    if scheme not in ("improved", "original"):
        raise ValueError(f"scheme must be 'improved' or 'original', got {scheme!r}")
    tr = tracer if tracer is not None else Tracer()

    q = nodes_per_supernode
    if q is None:
        # Prefer a layout with >= 2 supernodes so cross-supernode steps
        # show up; fall back to one supernode for tiny/odd rank counts.
        q = ranks // 2 if ranks % 2 == 0 and ranks > 2 else ranks
    if ranks % q != 0:
        raise ValueError(f"ranks={ranks} must be a multiple of nodes_per_supernode={q}")

    payload = float(net.param_bytes())
    fabric = TaihuLightFabric(n_nodes=ranks, nodes_per_supernode=q)
    placement = (
        round_robin_placement(ranks, q)
        if scheme == "improved"
        else block_placement(ranks, q)
    )
    compute_s = 0.0
    allreduce_s = 0.0
    steps = 0
    first_fwd: dict[tuple[int, int], Span] = {}
    last_bwd: dict[tuple[int, int], Span] = {}
    with tracing(tr):
        for r in range(ranks):
            with tr.context(f"rank{r}"):
                for it in range(iterations):
                    mark = len(tr.spans)
                    trace_net_iteration(net, tr)
                    segment = tr.spans[mark:]
                    fwds = [s for s in segment if s.cat == "layer_fwd"]
                    bwds = [s for s in segment if s.cat == "layer_bwd"]
                    if fwds:
                        first_fwd[(r, it)] = fwds[0]
                    if bwds:
                        last_bwd[(r, it)] = bwds[-1]
            compute_s = max(compute_s, tr.cursor(f"/rank{r}/layers"))
        if ranks > 1:
            # One allreduce per iteration, laid out after the compute phase
            # it synchronizes. Each uses a fresh communicator whose clock
            # is pre-advanced to the phase's place on the global timeline,
            # so recorded step times accumulate from the offset exactly as
            # the critical-path projection chains them.
            per_iter = compute_s / iterations if iterations else 0.0
            for i in range(iterations):
                comm = SimComm(fabric, placement)
                comm.clock.advance(per_iter * (i + 1) + allreduce_s, category="comm")
                mark = len(tr.spans)
                res = replay_rhd(comm, payload)
                step_spans = [
                    s for s in tr.spans[mark:] if s.cat == "collective_step"
                ]
                # Barrier: the first lockstep round waits on every rank's
                # backward pass of the iteration it synchronizes.
                for span in step_spans:
                    if span.name != "step0":
                        break
                    for r in range(ranks):
                        bwd = last_bwd.get((r, i))
                        if bwd is not None:
                            tr.edge(bwd, span)
                # Sync: the next iteration's forward waits on this
                # allreduce completing (its final round's representative).
                if step_spans and i + 1 < iterations:
                    for r in range(ranks):
                        fwd = first_fwd.get((r, i + 1))
                        if fwd is not None:
                            tr.edge(step_spans[-1], fwd)
                allreduce_s += res.time_s
                steps += res.steps
    summary = SessionSummary(
        model=net.name,
        ranks=ranks,
        iterations=iterations,
        compute_s=compute_s,
        allreduce_s=allreduce_s,
        allreduce_steps=steps,
        payload_bytes=payload,
        scheme=scheme,
    )
    return tr, summary
