"""The tracer: typed spans on the simulated clock.

A :class:`Tracer` collects :class:`Span` records — named, categorised
intervals on named *tracks* — from instrumentation hooks spread through the
hardware model (``repro.hw``), the kernel plans, the simulated MPI layer and
the training framework. Time is always *simulated* seconds (the same
numbers :class:`~repro.hw.clock.SimClock` accumulates), never wall clock,
so traces are deterministic and reproducible.

Tracks are ``/``-separated paths (``rank0/dma``, ``mesh/row3``); the first
segment becomes the Perfetto *process*, the rest the *thread*, giving the
one-track-per-rank/resource layout the exporters render.

Tracing is ambient and off by default: :func:`active` returns a shared
:class:`NullTracer` whose every method is a no-op, so instrumentation costs
one attribute check when disabled and never perturbs simulated-time
arithmetic (pinned by ``tests/test_trace_integration.py``). Enable it with
:func:`tracing`::

    from repro import trace

    with trace.tracing() as tr:
        run_workload()
    trace.write_chrome_json(tr, "trace.json")
"""

from __future__ import annotations

import math
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.errors import SpanValidationError


#: The span taxonomy. Instrumentation sites use these categories; exporters
#: and the attribution summary group by them. See ``docs/observability.md``.
SPAN_CATEGORIES = (
    "dma_transfer",  # DMAEngine get/put between DDR3 and LDM
    "rlc_exchange",  # register-bus P2P / broadcast on the CPE mesh
    "cpe_compute",   # CPE pipeline work
    "ldm_alloc",     # instant: LDM buffer reservation
    "collective_step",  # one lockstep round of a simulated collective
    "collective_launch",  # instant: a nonblocking collective was launched
    "overlap_window",   # portion of a collective hidden behind backward compute
    "layer_fwd",     # one layer's forward pass
    "layer_bwd",     # one layer's backward pass
    "solver_iter",   # one full solver iteration
    "plan_cost",     # a kernel plan's priced invocation
    "fault_inject",  # instant: an injected fault fired (repro.faults)
    "fault_retry",   # retry/backoff/timeout time charged to recovery
    "request_queued",  # instant: a serving request entered the admission queue
    "request_shed",    # instant: a serving request was shed at the queue bound
    "batch_dispatch",  # instant: the dynamic batcher formed and launched a batch
    "batch_compute",   # a dispatched batch's forward-only execution
    "collective_service",  # one nonblocking launch's serial-fabric service window
    "p2p_transfer",    # one point-to-point message between two ranks
    "stage_fwd",       # one pipeline stage's forward pass of one microbatch
    "stage_bwd",       # one pipeline stage's backward pass of one microbatch
    "activation_xfer",  # boundary activation/gradient transfer between stages
    "pipeline_bubble",  # idle time on a pipeline stage (fill/drain/stall)
)

#: Causal-edge kinds accepted by :meth:`Tracer.edge`. ``dep`` means the
#: destination span cannot start before the source span ends (a scheduling
#: dependency the critical-path graph walks); ``member`` attaches a
#: resource-component span to its container (the ``emit_cost_spans``
#: children), which is containment, not ordering.
EDGE_KINDS = ("dep", "member")


@dataclass(frozen=True)
class Span:
    """One traced interval (or instant event) on a track.

    Attributes
    ----------
    name:
        Human-readable label ("dma_get", "conv1_1 fwd", "step3", ...).
    cat:
        One of :data:`SPAN_CATEGORIES` (free-form strings are allowed for
        extensions; exporters pass them through).
    track:
        Resolved ``/``-separated track path.
    start_s, dur_s:
        Simulated start time and duration in seconds.
    args:
        Optional metadata (bytes moved, bandwidth, partner rank, ...).
    instant:
        True for zero-duration point events (e.g. ``ldm_alloc``).
    """

    name: str
    cat: str
    track: str
    start_s: float
    dur_s: float = 0.0
    args: Mapping[str, Any] | None = None
    instant: bool = False

    @property
    def end_s(self) -> float:
        return self.start_s + self.dur_s


class Tracer:
    """Collects spans with a per-track time cursor.

    Two emission styles coexist:

    * **cursor-driven** (``start=None``): the span starts at the track's
      current cursor and advances it by ``dur`` — sequential layout, used
      by analytic instrumentation (layer costs, solver iterations) that
      has durations but no clock;
    * **clock-driven** (explicit ``start``): the span is pinned at a
      simulated-clock timestamp (plus the tracer's current offset) and the
      cursor only ratchets forward — used by clocked instrumentation
      (DMA engine, register comm, communicator steps).

    The cursor of a track never moves backwards, which is the per-track
    monotonicity invariant the unit tests pin.
    """

    #: Instrumentation sites check this before doing any work.
    enabled: bool = True

    def __init__(self) -> None:
        self.spans: list[Span] = []
        #: Explicit causal edges ``(src, dst, kind)``; see :meth:`edge`.
        self.edges: list[tuple[Span, Span, str]] = []
        self._cursors: dict[str, float] = defaultdict(float)
        self._prefix: list[str] = []
        self._offset: float = 0.0

    # ------------------------------------------------------------------ #
    # track context
    # ------------------------------------------------------------------ #
    def resolve(self, track: str) -> str:
        """Full track path: the current context prefix joined to ``track``.

        A leading ``/`` makes ``track`` absolute (the prefix is ignored).
        """
        if track.startswith("/"):
            return track[1:]
        if not self._prefix:
            return track
        return "/".join(self._prefix) + "/" + track

    @contextmanager
    def context(self, prefix: str) -> Iterator[None]:
        """Prefix all relative tracks emitted inside the block.

        Contexts nest: ``context("rank0")`` then ``context("cg1")`` yields
        tracks like ``rank0/cg1/dma``.
        """
        self._prefix.append(prefix)
        try:
            yield
        finally:
            self._prefix.pop()

    @contextmanager
    def shifted(self, offset_s: float) -> Iterator[None]:
        """Add ``offset_s`` to explicit (clock-driven) start times.

        Lets a session place a clocked phase (e.g. a collective whose
        :class:`SimClock` starts at zero) after an already-emitted compute
        phase on the shared timeline.
        """
        previous = self._offset
        self._offset = previous + float(offset_s)
        try:
            yield
        finally:
            self._offset = previous

    def cursor(self, track: str) -> float:
        """Current cursor (end of the latest span) of a track."""
        return self._cursors[self.resolve(track)]

    def end_time(self) -> float:
        """Latest span end across all tracks (0.0 when empty)."""
        return max(self._cursors.values(), default=0.0)

    # ------------------------------------------------------------------ #
    # emission
    # ------------------------------------------------------------------ #
    def emit(
        self,
        name: str,
        cat: str,
        *,
        track: str = "main",
        start: float | None = None,
        dur: float = 0.0,
        args: Mapping[str, Any] | None = None,
        instant: bool = False,
    ) -> Span:
        """Record one span; see the class docstring for start semantics."""
        dur = float(dur)
        # ``not (dur >= 0)`` is True for NaN, which ``dur < 0`` misses.
        if not (dur >= 0.0) or not math.isfinite(dur):
            raise SpanValidationError(
                f"span {name!r} on track {track!r}: duration must be finite "
                f"and >= 0 (end >= start), got {dur!r}"
            )
        resolved = self.resolve(track)
        if start is None:
            start_s = self._cursors[resolved]
        else:
            start_s = float(start) + self._offset
        if not math.isfinite(start_s):
            raise SpanValidationError(
                f"span {name!r} on track {track!r}: start must be finite, "
                f"got {start_s!r}"
            )
        span = Span(
            name=name,
            cat=cat,
            track=resolved,
            start_s=start_s,
            dur_s=float(dur),
            args=dict(args) if args else None,
            instant=instant,
        )
        self.spans.append(span)
        end = start_s + span.dur_s
        if end > self._cursors[resolved]:
            self._cursors[resolved] = end
        return span

    def edge(self, src: Span, dst: Span, kind: str = "dep") -> None:
        """Record an explicit causal edge: ``dst`` depends on ``src``.

        Instrumentation sites call this where the dependency is *known*
        rather than inferable from track layout — a backward pass gating a
        bucket launch, one collective step feeding the next, a request
        joining a batch. ``kind="dep"`` is a scheduling dependency (the
        critical-path walk follows it; the Chrome export renders it as a
        flow arrow); ``kind="member"`` attaches an ``emit_cost_spans``
        component to its container span.
        """
        if kind not in EDGE_KINDS:
            raise SpanValidationError(
                f"edge kind must be one of {EDGE_KINDS}, got {kind!r}"
            )
        self.edges.append((src, dst, kind))

    def instant_event(
        self,
        name: str,
        cat: str,
        *,
        track: str = "main",
        start: float | None = None,
        args: Mapping[str, Any] | None = None,
    ) -> Span:
        """Record a zero-duration point event."""
        return self.emit(name, cat, track=track, start=start, args=args, instant=True)

    @contextmanager
    def span(
        self,
        name: str,
        cat: str,
        *,
        track: str = "main",
        dur: float | None = None,
        args: Mapping[str, Any] | None = None,
    ) -> Iterator[None]:
        """Cursor-driven nesting: the span covers everything emitted inside.

        The span starts at the track's cursor; children emitted inside the
        block (on the same track or below it) extend the parent, whose
        duration at exit is the cursor advance — unless ``dur`` is given,
        which also ratchets the cursor so siblings follow sequentially.
        """
        resolved = self.resolve(track)
        start = self._cursors[resolved]
        yield
        if dur is None:
            # Children may have advanced deeper tracks; cover them too.
            descendant_end = max(
                (
                    end
                    for t, end in self._cursors.items()
                    if t == resolved or t.startswith(resolved + "/")
                ),
                default=start,
            )
            dur = max(descendant_end - start, 0.0)
        self.emit(name, cat, track="/" + resolved, start=start - self._offset, dur=dur, args=args)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def by_category(self, cat: str) -> list[Span]:
        """All spans of one category, in emission order."""
        return [s for s in self.spans if s.cat == cat]

    def tracks(self) -> list[str]:
        """Sorted list of every track that received a span."""
        return sorted({s.track for s in self.spans})

    def __len__(self) -> int:
        return len(self.spans)


class NullTracer(Tracer):
    """The disabled tracer: every operation is a no-op.

    Instrumentation guards on :attr:`enabled`, so with the null tracer
    installed the per-call cost is one function call and one attribute
    check — and no simulated-time arithmetic ever depends on it.
    """

    enabled = False

    def emit(self, name: str, cat: str, **kwargs: Any) -> Span:  # type: ignore[override]
        raise RuntimeError("NullTracer.emit called; guard instrumentation with `if tracer.enabled`")

    def edge(self, src: Span, dst: Span, kind: str = "dep") -> None:  # type: ignore[override]
        raise RuntimeError("NullTracer.edge called; guard instrumentation with `if tracer.enabled`")

    @contextmanager
    def context(self, prefix: str) -> Iterator[None]:
        yield

    @contextmanager
    def shifted(self, offset_s: float) -> Iterator[None]:
        yield

    @contextmanager
    def span(self, name: str, cat: str, **kwargs: Any) -> Iterator[None]:
        yield


def emit_cost_spans(
    tracer: Tracer,
    name: str,
    cost: Any,
    *,
    cat: str = "plan_cost",
    track: str = "layers",
    args: Mapping[str, Any] | None = None,
) -> Span | None:
    """Emit a priced invocation as a parent span plus component children.

    ``cost`` is any :class:`~repro.kernels.plan.PlanCost`-shaped object
    (``compute_s`` / ``dma_s`` / ``rlc_s`` / ``total_s`` / ``flops`` /
    ``dma_bytes``). The parent lands on ``track`` at its cursor; the
    compute/DMA/RLC components land on the sibling resource tracks
    (``cpe``, ``dma``, ``rlc``) pinned at the parent's start — they overlap
    each other, which is exactly the dual-pipeline rule
    (``total = max(compute, dma, rlc) + overhead``) made visible.
    """
    if not tracer.enabled:
        return None
    start = tracer.cursor(track)
    merged: dict[str, Any] = {
        "flops": cost.flops,
        "dma_bytes": cost.dma_bytes,
        "overhead_s": cost.overhead_s,
    }
    if args:
        merged.update(args)
    parent = tracer.emit(name, cat, track=track, dur=cost.total_s, args=merged)
    components = (
        ("cpe", "cpe_compute", cost.compute_s, {"flops": cost.flops}),
        ("dma", "dma_transfer", cost.dma_s, {"bytes": cost.dma_bytes}),
        ("rlc", "rlc_exchange", cost.rlc_s, {}),
    )
    for comp_track, comp_cat, dur, extra in components:
        if dur > 0:
            comp = tracer.emit(
                name,
                comp_cat,
                track=comp_track,
                start=start - tracer._offset,
                dur=dur,
                args={"of": cat, **extra},
            )
            tracer.edge(comp, parent, kind="member")
    return parent


#: Shared disabled tracer; identity-compared by tests.
NULL_TRACER = NullTracer()

_active: Tracer = NULL_TRACER


def active() -> Tracer:
    """The ambient tracer (the shared :data:`NULL_TRACER` when disabled)."""
    return _active


def install(tracer: Tracer) -> Tracer:
    """Make ``tracer`` ambient; returns the previously installed one."""
    global _active
    previous = _active
    _active = tracer
    return previous


@contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Enable tracing for the block; yields the (possibly new) tracer."""
    tr = tracer if tracer is not None else Tracer()
    previous = install(tr)
    try:
        yield tr
    finally:
        install(previous)


@contextmanager
def suspended() -> Iterator[None]:
    """Temporarily disable tracing (e.g. around plan-search churn)."""
    previous = install(NULL_TRACER)
    try:
        yield
    finally:
        install(previous)
