"""Extension: data-parallel vs pipeline vs hybrid at scale.

The paper's own scaling data (figs. 10/11) shows data-parallel VGG going
communication-bound: the gradient payload is the full model, and even the
bucketed-overlap extension only hides part of it. This harness prices the
alternatives head-to-head at n ∈ {4, 16, 64} nodes under the same
weak-scaling frame and the same calibrated cost curves:

* **DP (fused)** — the paper's synchronous SGD, one full-model allreduce;
* **DP (bucketed)** — the PR-5 overlap-aware baseline (32 MB buckets);
* **pipeline** — pure pipeline, ``S = n`` stages (capped at the layer
  count), boundary activations only, no gradient allreduce;
* **hybrid** — ``S = 4`` stages × ``R = n/4`` replicas, per-stage-group
  bucketed allreduces overlapped with the drain.

The table reports iteration seconds and the exposed-communication
fraction. The committed expectation (pinned by the bubble benchmark):
hybrid VGG-16 at 16 nodes exposes a *lower* comm fraction than the
bucketed DP baseline, and beats fused DP end-to-end — while pure
pipeline at large S is throttled by stage imbalance (the fattest conv
layer bounds the bottleneck stage), which is exactly why hybrid exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.frame.model_zoo import vgg
from repro.parallel.ssgd import SSGDIterationModel
from repro.perf.layer_cost import net_iteration_time
from repro.pipeline.model import PipelineIterationModel
from repro.pipeline.partition import plan_stages
from repro.utils.tables import Table

NODE_COUNTS = (4, 16, 64)
#: Hybrid stage depth (replicas make up the rest of the allocation).
HYBRID_STAGES = 4
MICROBATCHES = 16
BUCKET_MB = 32.0
SUB_BATCH = 8


@dataclass(frozen=True)
class ComparePoint:
    """One (mode, node-count) sample of the comparison.

    ``n_nodes`` is the requested allocation; ``n_stages * replicas`` is
    what the mode actually uses (pure pipeline caps stages at the layer
    count, so it may underfill large allocations — that *is* the
    scaling-limit finding).
    """

    mode: str
    n_nodes: int
    n_stages: int
    replicas: int
    iteration_s: float
    comm_fraction: float
    bubble_frac: float


@lru_cache(maxsize=1)
def _vgg_inputs():
    net = vgg.build_vgg16(batch_size=SUB_BATCH)
    return net, net_iteration_time(net, "sw26010"), float(net.param_bytes())


def generate(
    net=None,
    *,
    node_counts: tuple[int, ...] = NODE_COUNTS,
    n_microbatches: int = MICROBATCHES,
    hybrid_stages: int = HYBRID_STAGES,
    bucket_mb: float = BUCKET_MB,
) -> list[ComparePoint]:
    """All comparison samples (``net=None`` builds the VGG-16 config)."""
    if net is None:
        net, compute_s, model_bytes = _vgg_inputs()
    else:
        compute_s = net_iteration_time(net, "sw26010")
        model_bytes = float(net.param_bytes())
    dp_fused = SSGDIterationModel(compute_s=compute_s, model_bytes=model_bytes)
    dp_bucketed = SSGDIterationModel(
        compute_s=compute_s, model_bytes=model_bytes, bucket_mb=bucket_mb
    )
    points: list[ComparePoint] = []
    for n in node_counts:
        for mode, model in (("dp-fused", dp_fused), ("dp-bucketed", dp_bucketed)):
            bd = model.breakdown(n)
            points.append(
                ComparePoint(mode, n, 1, n, bd.total_s, bd.comm_fraction, 0.0)
            )
        pure_stages = min(n, len(net.layers))
        for mode, stages, replicas in (
            ("pipeline", pure_stages, 1),
            ("hybrid", min(hybrid_stages, n), n // min(hybrid_stages, n)),
        ):
            plan = plan_stages(net, stages)
            model = PipelineIterationModel(
                plan,
                n_microbatches=n_microbatches,
                replicas=replicas,
                bucket_mb=bucket_mb,
            )
            bd = model.breakdown()
            points.append(
                ComparePoint(
                    mode,
                    n,
                    stages,
                    replicas,
                    bd.total_s,
                    bd.comm_fraction,
                    bd.bubble_frac,
                )
            )
    return points


def render(points: list[ComparePoint] | None = None) -> str:
    points = points if points is not None else generate()
    modes = ("dp-fused", "dp-bucketed", "pipeline", "hybrid")
    table = Table(
        headers=["nodes"]
        + [h for m in modes for h in (f"{m} (s)", f"{m} comm%")],
        title=(
            f"Extension: DP vs pipeline vs hybrid, VGG-16 B={SUB_BATCH}, "
            f"M={MICROBATCHES} (SxR in notes)"
        ),
    )
    node_counts = sorted({p.n_nodes for p in points})
    for n in node_counts:
        row: list[object] = [n]
        for mode in modes:
            candidates = [p for p in points if p.mode == mode and p.n_nodes == n]
            if not candidates:
                row.extend(["-", "-"])
                continue
            (pt,) = candidates
            row.append(round(pt.iteration_s, 3))
            row.append(round(100.0 * pt.comm_fraction, 1))
        table.add_row(*row)
    notes = [
        "",
        "notes:",
    ]
    for p in points:
        if p.mode in ("pipeline", "hybrid"):
            notes.append(
                f"  {p.mode} @ {p.n_nodes} nodes: S={p.n_stages} x "
                f"R={p.replicas}, bubble {100 * p.bubble_frac:.1f}%"
            )
    return table.render() + "\n".join(notes)
