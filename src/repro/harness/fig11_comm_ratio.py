"""Fig. 11: communication time fraction during scaled training.

Same sweep as Fig. 10, reporting the allreduce share of each iteration.
"""

from __future__ import annotations

from repro.harness.fig10_scalability import CONFIGS, generate
from repro.parallel.scaling import PAPER_NODE_COUNTS, ScalingPoint
from repro.utils.tables import Table


def render(points: list[ScalingPoint] | None = None) -> str:
    points = points if points is not None else generate()
    labels = [c[0] for c in CONFIGS]
    table = Table(
        headers=["nodes"] + labels,
        title="Fig. 11: communication time fraction (%) vs number of nodes",
    )
    for n in PAPER_NODE_COUNTS:
        row = [n]
        for label in labels:
            (pt,) = [p for p in points if p.label == label and p.n_nodes == n]
            row.append(round(100 * pt.comm_fraction, 2))
        table.add_row(*row)
    return table.render()


def main() -> None:  # pragma: no cover
    print(render())


if __name__ == "__main__":  # pragma: no cover
    main()
