"""Fig. 11: communication time fraction during scaled training.

Same sweep as Fig. 10, reporting the allreduce share of each iteration.
``--bucket-mb`` re-runs the sweep with the overlap-aware bucketed
allreduce model and prints the exposed-comm fractions side by side with
the fused baseline — bucketing hides bucket transfers behind the tail of
backward, so the exposed fraction drops where comm matters (16+ nodes).
"""

from __future__ import annotations

from repro.harness.fig10_scalability import CONFIGS, generate
from repro.parallel.scaling import PAPER_NODE_COUNTS, ScalingPoint
from repro.utils.tables import Table


def render(points: list[ScalingPoint] | None = None, title: str | None = None) -> str:
    points = points if points is not None else generate()
    labels = [c[0] for c in CONFIGS]
    table = Table(
        headers=["nodes"] + labels,
        title=title
        or "Fig. 11: communication time fraction (%) vs number of nodes",
    )
    for n in PAPER_NODE_COUNTS:
        row = [n]
        for label in labels:
            (pt,) = [p for p in points if p.label == label and p.n_nodes == n]
            row.append(round(100 * pt.comm_fraction, 2))
        table.add_row(*row)
    return table.render()


def render_overlap(bucket_mb: float) -> str:
    """Fused vs bucketed comm fractions, plus the hidden-time column."""
    fused = generate()
    bucketed = generate(bucket_mb=bucket_mb)
    out = [
        render(fused, title="Fig. 11 (fused): comm fraction (%)"),
        render(
            bucketed,
            title=f"Fig. 11 (bucketed, {bucket_mb:g} MB): exposed comm fraction (%)",
        ),
    ]
    table = Table(
        headers=["nodes"] + [c[0] for c in CONFIGS],
        title="Allreduce time hidden behind backward (ms/iteration)",
    )
    for n in PAPER_NODE_COUNTS:
        row = [n]
        for label, _, _ in CONFIGS:
            (pt,) = [p for p in bucketed if p.label == label and p.n_nodes == n]
            row.append(round(1e3 * pt.overlap_hidden_s, 3))
        table.add_row(*row)
    out.append(table.render())
    return "\n\n".join(out)


def main(argv: list[str] | None = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description="Fig. 11 comm-fraction study")
    parser.add_argument(
        "--bucket-mb", type=float, default=None, metavar="MB",
        help="also run the overlap-aware bucketed allreduce model with "
        "this bucket size bound and compare against the fused baseline",
    )
    ns = parser.parse_args(argv)
    if ns.bucket_mb is not None:
        print(render_overlap(ns.bucket_mb))
    else:
        print(render())


if __name__ == "__main__":  # pragma: no cover
    main()
