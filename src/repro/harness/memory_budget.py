"""Extension: per-network memory footprints at the paper's batch sizes.

Explains Table III's batch choices: every configuration fits one core
group's 8 GB, and the next power of two would not (for the activation-heavy
networks). Also reports the im2col workspace the explicit conv plan needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frame.model_zoo import PAPER_NETWORKS
from repro.hw.spec import SW_PARAMS
from repro.perf.memory import MemoryFootprint, net_memory_footprint
from repro.utils.tables import Table


@dataclass(frozen=True)
class MemoryRow:
    """One network's footprint at its paper batch and at double batch."""

    network: str
    batch: int
    footprint: MemoryFootprint
    doubled_fits: bool


def generate(networks: dict | None = None) -> list[MemoryRow]:
    """Footprints for every configured network."""
    networks = networks if networks is not None else PAPER_NETWORKS
    rows = []
    for name, (builder, batch) in networks.items():
        fp = net_memory_footprint(builder(batch_size=batch))
        doubled = net_memory_footprint(builder(batch_size=2 * batch))
        rows.append(
            MemoryRow(
                network=name, batch=batch, footprint=fp,
                doubled_fits=doubled.fits(),
            )
        )
    return rows


def render(rows: list[MemoryRow] | None = None) -> str:
    rows = rows if rows is not None else generate()
    cap = SW_PARAMS.mem_per_cg_bytes / 1024**3
    table = Table(
        headers=[
            "network", "batch", "params(GB)", "activations(GB)",
            "workspace(GB)", "total(GB)", "fits 8GB", "2x batch fits",
        ],
        title=f"Extension: per-CG training memory (capacity {cap:.0f} GiB)",
    )
    for r in rows:
        fp = r.footprint
        table.add_row(
            r.network, r.batch,
            round((fp.params_bytes + fp.solver_bytes) / 1e9, 2),
            round(fp.activation_bytes / 1e9, 2),
            round(fp.workspace_bytes / 1e9, 2),
            round(fp.total_bytes / 1e9, 2),
            fp.fits(), r.doubled_fits,
        )
    return table.render()


def main() -> None:  # pragma: no cover
    print(render())


if __name__ == "__main__":  # pragma: no cover
    main()
