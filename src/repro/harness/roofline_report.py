"""Extension: roofline attribution of the paper's workload networks.

Classifies every layer of AlexNet and VGG-16 (the networks behind Figs. 8/9
and Table III) as compute-, DMA- or RLC-bound on one SW26010 core group,
with its achieved fraction of the binding resource's ceiling. The summary
line per network answers the question the paper's per-layer figures imply:
where does the simulated time actually go, and which resource would an
optimisation have to attack first?
"""

from __future__ import annotations

from repro.frame.model_zoo import alexnet, vgg
from repro.metrics.roofline import LayerRoofline, net_roofline, render_roofline

#: (title, builder, batch) — the Table III operating points.
NETWORKS = (
    ("AlexNet", alexnet.build, 256),
    ("VGG-16", vgg.build_vgg16, 64),
)


def generate() -> dict[str, list[LayerRoofline]]:
    """Per-layer roofline rows for every report network."""
    out: dict[str, list[LayerRoofline]] = {}
    for title, builder, batch in NETWORKS:
        net = builder(batch_size=batch)
        out[title] = net_roofline(net)
    return out


def render(rows: dict[str, list[LayerRoofline]] | None = None) -> str:
    rows = rows if rows is not None else generate()
    return "\n\n".join(
        render_roofline(layers, title=f"{title} roofline attribution (batch={batch})")
        for (title, _, batch), layers in zip(NETWORKS, rows.values())
    )


def main() -> None:  # pragma: no cover
    print(render())


if __name__ == "__main__":  # pragma: no cover
    main()
