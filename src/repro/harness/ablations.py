"""Ablations of the design choices called out in DESIGN.md.

1. Topology-aware rank renumbering vs MPICH block numbering vs ring.
2. Gradient packing vs per-layer allreduce.
3. Plan autotuning vs fixed explicit / fixed implicit plans.
4. CPE-cluster reduction vs MPE reduction inside the allreduce.
5. Striped parallel I/O vs single-split.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanError
from repro.frame.model_zoo import vgg
from repro.harness.table2_vgg_conv import VGG16_CONVS
from repro.io import DiskArrayModel, StripingPolicy
from repro.kernels.autotune import ConvConfig, select_conv_plan
from repro.kernels.conv_explicit import ExplicitConvPlan
from repro.kernels.conv_implicit import ImplicitConvPlan
from repro.parallel.packing import GradientPacker
from repro.parallel.ssgd import SSGDIterationModel
from repro.simmpi.collectives.analysis import stepwise_rhd_cost
from repro.simmpi.comm import reduce_gamma
from repro.topology.cost_model import SW_COLLECTIVE_NETWORK
from repro.utils.units import MB


@dataclass(frozen=True)
class AblationResult:
    """One ablation comparison: baseline vs swCaffe's choice."""

    name: str
    baseline_label: str
    baseline_value: float
    improved_label: str
    improved_value: float

    @property
    def gain(self) -> float:
        """baseline / improved (>1 means the design choice pays off)."""
        return self.baseline_value / self.improved_value


def allreduce_placement_ablation(
    model_bytes: float = 232.6e6, p: int = 1024, q: int = 256
) -> AblationResult:
    """Round-robin renumbering vs block numbering at the Fig. 10 scale."""
    gamma = reduce_gamma("cpe")
    block = stepwise_rhd_cost(model_bytes, p, q, SW_COLLECTIVE_NETWORK, gamma, "block")
    rr = stepwise_rhd_cost(model_bytes, p, q, SW_COLLECTIVE_NETWORK, gamma, "round-robin")
    return AblationResult(
        name="allreduce placement",
        baseline_label="block (MPICH)",
        baseline_value=block,
        improved_label="round-robin (swCaffe)",
        improved_value=rr,
    )


def reduce_engine_ablation(
    model_bytes: float = 232.6e6, p: int = 1024, q: int = 256
) -> AblationResult:
    """Summing gathered gradients on the MPE vs the four CPE clusters."""
    mpe = stepwise_rhd_cost(
        model_bytes, p, q, SW_COLLECTIVE_NETWORK, reduce_gamma("mpe"), "round-robin"
    )
    cpe = stepwise_rhd_cost(
        model_bytes, p, q, SW_COLLECTIVE_NETWORK, reduce_gamma("cpe"), "round-robin"
    )
    return AblationResult(
        name="reduction engine",
        baseline_label="MPE sum",
        baseline_value=mpe,
        improved_label="CPE-cluster sum",
        improved_value=cpe,
    )


def packing_ablation(p: int = 1024, q: int = 256) -> AblationResult:
    """One fused allreduce of VGG-16's gradients vs one per layer."""
    net = vgg.build_vgg16(batch_size=1)
    packer = GradientPacker(net.params)
    gamma = reduce_gamma("cpe")

    def cost(nbytes: float) -> float:
        return stepwise_rhd_cost(
            max(float(nbytes), 8.0 * p), p, q, SW_COLLECTIVE_NETWORK, gamma, "round-robin"
        )

    return AblationResult(
        name="gradient packing",
        baseline_label="per-layer allreduce",
        baseline_value=packer.allreduce_time_per_layer(cost),
        improved_label="packed allreduce",
        improved_value=packer.allreduce_time_packed(cost),
    )


def autotune_ablation(batch: int = 128) -> AblationResult:
    """Autotuned plan choice vs always-explicit over VGG-16's conv layers.

    (Always-implicit is not a valid baseline: several layers have no
    implicit plan at all.)
    """
    tuned = 0.0
    always_explicit = 0.0
    for _, ni, no, img in VGG16_CONVS:
        cfg = ConvConfig(batch=batch, ni=ni, no=no, height=img, width=img, k=3, pad=1)
        explicit = ExplicitConvPlan(batch, ni, no, img, img, 3, 1, 1)
        for direction, method in (
            ("forward", "cost_forward"),
            ("backward_weight", "cost_backward_weight"),
        ):
            tuned += select_conv_plan(cfg, direction).cost.total_s
            always_explicit += getattr(explicit, method)().total_s
    return AblationResult(
        name="plan autotuning",
        baseline_label="always explicit",
        baseline_value=always_explicit,
        improved_label="autotuned",
        improved_value=tuned,
    )


def conv_domain_ablation(batch: int = 128) -> AblationResult:
    """Time-domain (GEMM) vs frequency-domain (FFT) convolution, summed
    over the VGG-16 forward layers where both apply (stride 1)."""
    from repro.kernels.conv_fft import FFTConvPlan

    fft_total = 0.0
    time_total = 0.0
    for _, ni, no, img in VGG16_CONVS:
        cfg = ConvConfig(batch=batch, ni=ni, no=no, height=img, width=img, k=3, pad=1)
        time_total += select_conv_plan(cfg, "forward").cost.total_s
        fft_total += FFTConvPlan(batch, ni, no, img, img, 3, 1, 1).cost_forward().total_s
    return AblationResult(
        name="convolution domain",
        baseline_label="frequency-domain (FFT)",
        baseline_value=fft_total,
        improved_label="time-domain GEMM (swCaffe)",
        improved_value=time_total,
    )


def sync_scheme_ablation(
    model_bytes: float = 232.6e6, p: int = 1024, n_servers: int = 16
) -> AblationResult:
    """Parameter-server vs allreduce synchronization (Sec. V-A's first
    design decision: the PS scheme's single-NIC ingestion loses)."""
    from repro.parallel.param_server import ParameterServerModel

    ps = ParameterServerModel(model_bytes=model_bytes, n_servers=n_servers)
    gamma = reduce_gamma("cpe")
    allreduce = stepwise_rhd_cost(
        model_bytes, p, 256, SW_COLLECTIVE_NETWORK, gamma, "round-robin"
    )
    return AblationResult(
        name="sync scheme",
        baseline_label=f"parameter server ({n_servers} servers)",
        baseline_value=ps.sync_time(p),
        improved_label="topology-aware allreduce",
        improved_value=allreduce,
    )


def overlap_ablation(
    compute_s: float = 256 / 94.17,
    model_bytes: float = 232.6e6,
    p: int = 1024,
    bucket_mb: float = 96.0,
) -> AblationResult:
    """Fused end-of-backward allreduce vs overlap-aware bucketed launches.

    Compares the *exposed* allreduce seconds of one SSGD iteration at the
    Fig. 10 scale: the fused path pays the whole collective after backward,
    the bucketed path hides bucket transfers behind the backward window.
    """
    import dataclasses

    fused = SSGDIterationModel(compute_s=compute_s, model_bytes=model_bytes)
    bucketed = dataclasses.replace(fused, bucket_mb=bucket_mb)
    return AblationResult(
        name="comm overlap",
        baseline_label="fused (post-backward)",
        baseline_value=fused.breakdown(p).allreduce_s,
        improved_label=f"bucketed ({bucket_mb:g} MB, overlapped)",
        improved_value=bucketed.breakdown(p).allreduce_s,
    )


def io_striping_ablation(n_processes: int = 1024) -> AblationResult:
    """32x256 MB round-robin striping vs single-split layout."""
    disk = DiskArrayModel()
    batch_bytes = 192 * MB
    return AblationResult(
        name="parallel I/O striping",
        baseline_label="single-split",
        baseline_value=disk.read_time(n_processes, batch_bytes, StripingPolicy.single_split()),
        improved_label="32 x 256 MB stripes",
        improved_value=disk.read_time(n_processes, batch_bytes, StripingPolicy.swcaffe()),
    )


def generate() -> list[AblationResult]:
    """All ablations (the packing one builds VGG-16 and takes a moment)."""
    return [
        allreduce_placement_ablation(),
        reduce_engine_ablation(),
        packing_ablation(),
        autotune_ablation(),
        conv_domain_ablation(),
        sync_scheme_ablation(),
        overlap_ablation(),
        io_striping_ablation(),
    ]


def render(results: list[AblationResult] | None = None) -> str:
    from repro.utils.tables import Table

    results = results if results is not None else generate()
    table = Table(
        headers=["ablation", "baseline", "t_base(s)", "swCaffe choice", "t_sw(s)", "gain"],
        title="Design-choice ablations",
    )
    for r in results:
        table.add_row(
            r.name, r.baseline_label, r.baseline_value,
            r.improved_label, r.improved_value, f"{r.gain:.2f}x",
        )
    return table.render()


def main() -> None:  # pragma: no cover
    print(render())


if __name__ == "__main__":  # pragma: no cover
    main()
