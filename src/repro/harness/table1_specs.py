"""Table I: comparison of SW26010, NVIDIA K40m and Intel KNL."""

from __future__ import annotations

from repro.hw.spec import K40M_SPEC, KNL_SPEC, SW26010_SPEC, ProcessorSpec
from repro.utils.tables import Table
from repro.utils.units import GB

#: The three processors the paper tabulates.
PROCESSORS: tuple[ProcessorSpec, ...] = (SW26010_SPEC, K40M_SPEC, KNL_SPEC)


def generate() -> list[dict[str, float | str | int]]:
    """Rows of Table I plus the machine-balance column the text derives."""
    rows = []
    for spec in PROCESSORS:
        rows.append(
            {
                "name": spec.name,
                "release_year": spec.release_year,
                "bandwidth_gbs": spec.mem_bandwidth / GB,
                "float_tflops": spec.peak_single / 1e12,
                "double_tflops": spec.peak_double / 1e12,
                "flop_per_byte": spec.flop_per_byte_single,
            }
        )
    return rows


def render(rows: list[dict] | None = None) -> str:
    """Paper-style table."""
    rows = rows if rows is not None else generate()
    table = Table(
        headers=[
            "Specifications", "Release Year", "Bandwidth(GB/s)",
            "float perf. (TFlops)", "double perf. (TFlops)", "flop/byte",
        ],
        title="Table I: SW26010 vs NVIDIA K40m vs Intel KNL",
    )
    for r in rows:
        table.add_row(
            r["name"], r["release_year"], r["bandwidth_gbs"],
            r["float_tflops"], r["double_tflops"], round(r["flop_per_byte"], 2),
        )
    return table.render()


def main() -> None:  # pragma: no cover
    print(render())


if __name__ == "__main__":  # pragma: no cover
    main()
