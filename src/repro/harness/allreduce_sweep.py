"""Extension: allreduce algorithm sweep over message sizes.

Complements Fig. 7: for a fixed 64-node / 4-supernode allocation, sweeps
the gradient payload from 1 KB to 64 MB and reports each algorithm's
simulated time — showing the latency-vs-bandwidth regimes (ring's p*alpha
penalty, the tree's log(p)-times-n bandwidth penalty, RHD's balance) and
the constant factor the round-robin renumbering removes at every size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simmpi import (
    SimComm,
    binomial_allreduce,
    block_placement,
    rhd_allreduce,
    ring_allreduce,
    round_robin_placement,
)
from repro.topology import LinearCostModel, TaihuLightFabric
from repro.utils.tables import Table

P, Q = 64, 16
MODEL = LinearCostModel(alpha=1e-6, beta1=1 / 10e9, beta2=4 / 10e9, gamma=3e-11)
SIZES = tuple(1024 * 4**i for i in range(9))  # 1 KB .. 64 MB

ALGOS = (
    ("ring", ring_allreduce, "block"),
    ("binomial", binomial_allreduce, "block"),
    ("rhd (block)", rhd_allreduce, "block"),
    ("rhd (round-robin)", rhd_allreduce, "round-robin"),
)


@dataclass(frozen=True)
class SweepPoint:
    algorithm: str
    nbytes: int
    time_s: float


def generate(sizes: tuple[int, ...] = SIZES) -> list[SweepPoint]:
    """Time every algorithm at every payload size (executed, not analytic)."""
    fabric = TaihuLightFabric(n_nodes=P, nodes_per_supernode=Q)
    rng = np.random.default_rng(0)
    points = []
    for nbytes in sizes:
        n_elems = max(P, nbytes // 8)
        base = [rng.normal(size=n_elems) for _ in range(P)]
        for name, algo, placement in ALGOS:
            pl = (
                block_placement(P, Q)
                if placement == "block"
                else round_robin_placement(P, Q)
            )
            comm = SimComm(fabric, pl, cost=MODEL)
            bufs = [b.copy() for b in base]
            result = algo(comm, bufs)
            points.append(SweepPoint(name, nbytes, result.time_s))
    return points


def render(points: list[SweepPoint] | None = None) -> str:
    points = points if points is not None else generate()
    names = [a[0] for a in ALGOS]
    sizes = sorted({p.nbytes for p in points})
    table = Table(
        headers=["bytes"] + names,
        title=f"Extension: allreduce sweep, {P} nodes in {P // Q} supernodes (us)",
    )
    lookup = {(p.algorithm, p.nbytes): p.time_s for p in points}
    for n in sizes:
        table.add_row(n, *(round(lookup[(name, n)] * 1e6, 1) for name in names))
    return table.render()


def main() -> None:  # pragma: no cover
    print(render())


if __name__ == "__main__":  # pragma: no cover
    main()
