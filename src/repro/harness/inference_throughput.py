"""Extension: forward-only (inference) throughput on all three devices.

The paper evaluates training throughput (Table III); deployment cares
about inference. Same engine, forward pass only — and a different winner
profile: without backward's GEMM-heavy weight gradients, the
bandwidth-bound layers weigh more and SW26010's standing degrades slightly
on every network.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frame.model_zoo import PAPER_NETWORKS
from repro.perf.layer_cost import net_layer_timings
from repro.utils.tables import Table


@dataclass(frozen=True)
class InferenceRow:
    """Forward-only img/s per device for one network."""

    network: str
    batch: int
    cpu_img_s: float
    gpu_img_s: float
    sw_img_s: float

    @property
    def sw_over_gpu(self) -> float:
        return self.sw_img_s / self.gpu_img_s


def _forward_time(net, device: str) -> float:
    return sum(t.forward_s for t in net_layer_timings(net, device))


def generate(networks: dict | None = None) -> list[InferenceRow]:
    """Forward-only throughput for every configured network."""
    networks = networks if networks is not None else PAPER_NETWORKS
    rows = []
    for name, (builder, batch) in networks.items():
        net = builder(batch_size=batch)
        net.set_phase("test")
        rows.append(
            InferenceRow(
                network=name,
                batch=batch,
                cpu_img_s=batch / _forward_time(net, "cpu"),
                gpu_img_s=batch / _forward_time(net, "k40m"),
                sw_img_s=batch / _forward_time(net, "sw26010"),
            )
        )
    return rows


def render(rows: list[InferenceRow] | None = None) -> str:
    rows = rows if rows is not None else generate()
    table = Table(
        headers=["network", "batch", "CPU", "NV K40m", "SW", "SW/NV"],
        title="Extension: inference (forward-only) throughput (img/sec)",
    )
    for r in rows:
        table.add_row(
            r.network, r.batch,
            round(r.cpu_img_s, 2), round(r.gpu_img_s, 2), round(r.sw_img_s, 2),
            round(r.sw_over_gpu, 2),
        )
    return table.render()


def main() -> None:  # pragma: no cover
    print(render())


if __name__ == "__main__":  # pragma: no cover
    main()
