"""Fig. 10: weak-scaling speedup of swCaffe to 1024 nodes.

Configurations follow the paper: AlexNet with sub-mini-batch 64/128/256 and
ResNet-50 with 32/64. Node-local compute time comes from the SW26010 layer
plans (the same engine behind Table III), the gradient payload from the
actual nets, and the allreduce from the topology-aware stepwise cost over
the calibrated collective network curve.
"""

from __future__ import annotations

import dataclasses
from functools import lru_cache

from repro.frame.model_zoo import alexnet, resnet
from repro.parallel.scaling import PAPER_NODE_COUNTS, ScalingPoint, ScalingStudy
from repro.parallel.ssgd import SSGDIterationModel
from repro.perf.layer_cost import net_iteration_time
from repro.utils.tables import Table

#: (label, builder, sub-mini-batch) for every curve in the figure.
CONFIGS = (
    ("AlexNet, B=64", alexnet.build, 64),
    ("AlexNet, B=128", alexnet.build, 128),
    ("AlexNet, B=256", alexnet.build, 256),
    ("ResNet50, B=32", resnet.build_resnet50, 32),
    ("ResNet50, B=64", resnet.build_resnet50, 64),
)


@lru_cache(maxsize=None)
def _iteration_model(label: str) -> SSGDIterationModel:
    for name, builder, batch in CONFIGS:
        if name == label:
            net = builder(batch_size=batch)
            return SSGDIterationModel(
                compute_s=net_iteration_time(net, "sw26010"),
                model_bytes=net.param_bytes(),
            )
    raise KeyError(label)


def build_study(
    bucket_mb: float | None = None, backward_frac: float = 2.0 / 3.0
) -> ScalingStudy:
    """The full Fig. 10/11 study object.

    ``bucket_mb`` switches every config to the overlap-aware bucketed
    allreduce model (``None`` keeps the fused path — the paper's
    numbers). The cached base models are never mutated.
    """
    study = ScalingStudy()
    for label, _, _ in CONFIGS:
        model = _iteration_model(label)
        if bucket_mb is not None:
            model = dataclasses.replace(
                model, bucket_mb=bucket_mb, backward_frac=backward_frac
            )
        study.add_config(label, model)
    return study


def generate(bucket_mb: float | None = None) -> list[ScalingPoint]:
    """All (config, node-count) speedup/comm-fraction samples."""
    return build_study(bucket_mb=bucket_mb).run()


def render(points: list[ScalingPoint] | None = None) -> str:
    points = points if points is not None else generate()
    labels = [c[0] for c in CONFIGS]
    table = Table(
        headers=["nodes"] + labels,
        title="Fig. 10: weak-scaling speedup vs number of nodes",
    )
    for n in PAPER_NODE_COUNTS:
        row = [n]
        for label in labels:
            (pt,) = [p for p in points if p.label == label and p.n_nodes == n]
            row.append(round(pt.speedup, 2))
        table.add_row(*row)
    from repro.utils.ascii_plot import PlotSeries, ascii_plot

    series = [
        PlotSeries(
            label=label,
            x=tuple(p.n_nodes for p in points if p.label == label),
            y=tuple(p.speedup for p in points if p.label == label),
        )
        for label in labels
    ]
    plot = ascii_plot(
        series,
        logx=True,
        logy=True,
        title="(log-log, like the paper's axes)",
        xlabel="nodes",
        ylabel="speedup",
    )
    return table.render() + "\n\n" + plot


def whatif_tracer(
    label: str, n_nodes: int, bucket_mb: float | None = None
):
    """One config's iteration as a critical-path-ready trace.

    Builds a minimal tracer straight from the analytic
    :class:`~repro.parallel.ssgd.OverlapSchedule`: one node-compute span
    over ``[0, barrier]`` plus one ``collective_service`` span per
    allreduce launch (serially chained, floored at its ``ready_s``), each
    carrying the same hidden/exposed split the trainer's nonblocking
    queue reports through ``comm.overlap_hidden_s`` /
    ``comm.overlap_exposed_s``. The critical-path walk over this trace
    therefore attributes *exactly* the schedule's exposed collective
    time. Returns ``(tracer, schedule)``.
    """
    from repro.trace.tracer import Tracer

    model = _iteration_model(label)
    if bucket_mb is not None:
        model = dataclasses.replace(model, bucket_mb=bucket_mb)
    node = model.runner.iteration_time(model.compute_s, model.model_bytes)
    compute = node.compute_s + node.sync_s
    sched = model.overlap_schedule(n_nodes, compute)
    tracer = Tracer()
    tracer.emit(
        "forward+backward", "cpe_compute", track="node/cpe",
        start=0.0, dur=compute, args={"config": label, "nodes": n_nodes},
    )
    prev = None
    for idx in range(sched.n_launches):
        start, comm = sched.start_s[idx], sched.comm_s[idx]
        # Same per-launch clamp as OverlapSchedule.hidden_s, so the
        # trace's exposed_s args sum to the schedule's exposed_s exactly.
        hidden = max(0.0, min(start + comm, sched.barrier_s) - start)
        span = tracer.emit(
            f"allreduce launch{idx}", "collective_service",
            track="comm/fabric", start=start, dur=comm,
            args={
                "ready_s": sched.ready_s[idx],
                "merged": sched.merged[idx],
                "hidden_s": hidden,
                "exposed_s": comm - hidden,
            },
        )
        if prev is not None:
            tracer.edge(prev, span)
        prev = span
    return tracer, sched


def render_whatif(
    label: str,
    n_nodes: int,
    scales: list[str] | None = None,
    bucket_mb: float | None = None,
) -> str:
    """The ``--whatif`` summary: critical path + projections of one config."""
    from repro.trace.critpath import build_graph, critical_path, render_critpath
    from repro.trace.whatif import parse_scales, project
    from repro.utils.units import format_time

    tracer, sched = whatif_tracer(label, n_nodes, bucket_mb=bucket_mb)
    graph = build_graph(tracer)
    report = critical_path(graph)
    lines = [
        f"critical path of {label!r} at {n_nodes} nodes "
        f"({sched.n_buckets} bucket(s), {sched.n_launches} launch(es)):",
        render_critpath(report),
        f"schedule exposed collective: {format_time(sched.exposed_s)} "
        f"(hidden {format_time(sched.hidden_s)}) — the on-path attribution "
        f"above matches it by construction",
    ]
    # Launch floors are recorded release times (they do not scale), so
    # the collective class is the meaningful default knob here.
    for item in scales or ("collective=0.5", "collective=2.0"):
        factors = parse_scales([item] if isinstance(item, str) else item)
        proj = project(graph, factors)
        lines.append(
            f"what-if {item}: {format_time(proj.baseline_s)} -> "
            f"{format_time(proj.projected_s)} ({proj.speedup:.3f}x)"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> None:
    """CLI entry; ``--trace FILE`` exports a per-rank timeline of one config.

    The scaling table itself is analytic; the trace drills into one
    configuration (``--config``, default "AlexNet, B=128") at a small rank
    count (``--ranks``), emitting every rank's layer/DMA/RLC spans and the
    gradient allreduce steps. ``--whatif`` prints the critical-path
    attribution of one config at ``--nodes`` nodes (built from the same
    overlap schedule that prices the figure) plus projected end-to-end
    times under ``--scale CLASS=FACTOR`` cost scalings.
    """
    import argparse

    parser = argparse.ArgumentParser(description="Fig. 10 weak-scaling study")
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write Chrome trace-event JSON of one config's iteration",
    )
    parser.add_argument(
        "--config", default="AlexNet, B=128", choices=[c[0] for c in CONFIGS],
        help="which curve to trace",
    )
    parser.add_argument("--ranks", type=int, default=8, help="ranks to trace")
    parser.add_argument(
        "--whatif", action="store_true",
        help="print the critical-path / what-if summary of --config",
    )
    parser.add_argument(
        "--nodes", type=int, default=16,
        help="node count for the --whatif critical path (default 16)",
    )
    parser.add_argument(
        "--bucket-mb", type=float, default=None, metavar="MB",
        help="overlap-aware bucketed allreduce for --whatif (default fused)",
    )
    parser.add_argument(
        "--scale", action="append", default=[], metavar="CLASS=FACTOR",
        help="what-if cost scaling (repeatable; default collective=0.5, 2.0)",
    )
    ns = parser.parse_args(argv)
    print(render())
    if ns.whatif:
        print()
        print(
            render_whatif(
                ns.config, ns.nodes,
                scales=ns.scale or None, bucket_mb=ns.bucket_mb,
            )
        )
    if ns.trace:
        from repro import trace
        from repro.trace.session import trace_training_step

        (builder, batch) = next(
            (b, n) for label, b, n in CONFIGS if label == ns.config
        )
        net = builder(batch_size=batch)
        tracer, summary = trace_training_step(net, ranks=ns.ranks)
        trace.write_chrome_json(tracer, ns.trace)
        print(
            f"traced {ns.config!r} on {summary.ranks} ranks: wrote "
            f"{len(tracer.spans)} spans to {ns.trace} (load in ui.perfetto.dev)"
        )


if __name__ == "__main__":  # pragma: no cover
    main()
