"""Table III: training throughput (img/s) on CPU, K40m and SW26010.

Builds each of the paper's five networks at its paper batch size, prices a
full training iteration on all three device models, and reports throughputs
plus the SW/NV and SW/CPU ratios — the headline comparison of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frame.model_zoo import PAPER_NETWORKS
from repro.perf.layer_cost import net_throughput
from repro.utils.tables import Table


@dataclass(frozen=True)
class ThroughputRow:
    """One network's throughput comparison."""

    network: str
    batch: int
    cpu_img_s: float
    gpu_img_s: float
    sw_img_s: float

    @property
    def sw_over_gpu(self) -> float:
        return self.sw_img_s / self.gpu_img_s

    @property
    def sw_over_cpu(self) -> float:
        return self.sw_img_s / self.cpu_img_s


def generate(networks: dict | None = None) -> list[ThroughputRow]:
    """Throughput rows for every configured network."""
    networks = networks if networks is not None else PAPER_NETWORKS
    rows = []
    for name, (builder, batch) in networks.items():
        net = builder(batch_size=batch)
        rows.append(
            ThroughputRow(
                network=name,
                batch=batch,
                cpu_img_s=net_throughput(net, "cpu", batch),
                gpu_img_s=net_throughput(net, "k40m", batch),
                sw_img_s=net_throughput(net, "sw26010", batch),
            )
        )
    return rows


def render(rows: list[ThroughputRow] | None = None) -> str:
    rows = rows if rows is not None else generate()
    table = Table(
        headers=["network", "batch", "CPU", "NV K40m", "SW", "SW/NV", "SW/CPU"],
        title="Table III: training throughput (img/sec)",
    )
    for r in rows:
        table.add_row(
            r.network, r.batch,
            round(r.cpu_img_s, 2), round(r.gpu_img_s, 2), round(r.sw_img_s, 2),
            round(r.sw_over_gpu, 2), round(r.sw_over_cpu, 2),
        )
    return table.render()


def main() -> None:  # pragma: no cover
    print(render())


if __name__ == "__main__":  # pragma: no cover
    main()
