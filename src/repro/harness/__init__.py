"""Experiment harnesses: one module per paper table/figure.

Every module exposes ``generate()`` returning structured rows/series and
``main()`` printing the paper-style output. The benchmark suite under
``benchmarks/`` wraps these, and EXPERIMENTS.md records paper-vs-measured
values for each.

| Module | Reproduces |
|---|---|
| ``table1_specs`` | Table I — processor comparison |
| ``fig2_dma`` | Fig. 2 — DMA bandwidth curves |
| ``fig6_network`` | Fig. 6 — Sunway vs Infiniband P2P |
| ``fig7_allreduce`` | Fig. 7 — 8-node allreduce example |
| ``table2_vgg_conv`` | Table II — VGG-16 conv plan comparison |
| ``fig8_alexnet_layers`` | Fig. 8 — AlexNet per-layer times |
| ``fig9_vgg_layers`` | Fig. 9 — VGG-16 per-layer times |
| ``table3_throughput`` | Table III — img/s on CPU/K40m/SW |
| ``fig10_scalability`` | Fig. 10 — speedup to 1024 nodes |
| ``fig11_comm_ratio`` | Fig. 11 — communication fractions |
| ``ablations`` | DESIGN.md §4 design-choice ablations |
| ``naive_port`` | Sec. III motivation: naive port vs redesign |
| ``roofline_report`` | extension — per-layer roofline attribution |
| ``report`` | run everything in paper order |
"""

__all__ = [
    "table1_specs",
    "fig2_dma",
    "fig6_network",
    "fig7_allreduce",
    "table2_vgg_conv",
    "fig8_alexnet_layers",
    "fig9_vgg_layers",
    "table3_throughput",
    "fig10_scalability",
    "fig11_comm_ratio",
    "ablations",
    "naive_port",
    "roofline_report",
    "report",
]
