"""Fig. 6: MPI P2P bandwidth and latency, Sunway vs Infiniband FDR.

Left panel: bandwidth vs message size (uni/bi-directional, plus the
over-subscribed cross-supernode variants for the Sunway network). Right
panel: end-to-end message time ("latency") vs size for both fabrics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology import INFINIBAND_FDR, SW_NETWORK
from repro.utils.tables import Table
from repro.utils.units import GB, MS

#: Message sizes of the bandwidth sweep (1 B - 4 MB, like the figure).
BANDWIDTH_SIZES = tuple(4**i for i in range(12))  # 1 B .. 4 MB
#: Message sizes of the latency sweep (up to 2 MB).
LATENCY_SIZES = tuple(2 * 4**i for i in range(11))  # 2 B .. 2 MB


@dataclass(frozen=True)
class Curve:
    label: str
    x: tuple[int, ...]
    y: tuple[float, ...]


def generate() -> dict[str, list[Curve]]:
    """Bandwidth (GB/s) and latency (ms) curve families."""
    bw_curves = [
        Curve(
            "SW uni-directional",
            BANDWIDTH_SIZES,
            tuple(SW_NETWORK.bandwidth(n) / GB for n in BANDWIDTH_SIZES),
        ),
        Curve(
            "SW bi-directional",
            BANDWIDTH_SIZES,
            tuple(SW_NETWORK.bandwidth(n, bidirectional=True) / GB for n in BANDWIDTH_SIZES),
        ),
        Curve(
            "SW uni-dir over-subscribed",
            BANDWIDTH_SIZES,
            tuple(SW_NETWORK.bandwidth(n, oversubscribed=True) / GB for n in BANDWIDTH_SIZES),
        ),
        Curve(
            "SW bi-dir over-subscribed",
            BANDWIDTH_SIZES,
            tuple(
                SW_NETWORK.bandwidth(n, bidirectional=True, oversubscribed=True) / GB
                for n in BANDWIDTH_SIZES
            ),
        ),
        Curve(
            "Infiniband uni-direction",
            BANDWIDTH_SIZES,
            tuple(INFINIBAND_FDR.bandwidth(n) / GB for n in BANDWIDTH_SIZES),
        ),
        Curve(
            "Infiniband bidirection",
            BANDWIDTH_SIZES,
            tuple(INFINIBAND_FDR.bandwidth(n, bidirectional=True) / GB for n in BANDWIDTH_SIZES),
        ),
    ]
    lat_curves = [
        Curve(
            "SW",
            LATENCY_SIZES,
            tuple(SW_NETWORK.ptp_time(n) / MS for n in LATENCY_SIZES),
        ),
        Curve(
            "Infiniband",
            LATENCY_SIZES,
            tuple(INFINIBAND_FDR.ptp_time(n) / MS for n in LATENCY_SIZES),
        ),
    ]
    return {"bandwidth": bw_curves, "latency": lat_curves}


def render(curves: dict[str, list[Curve]] | None = None) -> str:
    curves = curves if curves is not None else generate()
    out = []
    bw = curves["bandwidth"]
    t = Table(
        headers=["size(B)"] + [c.label for c in bw],
        title="Fig. 6 (left): P2P bandwidth (GB/s)",
    )
    for i, x in enumerate(bw[0].x):
        t.add_row(x, *(round(c.y[i], 3) for c in bw))
    out.append(t.render())
    lat = curves["latency"]
    t = Table(
        headers=["size(B)"] + [c.label for c in lat],
        title="Fig. 6 (right): P2P latency (ms)",
    )
    for i, x in enumerate(lat[0].x):
        t.add_row(x, *(round(c.y[i], 4) for c in lat))
    out.append(t.render())
    return "\n\n".join(out)


def main() -> None:  # pragma: no cover
    print(render())


if __name__ == "__main__":  # pragma: no cover
    main()
