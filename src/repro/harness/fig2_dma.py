"""Fig. 2: DMA get/put bandwidth for continuous and strided access.

Left panels: bandwidth vs per-CPE transfer size (128 B - 48 KB) for 1, 8,
16, 32, 64 CPEs, continuous access. Right panels: bandwidth vs strided
block size (4 B - 16 KB) with each CPE moving 32 KB total.

The model is direction-symmetric (the measured curves for get and put are
near-identical in the paper), so one series set covers both panels per
access pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.dma import DMAEngine
from repro.utils.tables import Table
from repro.utils.units import GB

#: Per-CPE data sizes of the continuous-access sweep (bytes).
CONTINUOUS_SIZES = (128, 256, 512, 1024, 2048, 4096, 8192, 16384, 24576, 32768, 49152)
#: Block sizes of the strided-access sweep (bytes), total 32 KB per CPE.
STRIDED_BLOCKS = (4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384)
#: CPE counts plotted in each panel.
CPE_COUNTS = (1, 8, 16, 32, 64)
#: Fixed per-CPE payload of the strided sweep.
STRIDED_TOTAL = 32 * 1024


@dataclass(frozen=True)
class Series:
    """One plotted curve: bandwidth (GB/s) per x value."""

    label: str
    x: tuple[int, ...]
    bandwidth_gbs: tuple[float, ...]


def generate() -> dict[str, list[Series]]:
    """Both panels' curve families."""
    dma = DMAEngine()
    continuous = []
    for cpes in CPE_COUNTS:
        bw = tuple(
            dma.aggregate_bandwidth(size, cpes) / GB for size in CONTINUOUS_SIZES
        )
        continuous.append(Series(f"{cpes}CPE", CONTINUOUS_SIZES, bw))
    strided = []
    for cpes in CPE_COUNTS:
        bw = tuple(
            dma.aggregate_bandwidth(STRIDED_TOTAL, cpes, block_bytes=block) / GB
            for block in STRIDED_BLOCKS
        )
        strided.append(Series(f"{cpes}CPE", STRIDED_BLOCKS, bw))
    return {"continuous": continuous, "strided": strided}


def render(panels: dict[str, list[Series]] | None = None) -> str:
    """Text rendering of both panels."""
    panels = panels if panels is not None else generate()
    out = []
    for title, xlabel, key in (
        ("Fig. 2 (left): continuous DMA, bandwidth (GB/s) vs data size", "size(B)", "continuous"),
        ("Fig. 2 (right): strided DMA, bandwidth (GB/s) vs block size", "block(B)", "strided"),
    ):
        series = panels[key]
        table = Table(headers=[xlabel] + [s.label for s in series], title=title)
        for i, x in enumerate(series[0].x):
            table.add_row(x, *(round(s.bandwidth_gbs[i], 2) for s in series))
        out.append(table.render())
    return "\n\n".join(out)


def main() -> None:  # pragma: no cover
    print(render())


if __name__ == "__main__":  # pragma: no cover
    main()
