"""Run every experiment harness and print the full reproduction report.

``python -m repro.harness.report`` regenerates every table and figure of
the paper in sequence (plus the design-choice ablations). Building the five
model-zoo networks takes a minute or two.
"""

from __future__ import annotations

import time

from repro.harness import (
    ablations,
    fig2_dma,
    fig6_network,
    fig7_allreduce,
    fig8_alexnet_layers,
    fig9_vgg_layers,
    fig10_scalability,
    fig11_comm_ratio,
    inference_throughput,
    memory_budget,
    naive_port,
    roofline_report,
    straggler_study,
    table1_specs,
    table2_vgg_conv,
    table3_throughput,
)

#: (name, module) in paper order, then the extensions.
SECTIONS = (
    ("Sec. III motivation (naive port)", naive_port),
    ("Table I", table1_specs),
    ("Fig. 2", fig2_dma),
    ("Fig. 6", fig6_network),
    ("Fig. 7", fig7_allreduce),
    ("Table II", table2_vgg_conv),
    ("Fig. 8", fig8_alexnet_layers),
    ("Fig. 9", fig9_vgg_layers),
    ("Table III", table3_throughput),
    ("Fig. 10", fig10_scalability),
    ("Fig. 11", fig11_comm_ratio),
    ("Ablations", ablations),
    ("Extension: inference throughput", inference_throughput),
    ("Extension: memory budget", memory_budget),
    ("Extension: straggler study", straggler_study),
    ("Extension: roofline attribution", roofline_report),
)


def run(verbose: bool = True) -> dict[str, str]:
    """Render every section; returns {section: text}."""
    out: dict[str, str] = {}
    for name, module in SECTIONS:
        t0 = time.perf_counter()
        text = module.render()
        dt = time.perf_counter() - t0
        out[name] = text
        if verbose:
            print(f"\n{'=' * 72}\n{name}  (generated in {dt:.1f}s)\n{'=' * 72}")
            print(text)
    return out


def main() -> None:  # pragma: no cover
    run()


if __name__ == "__main__":  # pragma: no cover
    main()
