"""Extension: straggler sensitivity of synchronous SGD.

The paper justifies synchronous SGD partly by TaihuLight's "balanced
performance per node": SSGD's barrier makes every iteration as slow as the
slowest worker, so the scheme only works on homogeneous machines. This
harness quantifies that — iteration-time inflation as a function of the
slowest node's slowdown factor and of cluster size (with per-node jitter,
the expected maximum grows with N).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.ssgd import SSGDIterationModel
from repro.utils.rng import seeded_rng
from repro.utils.tables import Table


@dataclass(frozen=True)
class StragglerPoint:
    """One (nodes, jitter) sample."""

    n_nodes: int
    jitter_cv: float
    mean_inflation: float  # E[iteration] / no-jitter iteration


def barrier_inflation(
    n_nodes: int,
    jitter_cv: float,
    compute_s: float = 1.0,
    model_bytes: float = 100e6,
    n_samples: int = 200,
    seed: int = 0,
) -> float:
    """Expected iteration-time inflation under per-node lognormal jitter.

    Every worker's compute time is ``compute_s`` times a lognormal factor
    with coefficient of variation ``jitter_cv``; the barrier takes the max.
    """
    if n_nodes <= 0:
        raise ValueError("n_nodes must be positive")
    if jitter_cv < 0:
        raise ValueError("jitter_cv must be non-negative")
    base = SSGDIterationModel(compute_s=compute_s, model_bytes=model_bytes)
    t_fixed = base.iteration_time(n_nodes) - compute_s
    if jitter_cv == 0:
        return 1.0
    sigma2 = np.log1p(jitter_cv**2)
    mu = -sigma2 / 2  # unit mean
    rng = seeded_rng(seed)
    draws = rng.lognormal(mean=mu, sigma=np.sqrt(sigma2), size=(n_samples, n_nodes))
    slowest = draws.max(axis=1) * compute_s
    mean_iter = float(np.mean(slowest)) + t_fixed
    return mean_iter / (compute_s + t_fixed)


def generate(
    node_counts: tuple[int, ...] = (4, 64, 1024),
    jitters: tuple[float, ...] = (0.0, 0.02, 0.05, 0.10),
) -> list[StragglerPoint]:
    """Inflation grid over cluster size and jitter."""
    return [
        StragglerPoint(n, cv, barrier_inflation(n, cv))
        for n in node_counts
        for cv in jitters
    ]


def render(points: list[StragglerPoint] | None = None) -> str:
    points = points if points is not None else generate()
    jitters = sorted({p.jitter_cv for p in points})
    nodes = sorted({p.n_nodes for p in points})
    table = Table(
        headers=["nodes"] + [f"cv={cv:g}" for cv in jitters],
        title="Straggler study: SSGD iteration-time inflation vs per-node jitter",
    )
    lookup = {(p.n_nodes, p.jitter_cv): p.mean_inflation for p in points}
    for n in nodes:
        table.add_row(n, *(f"{lookup[(n, cv)]:.3f}x" for cv in jitters))
    return table.render()


def main() -> None:  # pragma: no cover
    print(render())


if __name__ == "__main__":  # pragma: no cover
    main()
