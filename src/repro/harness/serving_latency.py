"""Extension: dynamic batching vs batch=1 serving at a fixed SLO.

Clipper's core claim, replayed on the simulated SW26010: under an offered
load above the single-request service rate, a dynamic batcher rides the
hardware's batch efficiency (here the four core groups make batches 1-4
cost the *same* forward time, so batching the queue is nearly free) while a
batch=1 server falls behind, sheds, and blows through the latency SLO.

The harness serves one seeded Poisson arrival stream twice through
:func:`repro.serve.session.run_serving` — once with ``max_batch=1``, once
with the default dynamic batcher — and compares percentiles, goodput and
SLO attainment. ``benchmarks/bench_serving_latency.py`` regression-gates
the same operating point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frame.model_zoo import lenet
from repro.serve.engine import ServeConfig
from repro.serve.report import ServeReport
from repro.serve.session import run_serving
from repro.utils.tables import Table
from repro.utils.units import format_time

#: The fixed operating point: offered load between the batch=1 capacity
#: (~19 req/s for LeNet's 52 ms forward) and the dynamic capacity at
#: ``max_batch=8`` (~77 req/s), with an SLO both *could* meet if they kept
#: up — exactly the regime where batching is the difference between an
#: attained SLO and a shedding meltdown.
ARRIVALS_SEED = "poisson:0xc0ffee:0"
RATE_RPS = 40.0
N_REQUESTS = 120
SLO_S = 0.400
MAX_BATCH = 8
MAX_WAIT_S = 0.010
QUEUE_BOUND = 32


@dataclass(frozen=True)
class ServingComparison:
    """The two sessions at the shared operating point."""

    batch1: ServeReport
    dynamic: ServeReport


def _config(max_batch: int) -> ServeConfig:
    return ServeConfig(
        max_batch=max_batch,
        max_wait_s=MAX_WAIT_S if max_batch > 1 else 0.0,
        queue_bound=QUEUE_BOUND,
        slo_s=SLO_S,
    )


def generate() -> ServingComparison:
    """Serve the same arrival stream with and without dynamic batching."""
    reports = {}
    for key, max_batch in (("batch1", 1), ("dynamic", MAX_BATCH)):
        reports[key] = run_serving(
            lenet.build,
            arrivals_seed=ARRIVALS_SEED,
            n_requests=N_REQUESTS,
            rate_rps=RATE_RPS,
            config=_config(max_batch),
            model="lenet",
        )
    return ServingComparison(**reports)


def render(comparison: ServingComparison | None = None) -> str:
    comparison = comparison if comparison is not None else generate()
    table = Table(
        headers=("metric", "batch=1", f"dynamic (max {MAX_BATCH})"),
        title=(
            f"Serving LeNet at {RATE_RPS:g} req/s "
            f"({ARRIVALS_SEED}, SLO {format_time(SLO_S)})"
        ),
    )
    b1, dy = comparison.batch1, comparison.dynamic
    for q in (50, 95, 99):
        table.add_row(
            f"p{q} latency",
            format_time(b1.latency_percentile(q)),
            format_time(dy.latency_percentile(q)),
        )
    table.add_row("mean batch size", f"{b1.mean_batch_size:.2f}", f"{dy.mean_batch_size:.2f}")
    table.add_row("shed requests", str(b1.n_shed), str(dy.n_shed))
    table.add_row(
        "throughput", f"{b1.throughput_rps:.2f} req/s", f"{dy.throughput_rps:.2f} req/s"
    )
    table.add_row(
        "goodput (within SLO)",
        f"{b1.goodput_rps:.2f} req/s",
        f"{dy.goodput_rps:.2f} req/s",
    )
    table.add_row(
        "SLO attainment",
        f"{100 * b1.slo_attainment:.1f}%",
        f"{100 * dy.slo_attainment:.1f}%",
    )
    note = (
        "Same seeded arrivals, same engine; only the batcher differs. "
        "Batches of up to 4 share the four core groups and cost one "
        "forward pass, so dynamic batching converts queueing delay into "
        "throughput (docs/serving.md)."
    )
    return "\n".join([table.render(), "", note])


def render_whatif(scales: list[str] | None = None) -> str:
    """The ``--whatif`` summary: critical path + projections of the
    dynamic-batching session at the harness operating point.

    Re-serves the same seeded arrival stream under a tracer, walks the
    request/batch dependency graph, and projects the makespan and the
    worst request completion under each ``CLASS=FACTOR`` scaling
    (default: batch compute halved / doubled — the engine knob).
    """
    from repro.trace.critpath import (
        build_graph,
        critical_path,
        render_critpath,
        request_completions,
        schedule,
    )
    from repro.trace.tracer import Tracer
    from repro.trace.whatif import parse_scales, project
    from repro.utils.units import format_time

    tracer = Tracer()
    run_serving(
        lenet.build,
        arrivals_seed=ARRIVALS_SEED,
        n_requests=N_REQUESTS,
        rate_rps=RATE_RPS,
        config=_config(MAX_BATCH),
        model="lenet",
        tracer=tracer,
    )
    graph = build_graph(tracer)
    lines = [
        f"critical path of the dynamic session ({ARRIVALS_SEED}, "
        f"{N_REQUESTS} requests at {RATE_RPS:g} req/s):",
        render_critpath(critical_path(graph)),
    ]
    for item in scales or ("batch=0.5", "batch=2.0"):
        factors = parse_scales([item] if isinstance(item, str) else item)
        proj = project(graph, factors)
        done = request_completions(graph, schedule(graph, factors))
        slowest = max(done.items(), key=lambda kv: kv[1])
        lines.append(
            f"what-if {item}: makespan {format_time(proj.baseline_s)} -> "
            f"{format_time(proj.projected_s)} ({proj.speedup:.3f}x); "
            f"last completion req{slowest[0]} at {format_time(slowest[1])}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> None:
    """CLI entry; ``--whatif`` adds the critical-path projection summary."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Dynamic batching vs batch=1 at a fixed SLO"
    )
    parser.add_argument(
        "--whatif", action="store_true",
        help="print the critical-path / what-if summary of the dynamic session",
    )
    parser.add_argument(
        "--scale", action="append", default=[], metavar="CLASS=FACTOR",
        help="what-if cost scaling (repeatable; default batch=0.5, 2.0)",
    )
    ns = parser.parse_args(argv)
    print(render())
    if ns.whatif:
        print()
        print(render_whatif(scales=ns.scale or None))


if __name__ == "__main__":  # pragma: no cover
    main()
