"""Fig. 8: per-layer forward/backward time of AlexNet, GPU vs SW26010."""

from __future__ import annotations

from dataclasses import dataclass

from repro.frame.model_zoo import alexnet
from repro.perf.layer_cost import LayerTiming, net_layer_timings

#: Fig. 8 uses the Table III AlexNet batch size.
BATCH = 256

#: Layer types that carry no device time and are omitted from the figure.
_SKIP_TYPES = {"Data", "Accuracy", "SoftmaxWithLoss"}


@dataclass(frozen=True)
class LayerComparison:
    """One layer's time on both devices, both directions."""

    name: str
    type: str
    gpu_forward_s: float
    gpu_backward_s: float
    sw_forward_s: float
    sw_backward_s: float


def _merge(gpu: list[LayerTiming], sw: list[LayerTiming]) -> list[LayerComparison]:
    out = []
    for g, s in zip(gpu, sw):
        assert g.layer_name == s.layer_name
        if g.layer_type in _SKIP_TYPES:
            continue
        out.append(
            LayerComparison(
                name=g.layer_name,
                type=g.layer_type,
                gpu_forward_s=g.forward_s,
                gpu_backward_s=g.backward_s,
                sw_forward_s=s.forward_s,
                sw_backward_s=s.backward_s,
            )
        )
    return out


def generate(batch: int = BATCH, builder=alexnet.build, **kwargs) -> list[LayerComparison]:
    """Per-layer GPU-vs-SW comparison for one network."""
    net = builder(batch_size=batch, **kwargs)
    return _merge(net_layer_timings(net, "k40m"), net_layer_timings(net, "sw26010"))


def render(
    rows: list[LayerComparison] | None = None,
    title: str = "Fig. 8: AlexNet",
    batch: int = BATCH,
) -> str:
    from repro.utils.tables import Table

    rows = rows if rows is not None else generate()
    table = Table(
        headers=["layer", "type", "GPU fwd(s)", "SW fwd(s)", "GPU bwd(s)", "SW bwd(s)"],
        title=f"{title} per-layer time, GPU K40m vs SW26010 (batch={batch})",
    )
    for r in rows:
        table.add_row(
            r.name, r.type,
            f"{r.gpu_forward_s:.2e}", f"{r.sw_forward_s:.2e}",
            f"{r.gpu_backward_s:.2e}", f"{r.sw_backward_s:.2e}",
        )
    return table.render()


def main() -> None:  # pragma: no cover
    print(render())


if __name__ == "__main__":  # pragma: no cover
    main()
