"""Table II: explicit vs implicit GEMM plans for VGG-16 convolutions.

Reproduces the per-layer comparison on one core group with batch size 128:
for each convolutional layer, both plans are priced in all three directions
(forward, weight gradient, input gradient); unavailable implicit entries
(small channels) appear as ``None``, and the Gflops column reports the best
plan's achieved rate, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanError
from repro.kernels.conv_explicit import ExplicitConvPlan
from repro.kernels.conv_implicit import ImplicitConvPlan
from repro.utils.tables import Table

#: VGG-16 convolution configurations: (name, Ni, No, image size).
VGG16_CONVS = [
    ("1_1", 3, 64, 224),
    ("1_2", 64, 64, 224),
    ("2_1", 64, 128, 112),
    ("2_2", 128, 128, 112),
    ("3_1", 128, 256, 56),
    ("3_2", 256, 256, 56),
    ("3_3", 256, 256, 56),
    ("4_1", 256, 512, 28),
    ("4_2", 512, 512, 28),
    ("4_3", 512, 512, 28),
    ("5_1", 512, 512, 14),
    ("5_2", 512, 512, 14),
    ("5_3", 512, 512, 14),
]

#: Table II batch size (per core group).
BATCH = 128


@dataclass(frozen=True)
class DirectionResult:
    """One (layer, direction) comparison."""

    implicit_s: float | None
    explicit_s: float | None
    gflops: float | None

    @property
    def best_s(self) -> float | None:
        times = [t for t in (self.implicit_s, self.explicit_s) if t is not None]
        return min(times) if times else None

    @property
    def winner(self) -> str | None:
        if self.best_s is None:
            return None
        if self.implicit_s is not None and self.best_s == self.implicit_s:
            return "implicit"
        return "explicit"


@dataclass(frozen=True)
class ConvRow:
    """One Table II row."""

    name: str
    ni: int
    no: int
    image: int
    forward: DirectionResult
    weight_diff: DirectionResult
    in_diff: DirectionResult


def _direction(explicit, implicit, direction: str, flops: float) -> DirectionResult:
    exp_t = getattr(explicit, f"cost_{direction}")().total_s
    imp_t = None
    if implicit is not None:
        try:
            imp_t = getattr(implicit, f"cost_{direction}")().total_s
        except PlanError:
            imp_t = None
    best = min(t for t in (exp_t, imp_t) if t is not None)
    return DirectionResult(
        implicit_s=imp_t, explicit_s=exp_t, gflops=flops / best / 1e9
    )


def generate(batch: int = BATCH) -> list[ConvRow]:
    """Price every VGG-16 conv layer with both plans in all directions."""
    rows = []
    for name, ni, no, img in VGG16_CONVS:
        explicit = ExplicitConvPlan(batch, ni, no, img, img, 3, 1, 1)
        try:
            implicit = ImplicitConvPlan(batch, ni, no, img, img, 3, 1, 1)
        except PlanError:
            implicit = None
        flops = 2.0 * batch * no * ni * 9 * img * img  # pad=1 keeps H=W
        forward = _direction(explicit, implicit, "forward", flops)
        wdiff = _direction(explicit, implicit, "backward_weight", flops)
        first_layer = name == "1_1"
        if first_layer:
            idiff = DirectionResult(None, None, None)  # no input gradient
        else:
            idiff = _direction(explicit, implicit, "backward_input", flops)
        rows.append(
            ConvRow(
                name=name, ni=ni, no=no, image=img,
                forward=forward, weight_diff=wdiff, in_diff=idiff,
            )
        )
    return rows


def _fmt(t: float | None) -> str:
    return "-" if t is None else f"{t:.2f}"


def render(rows: list[ConvRow] | None = None) -> str:
    """Paper-style text table."""
    rows = rows if rows is not None else generate()
    table = Table(
        headers=[
            "conv", "Ni", "No", "Ci/Ri",
            "fwd impl(s)", "fwd expl(s)", "fwd Gflops",
            "wdiff impl(s)", "wdiff expl(s)", "wdiff Gflops",
            "idiff impl(s)", "idiff expl(s)", "idiff Gflops",
        ],
        title=f"Table II: VGG-16 conv plans on one CG, batch={BATCH}",
    )
    for r in rows:
        table.add_row(
            r.name, r.ni, r.no, r.image,
            _fmt(r.forward.implicit_s), _fmt(r.forward.explicit_s),
            "-" if r.forward.gflops is None else f"{r.forward.gflops:.1f}",
            _fmt(r.weight_diff.implicit_s), _fmt(r.weight_diff.explicit_s),
            "-" if r.weight_diff.gflops is None else f"{r.weight_diff.gflops:.1f}",
            _fmt(r.in_diff.implicit_s), _fmt(r.in_diff.explicit_s),
            "NA" if r.in_diff.gflops is None else f"{r.in_diff.gflops:.1f}",
        )
    return table.render()


def main() -> None:  # pragma: no cover - CLI entry
    print(render(generate()))


if __name__ == "__main__":  # pragma: no cover
    main()
