"""Motivation table for Sec. III: naive port vs swCaffe's redesign.

The paper's premise: "straight-forward migrations or implementations of
these frameworks to the brand new architecture can not achieve satisfactory
performance", and each design principle quantifies why. This harness prices
representative kernels three ways:

* **naive port** — run on the MPE like a CPU core (Principle 1 violated):
  scalar compute at MPE peak, memory through the 9.9 GB/s copy path;
* **CPE offload, no LDM discipline** — CPE compute but per-element strided
  DMA (Principles 2/3 violated);
* **swCaffe plan** — the full redesign (LDM blocking, bulk DMA, register
  communication).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.core_group import CoreGroup
from repro.kernels.gemm import SWGemmPlan
from repro.utils.tables import Table


@dataclass(frozen=True)
class PortComparison:
    """One kernel priced under the three implementation styles."""

    kernel: str
    naive_mpe_s: float
    cpe_no_ldm_s: float
    swcaffe_s: float

    @property
    def speedup_vs_naive(self) -> float:
        return self.naive_mpe_s / self.swcaffe_s

    @property
    def speedup_vs_no_ldm(self) -> float:
        return self.cpe_no_ldm_s / self.swcaffe_s


#: Representative kernels: a VGG-style GEMM and a streaming layer.
GEMM_SHAPE = (512, 3136, 2304)  # conv3-class lowered GEMM
STREAM_BYTES = 64e6  # a large activation tensor pass


def compare_gemm(shape: tuple[int, int, int] = GEMM_SHAPE) -> PortComparison:
    """The three ports of one conv-sized single-precision GEMM."""
    m, n, k = shape
    cg = CoreGroup()
    flops = 2.0 * m * n * k
    traffic = 4.0 * (m * k + k * n + 2 * m * n)
    # Naive: MPE scalar/SSE-ish compute, memory via the MPE copy path.
    naive = max(
        flops / (cg.mpe.peak_flops * 0.8),
        traffic / cg.mpe.copy_bandwidth,
    )
    # CPE offload without LDM staging: compute is there, but with no
    # scratchpad reuse every multiply-accumulate fetches both operands from
    # DRAM as fine-grained strided DMA (8-byte blocks, Fig. 2 right).
    bw_no_ldm = cg.dma.aggregate_bandwidth(32 * 1024, 64, block_bytes=8)
    no_reuse_traffic = flops / 2.0 * 2 * 4.0  # 2 x 4-byte loads per MAC
    cpe_no_ldm = max(flops / (cg.peak_flops * 0.5), no_reuse_traffic / bw_no_ldm)
    # swCaffe: the actual plan.
    plan_s = SWGemmPlan(m, n, k, dtype_bytes=4).cost().total_s
    return PortComparison(
        kernel=f"GEMM {m}x{n}x{k}",
        naive_mpe_s=naive,
        cpe_no_ldm_s=cpe_no_ldm,
        swcaffe_s=plan_s,
    )


def compare_streaming(nbytes: float = STREAM_BYTES) -> PortComparison:
    """The three ports of a bandwidth-bound elementwise pass."""
    cg = CoreGroup()
    traffic = 2.0 * nbytes  # read + write
    naive = traffic / cg.mpe.copy_bandwidth
    bw_no_ldm = cg.dma.aggregate_bandwidth(32 * 1024, 64, block_bytes=8)
    cpe_no_ldm = traffic / bw_no_ldm
    swcaffe = cg.dma.bulk_time(traffic)
    return PortComparison(
        kernel=f"streaming {int(nbytes / 1e6)} MB",
        naive_mpe_s=naive,
        cpe_no_ldm_s=cpe_no_ldm,
        swcaffe_s=swcaffe,
    )


def generate() -> list[PortComparison]:
    """Both representative kernels."""
    return [compare_gemm(), compare_streaming()]


def render(rows: list[PortComparison] | None = None) -> str:
    rows = rows if rows is not None else generate()
    table = Table(
        headers=["kernel", "naive MPE (s)", "CPE w/o LDM (s)", "swCaffe (s)",
                 "vs naive", "vs no-LDM"],
        title="Sec. III motivation: why a straight-forward port fails",
    )
    for r in rows:
        table.add_row(
            r.kernel, r.naive_mpe_s, r.cpe_no_ldm_s, r.swcaffe_s,
            f"{r.speedup_vs_naive:.0f}x", f"{r.speedup_vs_no_ldm:.1f}x",
        )
    return table.render()


def main() -> None:  # pragma: no cover
    print(render())


if __name__ == "__main__":  # pragma: no cover
    main()
