"""Fig. 7: the 8-node / 2-supernode allreduce example.

Reproduces both the closed-form costs in the figure's caption

* original: ``6a + 7/8 n gamma + 3/4 n b1 + n b2``
* improved: ``6a + 7/8 n gamma + 3/2 n b1 + 1/4 n b2``

and the *executed* simulated collectives (real buffers through the real
schedule over both placements), verifying they coincide and that the
reduction result is exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import trace
from repro.simmpi import SimComm, block_placement, rhd_allreduce, round_robin_placement
from repro.simmpi.collectives import improved_allreduce_cost, original_allreduce_cost
from repro.topology import LinearCostModel, TaihuLightFabric
from repro.utils.tables import Table

#: The figure's configuration: 8 nodes in 2 supernodes of 4.
P, Q = 8, 4
#: Default payload: 1 MB of gradients.
DEFAULT_NBYTES = 1 << 20
#: Cost model used for the example (absolute values are illustrative; the
#: figure compares coefficients).
MODEL = LinearCostModel(alpha=1e-6, beta1=1.0 / 10e9, beta2=4.0 / 10e9, gamma=3e-10)


@dataclass(frozen=True)
class Fig7Result:
    """Simulated and analytic costs of both schemes."""

    nbytes: float
    original_simulated_s: float
    original_analytic_s: float
    improved_simulated_s: float
    improved_analytic_s: float
    original_cross_bytes: float
    improved_cross_bytes: float
    reduction_exact: bool

    @property
    def improvement(self) -> float:
        """Original / improved cost ratio (> 1 means the paper's scheme wins)."""
        return self.original_simulated_s / self.improved_simulated_s


def generate(nbytes: int = DEFAULT_NBYTES) -> Fig7Result:
    """Run both schemes over real buffers and compare with the closed forms."""
    n_elems = nbytes // 8
    fabric = TaihuLightFabric(n_nodes=P, nodes_per_supernode=Q)
    rng = np.random.default_rng(7)
    reference = None
    results = {}
    for scheme, placement in (
        ("original", block_placement(P, Q)),
        ("improved", round_robin_placement(P, Q)),
    ):
        bufs = [rng.normal(size=n_elems) for _ in range(P)]
        expected = np.sum(bufs, axis=0)
        comm = SimComm(fabric, placement, cost=MODEL)
        # When tracing is enabled, each scheme's per-rank collective steps
        # land under their own track group ("original/rank3/collective").
        with trace.active().context(scheme):
            res = rhd_allreduce(comm, bufs)
        exact = all(np.allclose(b, expected, rtol=1e-10) for b in bufs)
        results[scheme] = (res, exact)
        reference = expected if reference is None else reference
    orig, orig_ok = results["original"]
    impr, impr_ok = results["improved"]
    payload = n_elems * 8
    return Fig7Result(
        nbytes=payload,
        original_simulated_s=orig.time_s,
        original_analytic_s=original_allreduce_cost(payload, P, Q, MODEL),
        improved_simulated_s=impr.time_s,
        improved_analytic_s=improved_allreduce_cost(payload, P, Q, MODEL),
        original_cross_bytes=orig.bytes_cross,
        improved_cross_bytes=impr.bytes_cross,
        reduction_exact=orig_ok and impr_ok,
    )


def render(result: Fig7Result | None = None) -> str:
    r = result if result is not None else generate()
    table = Table(
        headers=["scheme", "simulated (us)", "analytic (us)", "cross-supernode bytes/rank"],
        title=(
            f"Fig. 7: allreduce of {int(r.nbytes)} B over {P} nodes in "
            f"{P // Q} supernodes (q={Q})"
        ),
    )
    table.add_row(
        "original (block)", r.original_simulated_s * 1e6,
        r.original_analytic_s * 1e6, r.original_cross_bytes,
    )
    table.add_row(
        "improved (round-robin)", r.improved_simulated_s * 1e6,
        r.improved_analytic_s * 1e6, r.improved_cross_bytes,
    )
    footer = (
        f"improvement: {r.improvement:.2f}x | reduction bit-exact: "
        f"{r.reduction_exact}"
    )
    return table.render() + "\n" + footer


def main(argv: list[str] | None = None) -> None:
    """CLI entry; ``--trace FILE`` exports the executed collectives' spans."""
    import argparse

    parser = argparse.ArgumentParser(description="Fig. 7 allreduce example")
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write Chrome trace-event JSON of both schemes' collective steps",
    )
    ns = parser.parse_args(argv)
    if ns.trace:
        with trace.tracing() as tr:
            print(render())
        trace.write_chrome_json(tr, ns.trace)
        print(f"wrote {len(tr.spans)} spans to {ns.trace} (load in ui.perfetto.dev)")
    else:
        print(render())


if __name__ == "__main__":  # pragma: no cover
    main()
