"""Fig. 9: per-layer forward/backward time of VGG-16, GPU vs SW26010."""

from __future__ import annotations

from repro.frame.model_zoo import vgg
from repro.harness.fig8_alexnet_layers import LayerComparison, generate as _generate, render as _render

#: Fig. 9 uses the Table III VGG-16 batch size.
BATCH = 64


def generate(batch: int = BATCH) -> list[LayerComparison]:
    """Per-layer GPU-vs-SW comparison for VGG-16."""
    return _generate(batch=batch, builder=vgg.build_vgg16)


def render(rows: list[LayerComparison] | None = None) -> str:
    rows = rows if rows is not None else generate()
    return _render(rows, title="Fig. 9: VGG-16", batch=BATCH)


def main() -> None:  # pragma: no cover
    print(render())


if __name__ == "__main__":  # pragma: no cover
    main()
