"""Tests for the asynchronous (stale-gradient) SGD baseline."""

import numpy as np
import pytest

from repro.frame.layers import DataLayer, InnerProductLayer, SoftmaxWithLossLayer
from repro.frame.net import Net
from repro.parallel.async_sgd import AsyncSGDTrainer
from repro.io.dataset import SyntheticImageNet
from repro.utils.rng import seeded_rng


def net_factory(seed=51):
    def build():
        src = SyntheticImageNet(num_classes=4, sample_shape=(12,), noise=0.2, seed=6)
        net = Net("async")
        net.add(DataLayer("data", src, 16), bottoms=[], tops=["data", "label"])
        net.add(InnerProductLayer("ip", 4, rng=seeded_rng(seed)), ["data"], ["logits"])
        net.add(SoftmaxWithLossLayer("loss"), ["logits", "label"], ["loss"])
        return net

    return build


class TestAsyncSGD:
    def test_single_worker_is_sequential_sgd(self):
        trainer = AsyncSGDTrainer(net_factory(), n_workers=1, base_lr=0.05)
        stats = trainer.step(40)
        assert stats.mean_staleness == 0.0
        assert stats.applied_updates == 40
        assert np.mean(stats.losses[-5:]) < np.mean(stats.losses[:5])

    def test_staleness_equals_pipeline_depth(self):
        trainer = AsyncSGDTrainer(net_factory(), n_workers=4, base_lr=0.02)
        stats = trainer.step(40)
        # Steady-state delay is n_workers - 1 = 3; the warmup ramp
        # (0, 1, 2) pulls the mean slightly below it.
        assert 2.5 < stats.mean_staleness <= 3.0
        assert stats.applied_updates == 40 - 3

    def test_still_learns_with_moderate_staleness(self):
        trainer = AsyncSGDTrainer(net_factory(), n_workers=4, base_lr=0.02)
        stats = trainer.step(60)
        assert np.mean(stats.losses[-5:]) < np.mean(stats.losses[:5])

    def test_staleness_destabilizes_quadratic(self):
        """The classic delayed-SGD instability: on a quadratic objective,
        a learning rate well inside sequential SGD's stability region blows
        up once gradients arrive tau steps late (stability shrinks roughly
        as 1/tau) — the convergence risk that made the paper pick the
        synchronous scheme."""

        def quad_factory():
            from repro.frame.layers import EuclideanLossLayer

            class FixedRegression:
                sample_shape = (8,)
                label_shape = (8,)

                def __init__(self):
                    rng = np.random.default_rng(2)
                    self.x = rng.normal(size=(16, 8)).astype(np.float32)
                    # Target: a fixed linear map of the input.
                    self.w = rng.normal(size=(8, 8)).astype(np.float32)

                def next_batch(self, batch_size):
                    # Targets returned through the label top.
                    return self.x, (self.x @ self.w)

            src = FixedRegression()
            net = Net("quad")
            net.add(DataLayer("data", src, 16), bottoms=[], tops=["data", "target"])
            net.add(
                InnerProductLayer("ip", 8, bias=False, rng=seeded_rng(3)),
                ["data"],
                ["pred"],
            )
            net.add(EuclideanLossLayer("loss"), ["pred", "target"], ["loss"])
            return net

        lr = 0.55  # stable sequentially, unstable at delay 15
        with np.errstate(over="ignore", invalid="ignore"):
            fresh = AsyncSGDTrainer(quad_factory, n_workers=1, base_lr=lr).step(80)
            stale = AsyncSGDTrainer(quad_factory, n_workers=16, base_lr=lr).step(80)
        fresh_tail = np.mean(fresh.losses[-10:])
        stale_tail = np.mean(stale.losses[-10:])
        assert fresh_tail < fresh.losses[0]  # sequential converges
        assert (not np.isfinite(stale_tail)) or stale_tail > 10 * fresh_tail

    def test_validation(self):
        with pytest.raises(ValueError):
            AsyncSGDTrainer(net_factory(), n_workers=0)
