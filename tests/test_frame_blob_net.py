"""Tests for Blob bookkeeping and Net wiring/propagation mechanics."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.frame import Blob, Net
from repro.frame.layers import (
    DataLayer,
    EltwiseLayer,
    InnerProductLayer,
    ReLULayer,
    SoftmaxWithLossLayer,
)
from repro.io.dataset import SyntheticImageNet
from repro.utils.rng import seeded_rng


class TestBlob:
    def test_lazy_allocation(self):
        b = Blob("x", (4, 5))
        assert not b.has_data()
        assert b.count == 20
        assert b.nbytes == 80
        _ = b.data
        assert b.has_data()

    def test_reshape_drops_storage(self):
        b = Blob("x", (2, 2))
        b.data = np.ones((2, 2))
        b.reshape((3, 3))
        assert b.shape == (3, 3)
        np.testing.assert_array_equal(b.data, np.zeros((3, 3)))

    def test_reshape_same_shape_keeps_storage(self):
        b = Blob("x", (2, 2))
        b.data = np.ones((2, 2))
        b.reshape((2, 2))
        np.testing.assert_array_equal(b.data, np.ones((2, 2)))

    def test_assign_wrong_shape_raises(self):
        b = Blob("x", (2, 2))
        with pytest.raises(ShapeError):
            b.data = np.ones((3, 3))
        with pytest.raises(ShapeError):
            b.diff = np.ones((3, 3))

    def test_zero_diff(self):
        b = Blob("x", (2,))
        b.diff = np.array([1.0, 2.0])
        b.zero_diff()
        np.testing.assert_array_equal(b.diff, np.zeros(2))

    def test_nonpositive_shape_rejected(self):
        with pytest.raises(ShapeError):
            Blob("x", (2,)).reshape((0, 3))

    def test_dtype_cast_on_assignment(self):
        b = Blob("x", (2,))
        b.data = np.array([1, 2], dtype=np.int64)
        assert b.data.dtype == np.float32


def tiny_net(batch=8, dim=6, classes=3, hidden=5):
    src = SyntheticImageNet(num_classes=classes, sample_shape=(dim,), noise=0.1, seed=1)
    net = Net("tiny")
    net.add(DataLayer("data", src, batch), bottoms=[], tops=["data", "label"])
    net.add(InnerProductLayer("ip1", hidden, rng=seeded_rng(2)), ["data"], ["ip1"])
    net.add(ReLULayer("relu1"), ["ip1"], ["relu1"])
    net.add(InnerProductLayer("ip2", classes, rng=seeded_rng(3)), ["relu1"], ["ip2"])
    net.add(SoftmaxWithLossLayer("loss"), ["ip2", "label"], ["loss"])
    return net


class TestNet:
    def test_forward_produces_loss(self):
        net = tiny_net()
        losses = net.forward()
        assert "loss" in losses
        assert losses["loss"] > 0

    def test_backward_fills_param_diffs(self):
        net = tiny_net()
        net.forward()
        net.backward()
        ip1 = net.layer_by_name("ip1")
        assert float(np.abs(ip1.weight.diff).sum()) > 0

    def test_first_learnable_layer_does_not_propagate(self):
        net = tiny_net()
        assert net.layer_by_name("ip1").propagate_down is False
        assert net.layer_by_name("ip2").propagate_down is True

    def test_duplicate_layer_name_rejected(self):
        net = tiny_net()
        with pytest.raises(ShapeError):
            net.add(ReLULayer("relu1"), ["ip1"], ["other"])

    def test_missing_bottom_rejected(self):
        net = Net("n")
        with pytest.raises(ShapeError):
            net.add(ReLULayer("r"), ["nope"], ["out"])

    def test_inplace_top_rejected(self):
        net = tiny_net()
        with pytest.raises(ShapeError):
            net.add(ReLULayer("relu_ip"), ["ip1"], ["ip1"])

    def test_fanout_gradients_accumulate(self):
        # Two consumers of the same blob: bottom diff must be the sum.
        src = SyntheticImageNet(num_classes=2, sample_shape=(4,), seed=0)
        net = Net("fan")
        net.add(DataLayer("data", src, 4), bottoms=[], tops=["data", "label"])
        net.add(InnerProductLayer("ip0", 4, rng=seeded_rng(1)), ["data"], ["x"])
        net.add(ReLULayer("r1"), ["x"], ["a"])
        net.add(ReLULayer("r2"), ["x"], ["b"])
        net.add(EltwiseLayer("add"), ["a", "b"], ["sum"])
        net.add(InnerProductLayer("ip1", 2, rng=seeded_rng(2)), ["sum"], ["logits"])
        net.add(SoftmaxWithLossLayer("loss"), ["logits", "label"], ["loss"])
        net.forward()
        net.backward()
        x = net.blobs["x"]
        a, b = net.blobs["a"], net.blobs["b"]
        # x is positive or negative; both ReLUs share the mask, so the
        # fan-in diff is the sum of both branches' diffs through the mask.
        mask = net.blobs["x"].data > 0
        expected = (a.diff + b.diff) * mask
        np.testing.assert_allclose(x.diff, expected, rtol=1e-5)

    def test_param_bytes(self):
        net = tiny_net(dim=6, classes=3, hidden=5)
        # ip1: 5x6 + 5, ip2: 3x5 + 3 -> 53 float32 params.
        assert net.param_bytes() == 53 * 4

    def test_set_phase_propagates(self):
        net = tiny_net()
        net.set_phase("test")
        assert all(l.phase == "test" for l in net.layers)
        with pytest.raises(ValueError):
            net.set_phase("deploy")

    def test_sw_iteration_time_positive(self):
        net = tiny_net()
        t = net.sw_iteration_time()
        assert t > 0
        assert net.sw_iteration_time(include_backward=False) < t

    def test_layer_by_name_missing(self):
        with pytest.raises(KeyError):
            tiny_net().layer_by_name("ghost")


class TestBackwardHooks:
    def test_hooks_fire_last_to_first_with_indices(self):
        net = tiny_net()
        net.forward()
        seen = []
        net.add_backward_hook(lambda layer, index: seen.append((index, layer.name)))
        net.backward()
        indices = [i for i, _ in seen]
        assert indices == list(range(len(net.layers) - 1, -1, -1))
        assert seen[0][1] == "loss" and seen[-1][1] == "data"

    def test_hook_sees_completed_gradients(self):
        # By the time the hook fires for a layer, that layer's param
        # gradients are final (backward has fully processed it).
        net = tiny_net()
        net.forward()
        grabbed = {}

        def hook(layer, index):
            if layer.params:
                grabbed[layer.name] = [p.diff.copy() for p in layer.params]

        net.add_backward_hook(hook)
        net.backward()
        for name, diffs in grabbed.items():
            layer = net.layer_by_name(name)
            for got, final in zip(diffs, [p.diff for p in layer.params]):
                assert np.array_equal(got, final)

    def test_remove_backward_hook(self):
        net = tiny_net()
        net.forward()
        calls = []
        hook = lambda layer, index: calls.append(index)
        net.add_backward_hook(hook)
        net.backward()
        n = len(calls)
        net.remove_backward_hook(hook)
        net.forward()
        net.backward()
        assert len(calls) == n

    def test_multiple_hooks_all_fire(self):
        net = tiny_net()
        net.forward()
        a, b = [], []
        net.add_backward_hook(lambda l, i: a.append(i))
        net.add_backward_hook(lambda l, i: b.append(i))
        net.backward()
        assert a == b and len(a) == len(net.layers)
