"""Stage partitioner tests (:mod:`repro.pipeline.partition`).

The DP partitioner's optimality claim is checked against brute-force
enumeration of every contiguous split; the greedy baseline is checked for
validity (never optimality — it can be arbitrarily unlucky, and one test
pins a case where it is). Cut-set derivation is pinned on LeNet,
including the label relay: a blob produced by the data layer and consumed
only at the loss must appear in *every* intermediate cut.

The mutation smoke test guards the objective itself: an "unbalanced
split" mutant (all-but-tail in stage 0) must price strictly worse than
the DP optimum on any cost vector with real spread — if it ever doesn't,
the bottleneck objective has been broken.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest

from repro.frame.model_zoo import lenet
from repro.pipeline import StagePlan, partition_dp, partition_greedy, plan_stages
from repro.pipeline.partition import PARTITIONERS, boundary_blobs


def bottleneck(costs, bounds):
    return max(
        sum(costs[bounds[s]:bounds[s + 1]]) for s in range(len(bounds) - 1)
    )


def brute_force_optimum(costs, n_stages):
    n = len(costs)
    best = float("inf")
    for cuts in combinations(range(1, n), n_stages - 1):
        bounds = (0, *cuts, n)
        best = min(best, bottleneck(costs, bounds))
    return best


def _net():
    return lenet.build(batch_size=4, rng=np.random.default_rng(3))


class TestDP:
    @pytest.mark.parametrize("n_stages", [1, 2, 3, 4, 5])
    def test_matches_brute_force_on_random_costs(self, n_stages):
        rng = np.random.default_rng([n_stages, 0xD0])
        for _ in range(5):
            costs = list(rng.uniform(0.1, 10.0, size=9))
            bounds = partition_dp(costs, n_stages)
            assert bottleneck(costs, bounds) == pytest.approx(
                brute_force_optimum(costs, n_stages)
            )

    def test_is_deterministic_on_ties(self):
        costs = [1.0] * 8
        assert partition_dp(costs, 4) == partition_dp(list(costs), 4)
        # Ties break toward earlier cuts: uniform costs split evenly.
        assert partition_dp(costs, 4) == (0, 2, 4, 6, 8)

    def test_isolates_a_dominant_layer(self):
        costs = [1.0, 1.0, 50.0, 1.0, 1.0]
        bounds = partition_dp(costs, 3)
        assert bottleneck(costs, bounds) == 50.0
        s = next(
            s for s in range(3) if 2 in range(bounds[s], bounds[s + 1])
        )
        assert bounds[s + 1] - bounds[s] == 1  # the big layer stands alone


class TestGreedy:
    @pytest.mark.parametrize("n_stages", [1, 2, 3, 4])
    def test_produces_valid_bounds(self, n_stages):
        rng = np.random.default_rng(0x9E)
        costs = list(rng.uniform(0.1, 5.0, size=7))
        bounds = partition_greedy(costs, n_stages)
        assert bounds[0] == 0 and bounds[-1] == len(costs)
        assert all(b < e for b, e in zip(bounds, bounds[1:]))
        assert len(bounds) == n_stages + 1

    def test_can_lose_to_dp(self):
        # The greedy target is total/S = 13; it packs [10, 1, 1, 1] into
        # stage 0 and leaves the huge tail layer exposed.
        costs = [10.0, 1.0, 1.0, 1.0, 13.0]
        greedy = bottleneck(costs, partition_greedy(costs, 2))
        optimal = bottleneck(costs, partition_dp(costs, 2))
        assert optimal == 13.0
        assert greedy == 13.0  # equal here; the mutant test pins strict loss
        # Target 26/3 makes greedy close stage 0 at [5, 5] and then eat
        # the 9 into stage 1 ([5, 9] = 14); the optimum splits as
        # [5, 5] / [5] / [9, 1, 1] with bottleneck 11.
        costs = [5.0, 5.0, 5.0, 9.0, 1.0, 1.0]
        greedy = bottleneck(costs, partition_greedy(costs, 3))
        optimal = bottleneck(costs, partition_dp(costs, 3))
        assert optimal == 11.0
        assert greedy > optimal


class TestValidation:
    @pytest.mark.parametrize("fn", PARTITIONERS.values())
    def test_rejects_bad_stage_counts(self, fn):
        with pytest.raises(ValueError):
            fn([1.0, 2.0], 0)
        with pytest.raises(ValueError):
            fn([1.0, 2.0], 3)

    def test_plan_rejects_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            plan_stages(_net(), 2, method="magic")

    def test_boundary_blobs_rejects_edge_splits(self):
        net = _net()
        with pytest.raises(ValueError):
            boundary_blobs(net, 0)
        with pytest.raises(ValueError):
            boundary_blobs(net, len(net.layers))


class TestCutSets:
    def test_label_is_relayed_through_every_cut(self):
        """The data layer produces ``label``; only the loss consumes it —
        so every intermediate boundary must carry it."""
        net = _net()
        plan = plan_stages(net, 4)
        for blobs in plan.cut_blobs:
            assert "label" in blobs

    def test_cut_bytes_match_blob_shapes(self):
        net = _net()
        plan = plan_stages(net, 2)
        (blobs,) = plan.cut_blobs
        expect = sum(
            net.blobs[n].count * np.dtype(net.blobs[n].dtype).itemsize
            for n in blobs
        )
        assert plan.cut_bytes[0] == float(expect)

    def test_boundary_blobs_cover_all_cross_edges(self):
        net = _net()
        split = 3
        blobs = set(boundary_blobs(net, split))
        produced = set()
        for layer in net.layers[:split]:
            produced.update(net._tops[layer.name])
        for layer in net.layers[split:]:
            for b in net._bottoms[layer.name]:
                if b in produced:
                    assert b in blobs


class TestPlan:
    def test_plan_shape_and_bookkeeping(self):
        net = _net()
        plan = plan_stages(net, 3)
        assert isinstance(plan, StagePlan)
        assert plan.n_stages == 3
        assert len(plan.stage_fwd_s) == len(plan.stage_bwd_s) == 3
        assert len(plan.cut_blobs) == len(plan.cut_bytes) == 2
        assert sum(plan.stage_param_bytes) == float(
            sum(
                p.count * np.dtype(p.dtype).itemsize
                for layer in net.layers
                for p in layer.params
            )
        )
        for i in range(len(net.layers)):
            s = plan.stage_of_layer(i)
            assert i in plan.layer_range(s)

    def test_single_stage_is_the_whole_net(self):
        net = _net()
        plan = plan_stages(net, 1)
        assert plan.boundaries == (0, len(net.layers))
        assert plan.cut_blobs == ()
        assert plan.stage_imbalance == 0.0

    def test_dp_never_worse_than_greedy_on_real_nets(self):
        net = _net()
        for s in (2, 3, 4):
            dp = plan_stages(net, s, method="dp")
            greedy = plan_stages(net, s, method="greedy")
            assert dp.bottleneck_s <= greedy.bottleneck_s + 1e-12


class TestMutation:
    def test_unbalanced_split_mutant_prices_worse(self):
        """Objective smoke test: the degenerate all-but-tail split must
        raise the bottleneck strictly above the DP optimum whenever the
        cost vector has spread — a partitioner that ever prefers it has a
        broken objective."""
        rng = np.random.default_rng(0xBAD)
        for _ in range(10):
            costs = list(rng.uniform(0.5, 4.0, size=8))
            n_stages = 4
            mutant = (0, 5, 6, 7, 8)  # stage 0 hoards 5 of 8 layers
            optimal = bottleneck(costs, partition_dp(costs, n_stages))
            assert bottleneck(costs, mutant) > optimal
