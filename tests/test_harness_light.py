"""Shape tests for the cheap experiment harnesses (Table I, Figs. 2/6/7).

Each test pins a qualitative claim of the corresponding paper artifact —
the "who wins, where are the knees" facts a reproduction must preserve.
"""

import pytest

from repro.harness import fig2_dma, fig6_network, fig7_allreduce, table1_specs


class TestTable1:
    def test_three_processors(self):
        rows = table1_specs.generate()
        assert [r["name"] for r in rows] == ["SW26010", "NVIDIA K40m", "Intel KNL"]

    def test_values_match_paper(self):
        rows = {r["name"]: r for r in table1_specs.generate()}
        sw = rows["SW26010"]
        assert sw["bandwidth_gbs"] == pytest.approx(128)
        assert sw["float_tflops"] == pytest.approx(3.02)
        assert rows["NVIDIA K40m"]["double_tflops"] == pytest.approx(1.43)
        assert rows["Intel KNL"]["float_tflops"] == pytest.approx(6.92)

    def test_render_contains_rows(self):
        text = table1_specs.render()
        assert "SW26010" in text and "KNL" in text


class TestFig2:
    @pytest.fixture(scope="class")
    def panels(self):
        return fig2_dma.generate()

    def test_series_structure(self, panels):
        assert {s.label for s in panels["continuous"]} == {
            "1CPE", "8CPE", "16CPE", "32CPE", "64CPE",
        }
        assert len(panels["continuous"][0].x) == len(fig2_dma.CONTINUOUS_SIZES)

    def test_64cpe_saturates_near_28(self, panels):
        series = {s.label: s for s in panels["continuous"]}
        assert 26 <= series["64CPE"].bandwidth_gbs[-1] <= 28.5

    def test_more_cpes_more_bandwidth(self, panels):
        series = {s.label: s for s in panels["continuous"]}
        for i in range(len(fig2_dma.CONTINUOUS_SIZES)):
            assert (
                series["1CPE"].bandwidth_gbs[i]
                < series["8CPE"].bandwidth_gbs[i]
                < series["64CPE"].bandwidth_gbs[i]
            )

    def test_strided_collapse_below_256b(self, panels):
        series = {s.label: s for s in panels["strided"]}
        blocks = fig2_dma.STRIDED_BLOCKS
        bw = dict(zip(blocks, series["64CPE"].bandwidth_gbs))
        assert bw[4] < 0.1 * bw[16384]
        assert bw[256] > 0.5 * bw[16384]

    def test_render(self):
        text = fig2_dma.render()
        assert "continuous DMA" in text and "strided DMA" in text


class TestFig6:
    @pytest.fixture(scope="class")
    def curves(self):
        return fig6_network.generate()

    def test_sw_peaks_above_infiniband(self, curves):
        by_label = {c.label: c for c in curves["bandwidth"]}
        assert by_label["SW uni-directional"].y[-1] > by_label["Infiniband uni-direction"].y[-1]

    def test_oversubscription_quarter(self, curves):
        by_label = {c.label: c for c in curves["bandwidth"]}
        full = by_label["SW uni-directional"].y[-1]
        over = by_label["SW uni-dir over-subscribed"].y[-1]
        assert over == pytest.approx(full / 4)

    def test_sw_latency_worse_beyond_2kb(self, curves):
        by_label = {c.label: c for c in curves["latency"]}
        sw, ib = by_label["SW"], by_label["Infiniband"]
        for x, ts, ti in zip(sw.x, sw.y, ib.y):
            if x > 2048:
                assert ts > ti

    def test_render(self):
        assert "P2P bandwidth" in fig6_network.render()


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7_allreduce.generate()

    def test_simulated_matches_analytic(self, result):
        assert result.original_simulated_s == pytest.approx(
            result.original_analytic_s, rel=1e-9
        )
        assert result.improved_simulated_s == pytest.approx(
            result.improved_analytic_s, rel=1e-9
        )

    def test_improvement_positive(self, result):
        assert result.improvement > 1.0

    def test_cross_traffic_quartered(self, result):
        # Coefficients n*b2 -> n/4*b2: cross bytes drop 4x at p=8, q=4.
        assert result.improved_cross_bytes == pytest.approx(
            result.original_cross_bytes / 4, rel=1e-9
        )

    def test_reduction_exact(self, result):
        assert result.reduction_exact

    def test_caption_cost_ratio(self, result):
        """The figure's closed forms: improved spends 2x more on b1 and
        4x less on b2 than original."""
        m = fig7_allreduce.MODEL
        n = result.nbytes
        base = 6 * m.alpha + 7 / 8 * n * m.gamma
        orig_comm = result.original_analytic_s - base
        impr_comm = result.improved_analytic_s - base
        assert orig_comm == pytest.approx(3 / 4 * n * m.beta1 + n * m.beta2, rel=1e-9)
        assert impr_comm == pytest.approx(3 / 2 * n * m.beta1 + n * m.beta2 / 4, rel=1e-9)

    def test_render(self):
        assert "improvement" in fig7_allreduce.render()
